//! Design-choice ablation benches (DESIGN.md §8): AM associativity sweep,
//! victim/accept replacement policies, and write-buffer depth.

use coma_bench::BENCH_SCALE;
use coma_cache::{AcceptPolicy, VictimPolicy};
use coma_sim::{run_simulation, SimParams};
use coma_types::MemoryPressure;
use coma_workloads::AppId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn run_with(f: impl Fn(&mut SimParams)) -> u64 {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 4;
    params.machine.memory_pressure = MemoryPressure::MP_81;
    f(&mut params);
    let wl = AppId::OceanNon.build(16, 42, BENCH_SCALE);
    run_simulation(wl, &params).exec_time_ns
}

/// Generalized Figure 4: AM associativity 1/2/4/8/16.
fn bench_assoc_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_assoc");
    g.sample_size(10);
    for assoc in [1usize, 2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(assoc), &assoc, |b, &assoc| {
            b.iter(|| black_box(run_with(|p| p.machine.am_assoc = assoc)))
        });
    }
    g.finish();
}

/// Victim priority: Shared-first (paper) vs strict LRU.
fn bench_victim_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_victim");
    g.sample_size(10);
    for (name, pol) in [
        ("shared_first", VictimPolicy::SharedFirst),
        ("strict_lru", VictimPolicy::StrictLru),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_with(|p| p.victim_policy = pol)))
        });
    }
    g.finish();
}

/// Accept priority for injections.
fn bench_accept_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_accept");
    g.sample_size(10);
    for (name, pol) in [
        ("invalid_then_shared", AcceptPolicy::InvalidThenShared),
        ("shared_then_invalid", AcceptPolicy::SharedThenInvalid),
        ("first_fit", AcceptPolicy::FirstFit),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_with(|p| p.accept_policy = pol)))
        });
    }
    g.finish();
}

/// Write-buffer depth under release consistency.
fn bench_write_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_write_buffer");
    g.sample_size(10);
    for depth in [0usize, 2, 10, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| black_box(run_with(|p| p.machine.write_buffer_entries = d)))
        });
    }
    g.finish();
}

/// Short measurement windows: each sample runs real simulation work.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = ablations;
    config = short();
    targets =
    bench_assoc_sweep,
    bench_victim_policy,
    bench_accept_policy,
    bench_write_buffer
);
criterion_main!(ablations);
