//! Design-choice ablation benches (DESIGN.md §8): AM associativity sweep,
//! victim/accept replacement policies, and write-buffer depth.

use coma_bench::harness::Bench;
use coma_bench::BENCH_SCALE;
use coma_cache::{AcceptPolicy, VictimPolicy};
use coma_sim::{run_simulation, SimParams};
use coma_types::MemoryPressure;
use coma_workloads::AppId;
use std::hint::black_box;

fn run_with(f: impl Fn(&mut SimParams)) -> u64 {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 4;
    params.machine.memory_pressure = MemoryPressure::MP_81;
    f(&mut params);
    let wl = AppId::OceanNon.build(16, 42, BENCH_SCALE);
    run_simulation(wl, &params).exec_time_ns
}

fn main() {
    let bench = Bench::from_args();

    // Generalized Figure 4: AM associativity 1/2/4/8/16.
    for assoc in [1usize, 2, 4, 8, 16] {
        bench.case(&format!("ablation_assoc/{assoc}"), || {
            black_box(run_with(|p| p.machine.am_assoc = assoc));
        });
    }

    // Victim priority: Shared-first (paper) vs strict LRU.
    for (name, pol) in [
        ("shared_first", VictimPolicy::SharedFirst),
        ("strict_lru", VictimPolicy::StrictLru),
    ] {
        bench.case(&format!("ablation_victim/{name}"), || {
            black_box(run_with(|p| p.victim_policy = pol));
        });
    }

    // Accept priority for injections.
    for (name, pol) in [
        ("invalid_then_shared", AcceptPolicy::InvalidThenShared),
        ("shared_then_invalid", AcceptPolicy::SharedThenInvalid),
        ("first_fit", AcceptPolicy::FirstFit),
    ] {
        bench.case(&format!("ablation_accept/{name}"), || {
            black_box(run_with(|p| p.accept_policy = pol));
        });
    }

    // Write-buffer depth under release consistency.
    for depth in [0usize, 2, 10, 64] {
        bench.case(&format!("ablation_write_buffer/{depth}"), || {
            black_box(run_with(|p| p.machine.write_buffer_entries = depth));
        });
    }
}
