//! One bench per paper table/figure: each measures the simulation work
//! that regenerates (a reduced-scale slice of) that experiment and
//! asserts its headline qualitative property on the measured reports.

use coma_bench::{run_point, BENCH_SCALE, REP_APPS};
use coma_types::{LatencyConfig, MemoryPressure};
use coma_workloads::AppId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Table 1: workload construction + full trace drain for the catalog.
fn bench_table1(c: &mut Criterion) {
    use coma_workloads::OpStream;
    c.bench_function("table1_workload_generation", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for app in [AppId::Fft, AppId::WaterN2] {
                let mut wl = app.build(16, 42, BENCH_SCALE);
                for s in &mut wl.streams {
                    while let Some(op) = s.next_op() {
                        total += matches!(op, coma_workloads::Op::Read(_)) as u64;
                    }
                }
            }
            black_box(total)
        })
    });
}

/// Figure 2: RNMr at 6.25 % MP, 1-way vs 4-way clustering.
fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_rnm");
    g.sample_size(10);
    for app in REP_APPS {
        g.bench_function(app.name(), |b| {
            b.iter(|| {
                let r1 = run_point(app, 1, MemoryPressure::MP_6, 4, LatencyConfig::paper_default());
                let r4 = run_point(app, 4, MemoryPressure::MP_6, 4, LatencyConfig::paper_default());
                assert!(
                    r4.rnm_rate() < r1.rnm_rate(),
                    "{app}: clustering must reduce RNMr"
                );
                black_box((r1.rnm_rate(), r4.rnm_rate()))
            })
        });
    }
    g.finish();
}

/// Figure 3: traffic across the memory-pressure sweep.
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_traffic_sweep");
    g.sample_size(10);
    g.bench_function("fft_1p_vs_4p", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            for ppn in [1usize, 4] {
                for mp in [MemoryPressure::MP_6, MemoryPressure::MP_81] {
                    let r = run_point(AppId::Fft, ppn, mp, 4, LatencyConfig::paper_default());
                    bytes.push(r.traffic.total_bytes());
                }
            }
            // Clustering reduces traffic at 81.25% MP.
            assert!(bytes[3] < bytes[1]);
            black_box(bytes)
        })
    });
    g.finish();
}

/// Figure 4: 8-way associativity recovery at 87.5 % MP.
fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_associativity");
    g.sample_size(10);
    g.bench_function("volrend_4w_vs_8w", |b| {
        b.iter(|| {
            let r4 = run_point(AppId::Volrend, 1, MemoryPressure::MP_87, 4, LatencyConfig::paper_default());
            let r8 = run_point(AppId::Volrend, 1, MemoryPressure::MP_87, 8, LatencyConfig::paper_default());
            assert!(
                r8.traffic.total_bytes() < r4.traffic.total_bytes(),
                "8-way AM must cut conflict traffic"
            );
            black_box((r4.traffic.total_bytes(), r8.traffic.total_bytes()))
        })
    });
    g.finish();
}

/// Figure 5: execution-time bars with doubled DRAM bandwidth.
fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_exec_time");
    g.sample_size(10);
    g.bench_function("radiosity_bars", |b| {
        b.iter(|| {
            let lat = LatencyConfig::paper_double_dram;
            let base = run_point(AppId::Radiosity, 1, MemoryPressure::MP_50, 4, lat());
            let high = run_point(AppId::Radiosity, 1, MemoryPressure::MP_81, 4, lat());
            let clus = run_point(AppId::Radiosity, 4, MemoryPressure::MP_81, 4, lat());
            assert!(clus.exec_time_ns < high.exec_time_ns);
            black_box((base.exec_time_ns, high.exec_time_ns, clus.exec_time_ns))
        })
    });
    g.finish();
}

/// Short measurement windows: each sample is a full (smoke-scale)
/// simulation, so the defaults would take far too long.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(name = figures; config = short(); targets = bench_table1, bench_fig2, bench_fig3, bench_fig4, bench_fig5);
criterion_main!(figures);
