//! One bench per paper table/figure: each measures the simulation work
//! that regenerates (a reduced-scale slice of) that experiment and
//! asserts its headline qualitative property on the measured reports.

use coma_bench::harness::Bench;
use coma_bench::{run_point, BENCH_SCALE, REP_APPS};
use coma_types::{LatencyConfig, MemoryPressure};
use coma_workloads::AppId;
use std::hint::black_box;

fn main() {
    let bench = Bench::from_args();

    // Table 1: workload construction + full trace drain for the catalog.
    bench.case("table1_workload_generation", || {
        use coma_workloads::OpStream;
        let mut total = 0u64;
        for app in [AppId::Fft, AppId::WaterN2] {
            let mut wl = app.build(16, 42, BENCH_SCALE);
            for s in &mut wl.streams {
                while let Some(op) = s.next_op() {
                    total += matches!(op, coma_workloads::Op::Read(_)) as u64;
                }
            }
        }
        black_box(total);
    });

    // Figure 2: RNMr at 6.25 % MP, 1-way vs 4-way clustering.
    for app in REP_APPS {
        bench.case(&format!("fig2_rnm/{}", app.name()), || {
            let r1 = run_point(
                app,
                1,
                MemoryPressure::MP_6,
                4,
                LatencyConfig::paper_default(),
            );
            let r4 = run_point(
                app,
                4,
                MemoryPressure::MP_6,
                4,
                LatencyConfig::paper_default(),
            );
            assert!(
                r4.rnm_rate() < r1.rnm_rate(),
                "{app}: clustering must reduce RNMr"
            );
            black_box((r1.rnm_rate(), r4.rnm_rate()));
        });
    }

    // Figure 3: traffic across the memory-pressure sweep.
    bench.case("fig3_traffic_sweep/fft_1p_vs_4p", || {
        let mut bytes = Vec::new();
        for ppn in [1usize, 4] {
            for mp in [MemoryPressure::MP_6, MemoryPressure::MP_81] {
                let r = run_point(AppId::Fft, ppn, mp, 4, LatencyConfig::paper_default());
                bytes.push(r.traffic.total_bytes());
            }
        }
        // Clustering reduces traffic at 81.25% MP.
        assert!(bytes[3] < bytes[1]);
        black_box(bytes);
    });

    // Figure 4: 8-way associativity recovery at 87.5 % MP.
    bench.case("fig4_associativity/volrend_4w_vs_8w", || {
        let r4 = run_point(
            AppId::Volrend,
            1,
            MemoryPressure::MP_87,
            4,
            LatencyConfig::paper_default(),
        );
        let r8 = run_point(
            AppId::Volrend,
            1,
            MemoryPressure::MP_87,
            8,
            LatencyConfig::paper_default(),
        );
        assert!(
            r8.traffic.total_bytes() < r4.traffic.total_bytes(),
            "8-way AM must cut conflict traffic"
        );
        black_box((r4.traffic.total_bytes(), r8.traffic.total_bytes()));
    });

    // Figure 5: execution-time bars with doubled DRAM bandwidth.
    bench.case("fig5_exec_time/radiosity_bars", || {
        let lat = LatencyConfig::paper_double_dram;
        let base = run_point(AppId::Radiosity, 1, MemoryPressure::MP_50, 4, lat());
        let high = run_point(AppId::Radiosity, 1, MemoryPressure::MP_81, 4, lat());
        let clus = run_point(AppId::Radiosity, 4, MemoryPressure::MP_81, 4, lat());
        assert!(clus.exec_time_ns < high.exec_time_ns);
        black_box((base.exec_time_ns, high.exec_time_ns, clus.exec_time_ns));
    });
}
