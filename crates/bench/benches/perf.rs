//! The tracked simulator-throughput bench.
//!
//! A fixed set of whole-machine simulations (chosen to cover the hit-
//! dominated, replacement-heavy and baseline-engine regimes of the inner
//! loop) is timed and the results are written as machine-readable
//! `BENCH_sim.json` at the repo root, so the performance trajectory of
//! the per-access hot path is tracked from PR to PR. Run with
//! `cargo bench --bench perf` (add `-- --iters 1` for a smoke pass).

use coma_bench::harness::Bench;
use coma_bench::{json, REP_APPS};
use coma_experiments::{run_grid, ExpCtx, RunSpec};
use coma_sim::{run_simulation, MemoryModel, SimParams};
use coma_types::{MemoryPressure, Topology};
use coma_workloads::{AppId, Scale};

/// One fixed simulation workload in the tracked set.
struct Case {
    name: &'static str,
    app: AppId,
    ppn: usize,
    mp: MemoryPressure,
    model: MemoryModel,
    /// Total processors and interconnect shape (16 flat for the
    /// long-tracked cases; the hierarchy case scales both).
    procs: usize,
    topology: Topology,
}

const FLAT16: Topology = Topology {
    n_groups: 1,
    levels: 0,
};

const CASES: [Case; 8] = [
    // Hit-dominated: every AM holds the whole working set (no replacement).
    Case {
        name: "sim/fft_1p_mp6",
        app: AppId::Fft,
        ppn: 1,
        mp: MemoryPressure::MP_6,
        model: MemoryModel::Coma,
        procs: 16,
        topology: FLAT16,
    },
    // The golden-regression configuration.
    Case {
        name: "sim/fft_2p_mp81",
        app: AppId::Fft,
        ppn: 2,
        mp: MemoryPressure::MP_81,
        model: MemoryModel::Coma,
        procs: 16,
        topology: FLAT16,
    },
    // AM-conflict heavy: highest replacement pressure in the study.
    Case {
        name: "sim/radiosity_2p_mp87",
        app: AppId::Radiosity,
        ppn: 2,
        mp: MemoryPressure::MP_87,
        model: MemoryModel::Coma,
        procs: 16,
        topology: FLAT16,
    },
    // Communication-heavy under clustering.
    Case {
        name: "sim/ocean_4p_mp81",
        app: AppId::OceanNon,
        ppn: 4,
        mp: MemoryPressure::MP_81,
        model: MemoryModel::Coma,
        procs: 16,
        topology: FLAT16,
    },
    // Wide replication.
    Case {
        name: "sim/raytrace_1p_mp50",
        app: AppId::Raytrace,
        ppn: 1,
        mp: MemoryPressure::MP_50,
        model: MemoryModel::Coma,
        procs: 16,
        topology: FLAT16,
    },
    // The baseline engine's hot path.
    Case {
        name: "sim/numa_fft_2p_mp81",
        app: AppId::Fft,
        ppn: 2,
        mp: MemoryPressure::MP_81,
        model: MemoryModel::Numa,
        procs: 16,
        topology: FLAT16,
    },
    // The production-traffic path: Zipf sampling, the shard-lock
    // transaction sequence and hot-line replication all on the measured
    // path (the kv golden configuration; stream generation included, so
    // this also tracks generator-layer throughput).
    Case {
        name: "sim/traffic_smoke",
        app: AppId::KvZipf,
        ppn: 2,
        mp: MemoryPressure::MP_81,
        model: MemoryModel::Coma,
        procs: 16,
        topology: FLAT16,
    },
    // The hierarchical fabric's hot path: 64 processors over a 2-level
    // tree (4 group buses, one link level) — level routing, presence
    // sync and cross-group transfers all on the measured path.
    Case {
        name: "sim/hierarchy_smoke",
        app: AppId::Fft,
        ppn: 4,
        mp: MemoryPressure::MP_50,
        model: MemoryModel::Coma,
        procs: 64,
        topology: Topology {
            n_groups: 4,
            levels: 1,
        },
    },
];

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");

/// The sweep-scheduler wall-clock case: a 16-cell matrix (representative
/// apps × two pressures × two clustering degrees) scheduled across the
/// work-stealing pool with the cache off, so the number tracks scheduler
/// + simulation throughput, not disk reuse.
fn sweep_smoke_matrix() -> (ExpCtx, Vec<RunSpec>) {
    let ctx = ExpCtx {
        scale: Scale::SMOKE,
        seed: 42,
        out_dir: std::env::temp_dir().join("coma-bench-sweep"),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        no_cache: true,
    };
    let specs = REP_APPS
        .into_iter()
        .flat_map(|app| {
            [MemoryPressure::MP_50, MemoryPressure::MP_87]
                .into_iter()
                .flat_map(move |mp| [1usize, 4].map(move |ppn| RunSpec::new(app, ppn, mp)))
        })
        .collect();
    (ctx, specs)
}

fn main() {
    let bench = Bench::from_args();
    let mut rows = Vec::new();
    let mut ran = Vec::new();

    for c in &CASES {
        let mut params = SimParams::default();
        params.machine.n_procs = c.procs;
        params.machine.procs_per_node = c.ppn;
        params.machine.memory_pressure = c.mp;
        params.machine.topology = c.topology;
        params.memory_model = c.model;
        // Memory accesses simulated per iteration (deterministic).
        let probe = run_simulation(c.app.build(c.procs, 42, Scale::SMOKE), &params);
        let ops = probe.counts.total_reads() + probe.counts.total_writes();
        let stats = bench.case(c.name, || {
            let r = run_simulation(c.app.build(c.procs, 42, Scale::SMOKE), &params);
            assert_eq!(
                r.counts.total_reads() + r.counts.total_writes(),
                ops,
                "{}: non-deterministic access count",
                c.name
            );
        });
        if let Some(s) = stats {
            ran.push(c.name);
            let ops_per_sec = ops as f64 / (s.mean.as_nanos().max(1) as f64 / 1e9);
            rows.push(format!(
                concat!(
                    "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, ",
                    "\"mean_ns\": {}, \"max_ns\": {}, \"ops\": {}, \"ops_per_sec\": {:.0}}}"
                ),
                json::escape(s.name.as_str()),
                s.iters,
                s.min.as_nanos(),
                s.mean.as_nanos(),
                s.max.as_nanos(),
                ops,
                ops_per_sec
            ));
        }
    }

    {
        let (ctx, specs) = sweep_smoke_matrix();
        let probe = run_grid(&ctx, &specs);
        let ops: u64 = probe
            .iter()
            .map(|r| r.counts.total_reads() + r.counts.total_writes())
            .sum();
        let stats = bench.case("sim/sweep_smoke_matrix", || {
            let reports = run_grid(&ctx, &specs);
            let got: u64 = reports
                .iter()
                .map(|r| r.counts.total_reads() + r.counts.total_writes())
                .sum();
            assert_eq!(got, ops, "sweep_smoke_matrix: non-deterministic sweep");
        });
        if let Some(s) = stats {
            ran.push("sim/sweep_smoke_matrix");
            let ops_per_sec = ops as f64 / (s.mean.as_nanos().max(1) as f64 / 1e9);
            rows.push(format!(
                concat!(
                    "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, ",
                    "\"mean_ns\": {}, \"max_ns\": {}, \"ops\": {}, \"ops_per_sec\": {:.0}}}"
                ),
                json::escape(s.name.as_str()),
                s.iters,
                s.min.as_nanos(),
                s.mean.as_nanos(),
                s.max.as_nanos(),
                ops,
                ops_per_sec
            ));
        }
    }

    if rows.is_empty() {
        println!("no cases matched the filter; {OUT_PATH} not written");
        return;
    }
    let doc = format!(
        "{{\n  \"schema\": \"coma-bench-sim/1\",\n  \"scale\": \"smoke\",\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    json::validate(&doc).expect("emitted BENCH_sim.json is well-formed JSON");
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_sim.json");
    // Round-trip through the validator from disk, so the CI smoke step
    // (`--iters 1`) proves both emission and parseability.
    let back = std::fs::read_to_string(OUT_PATH).expect("read back BENCH_sim.json");
    json::validate(&back).expect("BENCH_sim.json on disk parses");
    for name in ran {
        assert!(back.contains(name), "case {name} missing from output");
    }
    println!("wrote {OUT_PATH}");
}
