//! Microbenchmarks of the substrates: raw protocol-engine throughput,
//! cache-array operations, resource timing, and workload generation.
//! These locate regressions below the whole-simulation level.

use coma_bench::harness::Bench;
use coma_cache::{AcceptPolicy, AttractionMemory, VictimPolicy};
use coma_protocol::CoherenceEngine;
use coma_timing::Resource;
use coma_types::{LineNum, MachineConfig, MemoryPressure, ProcId, Rng64};
use std::hint::black_box;

fn main() {
    let bench = Bench::from_args();

    // Random read/write storm straight at the coherence engine.
    for ppn in [1usize, 4] {
        bench.case(&format!("substrate_engine/storm_ppn{ppn}"), || {
            let cfg = MachineConfig::paper(ppn, MemoryPressure::MP_81);
            let geom = cfg.geometry(1 << 20).unwrap();
            let mut e = CoherenceEngine::new(
                geom,
                VictimPolicy::SharedFirst,
                AcceptPolicy::InvalidThenShared,
                true,
            );
            let mut rng = Rng64::new(7);
            for _ in 0..10_000 {
                let p = ProcId(rng.below(16) as u16);
                let l = LineNum(rng.below(8192));
                if rng.chance(0.3) {
                    black_box(e.write(p, l));
                } else {
                    black_box(e.read(p, l));
                }
            }
        });
    }

    // Attraction-memory lookup/insert/victim churn.
    bench.case("substrate_am_churn", || {
        let mut am = AttractionMemory::new(512, 4, VictimPolicy::SharedFirst);
        let mut rng = Rng64::new(3);
        for _ in 0..20_000 {
            let l = LineNum(rng.below(4096));
            if am.touch(l).is_valid() {
                continue;
            }
            match am.make_room(l) {
                coma_cache::Victim::FreeSlot => {}
                coma_cache::Victim::DropShared(v) | coma_cache::Victim::Inject(v, _) => {
                    am.remove(v);
                }
            }
            am.insert(
                l,
                if rng.chance(0.5) {
                    coma_cache::AmState::Shared
                } else {
                    coma_cache::AmState::Exclusive
                },
            );
        }
        black_box(am.len());
    });

    // FIFO resource server under load.
    bench.case("substrate_resource_serve", || {
        let mut r = Resource::new();
        let mut t = 0u64;
        for i in 0..100_000u64 {
            t = r.serve(i * 3, 50, 100);
        }
        black_box(t);
    });

    // Workload generation speed (ops per second of trace production).
    bench.case("substrate_tracegen_fft", || {
        use coma_workloads::{AppId, OpStream, Scale};
        let mut wl = AppId::Fft.build(16, 42, Scale::SMOKE);
        let mut n = 0u64;
        while let Some(op) = wl.streams[0].next_op() {
            n += black_box(matches!(op, coma_workloads::Op::Compute(_))) as u64;
        }
        black_box(n);
    });
}
