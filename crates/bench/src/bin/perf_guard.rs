//! Performance-regression guard over `BENCH_sim.json`.
//!
//! Compares a freshly measured bench file against the committed baseline
//! and fails (exit 1) if any tracked case's `min_ns` regressed by more
//! than the tolerance. Minima are compared — not means — because the
//! minimum of several iterations is the least noise-contaminated
//! estimate of a deterministic simulation's true cost.
//!
//! ```text
//! perf_guard <baseline.json> <fresh.json> [--tolerance-pct 10]
//! ```
//!
//! Cases present in the baseline but missing from the fresh file are
//! errors (a silently dropped case would un-track a regression); new
//! cases in the fresh file are reported but allowed, so adding a bench
//! case does not require a lockstep baseline update.

use coma_bench::json::{parse, Value};
use std::process::ExitCode;

struct Case {
    name: String,
    min_ns: u64,
}

fn load_cases(path: &str) -> Result<Vec<Case>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read ({e})"))?;
    let doc = parse(&text).map_err(|off| format!("{path}: invalid JSON at byte {off}"))?;
    let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != "coma-bench-sim/1" {
        return Err(format!("{path}: unexpected schema {schema:?}"));
    }
    let Some(Value::Arr(cases)) = doc.get("cases") else {
        return Err(format!("{path}: missing \"cases\" array"));
    };
    cases
        .iter()
        .map(|c| {
            let name = c
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{path}: case without a name"))?;
            let min_ns = c
                .get("min_ns")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{path}: case {name} has no integer min_ns"))?;
            Ok(Case {
                name: name.to_string(),
                min_ns,
            })
        })
        .collect()
}

fn run(baseline_path: &str, fresh_path: &str, tol_pct: f64) -> Result<(), String> {
    let baseline = load_cases(baseline_path)?;
    let fresh = load_cases(fresh_path)?;
    let fresh_of = |name: &str| fresh.iter().find(|c| c.name == name);

    let mut failures = Vec::new();
    println!("perf guard: tolerance {tol_pct}% over {baseline_path}");
    for b in &baseline {
        let Some(f) = fresh_of(&b.name) else {
            failures.push(format!("{}: missing from {fresh_path}", b.name));
            continue;
        };
        let ratio = f.min_ns as f64 / b.min_ns as f64;
        let delta_pct = (ratio - 1.0) * 100.0;
        let verdict = if delta_pct > tol_pct {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:30} base {:>12} ns  fresh {:>12} ns  {:+6.1}%  {}",
            b.name, b.min_ns, f.min_ns, delta_pct, verdict
        );
        if delta_pct > tol_pct {
            failures.push(format!(
                "{}: min_ns {} -> {} ({delta_pct:+.1}%, tolerance {tol_pct}%)",
                b.name, b.min_ns, f.min_ns
            ));
        }
    }
    for f in &fresh {
        if !baseline.iter().any(|b| b.name == f.name) {
            println!("  {:30} new case (not in baseline, allowed)", f.name);
        }
    }
    if failures.is_empty() {
        println!(
            "perf guard: all {} tracked cases within tolerance",
            baseline.len()
        );
        Ok(())
    } else {
        Err(format!(
            "perf guard: {} regression(s):\n  {}",
            failures.len(),
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tol_pct = 10.0;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance-pct" {
            let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                eprintln!("--tolerance-pct needs a numeric argument");
                return ExitCode::FAILURE;
            };
            tol_pct = v;
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline, fresh] = paths.as_slice() else {
        eprintln!("usage: perf_guard <baseline.json> <fresh.json> [--tolerance-pct 10]");
        return ExitCode::FAILURE;
    };
    match run(baseline, fresh, tol_pct) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
