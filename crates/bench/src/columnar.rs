//! The sweep result store: a fixed-width, mmap-able columnar file format.
//!
//! One file holds the numeric results of one sweep — a matrix of
//! simulation cells — as fixed-width column buffers plus per-column
//! validity masks, modeled on the Arrow-style cluster-shared-memory
//! layout: every column is a contiguous, 8-byte-aligned run of
//! little-endian 64-bit values at a fixed offset, so a reader can map (or
//! read) the file and view any column zero-copy, without parsing.
//!
//! # Byte-level layout (`COMACOL1`, version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "COMACOL1"
//! 8       4     format version (u32 LE, = 1)
//! 12      4     n_cols (u32 LE)
//! 16      8     n_rows (u64 LE)
//! 24      56·k  column directory, k = n_cols entries of:
//!                 0..32   column name, UTF-8, zero-padded
//!                 32..36  column type (u32 LE): 0 = u64, 1 = f64 (bit pattern)
//!                 36..40  reserved (zero)
//!                 40..48  data offset (u64 LE, absolute, 8-aligned)
//!                 48..56  mask offset (u64 LE, absolute)
//! ...           per column: data = n_rows × 8 bytes, then the validity
//!               mask = ceil(n_rows / 8) bytes (bit r of byte r/8 set ⇔
//!               row r is valid), padded to the next 8-byte boundary.
//! ```
//!
//! All numeric values are stored as `u64` words; `f64` columns hold the
//! value's IEEE-754 bit pattern, so round-trips are exact. A null (masked
//! out) row's data word is written as zero but carries no meaning.

use std::io::Write as _;
use std::path::Path;

/// File magic, also the format version marker.
pub const MAGIC: [u8; 8] = *b"COMACOL1";
/// Format version written to (and required in) the header.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed width of a column name in the directory.
pub const NAME_BYTES: usize = 32;
/// Size of one column-directory entry.
pub const DIR_ENTRY_BYTES: usize = NAME_BYTES + 24;
const HEADER_BYTES: usize = 24;

/// The type of a column's 64-bit words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColType {
    U64,
    F64,
}

impl ColType {
    fn code(self) -> u32 {
        match self {
            ColType::U64 => 0,
            ColType::F64 => 1,
        }
    }

    fn from_code(c: u32) -> Option<ColType> {
        match c {
            0 => Some(ColType::U64),
            1 => Some(ColType::F64),
            _ => None,
        }
    }
}

struct Col {
    name: String,
    ty: ColType,
    words: Vec<u64>,
    mask: Vec<u8>,
}

fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

fn mask_bytes(n_rows: usize) -> usize {
    n_rows.div_ceil(8)
}

/// Builds a columnar file in memory, column by column.
pub struct ColBuilder {
    n_rows: usize,
    cols: Vec<Col>,
}

impl ColBuilder {
    pub fn new(n_rows: usize) -> Self {
        ColBuilder {
            n_rows,
            cols: Vec::new(),
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn push(&mut self, name: &str, ty: ColType, vals: Vec<Option<u64>>) {
        assert!(
            !name.is_empty() && name.len() <= NAME_BYTES,
            "column name '{name}' must be 1..={NAME_BYTES} bytes"
        );
        assert!(
            self.cols.iter().all(|c| c.name != name),
            "duplicate column '{name}'"
        );
        assert_eq!(
            vals.len(),
            self.n_rows,
            "column '{name}' has {} values for {} rows",
            vals.len(),
            self.n_rows
        );
        let mut words = Vec::with_capacity(self.n_rows);
        let mut mask = vec![0u8; mask_bytes(self.n_rows)];
        for (r, v) in vals.into_iter().enumerate() {
            match v {
                Some(w) => {
                    words.push(w);
                    mask[r / 8] |= 1 << (r % 8);
                }
                None => words.push(0),
            }
        }
        self.cols.push(Col {
            name: name.to_string(),
            ty,
            words,
            mask,
        });
    }

    /// Append a `u64` column; `None` marks a null (invalid) row.
    pub fn col_u64(&mut self, name: &str, vals: Vec<Option<u64>>) -> &mut Self {
        self.push(name, ColType::U64, vals);
        self
    }

    /// Append an `f64` column (stored as bit patterns, exact round-trip).
    pub fn col_f64(&mut self, name: &str, vals: Vec<Option<f64>>) -> &mut Self {
        self.push(
            name,
            ColType::F64,
            vals.into_iter().map(|v| v.map(f64::to_bits)).collect(),
        );
        self
    }

    /// Serialize to the flat file format described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let dir_end = HEADER_BYTES + self.cols.len() * DIR_ENTRY_BYTES;
        let mut offsets = Vec::with_capacity(self.cols.len());
        let mut at = align8(dir_end);
        for _ in &self.cols {
            let data_off = at;
            let mask_off = data_off + self.n_rows * 8;
            at = align8(mask_off + mask_bytes(self.n_rows));
            offsets.push((data_off as u64, mask_off as u64));
        }

        let mut buf = Vec::with_capacity(at);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.cols.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.n_rows as u64).to_le_bytes());
        for (col, (data_off, mask_off)) in self.cols.iter().zip(&offsets) {
            let mut name = [0u8; NAME_BYTES];
            name[..col.name.len()].copy_from_slice(col.name.as_bytes());
            buf.extend_from_slice(&name);
            buf.extend_from_slice(&col.ty.code().to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&data_off.to_le_bytes());
            buf.extend_from_slice(&mask_off.to_le_bytes());
        }
        for col in &self.cols {
            buf.resize(align8(buf.len()), 0);
            for w in &col.words {
                buf.extend_from_slice(&w.to_le_bytes());
            }
            buf.extend_from_slice(&col.mask);
        }
        buf.resize(align8(buf.len()), 0);
        buf
    }

    /// Write the file atomically (temp file + rename).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("cols.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    }
}

struct DirEntry {
    name: String,
    ty: ColType,
    data_off: usize,
    mask_off: usize,
}

/// A parsed (and validated) columnar file; all accessors are zero-copy
/// views into the single backing buffer.
pub struct ColFile {
    buf: Vec<u8>,
    dir: Vec<DirEntry>,
    n_rows: usize,
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

impl ColFile {
    /// Validate and index a columnar file image. Every offset is bounds-
    /// checked here so the accessors can slice without further checks.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, String> {
        if buf.len() < HEADER_BYTES {
            return Err(format!("file too short ({} bytes) for a header", buf.len()));
        }
        if buf[..8] != MAGIC {
            return Err("bad magic: not a COMACOL1 file".into());
        }
        let version = read_u32(&buf, 8);
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported format version {version} (expected {FORMAT_VERSION})"
            ));
        }
        let n_cols = read_u32(&buf, 12) as usize;
        let n_rows64 = read_u64(&buf, 16);
        let n_rows = usize::try_from(n_rows64).map_err(|_| "row count overflow".to_string())?;
        let dir_end = HEADER_BYTES
            .checked_add(
                n_cols
                    .checked_mul(DIR_ENTRY_BYTES)
                    .ok_or("directory overflow")?,
            )
            .ok_or("directory overflow")?;
        if dir_end > buf.len() {
            return Err(format!(
                "directory of {n_cols} columns exceeds the file ({} bytes)",
                buf.len()
            ));
        }
        let mut dir = Vec::with_capacity(n_cols);
        for k in 0..n_cols {
            let at = HEADER_BYTES + k * DIR_ENTRY_BYTES;
            let raw_name = &buf[at..at + NAME_BYTES];
            let end = raw_name.iter().position(|&b| b == 0).unwrap_or(NAME_BYTES);
            if raw_name[end..].iter().any(|&b| b != 0) {
                return Err(format!("column {k}: name padding is not zero"));
            }
            let name = std::str::from_utf8(&raw_name[..end])
                .map_err(|_| format!("column {k}: name is not UTF-8"))?
                .to_string();
            if name.is_empty() {
                return Err(format!("column {k}: empty name"));
            }
            if dir.iter().any(|e: &DirEntry| e.name == name) {
                return Err(format!("duplicate column '{name}'"));
            }
            let ty = ColType::from_code(read_u32(&buf, at + NAME_BYTES))
                .ok_or_else(|| format!("column '{name}': unknown type code"))?;
            let data_off = read_u64(&buf, at + NAME_BYTES + 8);
            let mask_off = read_u64(&buf, at + NAME_BYTES + 16);
            let data_end = data_off.checked_add(n_rows64.checked_mul(8).ok_or("size overflow")?);
            let mask_end = mask_off.checked_add(mask_bytes(n_rows) as u64);
            match (data_end, mask_end) {
                (Some(d), Some(m)) if d <= buf.len() as u64 && m <= buf.len() as u64 => {}
                _ => return Err(format!("column '{name}': offsets exceed the file")),
            }
            if !data_off.is_multiple_of(8) {
                return Err(format!("column '{name}': data is not 8-aligned"));
            }
            dir.push(DirEntry {
                name,
                ty,
                data_off: data_off as usize,
                mask_off: mask_off as usize,
            });
        }
        Ok(ColFile { buf, dir, n_rows })
    }

    /// Read and validate a columnar file from disk.
    pub fn open(path: &Path) -> Result<Self, String> {
        let buf = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_bytes(buf)
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.dir.len()
    }

    /// The complete serialized file image (zero-copy) — what `open` read
    /// or `from_bytes` was given; byte-comparable across runs.
    pub fn raw_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Column names, in file order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.dir.iter().map(|e| e.name.as_str())
    }

    fn entry(&self, col: &str) -> &DirEntry {
        self.dir
            .iter()
            .find(|e| e.name == col)
            .unwrap_or_else(|| panic!("no column '{col}' in the store"))
    }

    /// The type of a column, if present.
    pub fn col_type(&self, col: &str) -> Option<ColType> {
        self.dir.iter().find(|e| e.name == col).map(|e| e.ty)
    }

    /// The raw little-endian data words of a column (zero-copy).
    pub fn raw_data(&self, col: &str) -> &[u8] {
        let e = self.entry(col);
        &self.buf[e.data_off..e.data_off + self.n_rows * 8]
    }

    /// The raw validity mask of a column (zero-copy).
    pub fn raw_mask(&self, col: &str) -> &[u8] {
        let e = self.entry(col);
        &self.buf[e.mask_off..e.mask_off + mask_bytes(self.n_rows)]
    }

    /// Is `row` valid (non-null) in `col`? Panics on an unknown column or
    /// an out-of-range row — both are caller bugs, not data conditions.
    pub fn is_valid(&self, col: &str, row: usize) -> bool {
        assert!(row < self.n_rows, "row {row} out of {} rows", self.n_rows);
        let e = self.entry(col);
        self.buf[e.mask_off + row / 8] & (1 << (row % 8)) != 0
    }

    fn word(&self, e: &DirEntry, row: usize) -> u64 {
        read_u64(&self.buf, e.data_off + row * 8)
    }

    /// A `u64` cell; `None` means the row is null in this column.
    pub fn get_u64(&self, col: &str, row: usize) -> Option<u64> {
        assert!(row < self.n_rows, "row {row} out of {} rows", self.n_rows);
        let e = self.entry(col);
        assert_eq!(e.ty, ColType::U64, "column '{col}' is not u64");
        self.is_valid(col, row).then(|| self.word(e, row))
    }

    /// An `f64` cell; `None` means the row is null in this column.
    pub fn get_f64(&self, col: &str, row: usize) -> Option<f64> {
        assert!(row < self.n_rows, "row {row} out of {} rows", self.n_rows);
        let e = self.entry(col);
        assert_eq!(e.ty, ColType::F64, "column '{col}' is not f64");
        self.is_valid(col, row)
            .then(|| f64::from_bits(self.word(e, row)))
    }

    /// Every value of a `u64` column, nulls as `None`.
    pub fn u64_col(&self, col: &str) -> Vec<Option<u64>> {
        (0..self.n_rows).map(|r| self.get_u64(col, r)).collect()
    }

    /// Every value of an `f64` column, nulls as `None`.
    pub fn f64_col(&self, col: &str) -> Vec<Option<f64>> {
        (0..self.n_rows).map(|r| self.get_f64(col, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
        assert_eq!(mask_bytes(0), 0);
        assert_eq!(mask_bytes(1), 1);
        assert_eq!(mask_bytes(8), 1);
        assert_eq!(mask_bytes(9), 2);
    }

    #[test]
    fn in_memory_round_trip() {
        let mut b = ColBuilder::new(3);
        b.col_u64("exec", vec![Some(10), None, Some(30)]);
        b.col_f64("rate", vec![Some(0.5), Some(f64::MIN_POSITIVE), None]);
        let f = ColFile::from_bytes(b.to_bytes()).unwrap();
        assert_eq!(f.n_rows(), 3);
        assert_eq!(f.n_cols(), 2);
        assert_eq!(f.u64_col("exec"), vec![Some(10), None, Some(30)]);
        assert_eq!(
            f.f64_col("rate"),
            vec![Some(0.5), Some(f64::MIN_POSITIVE), None]
        );
        assert!(f.is_valid("exec", 0));
        assert!(!f.is_valid("exec", 1));
    }

    #[test]
    fn zero_copy_slices_have_fixed_width() {
        let mut b = ColBuilder::new(10);
        b.col_u64("c", (0..10).map(|i| Some(i as u64)).collect());
        let f = ColFile::from_bytes(b.to_bytes()).unwrap();
        assert_eq!(f.raw_data("c").len(), 80);
        assert_eq!(f.raw_mask("c").len(), 2);
        // Data is little-endian words at fixed offsets.
        assert_eq!(f.raw_data("c")[8..16], 1u64.to_le_bytes());
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let mut b = ColBuilder::new(1);
        b.col_u64("c", vec![Some(1)]);
        let good = b.to_bytes();

        assert!(ColFile::from_bytes(Vec::new()).is_err());
        let mut bad = good.clone();
        bad[0] ^= 0xff; // magic
        assert!(ColFile::from_bytes(bad).is_err());
        let mut bad = good.clone();
        bad[8] = 99; // version
        assert!(ColFile::from_bytes(bad).is_err());
        let mut bad = good.clone();
        bad[12] = 200; // n_cols beyond the file
        assert!(ColFile::from_bytes(bad).is_err());
        let bad = good[..good.len() - 8].to_vec(); // truncated data region
        assert!(ColFile::from_bytes(bad).is_err());
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let f = ColFile::from_bytes(ColBuilder::new(0).to_bytes()).unwrap();
        f.raw_data("nope");
    }

    #[test]
    #[should_panic(expected = "is not u64")]
    fn type_mismatch_panics() {
        let mut b = ColBuilder::new(1);
        b.col_f64("r", vec![Some(1.0)]);
        let f = ColFile::from_bytes(b.to_bytes()).unwrap();
        f.get_u64("r", 0);
    }
}
