//! A minimal, dependency-free bench harness.
//!
//! The workspace must build and test with no network access, so the
//! benches cannot pull in an external harness crate. This module provides
//! the small slice we actually use: named cases, a warm-up pass, a fixed
//! number of measured iterations, and min/mean/max wall-clock reporting.
//!
//! # Usage
//!
//! ```text
//! cargo bench --bench figures                  # all cases, 10 iterations
//! cargo bench --bench figures -- fig2          # cases containing "fig2"
//! cargo bench --bench perf -- --iters 1        # one measured iteration
//! cargo bench --bench perf -- --iters=3 fft    # both, in either order
//! ```
//!
//! The first bare (non `--flag`) argument is a substring filter on case
//! names. `--iters N` (or `--iters=N`) overrides the measured iteration
//! count. Everything else cargo injects (`--bench`, `--exact`, …) is
//! ignored, so the harness stays robust against the positional artifacts
//! cargo's bench runner passes through.

use std::time::{Duration, Instant};

/// Timing summary of one executed case, as reported by [`Bench::case`].
#[derive(Clone, Debug)]
pub struct CaseStats {
    pub name: String,
    /// Measured iterations (excludes the warm-up pass).
    pub iters: usize,
    pub min: Duration,
    pub mean: Duration,
    pub max: Duration,
}

/// One bench executable's worth of cases.
pub struct Bench {
    filter: Option<String>,
    iters: usize,
}

impl Bench {
    /// Build from the command line (see the module docs for the grammar).
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut filter = None;
        let mut iters = 10usize;
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            if let Some(v) = a.strip_prefix("--iters=") {
                iters = v.parse().unwrap_or(iters);
            } else if a == "--iters" {
                if let Some(v) = args.peek().and_then(|v| v.parse().ok()) {
                    iters = v;
                    args.next();
                }
            } else if a.starts_with('-') {
                // Cargo artifacts (`--bench`, `--exact`, …): ignore.
            } else if filter.is_none() {
                filter = Some(a);
            }
        }
        Bench {
            filter,
            iters: iters.max(1),
        }
    }

    /// Number of measured iterations per case (default 10).
    pub fn iters(mut self, n: usize) -> Self {
        self.iters = n.max(1);
        self
    }

    /// Run one case: a warm-up iteration, then `iters` timed iterations.
    /// Returns the timing summary, or `None` if the filter skipped it.
    pub fn case<F: FnMut()>(&self, name: &str, mut f: F) -> Option<CaseStats> {
        if let Some(pat) = &self.filter {
            if !name.contains(pat.as_str()) {
                return None;
            }
        }
        f(); // warm-up (also surfaces assertion failures before timing)
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed());
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<40} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  ({} iters)",
            min,
            mean,
            max,
            samples.len()
        );
        Some(CaseStats {
            name: name.to_string(),
            iters: samples.len(),
            min,
            mean,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args<'a>(xs: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        xs.iter().map(|s| s.to_string())
    }

    #[test]
    fn case_runs_warmup_plus_iters() {
        let b = Bench {
            filter: None,
            iters: 3,
        };
        let mut n = 0u32;
        let stats = b.case("counting", || n += 1).unwrap();
        assert_eq!(n, 4);
        assert_eq!(stats.iters, 3);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }

    #[test]
    fn filter_skips_non_matching() {
        let b = Bench {
            filter: Some("fig2".into()),
            iters: 2,
        };
        let mut n = 0u32;
        assert!(b.case("table1", || n += 1).is_none());
        assert_eq!(n, 0);
        assert!(b.case("fig2_rnm", || n += 1).is_some());
        assert_eq!(n, 3);
    }

    #[test]
    fn parse_iters_flag_separate_and_joined() {
        let b = Bench::parse(args(&["--iters", "3"]));
        assert_eq!(b.iters, 3);
        assert!(b.filter.is_none());
        let b = Bench::parse(args(&["--iters=7", "fft"]));
        assert_eq!(b.iters, 7);
        assert_eq!(b.filter.as_deref(), Some("fft"));
    }

    #[test]
    fn parse_skips_cargo_artifacts() {
        let b = Bench::parse(args(&["--bench", "--exact", "fig2", "--iters", "2"]));
        assert_eq!(b.filter.as_deref(), Some("fig2"));
        assert_eq!(b.iters, 2);
    }

    #[test]
    fn parse_bad_iters_falls_back_to_default() {
        let b = Bench::parse(args(&["--iters", "zap"]));
        assert_eq!(b.iters, 10);
        // The unparsable value is consumed as a filter, not left dangling.
        assert_eq!(b.filter.as_deref(), Some("zap"));
        let b = Bench::parse(args(&["--iters=0"]));
        assert_eq!(b.iters, 1, "iteration count is clamped to at least 1");
    }
}
