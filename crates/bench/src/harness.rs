//! A minimal, dependency-free bench harness.
//!
//! The workspace must build and test with no network access, so the
//! benches cannot pull in an external harness crate. This module provides
//! the small slice we actually use: named cases, a warm-up pass, a fixed
//! number of measured iterations, and min/mean/max wall-clock reporting.
//! Invoke via `cargo bench` (optionally with a substring filter argument).

use std::time::{Duration, Instant};

/// One bench executable's worth of cases.
pub struct Bench {
    filter: Option<String>,
    iters: usize,
}

impl Bench {
    /// Build from the command line: the first argument that is not a
    /// `--flag` (cargo passes `--bench`) filters cases by substring.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench { filter, iters: 10 }
    }

    /// Number of measured iterations per case (default 10).
    pub fn iters(mut self, n: usize) -> Self {
        self.iters = n.max(1);
        self
    }

    /// Run one case: a warm-up iteration, then `iters` timed iterations.
    pub fn case<F: FnMut()>(&self, name: &str, mut f: F) {
        if let Some(pat) = &self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        f(); // warm-up (also surfaces assertion failures before timing)
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed());
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<40} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  ({} iters)",
            min,
            mean,
            max,
            samples.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_runs_warmup_plus_iters() {
        let b = Bench {
            filter: None,
            iters: 3,
        };
        let mut n = 0u32;
        b.case("counting", || n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let b = Bench {
            filter: Some("fig2".into()),
            iters: 2,
        };
        let mut n = 0u32;
        b.case("table1", || n += 1);
        assert_eq!(n, 0);
        b.case("fig2_rnm", || n += 1);
        assert_eq!(n, 3);
    }
}
