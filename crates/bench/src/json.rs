//! A minimal JSON well-formedness checker.
//!
//! The perf bench emits machine-readable `BENCH_sim.json`; CI must verify
//! that the file parses without pulling a serde dependency into the
//! offline workspace. This is a strict recursive-descent validator for
//! RFC 8259 JSON — it accepts or rejects, it does not build a tree.

/// Validate that `s` is one complete JSON value. Returns the byte offset
/// of the first error on failure.
pub fn validate(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i == b.len() {
        Ok(())
    } else {
        Err(p.i)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), usize> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), usize> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn value(&mut self) -> Result<(), usize> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.i),
        }
    }

    fn object(&mut self) -> Result<(), usize> {
        self.eat(b'{')?;
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.i),
            }
        }
    }

    fn array(&mut self) -> Result<(), usize> {
        self.eat(b'[')?;
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.i),
            }
        }
    }

    fn string(&mut self) -> Result<(), usize> {
        self.eat(b'"')?;
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.b.get(self.i),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err(self.i);
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(self.i),
                    }
                }
                Some(c) if *c >= 0x20 => self.i += 1,
                _ => return Err(self.i),
            }
        }
    }

    fn digits(&mut self) -> Result<(), usize> {
        let start = self.i;
        while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            Err(self.i)
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<(), usize> {
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        match self.b.get(self.i) {
            Some(b'0') => self.i += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.i),
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#""a \"quoted\" string\n""#,
            r#"{"cases": [{"name": "fft", "min_ns": 12, "ratio": 0.5}], "n": 2}"#,
            " [1, 2, [3, {\"k\": true}], false] ",
        ] {
            assert_eq!(validate(ok), Ok(()), "rejected: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"k\": }",
            "{\"k\" 1}",
            "01",
            "1.e5",
            "\"unterminated",
            "nulll",
            "[1] trailing",
            "{'single': 1}",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let s = escape("a \"b\"\n\tc\\");
        assert_eq!(validate(&format!("\"{s}\"")), Ok(()));
    }
}
