//! A minimal JSON parser, serializer and well-formedness checker.
//!
//! The perf bench emits machine-readable `BENCH_sim.json`; CI must verify
//! that the file parses — and tooling must be able to read it back —
//! without pulling a serde dependency into the offline workspace. This is
//! a strict recursive-descent parser for RFC 8259 JSON plus a matching
//! serializer; [`validate`] is the parse with the tree thrown away.
//!
//! [`Value`] keeps object member order and the exact source text of
//! numbers, so `parse(v.to_json()) == v` holds for every value and
//! serialization is a fixpoint after one parse.

/// Validate that `s` is one complete JSON value. Returns the byte offset
/// of the first error on failure.
pub fn validate(s: &str) -> Result<(), usize> {
    parse(s).map(|_| ())
}

/// Parse one complete JSON document into a [`Value`]. Returns the byte
/// offset of the first error on failure.
pub fn parse(s: &str) -> Result<Value, usize> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i == b.len() {
        Ok(v)
    } else {
        Err(p.i)
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// The number's source text, verbatim. Nanosecond counters do not fit
    /// an `f64` losslessly, so the text is the canonical representation;
    /// use [`Value::as_f64`] / [`Value::as_u64`] to interpret it.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    /// Members in document order — order is part of round-trip fidelity.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An integer number value.
    pub fn int(n: u64) -> Value {
        Value::Num(n.to_string())
    }

    /// A floating-point number value. `x` must be finite (JSON has no
    /// NaN/infinity).
    pub fn float(x: f64) -> Value {
        assert!(x.is_finite(), "JSON cannot represent {x}");
        Value::Num(format!("{x}"))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object member lookup (first match, linear scan).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize compactly. The output always satisfies [`validate`], and
    /// parsing it back yields a value equal to `self`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(t) => out.push_str(t),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), usize> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), usize> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn value(&mut self) -> Result<Value, usize> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.lit("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.lit("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.lit("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.i),
        }
    }

    fn object(&mut self) -> Result<Value, usize> {
        self.eat(b'{')?;
        self.ws();
        let mut members = Vec::new();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            members.push((key, self.value()?));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.i),
            }
        }
    }

    fn array(&mut self) -> Result<Value, usize> {
        self.eat(b'[')?;
        self.ws();
        let mut xs = Vec::new();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(xs));
        }
        loop {
            self.ws();
            xs.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(xs));
                }
                _ => return Err(self.i),
            }
        }
    }

    /// Four hex digits of a `\u` escape.
    fn hex4(&mut self) -> Result<u32, usize> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.b.get(self.i) {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.i),
            };
            code = code * 16 + d;
            self.i += 1;
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, usize> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc_at = self.i;
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => {
                            out.push('"');
                            self.i += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.i += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.i += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.i += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.i += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.i += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.i += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: must pair with \uDC00–DFFF.
                                if self.lit("\\u").is_err() {
                                    return Err(esc_at);
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(esc_at);
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(ch).ok_or(esc_at)?);
                        }
                        _ => return Err(self.i),
                    }
                }
                Some(c) if *c >= 0x20 => {
                    // Step over one whole UTF-8 scalar (input is &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&self.b[self.i..self.i + len])
                        .expect("input is a &str");
                    out.push_str(s);
                    self.i += len;
                }
                _ => return Err(self.i),
            }
        }
    }

    fn digits(&mut self) -> Result<(), usize> {
        let start = self.i;
        while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            Err(self.i)
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<Value, usize> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        match self.b.get(self.i) {
            Some(b'0') => self.i += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.i),
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        Ok(Value::Num(text.to_string()))
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#""a \"quoted\" string\n""#,
            r#"{"cases": [{"name": "fft", "min_ns": 12, "ratio": 0.5}], "n": 2}"#,
            " [1, 2, [3, {\"k\": true}], false] ",
        ] {
            assert_eq!(validate(ok), Ok(()), "rejected: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"k\": }",
            "{\"k\" 1}",
            "01",
            "1.e5",
            "\"unterminated",
            "nulll",
            "[1] trailing",
            "{'single': 1}",
            r#""lone surrogate \ud800""#,
            r#""bad pair \ud800A""#,
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let s = escape("a \"b\"\n\tc\\");
        assert_eq!(validate(&format!("\"{s}\"")), Ok(()));
    }

    #[test]
    fn parse_builds_the_expected_tree() {
        let v = parse(r#"{"a": [1, -2.5e3, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Arr(vec![
                Value::Num("1".into()),
                Value::Num("-2.5e3".into()),
                Value::Str("x".into()),
            ])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        // Surrogate pair → one astral scalar.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("\u{1F600}".into()));
        // Raw multi-byte UTF-8 passes through unharmed.
        assert_eq!(parse("\"héllo…\"").unwrap(), Value::Str("héllo…".into()));
    }

    #[test]
    fn numbers_keep_source_text_and_precision() {
        // 2^63 + 1 is not representable in f64; the text survives.
        let v = parse("9223372036854775809").unwrap();
        assert_eq!(v, Value::Num("9223372036854775809".into()));
        assert_eq!(v.to_json(), "9223372036854775809");
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Value::int(17).as_u64(), Some(17));
    }

    /// The satellite contract: serialize → validate → parse == original,
    /// on a value shaped like a real `BENCH_sim.json` document.
    #[test]
    fn bench_sim_value_round_trips() {
        let case = |name: &str, min: u64, ops: u64| {
            Value::Obj(vec![
                ("name".into(), Value::Str(name.into())),
                ("iters".into(), Value::int(30)),
                ("min_ns".into(), Value::int(min)),
                ("mean_ns".into(), Value::int(min + 137)),
                ("max_ns".into(), Value::int(min * 2)),
                ("ops".into(), Value::int(ops)),
                ("ops_per_sec".into(), Value::float(ops as f64 * 0.5)),
            ])
        };
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str("coma-bench-sim/1".into())),
            ("scale".into(), Value::Str("smoke".into())),
            (
                "cases".into(),
                Value::Arr(vec![
                    case("sim/fft_2p_mp81", 1_234_567, 307_296),
                    case("sim/numa_fft_2p_mp81", 987_654, 307_296),
                ]),
            ),
        ]);
        let text = doc.to_json();
        assert_eq!(validate(&text), Ok(()), "serializer emitted invalid JSON");
        assert_eq!(parse(&text).unwrap(), doc, "round trip changed the value");
    }

    /// Serialization is a fixpoint: parse → to_json → parse → to_json is
    /// stable, including on awkward strings and number spellings.
    #[test]
    fn serialize_parse_fixpoint() {
        let src =
            r#"{"s": "q\"\\\n\t …", "n": [0, -0.5, 1E+2], "e": {}, "t": [true, false, null]}"#;
        let v1 = parse(src).unwrap();
        let t1 = v1.to_json();
        let v2 = parse(&t1).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v2.to_json(), t1);
    }
}
