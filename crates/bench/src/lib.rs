//! Shared helpers for the benches.
//!
//! Each bench regenerates a reduced-scale version of one paper table or
//! figure (the full-scale regeneration lives in `coma-experiments`; the
//! benches measure how fast the simulator produces each figure's grid and
//! guard against performance regressions). The benches run on the
//! dependency-free [`harness`] so the workspace builds fully offline.

use coma_sim::{run_simulation, SimParams};
use coma_stats::SimReport;
use coma_types::{LatencyConfig, MemoryPressure};
use coma_workloads::{AppId, Scale};

pub mod columnar;
pub mod harness;
pub mod json;

/// Trace scale used by all benches.
pub const BENCH_SCALE: Scale = Scale::SMOKE;

/// Run one simulation point at bench scale.
pub fn run_point(
    app: AppId,
    ppn: usize,
    mp: MemoryPressure,
    assoc: usize,
    lat: LatencyConfig,
) -> SimReport {
    let mut params = SimParams::default();
    params.machine.procs_per_node = ppn;
    params.machine.memory_pressure = mp;
    params.machine.am_assoc = assoc;
    params.latency = lat;
    let wl = app.build(16, 42, BENCH_SCALE);
    run_simulation(wl, &params)
}

/// A small representative application set (one from each behaviour class:
/// all-to-all, neighbour, wide-replication, compute-bound).
pub const REP_APPS: [AppId; 4] = [AppId::Fft, AppId::OceanNon, AppId::Raytrace, AppId::WaterN2];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_point_smoke() {
        let r = run_point(
            AppId::WaterN2,
            4,
            MemoryPressure::MP_50,
            4,
            LatencyConfig::paper_default(),
        );
        assert!(r.exec_time_ns > 0);
    }
}
