//! Columnar-store integration tests: the on-disk round trip (build →
//! write → `ColFile::open`), validity masks across both column types,
//! and the degenerate shapes a sweep can produce (empty matrix, one
//! cell). The byte-level format checks live next to the implementation
//! in `coma_bench::columnar`.

use coma_bench::columnar::{ColBuilder, ColFile, ColType};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coma-columnar-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn file_round_trip_preserves_all_column_types_and_masks() {
    let mut b = ColBuilder::new(5);
    b.col_u64(
        "exec_time_ns",
        vec![Some(1), Some(u64::MAX), None, Some(0), Some(42)],
    );
    b.col_f64(
        "rnm_rate",
        vec![Some(0.0), Some(-0.0), Some(f64::MAX), None, Some(1.0 / 3.0)],
    );
    b.col_u64("pageouts", vec![None; 5]);
    let path = tmp("roundtrip.cols");
    b.write(&path).unwrap();

    let f = ColFile::open(&path).unwrap();
    assert_eq!(f.n_rows(), 5);
    assert_eq!(f.n_cols(), 3);
    assert_eq!(
        f.names().collect::<Vec<_>>(),
        ["exec_time_ns", "rnm_rate", "pageouts"]
    );
    assert_eq!(f.col_type("exec_time_ns"), Some(ColType::U64));
    assert_eq!(f.col_type("rnm_rate"), Some(ColType::F64));
    assert_eq!(f.col_type("missing"), None);

    assert_eq!(
        f.u64_col("exec_time_ns"),
        vec![Some(1), Some(u64::MAX), None, Some(0), Some(42)]
    );
    // f64 values survive as exact bit patterns, including -0.0.
    let rate = f.f64_col("rnm_rate");
    assert_eq!(rate[0], Some(0.0));
    assert_eq!(rate[1].map(f64::to_bits), Some((-0.0f64).to_bits()));
    assert_eq!(rate[2], Some(f64::MAX));
    assert_eq!(rate[3], None);
    assert_eq!(rate[4], Some(1.0 / 3.0));
    // An all-null column: every row invalid, every word readable as raw.
    assert!((0..5).all(|r| !f.is_valid("pageouts", r)));
    assert_eq!(f.raw_data("pageouts"), &[0u8; 40]);
}

#[test]
fn failed_cells_read_back_as_null_without_poisoning_neighbors() {
    let mut b = ColBuilder::new(3);
    b.col_u64("total_bytes", vec![Some(100), None, Some(300)]);
    let path = tmp("nulls.cols");
    b.write(&path).unwrap();
    let f = ColFile::open(&path).unwrap();
    assert_eq!(f.get_u64("total_bytes", 0), Some(100));
    assert_eq!(f.get_u64("total_bytes", 1), None);
    assert_eq!(f.get_u64("total_bytes", 2), Some(300));
}

#[test]
fn empty_matrix_round_trips() {
    let mut b = ColBuilder::new(0);
    b.col_u64("exec_time_ns", Vec::new());
    b.col_f64("rnm_rate", Vec::new());
    let path = tmp("empty.cols");
    b.write(&path).unwrap();
    let f = ColFile::open(&path).unwrap();
    assert_eq!(f.n_rows(), 0);
    assert_eq!(f.n_cols(), 2);
    assert_eq!(f.u64_col("exec_time_ns"), Vec::<Option<u64>>::new());
    assert!(f.raw_data("exec_time_ns").is_empty());
    assert!(f.raw_mask("exec_time_ns").is_empty());
}

#[test]
fn single_cell_matrix_round_trips() {
    let mut b = ColBuilder::new(1);
    b.col_u64("exec_time_ns", vec![Some(7)]);
    let path = tmp("one.cols");
    b.write(&path).unwrap();
    let f = ColFile::open(&path).unwrap();
    assert_eq!(f.n_rows(), 1);
    assert_eq!(f.get_u64("exec_time_ns", 0), Some(7));
    assert!(f.is_valid("exec_time_ns", 0));
}

#[test]
fn write_is_atomic_and_rereadable() {
    // Writing twice over the same path must leave a complete, valid file
    // (temp + rename; no partially written state observable).
    let path = tmp("atomic.cols");
    for v in [1u64, 2] {
        let mut b = ColBuilder::new(1);
        b.col_u64("v", vec![Some(v)]);
        b.write(&path).unwrap();
        assert_eq!(ColFile::open(&path).unwrap().get_u64("v", 0), Some(v));
    }
    assert!(
        !path.with_extension("cols.tmp").exists(),
        "temp file must not survive a successful write"
    );
}
