//! The attraction memory: a node's entire memory organized as a huge
//! set-associative cache with COMA states (paper §2, §3.1).
//!
//! Unlike a conventional cache, an AM cannot silently drop everything:
//! `Owner`/`Exclusive` lines are the *responsible* copies and must be
//! relocated ("injected") into another node on replacement, because there
//! is no backing main memory. [`AttractionMemory::make_room`] implements
//! the paper's victim priority (Shared replicas first), and
//! [`AttractionMemory::accept_slot`] implements the receiving side of the
//! accept-based replacement strategy (Invalid slots before Shared slots,
//! so that injections never cascade).

use crate::policy::{AcceptPolicy, VictimPolicy};
use crate::set_assoc::SetAssoc;
use crate::state::AmState;
use coma_types::LineNum;

/// What a full (or non-full) set must sacrifice to admit a new line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Victim {
    /// The set has a free slot; nothing is displaced.
    FreeSlot,
    /// A Shared replica is dropped silently (an Owner survives elsewhere).
    DropShared(LineNum),
    /// A responsible copy is displaced and must be injected elsewhere.
    Inject(LineNum, AmState),
}

/// What a receiving node would sacrifice to accept an injected line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcceptSlot {
    /// A free (Invalid) slot: the preferred receiver.
    Invalid,
    /// A Shared replica that would be overwritten (shrinking replication).
    Shared(LineNum),
}

/// One node's attraction memory.
#[derive(Clone, Debug)]
pub struct AttractionMemory {
    array: SetAssoc<AmState>,
    victim_policy: VictimPolicy,
}

impl AttractionMemory {
    pub fn new(n_sets: u64, assoc: usize, victim_policy: VictimPolicy) -> Self {
        AttractionMemory {
            array: SetAssoc::new(n_sets, assoc),
            victim_policy,
        }
    }

    /// Current state of a line (Invalid if absent). Does not touch LRU.
    pub fn state(&self, line: LineNum) -> AmState {
        self.array.peek(line).unwrap_or(AmState::Invalid)
    }

    /// Pull `line`'s set toward the host L1 (performance hint only).
    #[inline]
    pub fn prefetch(&self, line: LineNum) {
        self.array.prefetch(line);
    }

    /// State of a line, marking it most-recently-used.
    pub fn touch(&mut self, line: LineNum) -> AmState {
        self.array.lookup(line).unwrap_or(AmState::Invalid)
    }

    /// Transition a resident line to a new valid state; no-op if absent.
    pub fn set_state(&mut self, line: LineNum, state: AmState) {
        if state.is_valid() {
            self.array.set_state(line, state);
        } else {
            self.array.remove(line);
        }
    }

    /// Remove a line (invalidation); returns its previous state.
    pub fn remove(&mut self, line: LineNum) -> AmState {
        self.array.remove(line).unwrap_or(AmState::Invalid)
    }

    /// Decide what must be displaced so that `line` can be inserted into
    /// its set. Does **not** perform the insertion or the displacement.
    /// One scan of the set — which visits in recency order, so the *last*
    /// visit of a kind is its LRU — collects the overall and Shared-only
    /// LRU entries that both victim policies choose between.
    pub fn make_room(&self, line: LineNum) -> Victim {
        if self.array.has_free_slot(line) {
            return Victim::FreeSlot;
        }
        let mut lru_any: Option<(LineNum, AmState)> = None;
        let mut lru_shared: Option<LineNum> = None;
        self.array.scan_set(line, |l, s| {
            lru_any = Some((l, s));
            if s == AmState::Shared {
                lru_shared = Some(l);
            }
        });
        let (lru_line, lru_state) = lru_any.expect("full set is non-empty");
        match self.victim_policy {
            VictimPolicy::SharedFirst => match lru_shared {
                Some(l) => Victim::DropShared(l),
                None => Victim::Inject(lru_line, lru_state),
            },
            VictimPolicy::StrictLru => {
                if lru_state == AmState::Shared {
                    Victim::DropShared(lru_line)
                } else {
                    Victim::Inject(lru_line, lru_state)
                }
            }
        }
    }

    /// Would this node accept an injection of `line` under `policy`, and
    /// at what cost? `None` means the set is entirely Owner/Exclusive and
    /// acceptance would cascade — so the node refuses (paper: the accept
    /// mechanism avoids avalanching replacements).
    ///
    /// A node that already holds the line cannot be its receiver.
    pub fn accept_slot(&self, line: LineNum, policy: AcceptPolicy) -> Option<AcceptSlot> {
        // One scan answers all three questions: already resident?, set
        // occupancy, and the LRU Shared replica (the last Shared visited,
        // since the scan runs most-recent first) if any.
        let mut resident = false;
        let mut occupied = 0usize;
        let mut lru_shared: Option<LineNum> = None;
        self.array.scan_set(line, |l, s| {
            resident |= l == line;
            occupied += 1;
            if s == AmState::Shared {
                lru_shared = Some(l);
            }
        });
        if resident {
            return None;
        }
        let free = occupied < self.array.assoc();
        let shared = lru_shared.map(AcceptSlot::Shared);
        match policy {
            AcceptPolicy::InvalidThenShared => {
                if free {
                    Some(AcceptSlot::Invalid)
                } else {
                    shared
                }
            }
            AcceptPolicy::SharedThenInvalid => shared.or(if free {
                Some(AcceptSlot::Invalid)
            } else {
                None
            }),
            AcceptPolicy::FirstFit => {
                if free {
                    Some(AcceptSlot::Invalid)
                } else {
                    shared
                }
            }
        }
    }

    /// Insert a line known to be absent, into a set known to have room.
    pub fn insert(&mut self, line: LineNum, state: AmState) {
        debug_assert!(state.is_valid());
        self.array.insert(line, state);
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> u64 {
        self.array.n_sets() * self.array.assoc() as u64
    }

    /// Count of resident lines per state `(shared, owner, exclusive)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut s = 0;
        let mut o = 0;
        let mut e = 0;
        for (_, state) in self.array.iter() {
            match state {
                AmState::Shared => s += 1,
                AmState::Owner => o += 1,
                AmState::Exclusive => e += 1,
                AmState::Invalid => unreachable!("invalid entries are not stored"),
            }
        }
        (s, o, e)
    }

    /// Iterate resident lines (for invariant checks).
    pub fn lines(&self) -> impl Iterator<Item = (LineNum, AmState)> + '_ {
        self.array.iter()
    }

    pub fn n_sets(&self) -> u64 {
        self.array.n_sets()
    }

    pub fn assoc(&self) -> usize {
        self.array.assoc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn am(n_sets: u64, assoc: usize) -> AttractionMemory {
        AttractionMemory::new(n_sets, assoc, VictimPolicy::SharedFirst)
    }

    #[test]
    fn empty_set_has_free_slot() {
        let a = am(4, 2);
        assert_eq!(a.make_room(LineNum(0)), Victim::FreeSlot);
    }

    #[test]
    fn shared_victim_preferred_over_owner() {
        let mut a = am(1, 2);
        a.insert(LineNum(0), AmState::Owner);
        a.insert(LineNum(1), AmState::Shared);
        // Owner is older (LRU) but Shared is the victim under SharedFirst.
        assert_eq!(a.make_room(LineNum(2)), Victim::DropShared(LineNum(1)));
    }

    #[test]
    fn all_responsible_forces_injection() {
        let mut a = am(1, 2);
        a.insert(LineNum(0), AmState::Exclusive);
        a.insert(LineNum(1), AmState::Owner);
        // LRU is line 0 (inserted first, never touched).
        assert_eq!(
            a.make_room(LineNum(2)),
            Victim::Inject(LineNum(0), AmState::Exclusive)
        );
    }

    #[test]
    fn strict_lru_injects_even_with_shared_present() {
        let mut a = AttractionMemory::new(1, 2, VictimPolicy::StrictLru);
        a.insert(LineNum(0), AmState::Owner);
        a.insert(LineNum(1), AmState::Shared);
        assert_eq!(
            a.make_room(LineNum(2)),
            Victim::Inject(LineNum(0), AmState::Owner)
        );
    }

    #[test]
    fn accept_prefers_invalid_slot() {
        let mut a = am(1, 2);
        a.insert(LineNum(1), AmState::Shared);
        assert_eq!(
            a.accept_slot(LineNum(2), AcceptPolicy::InvalidThenShared),
            Some(AcceptSlot::Invalid)
        );
    }

    #[test]
    fn accept_overwrites_shared_when_full() {
        let mut a = am(1, 2);
        a.insert(LineNum(1), AmState::Shared);
        a.insert(LineNum(3), AmState::Owner);
        assert_eq!(
            a.accept_slot(LineNum(2), AcceptPolicy::InvalidThenShared),
            Some(AcceptSlot::Shared(LineNum(1)))
        );
    }

    #[test]
    fn accept_refuses_all_responsible_set() {
        let mut a = am(1, 2);
        a.insert(LineNum(1), AmState::Owner);
        a.insert(LineNum(3), AmState::Exclusive);
        assert_eq!(
            a.accept_slot(LineNum(2), AcceptPolicy::InvalidThenShared),
            None
        );
    }

    #[test]
    fn holder_cannot_accept_its_own_line() {
        let mut a = am(1, 4);
        a.insert(LineNum(2), AmState::Shared);
        assert_eq!(
            a.accept_slot(LineNum(2), AcceptPolicy::InvalidThenShared),
            None
        );
    }

    #[test]
    fn shared_then_invalid_sacrifices_replica_first() {
        let mut a = am(1, 2);
        a.insert(LineNum(1), AmState::Shared);
        assert_eq!(
            a.accept_slot(LineNum(2), AcceptPolicy::SharedThenInvalid),
            Some(AcceptSlot::Shared(LineNum(1)))
        );
    }

    #[test]
    fn census_counts_states() {
        let mut a = am(4, 2);
        a.insert(LineNum(0), AmState::Shared);
        a.insert(LineNum(1), AmState::Owner);
        a.insert(LineNum(2), AmState::Exclusive);
        a.insert(LineNum(3), AmState::Exclusive);
        assert_eq!(a.census(), (1, 1, 2));
    }

    #[test]
    fn set_state_invalid_removes() {
        let mut a = am(4, 2);
        a.insert(LineNum(0), AmState::Shared);
        a.set_state(LineNum(0), AmState::Invalid);
        assert_eq!(a.state(LineNum(0)), AmState::Invalid);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn touch_changes_lru_victim() {
        let mut a = am(1, 2);
        a.insert(LineNum(0), AmState::Shared);
        a.insert(LineNum(1), AmState::Shared);
        a.touch(LineNum(0)); // now line 1 is LRU
        assert_eq!(a.make_room(LineNum(2)), Victim::DropShared(LineNum(1)));
    }
}
