//! First-level cache: 4 KB direct-mapped, zero hit latency (paper §3.1).
//!
//! The FLC acts as a filter in front of the SLC. Each slot tracks the
//! resident line and whether the processor currently holds write
//! permission for it (mirroring the SLC's Modified state). Reads that hit
//! count as *busy* time; writes complete locally only when the slot is
//! writable, otherwise they drain through the write buffer into the SLC.

use coma_types::{FastMod, LineNum};

#[derive(Clone, Copy, Debug)]
struct Slot {
    line: LineNum,
    writable: bool,
}

/// A direct-mapped first-level cache.
#[derive(Clone, Debug)]
pub struct Flc {
    slots: Vec<Option<Slot>>,
    /// Division-free slot mapping: the FLC is probed on every single
    /// memory reference, so even one hardware modulo here is measurable.
    idx_mod: FastMod,
}

impl Flc {
    /// Create an FLC with `n_sets` line slots (4096 / 64 = 64 in the paper).
    pub fn new(n_sets: u64) -> Self {
        assert!(n_sets > 0);
        Flc {
            slots: vec![None; n_sets as usize],
            idx_mod: FastMod::new(n_sets),
        }
    }

    #[inline]
    fn idx(&self, line: LineNum) -> usize {
        self.idx_mod.reduce(line.0) as usize
    }

    /// Is the line resident (readable)?
    #[inline]
    pub fn read_hit(&self, line: LineNum) -> bool {
        matches!(self.slots[self.idx(line)], Some(s) if s.line == line)
    }

    /// Pull `line`'s slot toward the host L1 (performance hint only).
    #[inline]
    pub fn prefetch(&self, line: LineNum) {
        coma_types::prefetch_read(&self.slots[self.idx(line)]);
    }

    /// Is the line resident with write permission?
    #[inline]
    pub fn write_hit(&self, line: LineNum) -> bool {
        matches!(self.slots[self.idx(line)], Some(s) if s.line == line && s.writable)
    }

    /// Fill a line after an SLC (or deeper) access; displaces whatever was
    /// in the slot (FLC is a subset of the SLC, so silent displacement is
    /// safe — the SLC still holds the displaced line).
    pub fn fill(&mut self, line: LineNum, writable: bool) {
        let i = self.idx(line);
        self.slots[i] = Some(Slot { line, writable });
    }

    /// Grant write permission to an already-resident line (after the SLC
    /// obtained ownership).
    pub fn grant_write(&mut self, line: LineNum) {
        let i = self.idx(line);
        if let Some(s) = &mut self.slots[i] {
            if s.line == line {
                s.writable = true;
            }
        }
    }

    /// Invalidate a line (inclusion: the SLC lost it, or coherence).
    pub fn invalidate(&mut self, line: LineNum) {
        let i = self.idx(line);
        if matches!(self.slots[i], Some(s) if s.line == line) {
            self.slots[i] = None;
        }
    }

    /// Downgrade write permission (coherence: another processor reads).
    pub fn downgrade(&mut self, line: LineNum) {
        let i = self.idx(line);
        if let Some(s) = &mut self.slots[i] {
            if s.line == line {
                s.writable = false;
            }
        }
    }

    /// Number of valid slots (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterate all resident lines as `(line, writable)` (verification).
    pub fn lines(&self) -> impl Iterator<Item = (LineNum, bool)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| (s.line, s.writable)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit() {
        let mut f = Flc::new(64);
        assert!(!f.read_hit(LineNum(10)));
        f.fill(LineNum(10), false);
        assert!(f.read_hit(LineNum(10)));
        assert!(!f.write_hit(LineNum(10)));
    }

    #[test]
    fn writable_fill_gives_write_hit() {
        let mut f = Flc::new(64);
        f.fill(LineNum(10), true);
        assert!(f.write_hit(LineNum(10)));
    }

    #[test]
    fn conflicting_line_displaces() {
        let mut f = Flc::new(64);
        f.fill(LineNum(10), false);
        f.fill(LineNum(74), false); // 74 % 64 == 10
        assert!(!f.read_hit(LineNum(10)));
        assert!(f.read_hit(LineNum(74)));
    }

    #[test]
    fn grant_write_upgrades_in_place() {
        let mut f = Flc::new(64);
        f.fill(LineNum(3), false);
        f.grant_write(LineNum(3));
        assert!(f.write_hit(LineNum(3)));
        // granting to an absent line is a no-op
        f.grant_write(LineNum(99));
        assert!(!f.read_hit(LineNum(99)));
    }

    #[test]
    fn invalidate_only_matching_line() {
        let mut f = Flc::new(64);
        f.fill(LineNum(10), true);
        f.invalidate(LineNum(74)); // maps to same slot but different line
        assert!(f.read_hit(LineNum(10)));
        f.invalidate(LineNum(10));
        assert!(!f.read_hit(LineNum(10)));
    }

    #[test]
    fn downgrade_keeps_read() {
        let mut f = Flc::new(64);
        f.fill(LineNum(5), true);
        f.downgrade(LineNum(5));
        assert!(f.read_hit(LineNum(5)));
        assert!(!f.write_hit(LineNum(5)));
    }

    #[test]
    fn occupancy_counts() {
        let mut f = Flc::new(8);
        assert_eq!(f.occupancy(), 0);
        f.fill(LineNum(0), false);
        f.fill(LineNum(1), false);
        assert_eq!(f.occupancy(), 2);
        f.fill(LineNum(8), false); // displaces line 0
        assert_eq!(f.occupancy(), 2);
    }
}
