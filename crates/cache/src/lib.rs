//! Cache structures for the cluster-based COMA simulator.
//!
//! Three levels exist in the modeled hierarchy (paper §2, Figure 1):
//!
//! * the per-processor **first-level cache** (FLC) — 4 KB direct-mapped,
//!   zero-latency on hit ([`Flc`]);
//! * the per-processor **second-level cache** (SLC) — working-set/128,
//!   set-associative, write-back, MSI states ([`Slc`]);
//! * the per-node **attraction memory** (AM) — the node's entire memory
//!   organized as a huge set-associative cache with the four COMA states
//!   Exclusive / Owner / Shared / Invalid ([`AttractionMemory`]).
//!
//! All three are built on the same generic [`SetAssoc`] array. The AM's
//! replacement behaviour — Shared victims preferred over Owner/Exclusive,
//! and incoming injected lines accepted into Invalid slots before Shared
//! slots — is what the paper calls the *accept-based replacement strategy*
//! and is configurable here for ablation studies.

pub mod am;
pub mod flc;
pub mod policy;
pub mod set_assoc;
pub mod slc;
pub mod state;

pub use am::{AcceptSlot, AttractionMemory, Victim};
pub use flc::Flc;
pub use policy::{AcceptPolicy, VictimPolicy};
pub use set_assoc::SetAssoc;
pub use slc::Slc;
pub use state::{AmState, SlcState};
