//! Replacement-policy knobs for the attraction memory.
//!
//! The paper's protocol (§3.1) fixes both policies: victims are chosen
//! Shared-first (replicas are cheap to drop; responsible copies must be
//! injected), and injection receivers are chosen Invalid-slot-first
//! (overwriting a replica shrinks global replication). Both are exposed as
//! enums so the benches can ablate the design choices.

/// How a full AM set chooses the entry to displace for an incoming line.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VictimPolicy {
    /// Paper default: prefer the LRU `Shared` entry; only displace an
    /// `Owner`/`Exclusive` entry (forcing an injection) if no Shared
    /// replica exists in the set.
    #[default]
    SharedFirst,
    /// Ablation: strict LRU regardless of state (injects far more often).
    StrictLru,
}

/// How a node decides whether to accept an injected (relocated) line.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AcceptPolicy {
    /// Paper default: nodes with an Invalid slot in the home set win the
    /// snoop arbitration; nodes that would overwrite a Shared replica are
    /// second choice; otherwise the injection fails.
    #[default]
    InvalidThenShared,
    /// Ablation: overwrite replicas before using free slots (destroys
    /// replication early; used to quantify the accept heuristic).
    SharedThenInvalid,
    /// Ablation: any node with either kind of room, first by node index
    /// (no snoop priority at all).
    FirstFit,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(VictimPolicy::default(), VictimPolicy::SharedFirst);
        assert_eq!(AcceptPolicy::default(), AcceptPolicy::InvalidThenShared);
    }
}
