//! Generic set-associative cache array with true-LRU within each set.
//!
//! Only valid entries are stored, so a set with free capacity simply has
//! fewer than `assoc` entries. LRU is tracked with a monotone per-cache
//! tick; with ≤ 8 ways a linear scan is faster than any fancier structure.

use coma_types::LineNum;

/// One valid cache entry.
#[derive(Clone, Debug)]
pub struct Entry<S> {
    pub line: LineNum,
    pub state: S,
    /// Last-use tick for LRU ordering (larger = more recent).
    pub lru: u64,
}

/// A set-associative array of `n_sets × assoc` line slots.
#[derive(Clone, Debug)]
pub struct SetAssoc<S> {
    n_sets: u64,
    assoc: usize,
    sets: Vec<Vec<Entry<S>>>,
    tick: u64,
}

impl<S: Copy> SetAssoc<S> {
    /// Create an empty array. `n_sets` and `assoc` must be non-zero.
    pub fn new(n_sets: u64, assoc: usize) -> Self {
        assert!(n_sets > 0 && assoc > 0);
        SetAssoc {
            n_sets,
            assoc,
            sets: (0..n_sets).map(|_| Vec::with_capacity(assoc)).collect(),
            tick: 0,
        }
    }

    #[inline]
    pub fn n_sets(&self) -> u64 {
        self.n_sets
    }

    #[inline]
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Total valid entries across all sets.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Set index for a line.
    #[inline]
    pub fn set_of(&self, line: LineNum) -> u64 {
        line.set_index(self.n_sets)
    }

    /// Look up a line without touching LRU state.
    pub fn peek(&self, line: LineNum) -> Option<&Entry<S>> {
        self.sets[self.set_of(line) as usize]
            .iter()
            .find(|e| e.line == line)
    }

    /// Look up a line, marking it most-recently-used on hit.
    pub fn lookup(&mut self, line: LineNum) -> Option<&mut Entry<S>> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line) as usize;
        let e = self.sets[set].iter_mut().find(|e| e.line == line)?;
        e.lru = tick;
        Some(e)
    }

    /// Update the state of a resident line; returns false if not present.
    pub fn set_state(&mut self, line: LineNum, state: S) -> bool {
        let set = self.set_of(line) as usize;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.line == line) {
            e.state = state;
            true
        } else {
            false
        }
    }

    /// Remove a line; returns its state if it was present.
    pub fn remove(&mut self, line: LineNum) -> Option<S> {
        let set = self.set_of(line) as usize;
        let idx = self.sets[set].iter().position(|e| e.line == line)?;
        Some(self.sets[set].swap_remove(idx).state)
    }

    /// Does the line's set have a free slot?
    pub fn has_free_slot(&self, line: LineNum) -> bool {
        self.sets[self.set_of(line) as usize].len() < self.assoc
    }

    /// Insert a line known to be absent. Panics (debug) if the set is full
    /// or the line already resident — callers must evict first.
    pub fn insert(&mut self, line: LineNum, state: S) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line) as usize;
        debug_assert!(self.sets[set].len() < self.assoc, "insert into full set");
        debug_assert!(
            !self.sets[set].iter().any(|e| e.line == line),
            "duplicate insert"
        );
        self.sets[set].push(Entry {
            line,
            state,
            lru: tick,
        });
    }

    /// Iterate over the valid entries of the set that `line` maps to.
    pub fn set_entries(&self, line: LineNum) -> &[Entry<S>] {
        &self.sets[self.set_of(line) as usize]
    }

    /// Least-recently-used entry of `line`'s set among entries matching
    /// `pred`, or `None` if none match.
    pub fn lru_matching(
        &self,
        line: LineNum,
        mut pred: impl FnMut(&Entry<S>) -> bool,
    ) -> Option<&Entry<S>> {
        self.sets[self.set_of(line) as usize]
            .iter()
            .filter(|e| pred(e))
            .min_by_key(|e| e.lru)
    }

    /// Iterate over all valid entries (diagnostics / invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<S>> {
        self.sets.iter().flatten()
    }

    /// Remove every entry failing the predicate, calling `on_evict` for each.
    pub fn retain(
        &mut self,
        mut keep: impl FnMut(&Entry<S>) -> bool,
        mut on_evict: impl FnMut(&Entry<S>),
    ) {
        for set in &mut self.sets {
            set.retain(|e| {
                let k = keep(e);
                if !k {
                    on_evict(e);
                }
                k
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(n_sets: u64, assoc: usize) -> SetAssoc<u8> {
        SetAssoc::new(n_sets, assoc)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = arr(4, 2);
        c.insert(LineNum(5), 1);
        assert_eq!(c.lookup(LineNum(5)).unwrap().state, 1);
        assert!(c.lookup(LineNum(9)).is_none()); // same set (9 % 4 == 1), absent
    }

    #[test]
    fn free_slot_tracking() {
        let mut c = arr(4, 2);
        assert!(c.has_free_slot(LineNum(0)));
        c.insert(LineNum(0), 0);
        assert!(c.has_free_slot(LineNum(0)));
        c.insert(LineNum(4), 0); // same set
        assert!(!c.has_free_slot(LineNum(0)));
        assert!(c.has_free_slot(LineNum(1))); // different set untouched
    }

    #[test]
    fn lru_order_follows_access() {
        let mut c = arr(1, 3);
        c.insert(LineNum(0), 0);
        c.insert(LineNum(1), 0);
        c.insert(LineNum(2), 0);
        // Touch 0, making 1 the LRU.
        c.lookup(LineNum(0));
        let lru = c.lru_matching(LineNum(0), |_| true).unwrap();
        assert_eq!(lru.line, LineNum(1));
    }

    #[test]
    fn lru_matching_respects_predicate() {
        let mut c = arr(1, 3);
        c.insert(LineNum(0), 10);
        c.insert(LineNum(1), 20);
        c.insert(LineNum(2), 10);
        let lru20 = c.lru_matching(LineNum(0), |e| e.state == 20).unwrap();
        assert_eq!(lru20.line, LineNum(1));
        assert!(c.lru_matching(LineNum(0), |e| e.state == 99).is_none());
    }

    #[test]
    fn remove_returns_state() {
        let mut c = arr(2, 2);
        c.insert(LineNum(3), 7);
        assert_eq!(c.remove(LineNum(3)), Some(7));
        assert_eq!(c.remove(LineNum(3)), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn set_state_in_place() {
        let mut c = arr(2, 2);
        c.insert(LineNum(3), 7);
        assert!(c.set_state(LineNum(3), 9));
        assert_eq!(c.peek(LineNum(3)).unwrap().state, 9);
        assert!(!c.set_state(LineNum(5), 1));
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = arr(1, 2);
        c.insert(LineNum(0), 0);
        c.insert(LineNum(1), 0);
        c.peek(LineNum(0));
        // 0 was inserted first and peek didn't refresh it: still LRU.
        assert_eq!(
            c.lru_matching(LineNum(0), |_| true).unwrap().line,
            LineNum(0)
        );
    }

    #[test]
    fn retain_evicts_and_reports() {
        let mut c = arr(2, 2);
        c.insert(LineNum(0), 1);
        c.insert(LineNum(1), 2);
        c.insert(LineNum(2), 1);
        let mut evicted = Vec::new();
        c.retain(|e| e.state != 1, |e| evicted.push(e.line));
        assert_eq!(c.len(), 1);
        assert_eq!(evicted.len(), 2);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn duplicate_insert_panics_in_debug() {
        let mut c = arr(2, 2);
        c.insert(LineNum(0), 0);
        c.insert(LineNum(0), 0);
    }
}
