//! Generic set-associative cache array with true-LRU within each set.
//!
//! The array is one flat slab of packed `(line, state)` slots: set `i`
//! owns the stride `[i * assoc, (i + 1) * assoc)`, with its valid entries
//! compacted at the front **in recency order** (slot 0 of the stride is
//! most-recently-used, the last valid slot is the LRU victim) and an
//! empty-slot sentinel terminating the run. Recency *is* the storage
//! order: a hit rotates its slot to the front of the stride, an insert
//! shifts the stride down and writes the front, and the eviction victim
//! is simply the stride's last slot — exactly the order a unique
//! monotone-tick true-LRU would produce, with no tick, per-slot LRU word,
//! or per-set length to maintain.
//!
//! The layout is the point: a 4-way set of 8-byte slots is half a 64-byte
//! cache line, so a probe — hit, miss, or evicting fill — touches a
//! single line of one array. Attraction memories are sized to a fraction
//! of the *working set* and do not fit in the host's caches; splitting
//! lines, states, and LRU ticks across parallel arrays (a previous
//! incarnation of this type) costs several DRAM misses per probe where
//! this layout pays one. Line keys are stored as `line + 1` in a `u32`
//! (`0` = empty): the simulated address space is allocated consecutively
//! from zero (paper §3), so real line numbers are far below `u32` range,
//! and the narrower key doubles how much of an attraction memory fits in
//! the host's caches and TLB reach. The rotation memmove is at most
//! `assoc - 1` slots within one or two lines.
//!
//! Set indexing uses a precomputed [`FastMod`] because set counts are not
//! powers of two (the paper's "odd cache sizes").

use coma_types::{FastMod, LineNum};

/// Stored key for an empty slot; occupied slots hold `line + 1`.
const EMPTY: u32 = 0;

/// Largest representable line number (`u32::MAX - 1`, since keys store
/// `line + 1`). Simulated working sets top out orders of magnitude below
/// this — [`SetAssoc::insert`] enforces it.
const MAX_LINE: u64 = (u32::MAX - 1) as u64;

/// One packed cache slot: the resident line's key and its protocol state.
#[derive(Clone, Copy, Debug)]
struct Slot<S> {
    key: u32,
    state: S,
}

impl<S> Slot<S> {
    /// The resident line; only meaningful when `key != EMPTY`.
    #[inline]
    fn line(&self) -> LineNum {
        LineNum((self.key - 1) as u64)
    }
}

/// Key a probe compares against. Lines beyond [`MAX_LINE`] cannot be
/// resident (insert asserts), so their probes must simply miss — map
/// them to the unmatchable `u32::MAX` instead of letting the narrowing
/// conversion alias a small resident line.
#[inline]
fn probe_key(line: LineNum) -> u32 {
    if line.0 <= MAX_LINE {
        line.0 as u32 + 1
    } else {
        u32::MAX
    }
}

/// A set-associative array of `n_sets × assoc` line slots.
#[derive(Clone, Debug)]
pub struct SetAssoc<S> {
    n_sets: u64,
    assoc: usize,
    set_mod: FastMod,
    /// `n_sets * assoc` slots; each stride holds its valid entries at the
    /// front, most-recent first, then empty padding.
    slots: Vec<Slot<S>>,
    len: usize,
}

impl<S: Copy + Default> SetAssoc<S> {
    /// Create an empty array. `n_sets` and `assoc` must be non-zero.
    pub fn new(n_sets: u64, assoc: usize) -> Self {
        assert!(n_sets > 0 && assoc > 0);
        assert!(assoc <= u16::MAX as usize);
        let slots = (n_sets as usize)
            .checked_mul(assoc)
            .expect("cache slot count overflows usize");
        SetAssoc {
            n_sets,
            assoc,
            set_mod: FastMod::new(n_sets),
            slots: vec![
                Slot {
                    key: EMPTY,
                    state: S::default()
                };
                slots
            ],
            len: 0,
        }
    }

    #[inline]
    pub fn n_sets(&self) -> u64 {
        self.n_sets
    }

    #[inline]
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Total valid entries across all sets.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set index for a line.
    #[inline]
    pub fn set_of(&self, line: LineNum) -> u64 {
        self.set_mod.reduce(line.0)
    }

    /// Hint the host CPU to pull `line`'s set toward L1 ahead of a probe.
    /// Purely a performance hint — touches no state.
    #[inline]
    pub fn prefetch(&self, line: LineNum) {
        coma_types::prefetch_read(&self.slots[self.base_of(line)]);
    }

    /// Stride base of the set that `line` maps to.
    #[inline]
    fn base_of(&self, line: LineNum) -> usize {
        self.set_of(line) as usize * self.assoc
    }

    /// Slot index of `line` if resident.
    #[inline]
    fn find(&self, line: LineNum) -> Option<usize> {
        let key = probe_key(line);
        let base = self.base_of(line);
        for i in base..base + self.assoc {
            let k = self.slots[i].key;
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
        }
        None
    }

    /// State of a line without touching LRU state.
    #[inline]
    pub fn peek(&self, line: LineNum) -> Option<S> {
        self.find(line).map(|i| self.slots[i].state)
    }

    /// State of a line, marking it most-recently-used on hit.
    #[inline]
    pub fn lookup(&mut self, line: LineNum) -> Option<S> {
        let i = self.find(line)?;
        let hit = self.slots[i];
        let base = self.base_of(line);
        self.slots.copy_within(base..i, base + 1);
        self.slots[base] = hit;
        Some(hit.state)
    }

    /// Update the state of a resident line; returns false if not present.
    /// Does not touch LRU order.
    pub fn set_state(&mut self, line: LineNum, state: S) -> bool {
        match self.find(line) {
            Some(i) => {
                self.slots[i].state = state;
                true
            }
            None => false,
        }
    }

    /// Remove a line; returns its state if it was present. The stride is
    /// shifted up (not swap-removed) so the survivors keep their recency
    /// order.
    pub fn remove(&mut self, line: LineNum) -> Option<S> {
        let i = self.find(line)?;
        let state = self.slots[i].state;
        let base = self.base_of(line);
        let last = base + self.assoc - 1;
        self.slots.copy_within(i + 1..last + 1, i);
        self.slots[last].key = EMPTY;
        self.len -= 1;
        Some(state)
    }

    /// Does the line's set have a free slot?
    #[inline]
    pub fn has_free_slot(&self, line: LineNum) -> bool {
        let base = self.base_of(line);
        self.slots[base + self.assoc - 1].key == EMPTY
    }

    /// Insert a line known to be absent. Panics (debug) if the set is full
    /// or the line already resident — callers must evict first.
    pub fn insert(&mut self, line: LineNum, state: S) {
        assert!(line.0 <= MAX_LINE, "line number exceeds u32 key range");
        debug_assert!(self.find(line).is_none(), "duplicate insert");
        let base = self.base_of(line);
        let last = base + self.assoc - 1;
        debug_assert_eq!(self.slots[last].key, EMPTY, "insert into full set");
        self.slots.copy_within(base..last, base + 1);
        self.slots[base] = Slot {
            key: line.0 as u32 + 1,
            state,
        };
        self.len += 1;
    }

    /// Fused update-or-insert-with-eviction (the SLC fill path), costing a
    /// single pass over the set where the naive peek / free-slot check /
    /// LRU-victim search / remove / insert sequence costs five.
    ///
    /// If `line` is resident its state is updated in place (no LRU touch,
    /// matching the unfused sequence). Otherwise `line` is inserted
    /// most-recently-used, evicting the set's true-LRU entry — the last
    /// valid slot — if the set is full; the evicted `(line, state)` is
    /// returned.
    pub fn insert_evicting(&mut self, line: LineNum, state: S) -> Option<(LineNum, S)> {
        assert!(line.0 <= MAX_LINE, "line number exceeds u32 key range");
        let key = line.0 as u32 + 1;
        let base = self.base_of(line);
        let last = base + self.assoc - 1;
        for i in base..base + self.assoc {
            if self.slots[i].key == key {
                self.slots[i].state = state;
                return None;
            }
        }
        let evicted = match self.slots[last].key {
            EMPTY => {
                self.len += 1;
                None
            }
            _ => Some((self.slots[last].line(), self.slots[last].state)),
        };
        self.slots.copy_within(base..last, base + 1);
        self.slots[base] = Slot { key, state };
        evicted
    }

    /// Visit every valid entry of the set that `line` maps to, in recency
    /// order: most-recently-used first, the LRU victim last. One
    /// contiguous pass — callers that need several facts about a set
    /// (occupancy, LRU victim under a predicate, residency) fold them out
    /// of a single scan, taking the *last* matching visit where they want
    /// the least-recent entry.
    #[inline]
    pub fn scan_set(&self, line: LineNum, mut visit: impl FnMut(LineNum, S)) {
        let base = self.base_of(line);
        for slot in &self.slots[base..base + self.assoc] {
            if slot.key == EMPTY {
                break;
            }
            visit(slot.line(), slot.state);
        }
    }

    /// Least-recently-used entry of `line`'s set among entries matching
    /// `pred`, or `None` if none match.
    pub fn lru_matching(
        &self,
        line: LineNum,
        mut pred: impl FnMut(LineNum, S) -> bool,
    ) -> Option<(LineNum, S)> {
        let mut best = None;
        self.scan_set(line, |l, s| {
            if pred(l, s) {
                best = Some((l, s));
            }
        });
        best
    }

    /// Iterate over all valid entries (diagnostics / invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (LineNum, S)> + '_ {
        self.slots.chunks_exact(self.assoc).flat_map(|stride| {
            stride
                .iter()
                .take_while(|slot| slot.key != EMPTY)
                .map(|slot| (slot.line(), slot.state))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(n_sets: u64, assoc: usize) -> SetAssoc<u8> {
        SetAssoc::new(n_sets, assoc)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = arr(4, 2);
        c.insert(LineNum(5), 1);
        assert_eq!(c.lookup(LineNum(5)), Some(1));
        assert!(c.lookup(LineNum(9)).is_none()); // same set (9 % 4 == 1), absent
    }

    #[test]
    fn free_slot_tracking() {
        let mut c = arr(4, 2);
        assert!(c.has_free_slot(LineNum(0)));
        c.insert(LineNum(0), 0);
        assert!(c.has_free_slot(LineNum(0)));
        c.insert(LineNum(4), 0); // same set
        assert!(!c.has_free_slot(LineNum(0)));
        assert!(c.has_free_slot(LineNum(1))); // different set untouched
    }

    #[test]
    fn lru_order_follows_access() {
        let mut c = arr(1, 3);
        c.insert(LineNum(0), 0);
        c.insert(LineNum(1), 0);
        c.insert(LineNum(2), 0);
        // Touch 0, making 1 the LRU.
        c.lookup(LineNum(0));
        let (lru, _) = c.lru_matching(LineNum(0), |_, _| true).unwrap();
        assert_eq!(lru, LineNum(1));
    }

    #[test]
    fn lru_matching_respects_predicate() {
        let mut c = arr(1, 3);
        c.insert(LineNum(0), 10);
        c.insert(LineNum(1), 20);
        c.insert(LineNum(2), 10);
        let (lru20, _) = c.lru_matching(LineNum(0), |_, s| s == 20).unwrap();
        assert_eq!(lru20, LineNum(1));
        assert!(c.lru_matching(LineNum(0), |_, s| s == 99).is_none());
    }

    #[test]
    fn remove_returns_state_and_compacts() {
        let mut c = arr(2, 2);
        c.insert(LineNum(3), 7);
        assert_eq!(c.remove(LineNum(3)), Some(7));
        assert_eq!(c.remove(LineNum(3)), None);
        assert_eq!(c.len(), 0);
        // Removing the front of a full stride keeps the survivor findable.
        c.insert(LineNum(1), 1);
        c.insert(LineNum(3), 3);
        assert_eq!(c.remove(LineNum(1)), Some(1));
        assert_eq!(c.peek(LineNum(3)), Some(3));
        assert!(c.has_free_slot(LineNum(3)));
    }

    #[test]
    fn remove_preserves_recency_of_survivors() {
        let mut c = arr(1, 3);
        c.insert(LineNum(0), 0);
        c.insert(LineNum(1), 1);
        c.insert(LineNum(2), 2);
        // Recency: 2 > 1 > 0. Removing 1 must keep 0 as the LRU.
        c.remove(LineNum(1));
        assert_eq!(
            c.lru_matching(LineNum(0), |_, _| true).unwrap().0,
            LineNum(0)
        );
    }

    #[test]
    fn set_state_in_place() {
        let mut c = arr(2, 2);
        c.insert(LineNum(3), 7);
        assert!(c.set_state(LineNum(3), 9));
        assert_eq!(c.peek(LineNum(3)), Some(9));
        assert!(!c.set_state(LineNum(5), 1));
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = arr(1, 2);
        c.insert(LineNum(0), 0);
        c.insert(LineNum(1), 0);
        c.peek(LineNum(0));
        // 0 was inserted first and peek didn't refresh it: still LRU.
        assert_eq!(
            c.lru_matching(LineNum(0), |_, _| true).unwrap().0,
            LineNum(0)
        );
    }

    #[test]
    fn insert_evicting_updates_resident_in_place() {
        let mut c = arr(1, 1);
        c.insert(LineNum(0), 1);
        assert_eq!(c.insert_evicting(LineNum(0), 2), None);
        assert_eq!(c.peek(LineNum(0)), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_evicting_evicts_true_lru() {
        let mut c = arr(1, 2);
        c.insert(LineNum(0), 10);
        c.insert(LineNum(1), 11);
        c.lookup(LineNum(0)); // 1 becomes LRU
        assert_eq!(c.insert_evicting(LineNum(2), 12), Some((LineNum(1), 11)));
        assert_eq!(c.peek(LineNum(2)), Some(12));
        assert_eq!(c.peek(LineNum(0)), Some(10));
        assert_eq!(c.len(), 2);
        // The fresh insert is MRU: next eviction takes line 0.
        assert_eq!(c.insert_evicting(LineNum(3), 13), Some((LineNum(0), 10)));
    }

    #[test]
    fn insert_evicting_uses_free_slot_first() {
        let mut c = arr(1, 2);
        c.insert(LineNum(0), 1);
        assert_eq!(c.insert_evicting(LineNum(1), 2), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn scan_set_sees_only_own_set() {
        let mut c = arr(2, 2);
        c.insert(LineNum(0), 1);
        c.insert(LineNum(1), 2);
        c.insert(LineNum(2), 3);
        let mut seen = Vec::new();
        c.scan_set(LineNum(0), |l, s| seen.push((l.0, s)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn scan_set_visits_mru_first() {
        let mut c = arr(1, 3);
        c.insert(LineNum(0), 0);
        c.insert(LineNum(1), 1);
        c.insert(LineNum(2), 2);
        c.lookup(LineNum(1));
        let mut order = Vec::new();
        c.scan_set(LineNum(0), |l, _| order.push(l.0));
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn non_power_of_two_set_count() {
        let mut c = arr(13, 2);
        c.insert(LineNum(5), 1);
        c.insert(LineNum(18), 2); // 18 % 13 == 5: same set
        assert!(!c.has_free_slot(LineNum(5)));
        assert_eq!(c.peek(LineNum(18)), Some(2));
        assert_eq!(c.peek(LineNum(31)), None);
    }

    #[test]
    fn out_of_range_probe_misses_without_aliasing() {
        let mut c = arr(4, 2);
        c.insert(LineNum(3), 1);
        // (2^32 + 3) mod 4 == 3: same set, and the narrowed key would
        // alias line 3 without the probe-key guard.
        let huge = LineNum((1u64 << 32) + 3);
        assert_eq!(c.peek(huge), None);
        assert_eq!(c.lookup(huge), None);
        assert_eq!(c.remove(huge), None);
        assert!(!c.set_state(huge, 9));
        assert_eq!(c.peek(LineNum(3)), Some(1));
    }

    #[test]
    #[should_panic(expected = "u32 key range")]
    fn oversized_line_insert_panics() {
        let mut c = arr(4, 2);
        c.insert(LineNum(u64::MAX - 1), 0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn duplicate_insert_panics_in_debug() {
        let mut c = arr(2, 2);
        c.insert(LineNum(0), 0);
        c.insert(LineNum(0), 0);
    }
}
