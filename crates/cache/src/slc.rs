//! Second-level cache: per-processor, set-associative, write-back, MSI.
//!
//! The SLC is sized at working-set/128 (paper §3.1) and sits between the
//! processor's FLC and the node's attraction memory. Inclusion holds in
//! both directions relevant to the protocol: every SLC line is present in
//! the node's AM, and a `Modified` SLC line implies the AM holds the line
//! `Exclusive`. Evicted Modified lines are written back into the AM (which
//! already has a slot for them, so SLC evictions never trigger AM
//! replacements).

use crate::set_assoc::SetAssoc;
use crate::state::SlcState;
use coma_types::LineNum;

/// A per-processor second-level cache.
#[derive(Clone, Debug)]
pub struct Slc {
    array: SetAssoc<SlcState>,
}

impl Slc {
    pub fn new(n_sets: u64, assoc: usize) -> Self {
        Slc {
            array: SetAssoc::new(n_sets, assoc),
        }
    }

    /// State of a resident line (Invalid if absent). Touches LRU.
    pub fn lookup(&mut self, line: LineNum) -> SlcState {
        self.array.lookup(line).unwrap_or(SlcState::Invalid)
    }

    /// State without touching LRU.
    pub fn peek(&self, line: LineNum) -> SlcState {
        self.array.peek(line).unwrap_or(SlcState::Invalid)
    }

    /// Pull `line`'s set toward the host L1 (performance hint only).
    #[inline]
    pub fn prefetch(&self, line: LineNum) {
        self.array.prefetch(line);
    }

    /// Insert a line, evicting the set's LRU entry if the set is full.
    /// Returns the evicted `(line, state)` if any; a `Modified` eviction
    /// must be written back to the AM by the caller.
    pub fn insert(&mut self, line: LineNum, state: SlcState) -> Option<(LineNum, SlcState)> {
        debug_assert!(state.is_valid());
        self.array.insert_evicting(line, state)
    }

    /// Change the state of a resident line; no-op if absent.
    pub fn set_state(&mut self, line: LineNum, state: SlcState) {
        if state.is_valid() {
            self.array.set_state(line, state);
        } else {
            self.array.remove(line);
        }
    }

    /// Invalidate (coherence or AM-inclusion). Returns the previous state.
    pub fn invalidate(&mut self, line: LineNum) -> SlcState {
        self.array.remove(line).unwrap_or(SlcState::Invalid)
    }

    /// Downgrade Modified → Shared (another reader appeared). Returns true
    /// if the line was Modified (i.e. a writeback of current data occurs).
    pub fn downgrade(&mut self, line: LineNum) -> bool {
        match self.array.peek(line) {
            Some(SlcState::Modified) => {
                self.array.set_state(line, SlcState::Shared);
                true
            }
            _ => false,
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Iterate resident lines (for invariant checks).
    pub fn lines(&self) -> impl Iterator<Item = (LineNum, SlcState)> + '_ {
        self.array.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut s = Slc::new(4, 2);
        assert_eq!(s.lookup(LineNum(1)), SlcState::Invalid);
        s.insert(LineNum(1), SlcState::Shared);
        assert_eq!(s.lookup(LineNum(1)), SlcState::Shared);
    }

    #[test]
    fn eviction_returns_victim() {
        let mut s = Slc::new(1, 2);
        s.insert(LineNum(0), SlcState::Shared);
        s.insert(LineNum(1), SlcState::Modified);
        // Touch 1 so 0 is LRU.
        s.lookup(LineNum(1));
        let ev = s.insert(LineNum(2), SlcState::Shared);
        assert_eq!(ev, Some((LineNum(0), SlcState::Shared)));
        assert_eq!(s.peek(LineNum(0)), SlcState::Invalid);
    }

    #[test]
    fn modified_eviction_reported_for_writeback() {
        let mut s = Slc::new(1, 1);
        s.insert(LineNum(0), SlcState::Modified);
        let ev = s.insert(LineNum(1), SlcState::Shared);
        assert_eq!(ev, Some((LineNum(0), SlcState::Modified)));
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut s = Slc::new(1, 1);
        s.insert(LineNum(0), SlcState::Shared);
        let ev = s.insert(LineNum(0), SlcState::Modified);
        assert_eq!(ev, None);
        assert_eq!(s.peek(LineNum(0)), SlcState::Modified);
    }

    #[test]
    fn invalidate_returns_previous() {
        let mut s = Slc::new(2, 2);
        s.insert(LineNum(0), SlcState::Modified);
        assert_eq!(s.invalidate(LineNum(0)), SlcState::Modified);
        assert_eq!(s.invalidate(LineNum(0)), SlcState::Invalid);
    }

    #[test]
    fn downgrade_only_modified() {
        let mut s = Slc::new(2, 2);
        s.insert(LineNum(0), SlcState::Modified);
        s.insert(LineNum(1), SlcState::Shared);
        assert!(s.downgrade(LineNum(0)));
        assert_eq!(s.peek(LineNum(0)), SlcState::Shared);
        assert!(!s.downgrade(LineNum(1)));
        assert!(!s.downgrade(LineNum(7)));
    }

    #[test]
    fn set_state_invalid_removes() {
        let mut s = Slc::new(2, 2);
        s.insert(LineNum(0), SlcState::Shared);
        s.set_state(LineNum(0), SlcState::Invalid);
        assert_eq!(s.len(), 0);
    }
}
