//! Line states for the two coherence domains.
//!
//! The global (inter-node) protocol is the paper's four-state
//! invalidation-based protocol over attraction-memory lines; the intra-node
//! domain keeps the private SLCs coherent with MSI under the AM.

use std::fmt;

/// Attraction-memory line state (paper §3.1).
///
/// Invariant maintained by the protocol: every live line has **exactly one**
/// `Exclusive` or `Owner` copy in the whole machine; any number of `Shared`
/// copies may exist alongside an `Owner`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum AmState {
    /// No valid data (usable slot for incoming lines).
    #[default]
    Invalid,
    /// A replica; the responsible copy lives in another node. May be
    /// dropped silently on replacement.
    Shared,
    /// The responsible copy of data that has (or had) replicas elsewhere.
    /// Must be relocated (injected) on replacement.
    Owner,
    /// The only copy in the machine, writable without bus traffic.
    /// Must be relocated on replacement.
    Exclusive,
}

impl AmState {
    /// Valid data present?
    #[inline]
    pub fn is_valid(self) -> bool {
        self != AmState::Invalid
    }

    /// Is this node responsible for the line's survival? Owner and
    /// Exclusive copies may not be dropped; they must be injected.
    #[inline]
    pub fn is_responsible(self) -> bool {
        matches!(self, AmState::Owner | AmState::Exclusive)
    }

    /// May a processor in this node write without a global transaction?
    #[inline]
    pub fn is_writable(self) -> bool {
        self == AmState::Exclusive
    }
}

impl fmt::Display for AmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AmState::Invalid => "I",
            AmState::Shared => "S",
            AmState::Owner => "O",
            AmState::Exclusive => "E",
        };
        f.write_str(s)
    }
}

/// Second-level (private) cache line state: MSI under the node's AM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SlcState {
    #[default]
    Invalid,
    /// Clean copy; other SLCs in the node or other nodes may also hold it.
    Shared,
    /// Dirty copy, exclusive within the node; implies the node's AM holds
    /// the line in `Exclusive`.
    Modified,
}

impl SlcState {
    #[inline]
    pub fn is_valid(self) -> bool {
        self != SlcState::Invalid
    }

    #[inline]
    pub fn is_writable(self) -> bool {
        self == SlcState::Modified
    }
}

impl fmt::Display for SlcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SlcState::Invalid => "I",
            SlcState::Shared => "S",
            SlcState::Modified => "M",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn am_state_predicates() {
        assert!(!AmState::Invalid.is_valid());
        assert!(AmState::Shared.is_valid());
        assert!(!AmState::Shared.is_responsible());
        assert!(AmState::Owner.is_responsible());
        assert!(AmState::Exclusive.is_responsible());
        assert!(AmState::Exclusive.is_writable());
        assert!(!AmState::Owner.is_writable());
    }

    #[test]
    fn slc_state_predicates() {
        assert!(!SlcState::Invalid.is_valid());
        assert!(SlcState::Shared.is_valid());
        assert!(!SlcState::Shared.is_writable());
        assert!(SlcState::Modified.is_writable());
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(AmState::Owner.to_string(), "O");
        assert_eq!(SlcState::Modified.to_string(), "M");
    }
}
