//! Property-based tests for the cache structures: the set-associative
//! array is checked against a naive reference model, and the attraction
//! memory's victim/accept decisions against their specifications.

use coma_cache::{
    AcceptPolicy, AcceptSlot, AmState, AttractionMemory, SetAssoc, Victim, VictimPolicy,
};
use coma_types::LineNum;
use proptest::prelude::*;

/// Reference model: a vector of (line, state) per set with LRU order
/// (front = LRU).
#[derive(Default, Clone)]
struct RefSet {
    entries: Vec<(u64, u8)>,
}

#[derive(Clone, Copy, Debug)]
enum ArrOp {
    Lookup(u64),
    Insert(u64, u8),
    Remove(u64),
    SetState(u64, u8),
}

fn op_strategy(max_line: u64) -> impl Strategy<Value = ArrOp> {
    prop_oneof![
        (0..max_line).prop_map(ArrOp::Lookup),
        (0..max_line, any::<u8>()).prop_map(|(l, s)| ArrOp::Insert(l, s)),
        (0..max_line).prop_map(ArrOp::Remove),
        (0..max_line, any::<u8>()).prop_map(|(l, s)| ArrOp::SetState(l, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SetAssoc agrees with a naive reference model under arbitrary op
    /// sequences, including LRU victim identity.
    #[test]
    fn set_assoc_matches_reference_model(
        ops in prop::collection::vec(op_strategy(64), 1..400),
        n_sets in 1u64..8,
        assoc in 1usize..5,
    ) {
        let mut arr: SetAssoc<u8> = SetAssoc::new(n_sets, assoc);
        let mut model: Vec<RefSet> = vec![RefSet::default(); n_sets as usize];
        for op in ops {
            match op {
                ArrOp::Lookup(l) => {
                    let set = (l % n_sets) as usize;
                    let got = arr.lookup(LineNum(l)).map(|e| e.state);
                    let want = model[set].entries.iter().find(|(x, _)| *x == l).map(|(_, s)| *s);
                    prop_assert_eq!(got, want);
                    if want.is_some() {
                        // Move to MRU position in the model.
                        let pos = model[set].entries.iter().position(|(x, _)| *x == l).unwrap();
                        let e = model[set].entries.remove(pos);
                        model[set].entries.push(e);
                    }
                }
                ArrOp::Insert(l, s) => {
                    let set = (l % n_sets) as usize;
                    let present = model[set].entries.iter().any(|(x, _)| *x == l);
                    if !present && model[set].entries.len() < assoc {
                        arr.insert(LineNum(l), s);
                        model[set].entries.push((l, s));
                    }
                }
                ArrOp::Remove(l) => {
                    let set = (l % n_sets) as usize;
                    let got = arr.remove(LineNum(l));
                    let pos = model[set].entries.iter().position(|(x, _)| *x == l);
                    prop_assert_eq!(got, pos.map(|p| model[set].entries[p].1));
                    if let Some(p) = pos {
                        model[set].entries.remove(p);
                    }
                }
                ArrOp::SetState(l, s) => {
                    let set = (l % n_sets) as usize;
                    let ok = arr.set_state(LineNum(l), s);
                    let pos = model[set].entries.iter().position(|(x, _)| *x == l);
                    prop_assert_eq!(ok, pos.is_some());
                    if let Some(p) = pos {
                        model[set].entries[p].1 = s;
                    }
                }
            }
            // Structural agreement after every op.
            prop_assert_eq!(arr.len(), model.iter().map(|m| m.entries.len()).sum::<usize>());
        }
        // LRU victims agree set by set.
        for s in 0..n_sets {
            let line = LineNum(s);
            let got = arr.lru_matching(line, |_| true).map(|e| e.line.0);
            let want = model[s as usize].entries.first().map(|(l, _)| *l);
            prop_assert_eq!(got, want, "LRU mismatch in set {}", s);
        }
    }

    /// The AM never chooses to inject while a Shared replica is available
    /// (paper victim priority), and a free slot always wins.
    #[test]
    fn am_victim_priority_specification(
        fill in prop::collection::vec((0u64..32, 0u8..3), 0..64),
        probe in 0u64..32,
    ) {
        let mut am = AttractionMemory::new(8, 4, VictimPolicy::SharedFirst);
        for (l, s) in fill {
            if am.state(LineNum(l)).is_valid() {
                continue;
            }
            if let Victim::FreeSlot = am.make_room(LineNum(l)) {
                let st = match s {
                    0 => AmState::Shared,
                    1 => AmState::Owner,
                    _ => AmState::Exclusive,
                };
                am.insert(LineNum(l), st);
            }
        }
        let line = LineNum(probe);
        if am.state(line).is_valid() {
            return Ok(());
        }
        let set_states: Vec<AmState> = (0..32)
            .filter(|l| l % 8 == probe % 8)
            .map(|l| am.state(LineNum(l)))
            .filter(|s| s.is_valid())
            .collect();
        match am.make_room(line) {
            Victim::FreeSlot => prop_assert!(set_states.len() < 4),
            Victim::DropShared(_) => {
                prop_assert!(set_states.contains(&AmState::Shared));
                prop_assert_eq!(set_states.len(), 4);
            }
            Victim::Inject(_, st) => {
                prop_assert!(!set_states.contains(&AmState::Shared));
                prop_assert!(st.is_responsible());
                prop_assert_eq!(set_states.len(), 4);
            }
        }
    }

    /// Accept policy: a node with room must offer a slot, the holder never
    /// offers, and Invalid slots are preferred under the paper policy.
    #[test]
    fn am_accept_specification(
        n_shared in 0usize..5,
        n_owned in 0usize..5,
    ) {
        let mut am = AttractionMemory::new(1, 4, VictimPolicy::SharedFirst);
        let mut l = 1u64;
        for _ in 0..n_shared.min(4) {
            if am.make_room(LineNum(l)) == Victim::FreeSlot {
                am.insert(LineNum(l), AmState::Shared);
            }
            l += 1;
        }
        for _ in 0..n_owned {
            if am.make_room(LineNum(l)) != Victim::FreeSlot {
                break;
            }
            am.insert(LineNum(l), AmState::Owner);
            l += 1;
        }
        let slot = am.accept_slot(LineNum(0), AcceptPolicy::InvalidThenShared);
        let occupied = am.len();
        if occupied < 4 {
            prop_assert_eq!(slot, Some(AcceptSlot::Invalid));
        } else if n_shared.min(4) > 0 {
            prop_assert!(matches!(slot, Some(AcceptSlot::Shared(_))));
        } else {
            prop_assert_eq!(slot, None);
        }
        // A holder never accepts its own line.
        let first = am.lines().next().map(|(line, _)| line);
        if let Some(line) = first {
            prop_assert_eq!(am.accept_slot(line, AcceptPolicy::InvalidThenShared), None);
        }
    }
}
