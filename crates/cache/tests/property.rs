//! Randomized property tests for the cache structures, driven by the
//! in-repo deterministic RNG (`coma_types::Rng64`) so the workspace needs
//! no external test dependencies: the set-associative array is checked
//! against a naive reference model, and the attraction memory's
//! victim/accept decisions against their specifications.

use coma_cache::{
    AcceptPolicy, AcceptSlot, AmState, AttractionMemory, SetAssoc, Victim, VictimPolicy,
};
use coma_types::{LineNum, Rng64};

/// Reference model: a vector of (line, state) per set with LRU order
/// (front = LRU).
#[derive(Default, Clone)]
struct RefSet {
    entries: Vec<(u64, u8)>,
}

#[derive(Clone, Copy, Debug)]
enum ArrOp {
    Lookup(u64),
    Insert(u64, u8),
    Remove(u64),
    SetState(u64, u8),
    /// The fused fill path (`insert_evicting`): update in place, or insert
    /// evicting the set's LRU entry when full.
    InsertEvicting(u64, u8),
}

fn random_op(rng: &mut Rng64, max_line: u64) -> ArrOp {
    let l = rng.below(max_line);
    match rng.below(5) {
        0 => ArrOp::Lookup(l),
        1 => ArrOp::Insert(l, rng.below(256) as u8),
        2 => ArrOp::Remove(l),
        3 => ArrOp::SetState(l, rng.below(256) as u8),
        _ => ArrOp::InsertEvicting(l, rng.below(256) as u8),
    }
}

/// The flat structure-of-arrays SetAssoc is observationally equivalent to
/// a naive per-set-vector reference model (the shape of the pre-flattening
/// implementation) under arbitrary op sequences, including LRU victim
/// identity and the fused insert path.
#[test]
fn set_assoc_matches_reference_model() {
    let mut rng = Rng64::new(0xCACE);
    for _case in 0..64 {
        let n_sets = rng.range(1, 8);
        let assoc = rng.range(1, 5) as usize;
        let n_ops = rng.range(1, 400);
        let mut arr: SetAssoc<u8> = SetAssoc::new(n_sets, assoc);
        let mut model: Vec<RefSet> = vec![RefSet::default(); n_sets as usize];
        for _ in 0..n_ops {
            match random_op(&mut rng, 64) {
                ArrOp::Lookup(l) => {
                    let set = (l % n_sets) as usize;
                    let got = arr.lookup(LineNum(l));
                    let want = model[set]
                        .entries
                        .iter()
                        .find(|(x, _)| *x == l)
                        .map(|(_, s)| *s);
                    assert_eq!(got, want);
                    if want.is_some() {
                        // Move to MRU position in the model.
                        let pos = model[set]
                            .entries
                            .iter()
                            .position(|(x, _)| *x == l)
                            .unwrap();
                        let e = model[set].entries.remove(pos);
                        model[set].entries.push(e);
                    }
                }
                ArrOp::Insert(l, s) => {
                    let set = (l % n_sets) as usize;
                    let present = model[set].entries.iter().any(|(x, _)| *x == l);
                    if !present && model[set].entries.len() < assoc {
                        arr.insert(LineNum(l), s);
                        model[set].entries.push((l, s));
                    }
                }
                ArrOp::Remove(l) => {
                    let set = (l % n_sets) as usize;
                    let got = arr.remove(LineNum(l));
                    let pos = model[set].entries.iter().position(|(x, _)| *x == l);
                    assert_eq!(got, pos.map(|p| model[set].entries[p].1));
                    if let Some(p) = pos {
                        model[set].entries.remove(p);
                    }
                }
                ArrOp::SetState(l, s) => {
                    let set = (l % n_sets) as usize;
                    let ok = arr.set_state(LineNum(l), s);
                    let pos = model[set].entries.iter().position(|(x, _)| *x == l);
                    assert_eq!(ok, pos.is_some());
                    if let Some(p) = pos {
                        model[set].entries[p].1 = s;
                    }
                }
                ArrOp::InsertEvicting(l, s) => {
                    let set = (l % n_sets) as usize;
                    let got = arr.insert_evicting(LineNum(l), s);
                    let pos = model[set].entries.iter().position(|(x, _)| *x == l);
                    let want = if let Some(p) = pos {
                        // Present: state updated in place, no LRU refresh.
                        model[set].entries[p].1 = s;
                        None
                    } else if model[set].entries.len() < assoc {
                        model[set].entries.push((l, s));
                        None
                    } else {
                        // Full: the front of the model vec is the LRU.
                        let victim = model[set].entries.remove(0);
                        model[set].entries.push((l, s));
                        Some(victim)
                    };
                    assert_eq!(got.map(|(l, s)| (l.0, s)), want);
                }
            }
            // Structural agreement after every op.
            assert_eq!(
                arr.len(),
                model.iter().map(|m| m.entries.len()).sum::<usize>()
            );
        }
        // LRU victims agree set by set.
        for s in 0..n_sets {
            let line = LineNum(s);
            let got = arr.lru_matching(line, |_, _| true).map(|(l, _)| l.0);
            let want = model[s as usize].entries.first().map(|(l, _)| *l);
            assert_eq!(got, want, "LRU mismatch in set {s}");
        }
    }
}

/// The AM never chooses to inject while a Shared replica is available
/// (paper victim priority), and a free slot always wins.
#[test]
fn am_victim_priority_specification() {
    let mut rng = Rng64::new(0xA11);
    for _case in 0..64 {
        let mut am = AttractionMemory::new(8, 4, VictimPolicy::SharedFirst);
        let n_fill = rng.below(64);
        for _ in 0..n_fill {
            let l = rng.below(32);
            if am.state(LineNum(l)).is_valid() {
                continue;
            }
            if let Victim::FreeSlot = am.make_room(LineNum(l)) {
                let st = match rng.below(3) {
                    0 => AmState::Shared,
                    1 => AmState::Owner,
                    _ => AmState::Exclusive,
                };
                am.insert(LineNum(l), st);
            }
        }
        let probe = rng.below(32);
        let line = LineNum(probe);
        if am.state(line).is_valid() {
            continue;
        }
        let set_states: Vec<AmState> = (0..32)
            .filter(|l| l % 8 == probe % 8)
            .map(|l| am.state(LineNum(l)))
            .filter(|s| s.is_valid())
            .collect();
        match am.make_room(line) {
            Victim::FreeSlot => assert!(set_states.len() < 4),
            Victim::DropShared(_) => {
                assert!(set_states.contains(&AmState::Shared));
                assert_eq!(set_states.len(), 4);
            }
            Victim::Inject(_, st) => {
                assert!(!set_states.contains(&AmState::Shared));
                assert!(st.is_responsible());
                assert_eq!(set_states.len(), 4);
            }
        }
    }
}

/// Accept policy: a node with room must offer a slot, the holder never
/// offers, and Invalid slots are preferred under the paper policy.
#[test]
fn am_accept_specification() {
    let mut rng = Rng64::new(0xACC);
    for _case in 0..64 {
        let n_shared = rng.below(5) as usize;
        let n_owned = rng.below(5) as usize;
        let mut am = AttractionMemory::new(1, 4, VictimPolicy::SharedFirst);
        let mut l = 1u64;
        for _ in 0..n_shared.min(4) {
            if am.make_room(LineNum(l)) == Victim::FreeSlot {
                am.insert(LineNum(l), AmState::Shared);
            }
            l += 1;
        }
        for _ in 0..n_owned {
            if am.make_room(LineNum(l)) != Victim::FreeSlot {
                break;
            }
            am.insert(LineNum(l), AmState::Owner);
            l += 1;
        }
        let slot = am.accept_slot(LineNum(0), AcceptPolicy::InvalidThenShared);
        let occupied = am.len();
        if occupied < 4 {
            assert_eq!(slot, Some(AcceptSlot::Invalid));
        } else if n_shared.min(4) > 0 {
            assert!(matches!(slot, Some(AcceptSlot::Shared(_))));
        } else {
            assert_eq!(slot, None);
        }
        // A holder never accepts its own line.
        let first = am.lines().next().map(|(line, _)| line);
        if let Some(line) = first {
            assert_eq!(am.accept_slot(line, AcceptPolicy::InvalidThenShared), None);
        }
    }
}
