//! Tiny dependency-free flag parser for the `coma` binary.
//!
//! Supports `--flag value`, `--flag=value` and bare subcommands; unknown
//! flags are errors so typos fail loudly.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    pub command: Option<String>,
    options: HashMap<String, String>,
}

impl Args {
    /// Parse an iterator of arguments (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(rest) = a.strip_prefix("--") {
                let (key, val) = match rest.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => {
                        let v = it.next().ok_or_else(|| format!("--{rest} needs a value"))?;
                        (rest.to_string(), v)
                    }
                };
                if out.options.insert(key.clone(), val).is_some() {
                    return Err(format!("--{key} given twice"));
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(format!("unexpected argument '{a}'"));
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Error on any option not in the allowed set (catches typos).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown option --{k} (allowed: {})",
                    allowed.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_flags() {
        let a = parse("run --app fft --ppn 4").unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("app"), Some("fft"));
        assert_eq!(a.get_or("ppn", 1usize).unwrap(), 4);
    }

    #[test]
    fn equals_syntax() {
        let a = parse("run --mp=81").unwrap();
        assert_eq!(a.get("mp"), Some("81"));
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse("run --app").is_err());
    }

    #[test]
    fn duplicate_flag_is_error() {
        assert!(parse("run --app fft --app lu").is_err());
    }

    #[test]
    fn unknown_flag_detected() {
        let a = parse("run --frobnicate 3").unwrap();
        assert!(a.expect_only(&["app"]).is_err());
        assert!(a.expect_only(&["frobnicate"]).is_ok());
    }

    #[test]
    fn default_used_when_absent() {
        let a = parse("run").unwrap();
        assert_eq!(a.get_or("ppn", 2usize).unwrap(), 2);
    }

    #[test]
    fn second_positional_is_error() {
        assert!(parse("run twice").is_err());
    }
}
