//! The `coma` subcommands.

use crate::args::Args;
use coma_sim::{run_simulation, MemoryModel, SimParams};
use coma_stats::{SimReport, Table};
use coma_types::{LatencyConfig, MemoryPressure};
use coma_workloads::{AppId, Scale};

pub const USAGE: &str = "\
coma — cluster-based COMA multiprocessor simulator

USAGE:
  coma list                              application catalog (Table 1)
  coma run     --app <name> [options]    one simulation, full report
  coma sweep   --app <name> --over <mp|ppn|assoc> [options]
  coma compare --app <name> [options]    1 vs 2 vs 4 processors per node
  coma record  --app <name> --trace <file> [options]   record a trace
  coma replay  --trace <file> [options]                simulate a trace
  coma verify  [--mode smoke|full] [--seed <n>]  protocol model check + fuzz

OPTIONS:
  --app <name>        application (see `coma list`)        [fft]
  --procs <n>         total processors (up to 256)         [16]
  --ppn <1|2|4>       processors per node                  [1]
  --groups <n>        cluster groups on the interconnect   [1]
  --levels <n>        directory levels above the groups    [0, or 1+ with --groups]
  --mp <6|50|75|81|87 or N/16>  memory pressure            [50]
  --assoc <n>         attraction-memory associativity      [4]
  --model <coma|numa|uma>  memory architecture             [coma]
  --latency <default|2xdram|4xdram|halfbus>                [default]
  --scale <paper|bench|smoke>  trace length                [bench]
  --seed <n>          workload seed                        [42]";

/// Parse a memory pressure: `81`, `87.5`, `13/16`, …
fn parse_mp(s: &str) -> Result<MemoryPressure, String> {
    if let Some((n, d)) = s.split_once('/') {
        let n: u32 = n
            .trim()
            .parse()
            .map_err(|_| format!("bad fraction '{s}'"))?;
        let d: u32 = d
            .trim()
            .parse()
            .map_err(|_| format!("bad fraction '{s}'"))?;
        if n == 0 || d == 0 || n > d {
            return Err(format!("memory pressure '{s}' out of (0,1]"));
        }
        return Ok(MemoryPressure::new(n, d));
    }
    match s {
        "6" | "6.25" => Ok(MemoryPressure::MP_6),
        "50" => Ok(MemoryPressure::MP_50),
        "75" => Ok(MemoryPressure::MP_75),
        "81" | "81.25" => Ok(MemoryPressure::MP_81),
        "87" | "87.5" => Ok(MemoryPressure::MP_87),
        _ => Err(format!(
            "memory pressure '{s}' — use 6/50/75/81/87 or a fraction like 13/16"
        )),
    }
}

fn parse_latency(s: &str) -> Result<LatencyConfig, String> {
    match s {
        "default" => Ok(LatencyConfig::paper_default()),
        "2xdram" => Ok(LatencyConfig::paper_double_dram()),
        "4xdram" => Ok(LatencyConfig::paper_quad_dram_double_ctrl()),
        "halfbus" => Ok(LatencyConfig::paper_half_bus()),
        _ => Err(format!("unknown latency config '{s}'")),
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "paper" => Ok(Scale::PAPER),
        "bench" => Ok(Scale::BENCH),
        "smoke" => Ok(Scale::SMOKE),
        _ => s
            .parse::<f64>()
            .map(Scale)
            .map_err(|_| format!("unknown scale '{s}'")),
    }
}

fn parse_model(s: &str) -> Result<MemoryModel, String> {
    match s {
        "coma" => Ok(MemoryModel::Coma),
        "numa" => Ok(MemoryModel::Numa),
        "uma" => Ok(MemoryModel::Uma),
        _ => Err(format!("unknown memory model '{s}'")),
    }
}

/// Shared option decoding for run/sweep/compare.
struct Common {
    app: AppId,
    params: SimParams,
    scale: Scale,
    seed: u64,
}

const COMMON_OPTS: &[&str] = &[
    "app", "procs", "ppn", "groups", "levels", "mp", "assoc", "model", "latency", "scale", "seed",
    "over", "trace",
];

fn common(args: &Args) -> Result<Common, String> {
    args.expect_only(COMMON_OPTS)?;
    let app: AppId = args.get("app").unwrap_or("fft").parse()?;
    let mut params = SimParams::default();
    params.machine.n_procs = args.get_or("procs", params.machine.n_procs)?;
    params.machine.procs_per_node = args.get_or("ppn", 1usize)?;
    let n_groups = args.get_or("groups", 1usize)?;
    // Default the level count to the shallowest legal tree for the
    // requested group count; --levels overrides for deeper fan-out.
    let levels = args.get_or("levels", usize::from(n_groups > 1))?;
    params.machine.topology = coma_types::Topology { n_groups, levels };
    params.machine.memory_pressure = parse_mp(args.get("mp").unwrap_or("50"))?;
    params.machine.am_assoc = args.get_or("assoc", 4usize)?;
    params.memory_model = parse_model(args.get("model").unwrap_or("coma"))?;
    params.latency = parse_latency(args.get("latency").unwrap_or("default"))?;
    // One validation pass covers all the machine-shape flags (divisible
    // ppn, group/level ranges, node-count ceiling) with real messages.
    params.machine.validate().map_err(|e| e.to_string())?;
    Ok(Common {
        app,
        params,
        scale: parse_scale(args.get("scale").unwrap_or("bench"))?,
        seed: args.get_or("seed", 42u64)?,
    })
}

fn simulate(c: &Common) -> SimReport {
    let wl = c.app.build(c.params.machine.n_procs, c.seed, c.scale);
    run_simulation(wl, &c.params)
}

/// `coma verify`
pub fn verify(args: &Args) -> Result<(), String> {
    args.expect_only(&["mode", "seed"])?;
    let smoke = match args.get("mode").unwrap_or("smoke") {
        "smoke" => true,
        "full" => false,
        other => return Err(format!("--mode must be smoke or full, got '{other}'")),
    };
    let seed = args.get_or("seed", 0xC0A_u64)?;
    if coma_verify::campaign::run(smoke, seed) {
        Ok(())
    } else {
        Err("protocol verification failed".into())
    }
}

/// `coma list`
pub fn list(args: &Args) -> Result<(), String> {
    args.expect_only(&[])?;
    let mut t = Table::new(vec!["name", "description", "ws (KB)"]);
    for app in AppId::ALL.into_iter().chain(AppId::TRAFFIC) {
        t.row(vec![
            app.name().to_string(),
            app.description().to_string(),
            format!("{}", app.ws_bytes() / 1024),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// `coma run`
pub fn run(args: &Args) -> Result<(), String> {
    let c = common(args)?;
    let r = simulate(&c);
    println!(
        "{} | {:?} | {} procs/node | MP {} | {}-way AM",
        c.app,
        c.params.memory_model,
        c.params.machine.procs_per_node,
        c.params.machine.memory_pressure,
        c.params.machine.am_assoc
    );
    // The canonical configuration hash — the sweep cache keys off this,
    // so two runs printing the same hash simulated the same machine.
    println!(
        "params hash      0x{:016x}",
        coma_sim::canon::config_hash(&c.params)
    );
    println!("execution time   {:>12.3} ms", r.exec_time_ns as f64 / 1e6);
    println!(
        "reads / writes   {:>12} / {}",
        r.counts.total_reads(),
        r.counts.total_writes()
    );
    println!("RNMr             {:>11.3} %", r.rnm_rate() * 100.0);
    println!(
        "bus traffic      {:>12} B (read {} / write {} / replace {})",
        r.traffic.total_bytes(),
        r.traffic.read_bytes,
        r.traffic.write_bytes,
        r.traffic.replace_bytes
    );
    println!("bus utilization  {:>11.1} %", r.bus_utilization() * 100.0);
    println!(
        "replacements     {:>12} injections, {} migrations, {} drops",
        r.injections, r.ownership_migrations, r.shared_drops
    );
    println!(
        "read latency     p50 {} ns | p90 {} ns | p99 {} ns | max {} ns",
        r.read_latency.quantile(0.50),
        r.read_latency.quantile(0.90),
        r.read_latency.quantile(0.99),
        r.read_latency.max_ns()
    );
    let f = r.avg_breakdown().fractions();
    println!(
        "time breakdown      busy {:.1}% | SLC {:.1}% | AM {:.1}% | remote {:.1}%",
        f[0] * 100.0,
        f[1] * 100.0,
        f[2] * 100.0,
        f[3] * 100.0
    );
    Ok(())
}

/// `coma sweep --over mp|ppn|assoc`
pub fn sweep(args: &Args) -> Result<(), String> {
    let mut c = common(args)?;
    let over = args.get("over").unwrap_or("mp").to_string();
    let mut t = Table::new(vec![
        over.as_str(),
        "exec (ms)",
        "RNMr",
        "bus bytes",
        "injections",
    ]);
    let mut points: Vec<(String, SimParams)> = Vec::new();
    match over.as_str() {
        "mp" => {
            for mp in MemoryPressure::PAPER_SWEEP {
                let mut p = c.params.clone();
                p.machine.memory_pressure = mp;
                points.push((mp.to_string(), p));
            }
        }
        "ppn" => {
            for ppn in [1usize, 2, 4] {
                let mut p = c.params.clone();
                p.machine.procs_per_node = ppn;
                points.push((ppn.to_string(), p));
            }
        }
        "assoc" => {
            for a in [1usize, 2, 4, 8, 16] {
                let mut p = c.params.clone();
                p.machine.am_assoc = a;
                points.push((format!("{a}-way"), p));
            }
        }
        other => return Err(format!("--over {other}: use mp, ppn or assoc")),
    }
    for (label, p) in points {
        c.params = p;
        let r = simulate(&c);
        t.row(vec![
            label,
            format!("{:.3}", r.exec_time_ns as f64 / 1e6),
            format!("{:.3}%", r.rnm_rate() * 100.0),
            r.traffic.total_bytes().to_string(),
            r.injections.to_string(),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// `coma compare` — clustering degrees side by side.
pub fn compare(args: &Args) -> Result<(), String> {
    let mut c = common(args)?;
    let mut t = Table::new(vec![
        "procs/node",
        "exec (ms)",
        "vs 1p",
        "RNMr",
        "bus bytes",
    ]);
    let mut base = None;
    for ppn in [1usize, 2, 4] {
        c.params.machine.procs_per_node = ppn;
        let r = simulate(&c);
        let b = *base.get_or_insert(r.exec_time_ns as f64);
        t.row(vec![
            ppn.to_string(),
            format!("{:.3}", r.exec_time_ns as f64 / 1e6),
            format!("{:.1}%", r.exec_time_ns as f64 / b * 100.0),
            format!("{:.3}%", r.rnm_rate() * 100.0),
            r.traffic.total_bytes().to_string(),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// `coma record --app <name> --trace <file>`
pub fn record(args: &Args) -> Result<(), String> {
    let c = common(args)?;
    let path = args.get("trace").ok_or("record needs --trace <file>")?;
    let wl = c.app.build(c.params.machine.n_procs, c.seed, c.scale);
    let stats = coma_workloads::record_to_file(wl, std::path::Path::new(path))
        .map_err(|e| format!("cannot write trace: {e}"))?;
    println!(
        "recorded {} ops ({} memory references) to {path}",
        stats.ops, stats.refs
    );
    Ok(())
}

/// `coma replay --trace <file>` — simulate a previously recorded trace.
pub fn replay(args: &Args) -> Result<(), String> {
    let c = common(args)?;
    let path = args.get("trace").ok_or("replay needs --trace <file>")?;
    let wl = coma_workloads::replay_from_file(std::path::Path::new(path))
        .map_err(|e| format!("cannot read trace: {e}"))?;
    let r = run_simulation(wl, &c.params);
    println!(
        "exec {:.3} ms | RNMr {:.3}% | bus {} B | injections {}",
        r.exec_time_ns as f64 / 1e6,
        r.rnm_rate() * 100.0,
        r.traffic.total_bytes(),
        r.injections
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mp_parsing() {
        assert_eq!(parse_mp("81").unwrap(), MemoryPressure::MP_81);
        assert_eq!(parse_mp("13/16").unwrap(), MemoryPressure::MP_81);
        assert!(parse_mp("0/16").is_err());
        assert!(parse_mp("101").is_err());
    }

    #[test]
    fn latency_parsing() {
        assert_eq!(parse_latency("2xdram").unwrap().dram_occ_ns, 50);
        assert!(parse_latency("turbo").is_err());
    }

    #[test]
    fn model_parsing() {
        assert_eq!(parse_model("numa").unwrap(), MemoryModel::Numa);
        assert!(parse_model("cache").is_err());
    }

    #[test]
    fn scale_parsing_accepts_floats() {
        assert_eq!(parse_scale("smoke").unwrap(), Scale::SMOKE);
        assert_eq!(parse_scale("0.5").unwrap(), Scale(0.5));
        assert!(parse_scale("big").is_err());
    }

    #[test]
    fn common_rejects_bad_ppn() {
        let args = crate::args::Args::parse(["run", "--ppn", "3"].map(String::from)).unwrap();
        assert!(common(&args).is_err());
    }

    #[test]
    fn common_accepts_hierarchical_shapes() {
        let args = crate::args::Args::parse(
            ["run", "--procs", "64", "--ppn", "2", "--groups", "4"].map(String::from),
        )
        .unwrap();
        let c = common(&args).unwrap();
        assert_eq!(c.params.machine.n_procs, 64);
        assert_eq!(c.params.machine.topology.n_groups, 4);
        assert_eq!(c.params.machine.topology.levels, 1);
    }

    #[test]
    fn common_rejects_bad_topology() {
        // 4 groups over 16 nodes is fine, but 3 groups does not divide.
        let args = crate::args::Args::parse(["run", "--groups", "3"].map(String::from)).unwrap();
        assert!(common(&args).is_err());
        // Levels deeper than log2(groups) are meaningless.
        let args =
            crate::args::Args::parse(["run", "--groups", "4", "--levels", "5"].map(String::from))
                .unwrap();
        assert!(common(&args).is_err());
    }

    #[test]
    fn run_command_smoke() {
        let args = crate::args::Args::parse(
            ["run", "--app", "water-n2", "--scale", "smoke"].map(String::from),
        )
        .unwrap();
        run(&args).unwrap();
    }

    #[test]
    fn compare_command_smoke() {
        let args = crate::args::Args::parse(
            [
                "compare", "--app", "water-sp", "--scale", "smoke", "--mp", "81",
            ]
            .map(String::from),
        )
        .unwrap();
        compare(&args).unwrap();
    }

    #[test]
    fn record_replay_roundtrip() {
        let dir = std::env::temp_dir().join("coma-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let p = path.to_str().unwrap();
        let rec = crate::args::Args::parse(
            [
                "record", "--app", "water-n2", "--scale", "smoke", "--trace", p,
            ]
            .map(String::from),
        )
        .unwrap();
        record(&rec).unwrap();
        let rep =
            crate::args::Args::parse(["replay", "--trace", p, "--ppn", "4"].map(String::from))
                .unwrap();
        replay(&rep).unwrap();
    }

    #[test]
    fn sweep_rejects_unknown_axis() {
        let args = crate::args::Args::parse(
            ["sweep", "--over", "flux", "--scale", "smoke"].map(String::from),
        )
        .unwrap();
        assert!(sweep(&args).is_err());
    }
}
