//! `coma` — command-line driver for the cluster-based COMA simulator.
//!
//! ```text
//! coma list                                   # Table-1 application catalog
//! coma run  --app fft --ppn 4 --mp 81         # one simulation, full report
//! coma sweep --app barnes --over mp           # sweep MP (or ppn / assoc)
//! coma compare --app ocean-non --mp 81        # 1 vs 2 vs 4 procs/node
//! ```
//!
//! Common options: `--mp <percent of 16ths: 6|50|75|81|87 or N/16>`,
//! `--ppn 1|2|4`, `--assoc N`, `--model coma|numa|uma`,
//! `--latency default|2xdram|4xdram|halfbus`, `--scale paper|bench|smoke`,
//! `--seed N`.

mod args;
mod commands;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_deref() {
        Some("list") => commands::list(&parsed),
        Some("run") => commands::run(&parsed),
        Some("sweep") => commands::sweep(&parsed),
        Some("compare") => commands::compare(&parsed),
        Some("record") => commands::record(&parsed),
        Some("replay") => commands::replay(&parsed),
        Some("verify") => commands::verify(&parsed),
        Some("help") | None => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
