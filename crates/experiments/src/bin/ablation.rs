//! Design-choice ablations (DESIGN.md §8) — quantifying the protocol
//! decisions the paper takes as given:
//!
//! * victim priority (Shared-first vs strict LRU),
//! * injection accept priority (Invalid-then-Shared vs Shared-then-Invalid
//!   vs first-fit),
//! * write-buffer depth under release consistency (0 / 2 / 10 / 64),
//! * intra-node dirty SLC-to-SLC transfers on/off.

use coma_cache::{AcceptPolicy, VictimPolicy};
use coma_experiments::{run_sweep, ExpCtx, RunSpec};
use coma_stats::Table;
use coma_types::MemoryPressure;
use coma_workloads::AppId;

const APPS: [AppId; 4] = [AppId::Fft, AppId::OceanNon, AppId::Barnes, AppId::WaterN2];

const VARIANTS: [&str; 7] = [
    "victim: strict LRU",
    "accept: shared-first",
    "accept: first-fit",
    "WB depth 0 (blocking writes)",
    "WB depth 2",
    "WB depth 64",
    "no intra-node transfers",
];

fn base(app: AppId) -> RunSpec {
    RunSpec::new(app, 4, MemoryPressure::MP_81)
}

fn variant(app: AppId, k: usize) -> RunSpec {
    base(app).tweak(|p| match k {
        0 => p.victim_policy = VictimPolicy::StrictLru,
        1 => p.accept_policy = AcceptPolicy::SharedThenInvalid,
        2 => p.accept_policy = AcceptPolicy::FirstFit,
        3 => p.machine.write_buffer_entries = 0,
        4 => p.machine.write_buffer_entries = 2,
        5 => p.machine.write_buffer_entries = 64,
        6 => p.machine.intra_node_transfers = false,
        _ => unreachable!(),
    })
}

fn main() {
    let ctx = ExpCtx::from_env();

    println!("Ablations at 4-way clustering, 81.25% MP\n");

    // One matrix: per app, the baseline then the 7 variants (32 cells).
    let mut specs: Vec<RunSpec> = Vec::new();
    for app in APPS {
        specs.push(base(app));
        for k in 0..VARIANTS.len() {
            specs.push(variant(app, k));
        }
    }
    let sweep = run_sweep(&ctx, "ablation", &specs);
    let rows_per_app = 1 + VARIANTS.len();

    let mut t = Table::new(vec![
        "Application",
        "variant",
        "exec vs base",
        "traffic vs base",
    ]);
    for (a, app) in APPS.into_iter().enumerate() {
        let row0 = a * rows_per_app;
        let base_t = sweep.u64("exec_time_ns", row0);
        let base_b = sweep.u64("total_bytes", row0);
        for (k, name) in VARIANTS.into_iter().enumerate() {
            let row = row0 + 1 + k;
            let exec = sweep.u64("exec_time_ns", row);
            let bytes = sweep.u64("total_bytes", row);
            t.row(vec![
                app.name().to_string(),
                name.to_string(),
                format!("{:+.1}%", (exec as f64 / base_t as f64 - 1.0) * 100.0),
                format!("{:+.1}%", (bytes as f64 / base_b as f64 - 1.0) * 100.0),
            ]);
        }
    }
    println!("{}", t.render());
    ctx.write_csv("ablation", &t);
}
