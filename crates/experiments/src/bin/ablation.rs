//! Design-choice ablations (DESIGN.md §8) — quantifying the protocol
//! decisions the paper takes as given:
//!
//! * victim priority (Shared-first vs strict LRU),
//! * injection accept priority (Invalid-then-Shared vs Shared-then-Invalid
//!   vs first-fit),
//! * write-buffer depth under release consistency (0 / 2 / 10 / 64),
//! * intra-node dirty SLC-to-SLC transfers on/off.

use coma_cache::{AcceptPolicy, VictimPolicy};
use coma_experiments::ExpCtx;
use coma_sim::{run_simulation, SimParams};
use coma_stats::Table;
use coma_types::MemoryPressure;
use coma_workloads::AppId;

const APPS: [AppId; 4] = [AppId::Fft, AppId::OceanNon, AppId::Barnes, AppId::WaterN2];

fn run(ctx: &ExpCtx, app: AppId, f: impl Fn(&mut SimParams)) -> (u64, u64) {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 4;
    params.machine.memory_pressure = MemoryPressure::MP_81;
    f(&mut params);
    let wl = app.build(16, ctx.seed, ctx.scale);
    let r = run_simulation(wl, &params);
    (r.exec_time_ns, r.traffic.total_bytes())
}

fn main() {
    let ctx = ExpCtx::from_env();

    println!("Ablations at 4-way clustering, 81.25% MP\n");

    let mut t = Table::new(vec![
        "Application",
        "variant",
        "exec vs base",
        "traffic vs base",
    ]);
    for app in APPS {
        let (base_t, base_b) = run(&ctx, app, |_| {});
        let mut row = |name: &str, r: (u64, u64)| {
            t.row(vec![
                app.name().to_string(),
                name.to_string(),
                format!("{:+.1}%", (r.0 as f64 / base_t as f64 - 1.0) * 100.0),
                format!("{:+.1}%", (r.1 as f64 / base_b as f64 - 1.0) * 100.0),
            ]);
        };
        row(
            "victim: strict LRU",
            run(&ctx, app, |p| p.victim_policy = VictimPolicy::StrictLru),
        );
        row(
            "accept: shared-first",
            run(&ctx, app, |p| {
                p.accept_policy = AcceptPolicy::SharedThenInvalid
            }),
        );
        row(
            "accept: first-fit",
            run(&ctx, app, |p| p.accept_policy = AcceptPolicy::FirstFit),
        );
        row(
            "WB depth 0 (blocking writes)",
            run(&ctx, app, |p| p.machine.write_buffer_entries = 0),
        );
        row(
            "WB depth 2",
            run(&ctx, app, |p| p.machine.write_buffer_entries = 2),
        );
        row(
            "WB depth 64",
            run(&ctx, app, |p| p.machine.write_buffer_entries = 64),
        );
        row(
            "no intra-node transfers",
            run(&ctx, app, |p| p.machine.intra_node_transfers = false),
        );
    }
    println!("{}", t.render());
    ctx.write_csv("ablation", &t);
}
