//! Run every experiment in sequence (Table 1, Figures 2–5, sensitivity,
//! thresholds, ablations) by invoking the sibling binaries.
//!
//! The siblings are looked up next to this executable, so they exist iff
//! the whole package was built (`cargo build --release -p
//! coma-experiments` or `cargo run ... --bin all`, which builds every
//! bin). A missing sibling aborts up front with the build command rather
//! than an opaque I/O panic halfway through the sweep.
//!
//! The experiment knobs — `COMA_SCALE`, `COMA_SEED`, `COMA_OUT`,
//! `COMA_THREADS` — are forwarded to each child explicitly, so the whole
//! sweep runs under one configuration even if the environment changes
//! mid-run or a child is spawned through a wrapper that scrubs its
//! environment.

use std::process::{Command, ExitCode};

const BINS: [&str; 10] = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "sensitivity",
    "thresholds",
    "coma_vs_numa",
    "inclusion",
    "ablation",
];

/// The knobs every experiment binary reads (see `coma_experiments` docs).
const ENV_KNOBS: [&str; 4] = ["COMA_SCALE", "COMA_SEED", "COMA_OUT", "COMA_THREADS"];

fn main() -> ExitCode {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let ext = std::env::consts::EXE_SUFFIX;

    // Verify every sibling exists before running any: failing on the
    // ninth binary after an hour of sweeps is the worst outcome.
    let missing: Vec<&str> = BINS
        .iter()
        .copied()
        .filter(|bin| !dir.join(format!("{bin}{ext}")).is_file())
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "error: experiment binaries not built: {}\n\
             build them all first:\n    cargo build --release -p coma-experiments",
            missing.join(", ")
        );
        return ExitCode::FAILURE;
    }

    let knobs: Vec<(&str, String)> = ENV_KNOBS
        .iter()
        .filter_map(|k| std::env::var(*k).ok().map(|v| (*k, v)))
        .collect();
    if !knobs.is_empty() {
        let desc: Vec<String> = knobs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("[all] forwarding {}", desc.join(" "));
    }

    for bin in BINS {
        println!("\n=== {bin} ===\n");
        let mut cmd = Command::new(dir.join(format!("{bin}{ext}")));
        for (k, v) in &knobs {
            cmd.env(k, v);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("error: {bin} exited with {status}; aborting the sweep");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: failed to launch {bin}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("\n[all] {} experiments completed", BINS.len());
    ExitCode::SUCCESS
}
