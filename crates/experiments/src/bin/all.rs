//! Run every experiment in sequence (Table 1, Figures 2–5, sensitivity,
//! thresholds, ablations) by invoking the sibling binaries.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in [
        "table1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "sensitivity",
        "thresholds",
        "coma_vs_numa",
        "inclusion",
        "ablation",
    ] {
        println!("\n=== {bin} ===\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
