//! Run every experiment in sequence (Table 1, Figures 2–5, sensitivity,
//! thresholds, ablations) by invoking the sibling binaries.
//!
//! The siblings are looked up next to this executable, so they exist iff
//! the whole package was built (`cargo build --release -p
//! coma-experiments` or `cargo run ... --bin all`, which builds every
//! bin). A missing sibling aborts up front with the build command rather
//! than an opaque I/O panic halfway through the sweep.
//!
//! The experiment knobs — `COMA_SCALE`, `COMA_SEED`, `COMA_OUT`,
//! `COMA_THREADS`, `COMA_NO_CACHE` — are forwarded to each child
//! explicitly, so the whole sweep runs under one configuration even if
//! the environment changes mid-run or a child is spawned through a
//! wrapper that scrubs its environment. `--jobs N` and `--no-cache` are
//! accepted and forwarded as the corresponding variables.
//!
//! After the run, the per-sweep cache statistics the children appended to
//! `<out>/cache/stats.log` are summed and printed, so a warm rerun shows
//! its hit rate at a glance.

use std::process::{Command, ExitCode};
use std::time::Instant;

const BINS: [&str; 11] = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "sensitivity",
    "thresholds",
    "coma_vs_numa",
    "inclusion",
    "ablation",
    "traffic",
];

/// The knobs every experiment binary reads (see `coma_experiments` docs).
const ENV_KNOBS: [&str; 5] = [
    "COMA_SCALE",
    "COMA_SEED",
    "COMA_OUT",
    "COMA_THREADS",
    "COMA_NO_CACHE",
];

/// Sum the `<name> <hits> <misses> <failed>` lines of a stats log.
fn tally_stats(text: &str) -> (u64, u64, u64) {
    let (mut hits, mut misses, mut failed) = (0, 0, 0);
    for line in text.lines() {
        let mut f = line.split_whitespace().skip(1);
        hits += f.next().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        misses += f.next().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        failed += f.next().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    }
    (hits, misses, failed)
}

fn main() -> ExitCode {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let ext = std::env::consts::EXE_SUFFIX;

    // Verify every sibling exists before running any: failing on the
    // ninth binary after an hour of sweeps is the worst outcome.
    let missing: Vec<&str> = BINS
        .iter()
        .copied()
        .filter(|bin| !dir.join(format!("{bin}{ext}")).is_file())
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "error: experiment binaries not built: {}\n\
             build them all first:\n    cargo build --release -p coma-experiments",
            missing.join(", ")
        );
        return ExitCode::FAILURE;
    }

    let mut knobs: Vec<(&str, String)> = ENV_KNOBS
        .iter()
        .filter_map(|k| std::env::var(*k).ok().map(|v| (*k, v)))
        .collect();
    // Translate our own flags into the forwarded environment.
    let mut args = std::env::args().skip(1).peekable();
    let set = |knobs: &mut Vec<(&str, String)>, key: &'static str, val: String| {
        knobs.retain(|(k, _)| *k != key);
        knobs.push((key, val));
    };
    while let Some(a) = args.next() {
        if a == "--no-cache" {
            set(&mut knobs, "COMA_NO_CACHE", "1".to_string());
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            set(&mut knobs, "COMA_THREADS", v.to_string());
        } else if a == "--jobs" {
            if let Some(v) = args.next() {
                set(&mut knobs, "COMA_THREADS", v);
            }
        }
    }
    if !knobs.is_empty() {
        let desc: Vec<String> = knobs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("[all] forwarding {}", desc.join(" "));
    }

    // The children append their cache statistics to this log; remember
    // how long it already is so only this run's lines are summed.
    let out_dir = knobs
        .iter()
        .find(|(k, _)| *k == "COMA_OUT")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "results".to_string());
    let stats_log = std::path::Path::new(&out_dir)
        .join("cache")
        .join("stats.log");
    let log_start = std::fs::metadata(&stats_log).map(|m| m.len()).unwrap_or(0);

    let started = Instant::now();
    for bin in BINS {
        println!("\n=== {bin} ===\n");
        let mut cmd = Command::new(dir.join(format!("{bin}{ext}")));
        for (k, v) in &knobs {
            cmd.env(k, v);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("error: {bin} exited with {status}; aborting the sweep");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: failed to launch {bin}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = started.elapsed();

    println!(
        "\n[all] {} experiments completed in {:.1}s",
        BINS.len(),
        elapsed.as_secs_f64()
    );
    if let Ok(text) = std::fs::read_to_string(&stats_log) {
        let this_run = &text[usize::try_from(log_start).unwrap_or(0).min(text.len())..];
        let (hits, misses, failed) = tally_stats(this_run);
        let total = hits + misses + failed;
        if total > 0 {
            println!(
                "[all] result cache: {hits}/{total} cells served from cache, {misses} computed{}",
                if failed > 0 {
                    format!(", {failed} failed")
                } else {
                    String::new()
                }
            );
        }
    }
    ExitCode::SUCCESS
}
