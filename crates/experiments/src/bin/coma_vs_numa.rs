//! COMA vs CC-NUMA vs UMA — the comparison the paper's Section 2
//! motivates but does not plot: COMA's migration/replication removes most
//! remote accesses at sane memory pressures, while at very high pressure
//! its replacement overhead erodes the advantage "thus removing much of
//! the potential performance benefits offered by the COMA over NUMA and
//! UMA systems".
//!
//! NUMA/UMA performance is memory-pressure-independent (the extra DRAM is
//! simply unused), so the COMA columns sweep MP while the baselines give
//! one number each. All 36 cells (6 apps × (4 COMA pressures + 2
//! baselines)) run as one sweep matrix.

use coma_experiments::{fig5_latency, run_sweep, ExpCtx, RunSpec};
use coma_sim::MemoryModel;
use coma_stats::Table;
use coma_types::MemoryPressure;
use coma_workloads::AppId;

const APPS: [AppId; 6] = [
    AppId::Fft,
    AppId::OceanCont,
    AppId::OceanNon,
    AppId::Raytrace,
    AppId::Barnes,
    AppId::WaterN2,
];

fn main() {
    let ctx = ExpCtx::from_env();

    // Per app: the 4 COMA pressure cells, then the NUMA and UMA baselines
    // (which use the default machine — pressure is irrelevant to them).
    let mut specs: Vec<RunSpec> = Vec::new();
    for app in APPS {
        for mp in MemoryPressure::PAPER_SWEEP {
            if mp == MemoryPressure::MP_75 {
                continue;
            }
            specs.push(RunSpec::new(app, 1, mp).with_latency(fig5_latency()));
        }
        for model in [MemoryModel::Numa, MemoryModel::Uma] {
            specs.push(
                RunSpec::new(app, 1, MemoryPressure::MP_50)
                    .with_latency(fig5_latency())
                    .with_model(model),
            );
        }
    }
    let sweep = run_sweep(&ctx, "coma_vs_numa", &specs);
    let rows_per_app = 6;

    let mut t = Table::new(vec![
        "Application",
        "COMA @6.25%",
        "COMA @50%",
        "COMA @81.25%",
        "COMA @87.5%",
        "NUMA",
        "UMA",
    ]);
    for (a, app) in APPS.into_iter().enumerate() {
        let row0 = a * rows_per_app;
        let numa = sweep.u64("exec_time_ns", row0 + 4) as f64;
        let uma = sweep.u64("exec_time_ns", row0 + 5) as f64;
        let base = numa; // normalize everything to NUMA = 100%
        let mut cells = vec![app.name().to_string()];
        for k in 0..4 {
            let exec = sweep.u64("exec_time_ns", row0 + k);
            cells.push(format!("{:.0}%", exec as f64 / base * 100.0));
        }
        cells.push("100%".to_string());
        cells.push(format!("{:.0}%", uma / base * 100.0));
        t.row(cells);
    }
    println!("COMA vs CC-NUMA vs UMA execution time (single-processor nodes,");
    println!("doubled DRAM bandwidth; NUMA = 100%, lower is better)\n");
    println!("{}", t.render());
    println!("COMA's replication advantage shrinks as memory pressure rises;");
    println!("NUMA/UMA are pressure-independent (their spare DRAM is wasted).");
    ctx.write_csv("coma_vs_numa", &t);
}
