//! COMA vs CC-NUMA vs UMA — the comparison the paper's Section 2
//! motivates but does not plot: COMA's migration/replication removes most
//! remote accesses at sane memory pressures, while at very high pressure
//! its replacement overhead erodes the advantage "thus removing much of
//! the potential performance benefits offered by the COMA over NUMA and
//! UMA systems".
//!
//! NUMA/UMA performance is memory-pressure-independent (the extra DRAM is
//! simply unused), so the COMA columns sweep MP while the baselines give
//! one number each.

use coma_experiments::{fig5_latency, run_grid, ExpCtx, RunSpec};
use coma_sim::{run_simulation, MemoryModel, SimParams};
use coma_stats::Table;
use coma_types::MemoryPressure;
use coma_workloads::AppId;

const APPS: [AppId; 6] = [
    AppId::Fft,
    AppId::OceanCont,
    AppId::OceanNon,
    AppId::Raytrace,
    AppId::Barnes,
    AppId::WaterN2,
];

fn baseline(ctx: &ExpCtx, app: AppId, model: MemoryModel) -> u64 {
    let params = SimParams {
        memory_model: model,
        latency: fig5_latency(),
        ..Default::default()
    };
    let wl = app.build(16, ctx.seed, ctx.scale);
    run_simulation(wl, &params).exec_time_ns
}

fn main() {
    let ctx = ExpCtx::from_env();

    let mut t = Table::new(vec![
        "Application",
        "COMA @6.25%",
        "COMA @50%",
        "COMA @81.25%",
        "COMA @87.5%",
        "NUMA",
        "UMA",
    ]);
    for app in APPS {
        let specs: Vec<RunSpec> = MemoryPressure::PAPER_SWEEP
            .into_iter()
            .filter(|mp| *mp != MemoryPressure::MP_75)
            .map(|mp| RunSpec::new(app, 1, mp).with_latency(fig5_latency()))
            .collect();
        let reports = run_grid(&ctx, &specs);
        let numa = baseline(&ctx, app, MemoryModel::Numa) as f64;
        let uma = baseline(&ctx, app, MemoryModel::Uma) as f64;
        let base = numa; // normalize everything to NUMA = 100%
        let mut cells = vec![app.name().to_string()];
        for r in &reports {
            cells.push(format!("{:.0}%", r.exec_time_ns as f64 / base * 100.0));
        }
        cells.push("100%".to_string());
        cells.push(format!("{:.0}%", uma / base * 100.0));
        t.row(cells);
    }
    println!("COMA vs CC-NUMA vs UMA execution time (single-processor nodes,");
    println!("doubled DRAM bandwidth; NUMA = 100%, lower is better)\n");
    println!("{}", t.render());
    println!("COMA's replication advantage shrinks as memory pressure rises;");
    println!("NUMA/UMA are pressure-independent (their spare DRAM is wasted).");
    ctx.write_csv("coma_vs_numa", &t);
}
