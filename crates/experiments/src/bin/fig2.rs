//! Figure 2 — read node miss rate at low memory pressure (6.25 %) for
//! 2- and 4-way clustering, relative to single-processor nodes.
//!
//! Paper result: clustering reduces the RNMr for every application;
//! average relative RNMr ≈ 82 % (2-way) and ≈ 62 % (4-way).

use coma_experiments::{run_sweep, ExpCtx, RunSpec};
use coma_stats::{Bar, BarChart, Table};
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();
    let mp = MemoryPressure::MP_6;

    let specs: Vec<RunSpec> = AppId::ALL
        .into_iter()
        .flat_map(|app| [1usize, 2, 4].map(|ppn| RunSpec::new(app, ppn, mp)))
        .collect();
    let sweep = run_sweep(&ctx, "fig2", &specs);

    let mut t = Table::new(vec![
        "Application",
        "RNMr 1p",
        "RNMr 2p",
        "RNMr 4p",
        "rel 2p",
        "rel 4p",
    ]);
    let (mut sum2, mut sum4) = (0.0, 0.0);
    let mut chart = BarChart::new(
        "Figure 2: relative read node miss rate at 6.25% memory pressure",
        vec!["relative RNMr".into()],
        "% of 1-processor-node RNMr",
    );
    for (i, app) in AppId::ALL.into_iter().enumerate() {
        let r1 = sweep.f64("rnm_rate", 3 * i);
        let r2 = sweep.f64("rnm_rate", 3 * i + 1);
        let r4 = sweep.f64("rnm_rate", 3 * i + 2);
        sum2 += r2 / r1;
        sum4 += r4 / r1;
        let g = chart.group(app.name());
        for (label, v) in [("2p", r2 / r1), ("4p", r4 / r1)] {
            g.bars.push(Bar {
                label: label.to_string(),
                segments: vec![v * 100.0],
            });
        }
        t.row(vec![
            app.name().to_string(),
            format!("{:.3}%", r1 * 100.0),
            format!("{:.3}%", r2 * 100.0),
            format!("{:.3}%", r4 * 100.0),
            format!("{:.1}%", r2 / r1 * 100.0),
            format!("{:.1}%", r4 / r1 * 100.0),
        ]);
    }
    let n = AppId::ALL.len() as f64;
    println!("Figure 2: relative read node miss rate at {mp} memory pressure\n");
    println!("{}", t.render());
    println!(
        "average relative RNMr: 2-way {:.1}%  4-way {:.1}%   (paper: 82% / 62%)",
        sum2 / n * 100.0,
        sum4 / n * 100.0
    );
    ctx.write_csv("fig2", &t);
    ctx.write_svg("fig2", &chart);
}
