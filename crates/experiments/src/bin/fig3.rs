//! Figure 3 — global bus traffic (read / write / replacement) for 1- and
//! 4-processor nodes at 6.25 %, 50 %, 75 %, 81.25 % and 87.5 % memory
//! pressure, for the eight applications where clustering is consistently
//! effective.
//!
//! As in the paper, bars are normalized per application to the largest
//! bar (100 %).

use coma_experiments::{run_grid, ExpCtx, RunSpec};
use coma_stats::{Bar, BarChart, Table};
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();
    let mps = MemoryPressure::PAPER_SWEEP;

    let mut t = Table::new(vec![
        "Application",
        "ppn",
        "MP",
        "read%",
        "write%",
        "replace%",
        "total%",
        "bytes",
    ]);
    let mut chart = BarChart::new(
        "Figure 3: traffic for 1 and 4-processor nodes",
        vec!["read".into(), "write".into(), "replace".into()],
        "% of largest bar",
    );
    for app in AppId::FIG3_GROUP {
        let specs: Vec<RunSpec> = [1usize, 4]
            .into_iter()
            .flat_map(|ppn| mps.map(|mp| RunSpec::new(app, ppn, mp)))
            .collect();
        let reports = run_grid(&ctx, &specs);
        let max = reports
            .iter()
            .map(|r| r.traffic.total_bytes())
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let g = chart.group(app.name());
        for (spec, r) in specs.iter().zip(&reports) {
            let tr = &r.traffic;
            g.bars.push(Bar {
                label: format!("{}p@{}", spec.procs_per_node, spec.memory_pressure),
                segments: vec![
                    tr.read_bytes as f64 / max * 100.0,
                    tr.write_bytes as f64 / max * 100.0,
                    tr.replace_bytes as f64 / max * 100.0,
                ],
            });
            t.row(vec![
                app.name().to_string(),
                spec.procs_per_node.to_string(),
                spec.memory_pressure.to_string(),
                format!("{:.1}", tr.read_bytes as f64 / max * 100.0),
                format!("{:.1}", tr.write_bytes as f64 / max * 100.0),
                format!("{:.1}", tr.replace_bytes as f64 / max * 100.0),
                format!("{:.1}", tr.total_bytes() as f64 / max * 100.0),
                tr.total_bytes().to_string(),
            ]);
        }
    }
    println!("Figure 3: traffic for 1 and 4-processor nodes across memory pressures");
    println!("(read/write/replace segments, % of each application's largest bar)\n");
    println!("{}", t.render());
    ctx.write_csv("fig3", &t);
    ctx.write_svg("fig3", &chart);
}
