//! Figure 3 — global bus traffic (read / write / replacement) for 1- and
//! 4-processor nodes at 6.25 %, 50 %, 75 %, 81.25 % and 87.5 % memory
//! pressure, for the eight applications where clustering is consistently
//! effective.
//!
//! As in the paper, bars are normalized per application to the largest
//! bar (100 %).

use coma_experiments::{run_sweep, ExpCtx, RunSpec};
use coma_stats::{Bar, BarChart, Table};
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();
    let mps = MemoryPressure::PAPER_SWEEP;

    // One matrix for the whole figure, app-major: 10 rows per application
    // (2 clustering degrees × 5 memory pressures).
    let specs: Vec<RunSpec> = AppId::FIG3_GROUP
        .into_iter()
        .flat_map(|app| {
            [1usize, 4]
                .into_iter()
                .flat_map(move |ppn| mps.map(move |mp| RunSpec::new(app, ppn, mp)))
        })
        .collect();
    let sweep = run_sweep(&ctx, "fig3", &specs);
    let rows_per_app = 2 * mps.len();

    let mut t = Table::new(vec![
        "Application",
        "ppn",
        "MP",
        "read%",
        "write%",
        "replace%",
        "total%",
        "bytes",
    ]);
    let mut chart = BarChart::new(
        "Figure 3: traffic for 1 and 4-processor nodes",
        vec!["read".into(), "write".into(), "replace".into()],
        "% of largest bar",
    );
    for (a, app) in AppId::FIG3_GROUP.into_iter().enumerate() {
        let rows = a * rows_per_app..(a + 1) * rows_per_app;
        let max = rows
            .clone()
            .map(|row| sweep.u64("total_bytes", row))
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let g = chart.group(app.name());
        for row in rows {
            let spec = sweep.spec(row);
            let read = sweep.u64("read_bytes", row);
            let write = sweep.u64("write_bytes", row);
            let replace = sweep.u64("replace_bytes", row);
            let total = sweep.u64("total_bytes", row);
            g.bars.push(Bar {
                label: format!("{}p@{}", spec.procs_per_node(), spec.memory_pressure()),
                segments: vec![
                    read as f64 / max * 100.0,
                    write as f64 / max * 100.0,
                    replace as f64 / max * 100.0,
                ],
            });
            t.row(vec![
                app.name().to_string(),
                spec.procs_per_node().to_string(),
                spec.memory_pressure().to_string(),
                format!("{:.1}", read as f64 / max * 100.0),
                format!("{:.1}", write as f64 / max * 100.0),
                format!("{:.1}", replace as f64 / max * 100.0),
                format!("{:.1}", total as f64 / max * 100.0),
                total.to_string(),
            ]);
        }
    }
    println!("Figure 3: traffic for 1 and 4-processor nodes across memory pressures");
    println!("(read/write/replace segments, % of each application's largest bar)\n");
    println!("{}", t.render());
    ctx.write_csv("fig3", &t);
    ctx.write_svg("fig3", &chart);
}
