//! Figure 4 — traffic for the six applications that develop conflict
//! misses at very high memory pressure (Barnes, FMM, LU-cont, Radiosity,
//! Raytrace, Volrend): the Figure 3 series **plus** two extra bars at
//! 87.5 % MP with 8-way-associative attraction memories.
//!
//! Paper result: the 8-way bars shrink the 87.5 % traffic dramatically,
//! identifying AM conflict misses as the cause (except LU-cont, where
//! associativity explains only part of the increase).

use coma_experiments::{run_sweep, ExpCtx, RunSpec};
use coma_stats::{Bar, BarChart, Table};
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();
    let mps = MemoryPressure::PAPER_SWEEP;

    // One matrix for the whole figure, app-major: 12 rows per application
    // (2 clustering degrees × (5 pressures + the extra 8-way 87.5% bar)).
    let mut specs: Vec<RunSpec> = Vec::new();
    for app in AppId::FIG4_GROUP {
        for ppn in [1usize, 4] {
            for mp in mps {
                specs.push(RunSpec::new(app, ppn, mp));
                if mp == MemoryPressure::MP_87 {
                    // The extra 8-way bar right after the normal 87.5% bar.
                    specs.push(RunSpec::new(app, ppn, mp).with_assoc(8));
                }
            }
        }
    }
    let sweep = run_sweep(&ctx, "fig4", &specs);
    let rows_per_app = 2 * (mps.len() + 1);

    let mut t = Table::new(vec![
        "Application",
        "ppn",
        "MP",
        "assoc",
        "read%",
        "write%",
        "replace%",
        "total%",
        "bytes",
    ]);
    let mut chart = BarChart::new(
        "Figure 4: traffic for the conflict-miss applications (with 8-way bars)",
        vec!["read".into(), "write".into(), "replace".into()],
        "% of largest bar",
    );
    for (a, app) in AppId::FIG4_GROUP.into_iter().enumerate() {
        let rows = a * rows_per_app..(a + 1) * rows_per_app;
        let max = rows
            .clone()
            .map(|row| sweep.u64("total_bytes", row))
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let g = chart.group(app.name());
        for row in rows {
            let spec = sweep.spec(row);
            let read = sweep.u64("read_bytes", row);
            let write = sweep.u64("write_bytes", row);
            let replace = sweep.u64("replace_bytes", row);
            let total = sweep.u64("total_bytes", row);
            g.bars.push(Bar {
                label: format!(
                    "{}p@{}{}",
                    spec.procs_per_node(),
                    spec.memory_pressure(),
                    if spec.am_assoc() == 8 { "/8w" } else { "" }
                ),
                segments: vec![
                    read as f64 / max * 100.0,
                    write as f64 / max * 100.0,
                    replace as f64 / max * 100.0,
                ],
            });
            t.row(vec![
                app.name().to_string(),
                spec.procs_per_node().to_string(),
                spec.memory_pressure().to_string(),
                format!("{}-way", spec.am_assoc()),
                format!("{:.1}", read as f64 / max * 100.0),
                format!("{:.1}", write as f64 / max * 100.0),
                format!("{:.1}", replace as f64 / max * 100.0),
                format!("{:.1}", total as f64 / max * 100.0),
                total.to_string(),
            ]);
        }
    }
    println!("Figure 4: traffic for the conflict-miss applications, with 8-way");
    println!("associativity bars at 87.5% MP\n");
    println!("{}", t.render());
    ctx.write_csv("fig4", &t);
    ctx.write_svg("fig4", &chart);
}
