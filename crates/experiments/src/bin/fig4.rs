//! Figure 4 — traffic for the six applications that develop conflict
//! misses at very high memory pressure (Barnes, FMM, LU-cont, Radiosity,
//! Raytrace, Volrend): the Figure 3 series **plus** two extra bars at
//! 87.5 % MP with 8-way-associative attraction memories.
//!
//! Paper result: the 8-way bars shrink the 87.5 % traffic dramatically,
//! identifying AM conflict misses as the cause (except LU-cont, where
//! associativity explains only part of the increase).

use coma_experiments::{run_grid, ExpCtx, RunSpec};
use coma_stats::{Bar, BarChart, Table};
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();
    let mps = MemoryPressure::PAPER_SWEEP;

    let mut t = Table::new(vec![
        "Application",
        "ppn",
        "MP",
        "assoc",
        "read%",
        "write%",
        "replace%",
        "total%",
        "bytes",
    ]);
    let mut chart = BarChart::new(
        "Figure 4: traffic for the conflict-miss applications (with 8-way bars)",
        vec!["read".into(), "write".into(), "replace".into()],
        "% of largest bar",
    );
    for app in AppId::FIG4_GROUP {
        let mut specs: Vec<RunSpec> = Vec::new();
        for ppn in [1usize, 4] {
            for mp in mps {
                specs.push(RunSpec::new(app, ppn, mp));
                if mp == MemoryPressure::MP_87 {
                    // The extra 8-way bar right after the normal 87.5% bar.
                    specs.push(RunSpec::new(app, ppn, mp).with_assoc(8));
                }
            }
        }
        let reports = run_grid(&ctx, &specs);
        let max = reports
            .iter()
            .map(|r| r.traffic.total_bytes())
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let g = chart.group(app.name());
        for (spec, r) in specs.iter().zip(&reports) {
            let tr = &r.traffic;
            g.bars.push(Bar {
                label: format!(
                    "{}p@{}{}",
                    spec.procs_per_node,
                    spec.memory_pressure,
                    if spec.am_assoc == 8 { "/8w" } else { "" }
                ),
                segments: vec![
                    tr.read_bytes as f64 / max * 100.0,
                    tr.write_bytes as f64 / max * 100.0,
                    tr.replace_bytes as f64 / max * 100.0,
                ],
            });
            t.row(vec![
                app.name().to_string(),
                spec.procs_per_node.to_string(),
                spec.memory_pressure.to_string(),
                format!("{}-way", spec.am_assoc),
                format!("{:.1}", tr.read_bytes as f64 / max * 100.0),
                format!("{:.1}", tr.write_bytes as f64 / max * 100.0),
                format!("{:.1}", tr.replace_bytes as f64 / max * 100.0),
                format!("{:.1}", tr.total_bytes() as f64 / max * 100.0),
                tr.total_bytes().to_string(),
            ]);
        }
    }
    println!("Figure 4: traffic for the conflict-miss applications, with 8-way");
    println!("associativity bars at 87.5% MP\n");
    println!("{}", t.render());
    ctx.write_csv("fig4", &t);
    ctx.write_svg("fig4", &chart);
}
