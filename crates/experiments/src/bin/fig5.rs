//! Figure 5 — execution time, decomposed into Busy / SLC-stall /
//! AM-stall / Remote-stall, for single-processor nodes at 50 % and
//! 81.25 % MP and 4-processor nodes at 81.25 % MP, with doubled DRAM
//! bandwidth (the paper's Figure 5 machine).
//!
//! Bars are normalized per application to the 1-processor / 50 % MP run
//! (= 100 %).

use coma_experiments::{fig5_latency, run_sweep, ExpCtx, RunSpec};
use coma_stats::{Bar, BarChart, Table};
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();
    let bars = [
        (1usize, MemoryPressure::MP_50),
        (1, MemoryPressure::MP_81),
        (4, MemoryPressure::MP_81),
    ];

    let specs: Vec<RunSpec> = AppId::ALL
        .into_iter()
        .flat_map(|app| {
            bars.map(|(ppn, mp)| RunSpec::new(app, ppn, mp).with_latency(fig5_latency()))
        })
        .collect();
    let sweep = run_sweep(&ctx, "fig5", &specs);

    let mut t = Table::new(vec![
        "Application",
        "bar",
        "busy%",
        "SLC%",
        "AM%",
        "remote%",
        "total%",
    ]);
    let mut clustering_wins = 0;
    let mut chart = BarChart::new(
        "Figure 5: execution time (1p@50% = 100%), doubled DRAM bandwidth",
        vec!["busy".into(), "SLC".into(), "AM".into(), "remote".into()],
        "% of 1p@50% execution time",
    );
    for (i, app) in AppId::ALL.into_iter().enumerate() {
        let base = sweep.u64("exec_time_ns", 3 * i).max(1) as f64;
        let g = chart.group(app.name());
        for (k, (ppn, mp)) in bars.iter().enumerate() {
            let row = 3 * i + k;
            // The store holds the machine-average breakdown; fold sync
            // into remote exactly as `ExecBreakdown::figure5_segments`.
            let busy = sweep.u64("busy_ns", row);
            let slc = sweep.u64("slc_ns", row);
            let am = sweep.u64("am_ns", row);
            let rem = sweep.u64("remote_ns", row) + sweep.u64("sync_ns", row);
            // Normalize segment sums to the bar's execution time so the
            // stacked bar height equals exec-time relative to the baseline.
            let total = (busy + slc + am + rem).max(1) as f64;
            let height = sweep.u64("exec_time_ns", row) as f64 / base * 100.0;
            let seg = |x: u64| x as f64 / total * height;
            g.bars.push(Bar {
                label: format!("{}p@{}", ppn, mp),
                segments: vec![seg(busy), seg(slc), seg(am), seg(rem)],
            });
            t.row(vec![
                app.name().to_string(),
                format!("{}p @ {}", ppn, mp),
                format!("{:.1}", seg(busy)),
                format!("{:.1}", seg(slc)),
                format!("{:.1}", seg(am)),
                format!("{:.1}", seg(rem)),
                format!("{:.1}", height),
            ]);
        }
        let t81 = sweep.u64("exec_time_ns", 3 * i + 1);
        let c81 = sweep.u64("exec_time_ns", 3 * i + 2);
        if c81 < t81 {
            clustering_wins += 1;
        }
    }
    println!("Figure 5: execution time for 1-way clustering at 50 and 81.25% MP and");
    println!("for 4-way clustering at 81.25% MP (doubled DRAM bandwidth; 1p@50% = 100%)\n");
    println!("{}", t.render());
    println!(
        "4-way clustering beats 1-way at 81.25% MP for {}/{} applications (paper: 13/14)",
        clustering_wins,
        AppId::ALL.len()
    );
    ctx.write_csv("fig5", &t);
    ctx.write_svg("fig5", &chart);
}
