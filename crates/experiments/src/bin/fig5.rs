//! Figure 5 — execution time, decomposed into Busy / SLC-stall /
//! AM-stall / Remote-stall, for single-processor nodes at 50 % and
//! 81.25 % MP and 4-processor nodes at 81.25 % MP, with doubled DRAM
//! bandwidth (the paper's Figure 5 machine).
//!
//! Bars are normalized per application to the 1-processor / 50 % MP run
//! (= 100 %).

use coma_experiments::{fig5_latency, run_grid, ExpCtx, RunSpec};
use coma_stats::{Bar, BarChart, Table};
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();
    let bars = [
        (1usize, MemoryPressure::MP_50),
        (1, MemoryPressure::MP_81),
        (4, MemoryPressure::MP_81),
    ];

    let specs: Vec<RunSpec> = AppId::ALL
        .into_iter()
        .flat_map(|app| {
            bars.map(|(ppn, mp)| RunSpec::new(app, ppn, mp).with_latency(fig5_latency()))
        })
        .collect();
    let reports = run_grid(&ctx, &specs);

    let mut t = Table::new(vec![
        "Application",
        "bar",
        "busy%",
        "SLC%",
        "AM%",
        "remote%",
        "total%",
    ]);
    let mut clustering_wins = 0;
    let mut chart = BarChart::new(
        "Figure 5: execution time (1p@50% = 100%), doubled DRAM bandwidth",
        vec!["busy".into(), "SLC".into(), "AM".into(), "remote".into()],
        "% of 1p@50% execution time",
    );
    for (i, app) in AppId::ALL.into_iter().enumerate() {
        let base = reports[3 * i].exec_time_ns.max(1) as f64;
        let g = chart.group(app.name());
        for (k, (ppn, mp)) in bars.iter().enumerate() {
            let r = &reports[3 * i + k];
            let b = r.avg_breakdown();
            let (busy, slc, am, rem) = b.figure5_segments();
            let scale = |x: u64| x as f64 / base * 100.0 * 16.0 / 16.0;
            // Normalize segment sums to the bar's execution time so the
            // stacked bar height equals exec-time relative to the baseline.
            let total = b.total_ns().max(1) as f64;
            let height = r.exec_time_ns as f64 / base * 100.0;
            let seg = |x: u64| x as f64 / total * height;
            g.bars.push(Bar {
                label: format!("{}p@{}", ppn, mp),
                segments: vec![seg(busy), seg(slc), seg(am), seg(rem)],
            });
            t.row(vec![
                app.name().to_string(),
                format!("{}p @ {}", ppn, mp),
                format!("{:.1}", seg(busy)),
                format!("{:.1}", seg(slc)),
                format!("{:.1}", seg(am)),
                format!("{:.1}", seg(rem)),
                format!("{:.1}", height),
            ]);
            let _ = scale;
        }
        let t81 = reports[3 * i + 1].exec_time_ns;
        let c81 = reports[3 * i + 2].exec_time_ns;
        if c81 < t81 {
            clustering_wins += 1;
        }
    }
    println!("Figure 5: execution time for 1-way clustering at 50 and 81.25% MP and");
    println!("for 4-way clustering at 81.25% MP (doubled DRAM bandwidth; 1p@50% = 100%)\n");
    println!("{}", t.render());
    println!(
        "4-way clustering beats 1-way at 81.25% MP for {}/{} applications (paper: 13/14)",
        clustering_wins,
        AppId::ALL.len()
    );
    ctx.write_csv("fig5", &t);
    ctx.write_svg("fig5", &chart);
}
