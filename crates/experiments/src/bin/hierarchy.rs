//! Hierarchy — the paper's clustering question re-asked at 64–256
//! processors, where a single snooping bus is no longer credible.
//!
//! The paper (16 processors, one bus) concludes that clustering pays off
//! mainly by *sharing* the attraction memory, and that bus contention is
//! what ultimately caps the machine. This experiment scales the machine
//! to 64/128/256 processors under two interconnects:
//!
//! * **flat** — the paper's single snooping bus, stretched far past its
//!   design point (every transaction arbitrates one global resource);
//! * **tree** — a directory hierarchy: 4 nodes per group bus, fanout-4
//!   link levels above, so same-group traffic never leaves its bus and
//!   cross-group traffic pays `2·levels` link crossings instead of
//!   contending with the whole machine.
//!
//! For each scale we run both clustering degrees the paper compares
//! (1 and 4 processors per node) at moderate and high memory pressure,
//! and ask where the 16-processor conclusions hold, shift, or invert.
//!
//! `--smoke` restricts the matrix to one 64-processor cell per topology
//! (the CI hierarchy-smoke gate); all other knobs follow the usual
//! `COMA_*` environment (see the crate docs).

use coma_experiments::{run_sweep, ExpCtx, RunSpec};
use coma_stats::{Bar, BarChart, Table};
use coma_types::{MemoryPressure, Topology};
use coma_workloads::AppId;

/// The tree topology used at every scale: 4 nodes per group bus, then
/// fanout-4 levels until a single root unit covers the machine.
fn tree_for(n_nodes: usize) -> Topology {
    let n_groups = (n_nodes / 4).max(2);
    let mut levels = 0;
    let mut units = n_groups;
    while units > 1 {
        units = units.div_ceil(4);
        levels += 1;
    }
    Topology { n_groups, levels }
}

fn topo_label(t: Topology) -> String {
    if t.levels == 0 {
        "flat".into()
    } else {
        format!("{}g×{}l", t.n_groups, t.levels)
    }
}

fn main() {
    let ctx = ExpCtx::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");

    let apps = [AppId::Fft, AppId::WaterN2];
    let scales: &[usize] = if smoke { &[64] } else { &[64, 128, 256] };
    let ppns: &[usize] = if smoke { &[4] } else { &[1, 4] };
    let mps: &[MemoryPressure] = if smoke {
        &[MemoryPressure::MP_50]
    } else {
        &[MemoryPressure::MP_50, MemoryPressure::MP_81]
    };
    let apps: &[AppId] = if smoke { &apps[..1] } else { &apps };

    let mut specs: Vec<RunSpec> = Vec::new();
    let mut labels: Vec<(AppId, usize, usize, MemoryPressure, Topology)> = Vec::new();
    for &app in apps {
        for &procs in scales {
            for &ppn in ppns {
                for &mp in mps {
                    let n_nodes = procs / ppn;
                    for topo in [Topology::flat(), tree_for(n_nodes)] {
                        specs.push(RunSpec::new(app, ppn, mp).tweak(|p| {
                            p.machine.n_procs = procs;
                            p.machine.topology = topo;
                        }));
                        labels.push((app, procs, ppn, mp, topo));
                    }
                }
            }
        }
    }
    let sweep = run_sweep(&ctx, "hierarchy", &specs);

    let mut t = Table::new(vec![
        "Application",
        "procs",
        "ppn",
        "MP",
        "topology",
        "exec (ms)",
        "vs flat",
        "RNMr",
        "fabric occ",
        "injections",
    ]);
    // Per (app, procs, ppn, mp) pair the flat run precedes its tree run.
    let mut flat_ns = 0u64;
    for (row, &(app, procs, ppn, mp, topo)) in labels.iter().enumerate() {
        let exec = sweep.u64("exec_time_ns", row);
        if topo.levels == 0 {
            flat_ns = exec;
        }
        t.row(vec![
            app.name().to_string(),
            procs.to_string(),
            ppn.to_string(),
            mp.to_string(),
            topo_label(topo),
            format!("{:.3}", exec as f64 / 1e6),
            format!("{:.1}%", exec as f64 / flat_ns.max(1) as f64 * 100.0),
            format!("{:.3}%", sweep.f64("rnm_rate", row) * 100.0),
            // Aggregate fabric occupancy: busy-ns summed over every
            // group bus and link, over the run — can exceed 100% on
            // trees (that is the point: parallel media).
            format!(
                "{:.1}%",
                sweep.u64("bus_busy_ns", row) as f64 / exec.max(1) as f64 * 100.0
            ),
            sweep.u64("injections", row).to_string(),
        ]);
    }

    // Chart: execution time normalized to the flat 1-ppn machine at each
    // scale — the paper's Figure 5 comparison, re-staged per machine size.
    let mut chart = BarChart::new(
        "Hierarchy: execution time, flat bus vs directory tree (paper apps, 64-256p)",
        vec!["exec".into()],
        "% of flat 1-ppn at same scale",
    );
    for &app in apps {
        for &procs in scales {
            let mp = *mps.last().unwrap();
            let base = labels
                .iter()
                .position(|&(a, pr, ppn, m, topo)| {
                    a == app && pr == procs && ppn == ppns[0] && m == mp && topo.levels == 0
                })
                .map(|row| sweep.u64("exec_time_ns", row))
                .unwrap_or(1)
                .max(1) as f64;
            let g = chart.group(format!("{} {procs}p", app.name()));
            for (row, &(a, pr, ppn, m, topo)) in labels.iter().enumerate() {
                if a == app && pr == procs && m == mp {
                    g.bars.push(Bar {
                        label: format!("{ppn}ppn/{}", topo_label(topo)),
                        segments: vec![sweep.u64("exec_time_ns", row) as f64 / base * 100.0],
                    });
                }
            }
        }
    }

    println!("Hierarchy: the clustering conclusions at 64-256 processors\n");
    println!("{}", t.render());
    ctx.write_csv("hierarchy", &t);
    ctx.write_svg("hierarchy", &chart);
}
