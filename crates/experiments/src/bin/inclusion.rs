//! §4.2 inclusion-breaking — the paper's own suggested remedy for the
//! very-high-pressure conflict misses: "A way to overcome this limitation
//! is to break the inclusion in the cache hierarchy as studied in [9, 2]."
//!
//! With a non-inclusive hierarchy, clean SLC replicas survive
//! attraction-memory replacements, so the private caches act as extra
//! replication capacity exactly where the 4-way AM runs out of it.
//! This experiment measures traffic and execution time for the six
//! Figure-4 applications at 87.5 % MP, inclusive vs non-inclusive, for
//! both clustering degrees.

use coma_experiments::{fig5_latency, ExpCtx};
use coma_sim::{run_simulation, SimParams};
use coma_stats::Table;
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn run(ctx: &ExpCtx, app: AppId, ppn: usize, inclusive: bool) -> (u64, u64) {
    let mut params = SimParams::default();
    params.machine.procs_per_node = ppn;
    params.machine.memory_pressure = MemoryPressure::MP_87;
    params.machine.inclusive_hierarchy = inclusive;
    params.latency = fig5_latency();
    let wl = app.build(16, ctx.seed, ctx.scale);
    let r = run_simulation(wl, &params);
    (r.traffic.total_bytes(), r.exec_time_ns)
}

fn main() {
    let ctx = ExpCtx::from_env();
    let mut t = Table::new(vec![
        "Application",
        "ppn",
        "traffic incl (KB)",
        "traffic non-incl (KB)",
        "traffic delta",
        "exec delta",
    ]);
    for app in AppId::FIG4_GROUP {
        for ppn in [1usize, 4] {
            let (b_incl, t_incl) = run(&ctx, app, ppn, true);
            let (b_non, t_non) = run(&ctx, app, ppn, false);
            t.row(vec![
                app.name().to_string(),
                ppn.to_string(),
                (b_incl / 1024).to_string(),
                (b_non / 1024).to_string(),
                format!(
                    "{:+.1}%",
                    (b_non as f64 / b_incl.max(1) as f64 - 1.0) * 100.0
                ),
                format!(
                    "{:+.1}%",
                    (t_non as f64 / t_incl.max(1) as f64 - 1.0) * 100.0
                ),
            ]);
        }
    }
    println!("Breaking SLC/AM inclusion at 87.5% MP (the paper's §4.2 remedy);");
    println!("negative deltas = the non-inclusive hierarchy helps\n");
    println!("{}", t.render());
    ctx.write_csv("inclusion", &t);
}
