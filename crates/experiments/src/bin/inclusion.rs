//! §4.2 inclusion-breaking — the paper's own suggested remedy for the
//! very-high-pressure conflict misses: "A way to overcome this limitation
//! is to break the inclusion in the cache hierarchy as studied in [9, 2]."
//!
//! With a non-inclusive hierarchy, clean SLC replicas survive
//! attraction-memory replacements, so the private caches act as extra
//! replication capacity exactly where the 4-way AM runs out of it.
//! This experiment measures traffic and execution time for the six
//! Figure-4 applications at 87.5 % MP, inclusive vs non-inclusive, for
//! both clustering degrees.

use coma_experiments::{fig5_latency, run_sweep, ExpCtx, RunSpec};
use coma_stats::Table;
use coma_types::MemoryPressure;
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();

    // One matrix: per app, per clustering degree, inclusive then
    // non-inclusive (24 cells).
    let mut specs: Vec<RunSpec> = Vec::new();
    for app in AppId::FIG4_GROUP {
        for ppn in [1usize, 4] {
            for inclusive in [true, false] {
                specs.push(
                    RunSpec::new(app, ppn, MemoryPressure::MP_87)
                        .with_latency(fig5_latency())
                        .tweak(|p| p.machine.inclusive_hierarchy = inclusive),
                );
            }
        }
    }
    let sweep = run_sweep(&ctx, "inclusion", &specs);

    let mut t = Table::new(vec![
        "Application",
        "ppn",
        "traffic incl (KB)",
        "traffic non-incl (KB)",
        "traffic delta",
        "exec delta",
    ]);
    for (a, app) in AppId::FIG4_GROUP.into_iter().enumerate() {
        for (p, ppn) in [1usize, 4].into_iter().enumerate() {
            let row = (a * 2 + p) * 2;
            let b_incl = sweep.u64("total_bytes", row);
            let t_incl = sweep.u64("exec_time_ns", row);
            let b_non = sweep.u64("total_bytes", row + 1);
            let t_non = sweep.u64("exec_time_ns", row + 1);
            t.row(vec![
                app.name().to_string(),
                ppn.to_string(),
                (b_incl / 1024).to_string(),
                (b_non / 1024).to_string(),
                format!(
                    "{:+.1}%",
                    (b_non as f64 / b_incl.max(1) as f64 - 1.0) * 100.0
                ),
                format!(
                    "{:+.1}%",
                    (t_non as f64 / t_incl.max(1) as f64 - 1.0) * 100.0
                ),
            ]);
        }
    }
    println!("Breaking SLC/AM inclusion at 87.5% MP (the paper's §4.2 remedy);");
    println!("negative deltas = the non-inclusive hierarchy helps\n");
    println!("{}", t.render());
    ctx.write_csv("inclusion", &t);
}
