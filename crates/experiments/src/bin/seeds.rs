//! Seed robustness — are the headline numbers artifacts of one workload
//! seed? This re-measures the Figure 2 clustering gain and the Figure 5
//! clustering speedup across several seeds and reports mean ± stddev.
//! Small coefficients of variation mean the single-seed figures are
//! representative.

use coma_experiments::{across_seeds, fig5_latency, ExpCtx, RunSpec};
use coma_stats::Table;
use coma_types::MemoryPressure;
use coma_workloads::AppId;

const SEEDS: usize = 5;
const APPS: [AppId; 5] = [
    AppId::Fft,
    AppId::OceanNon,
    AppId::Barnes,
    AppId::Radix,
    AppId::WaterN2,
];

fn main() {
    let ctx = ExpCtx::from_env();
    let mut t = Table::new(vec![
        "Application",
        "rel RNMr 4p (mean)",
        "cv",
        "exec 4p/1p @81% (mean)",
        "cv ",
    ]);
    for app in APPS {
        // Figure 2 metric: relative RNMr, 4-way vs 1-way at 6.25% MP.
        let rnm1 = across_seeds(
            &ctx,
            &RunSpec::new(app, 1, MemoryPressure::MP_6),
            SEEDS,
            |r| r.rnm_rate(),
        );
        let rnm4 = across_seeds(
            &ctx,
            &RunSpec::new(app, 4, MemoryPressure::MP_6),
            SEEDS,
            |r| r.rnm_rate(),
        );
        let rel = rnm4.mean / rnm1.mean;
        let rel_cv = (rnm4.cv().powi(2) + rnm1.cv().powi(2)).sqrt();

        // Figure 5 metric: execution-time ratio at 81.25% MP.
        let t1 = across_seeds(
            &ctx,
            &RunSpec::new(app, 1, MemoryPressure::MP_81).with_latency(fig5_latency()),
            SEEDS,
            |r| r.exec_time_ns as f64,
        );
        let t4 = across_seeds(
            &ctx,
            &RunSpec::new(app, 4, MemoryPressure::MP_81).with_latency(fig5_latency()),
            SEEDS,
            |r| r.exec_time_ns as f64,
        );
        let speed = t4.mean / t1.mean;
        let speed_cv = (t4.cv().powi(2) + t1.cv().powi(2)).sqrt();

        t.row(vec![
            app.name().to_string(),
            format!("{:.1}%", rel * 100.0),
            format!("{:.1}%", rel_cv * 100.0),
            format!("{:.1}%", speed * 100.0),
            format!("{:.1}%", speed_cv * 100.0),
        ]);
    }
    println!("Seed robustness over {SEEDS} seeds (cv = combined coefficient of variation)\n");
    println!("{}", t.render());
    println!("small cv ⇒ the single-seed figures elsewhere are representative");
    ctx.write_csv("seeds", &t);
}
