//! §4.3 bandwidth sensitivity — the paper's prose experiments:
//!
//! 1. **Original DRAM bandwidth** (100 ns occupancy): several
//!    applications degrade significantly under 4-way clustering at 50 %
//!    MP (paper: five).
//! 2. **Doubled DRAM bandwidth**: only LU-non (−17.8 %), Radix (−12.7 %)
//!    and Ocean-non (−5.5 %) still degrade.
//! 3. **Quadrupled DRAM + doubled controller bandwidth**: everything but
//!    LU-non matches or beats single-processor nodes.
//! 4. **Halved global bus bandwidth**: clustering becomes even more
//!    attractive (largest effect: Barnes, FFT, LU-non).

use coma_experiments::{run_sweep, ExpCtx, RunSpec};
use coma_stats::Table;
use coma_types::{LatencyConfig, MemoryPressure};
use coma_workloads::AppId;

fn main() {
    let ctx = ExpCtx::from_env();
    let mp = MemoryPressure::MP_50;
    let configs: [(&str, LatencyConfig); 4] = [
        ("default", LatencyConfig::paper_default()),
        ("2x DRAM", LatencyConfig::paper_double_dram()),
        (
            "4x DRAM + 2x ctrl",
            LatencyConfig::paper_quad_dram_double_ctrl(),
        ),
        ("2x DRAM, half bus", LatencyConfig::paper_half_bus()),
    ];

    // One matrix: app-major, then configuration, then 1p/4p (112 cells).
    let mut specs: Vec<RunSpec> = Vec::new();
    for app in AppId::ALL {
        for (_, lat) in &configs {
            specs.push(RunSpec::new(app, 1, mp).with_latency(lat.clone()));
            specs.push(RunSpec::new(app, 4, mp).with_latency(lat.clone()));
        }
    }
    let sweep = run_sweep(&ctx, "sensitivity", &specs);

    let mut t = Table::new(vec![
        "Application",
        "default",
        "2x DRAM",
        "4x DRAM+2x ctrl",
        "half bus",
    ]);
    let mut degradations = [0usize; 4];
    for (a, app) in AppId::ALL.into_iter().enumerate() {
        let mut cells = vec![app.name().to_string()];
        for (k, hit) in degradations.iter_mut().enumerate() {
            let row = (a * configs.len() + k) * 2;
            let t1 = sweep.u64("exec_time_ns", row);
            let t4 = sweep.u64("exec_time_ns", row + 1);
            let ratio = t4 as f64 / t1.max(1) as f64;
            if ratio > 1.02 {
                *hit += 1;
            }
            cells.push(format!("{:+.1}%", (ratio - 1.0) * 100.0));
        }
        t.row(cells);
    }
    println!("Sensitivity (§4.3): 4-way clustering execution time vs 1-way at 50% MP");
    println!("(positive = clustering slower; per node-bandwidth configuration)\n");
    println!("{}", t.render());
    println!(
        "applications degraded >2%: default {}, 2x DRAM {}, 4x DRAM+2x ctrl {}, half bus {}",
        degradations[0], degradations[1], degradations[2], degradations[3]
    );
    println!("(paper: 5 with default DRAM, 3 with doubled, 1 with quadrupled)");
    ctx.write_csv("sensitivity", &t);
}
