//! Table 1 — applications and working sets.
//!
//! Prints the application catalog exactly as the paper tabulates it,
//! plus the scaled working set actually used by the simulations. The
//! numeric columns go through the columnar result store like every other
//! experiment (written to `<out>/store/table1.cols`, then read back), so
//! external tooling can consume the catalog without parsing the CSV.

use coma_bench::columnar::{ColBuilder, ColFile};
use coma_experiments::ExpCtx;
use coma_stats::Table;
use coma_workloads::{catalog::WS_SCALE_DIV, AppId};

fn main() {
    let ctx = ExpCtx::from_env();

    let mut b = ColBuilder::new(AppId::ALL.len());
    b.col_f64(
        "paper_ws_mb",
        AppId::ALL.iter().map(|a| Some(a.paper_ws_mb())).collect(),
    );
    b.col_u64(
        "ws_bytes",
        AppId::ALL.iter().map(|a| Some(a.ws_bytes())).collect(),
    );
    let store_dir = ctx.out_dir.join("store");
    std::fs::create_dir_all(&store_dir).expect("create store directory");
    let path = store_dir.join("table1.cols");
    b.write(&path).expect("write table1 store");
    println!("[store] {}", path.display());
    let cols = ColFile::open(&path).expect("read back table1 store");

    let mut t = Table::new(vec![
        "Application",
        "Description",
        "Working set (MB)",
        "Scaled (KB)",
    ]);
    for (i, app) in AppId::ALL.into_iter().enumerate() {
        let ws_mb = cols.get_f64("paper_ws_mb", i).expect("catalog row");
        let ws_bytes = cols.get_u64("ws_bytes", i).expect("catalog row");
        t.row(vec![
            app.name().to_string(),
            app.description().to_string(),
            format!("{:.1}", ws_mb),
            format!("{:.0}", ws_bytes as f64 / 1024.0),
        ]);
    }
    println!("Table 1: Applications and working sets (scale 1/{WS_SCALE_DIV})\n");
    println!("{}", t.render());
    ctx.write_csv("table1", &t);
}
