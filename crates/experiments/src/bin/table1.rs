//! Table 1 — applications and working sets.
//!
//! Prints the application catalog exactly as the paper tabulates it,
//! plus the scaled working set actually used by the simulations.

use coma_experiments::ExpCtx;
use coma_stats::Table;
use coma_workloads::{catalog::WS_SCALE_DIV, AppId};

fn main() {
    let ctx = ExpCtx::from_env();
    let mut t = Table::new(vec![
        "Application",
        "Description",
        "Working set (MB)",
        "Scaled (KB)",
    ]);
    for app in AppId::ALL {
        t.row(vec![
            app.name().to_string(),
            app.description().to_string(),
            format!("{:.1}", app.paper_ws_mb()),
            format!("{:.0}", app.ws_bytes() as f64 / 1024.0),
        ]);
    }
    println!("Table 1: Applications and working sets (scale 1/{WS_SCALE_DIV})\n");
    println!("{}", t.render());
    ctx.write_csv("table1", &t);
}
