//! §4.2 replication-capacity thresholds — the paper's closed-form
//! arithmetic, checked against a micro-simulation.
//!
//! Analytic part: the highest memory pressure at which one line can still
//! be replicated in every node (49/64, 113/128, 13/16, 29/32 for the four
//! node-count × associativity combinations).
//!
//! Empirical part: a micro-workload in which every processor repeatedly
//! reads the same hot line while the rest of the working set fills the
//! AMs; below the threshold the hot line settles into every node (steady
//! remote rate ≈ 0), above it the replicas keep being displaced.
//!
//! The eight probe simulations run through the sweep scheduler's result
//! cache via [`cached_sim`] under a workload tag (the hot-line trace is
//! not a catalog application, so the tag stands in for the app name in
//! the cache key).

use coma_experiments::{cached_sim, report_sweep_stats, sweep::run_pool, ExpCtx};
use coma_sim::SimParams;
use coma_stats::Table;
use coma_types::Addr;
use coma_types::{full_replication_threshold, MemoryPressure};
use coma_workloads::{Op, OpStream, Workload};

/// Cache tag for the hot-line micro-workload; bump the suffix if the
/// trace shape below ever changes.
const WORKLOAD_TAG: &str = "hotline-v1";

/// Micro-workload: phase 1 touches the private fill (per-proc partition),
/// phase 2 re-reads one globally hot line interleaved with private reads.
struct HotLine {
    me: u64,
    n_lines: u64,
    part_lines: u64,
    probes: u64,
    state: u64,
}

impl OpStream for HotLine {
    fn next_op(&mut self) -> Option<Op> {
        let fill_end = self.part_lines;
        let s = self.state;
        self.state += 1;
        if s < fill_end {
            // Fill the own partition (keeps the AMs at pressure).
            let line = self.me * self.part_lines + s;
            return Some(Op::Write(Addr(line * 64)));
        }
        let probe = s - fill_end;
        if probe >= self.probes * 2 {
            return None;
        }
        if probe.is_multiple_of(2) {
            // The machine-wide hot line (line 0 of the shared page).
            Some(Op::Read(Addr(0)))
        } else {
            // Keep private data live so the AM stays full.
            let line = self.me * self.part_lines + (probe / 2) % self.part_lines;
            let _ = self.n_lines;
            Some(Op::Read(Addr(line * 64)))
        }
    }
}

fn hot_line_workload() -> Workload {
    let n_procs = 16usize;
    let ws_lines = 16 * 1024u64;
    let part = ws_lines / n_procs as u64;
    Workload {
        name: "hotline",
        ws_bytes: ws_lines * 64,
        n_locks: 0,
        streams: (0..n_procs)
            .map(|me| {
                Box::new(HotLine {
                    me: me as u64,
                    n_lines: ws_lines,
                    part_lines: part,
                    probes: 2000,
                    state: 0,
                }) as Box<dyn OpStream>
            })
            .collect(),
    }
}

/// Hot-line read-node-miss rate per probe, through the result cache.
/// Returns the rate and whether the cell was a cache hit.
fn hot_line_remote_rate(ctx: &ExpCtx, ppn: usize, assoc: usize, mp: MemoryPressure) -> (f64, bool) {
    let mut params = SimParams::default();
    params.machine.procs_per_node = ppn;
    params.machine.memory_pressure = mp;
    params.machine.am_assoc = assoc;
    let (r, hit) = cached_sim(ctx, WORKLOAD_TAG, &params, hot_line_workload);
    // Read node misses per hot-line probe (16 procs × 2000 probes).
    (r.counts.read_node_misses() as f64 / (16.0 * 2000.0), hit)
}

fn main() {
    let ctx = ExpCtx::from_env();
    let combos = [(1usize, 4usize), (1, 8), (4, 4), (4, 8)];

    // Each combo probes just below and just above its threshold: eight
    // independent simulations, scheduled across the worker pool.
    let cells: Vec<(usize, usize, MemoryPressure)> = combos
        .iter()
        .flat_map(|&(ppn, assoc)| {
            let nodes = (16 / ppn) as u32;
            let (num, den) = full_replication_threshold(nodes, assoc as u32);
            let frac = num as f64 / den as f64;
            let below = MemoryPressure::new((frac * 64.0) as u32 - 3, 64);
            let above = MemoryPressure::new(((frac * 64.0) as u32 + 3).min(63), 64);
            [(ppn, assoc, below), (ppn, assoc, above)]
        })
        .collect();
    let results = run_pool(ctx.threads, cells.len(), |i| {
        let (ppn, assoc, mp) = cells[i];
        hot_line_remote_rate(&ctx, ppn, assoc, mp)
    });
    let hits = results.iter().filter(|(_, hit)| *hit).count();
    report_sweep_stats(&ctx, "thresholds", hits, results.len() - hits, 0);

    let mut t = Table::new(vec![
        "nodes",
        "assoc",
        "threshold",
        "threshold %",
        "miss/probe below",
        "miss/probe above",
    ]);
    for (k, (ppn, assoc)) in combos.into_iter().enumerate() {
        let nodes = (16 / ppn) as u32;
        let (num, den) = full_replication_threshold(nodes, assoc as u32);
        let frac = num as f64 / den as f64;
        let (miss_below, _) = results[2 * k];
        let (miss_above, _) = results[2 * k + 1];
        t.row(vec![
            nodes.to_string(),
            format!("{assoc}-way"),
            format!("{num}/{den}"),
            format!("{:.1}%", frac * 100.0),
            format!("{:.4}", miss_below),
            format!("{:.4}", miss_above),
        ]);
    }
    println!("§4.2 replication thresholds: analytic values (paper: 49/64, 113/128,");
    println!("13/16, 29/32) and hot-line micro-benchmark miss rates on either side\n");
    println!("{}", t.render());
    ctx.write_csv("thresholds", &t);
}
