//! Traffic — the paper's clustering/pressure questions re-asked for
//! production-shaped traffic instead of HPC sharing patterns.
//!
//! Sweeps both traffic families (`kv_zipf`: Zipf-skewed key-value
//! serving, the favourable case for attraction-memory replication;
//! `graph_bfs`: irregular graph analysis, the adversarial case) across
//! the standard memory pressures, {1,2,4}-processor clusters and
//! {4,8}-way AMs, against a CC-NUMA baseline at every clustering degree.
//! NUMA is pressure- and AM-associativity-independent, so its three
//! cells (one per clustering degree) anchor the comparison at 100 %.
//!
//! All cells run through the cached work-stealing sweep engine and
//! persist to the `traffic` columnar store; the table, chart and the
//! printed findings are derived from the stored rows.
//!
//! `--smoke` restricts the matrix to a two-pressure, two-cluster corner
//! (the CI traffic-smoke gate); all other knobs follow the usual
//! `COMA_*` environment (see the crate docs).

use coma_experiments::{fig5_latency, run_sweep, ExpCtx, RunSpec};
use coma_sim::MemoryModel;
use coma_stats::{Bar, BarChart, Table};
use coma_types::MemoryPressure;
use coma_workloads::AppId;

#[derive(Clone, Copy, PartialEq)]
struct Cell {
    app: AppId,
    model: MemoryModel,
    mp: MemoryPressure,
    ppn: usize,
    assoc: usize,
}

fn main() {
    let ctx = ExpCtx::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");

    let mps: &[MemoryPressure] = if smoke {
        &[MemoryPressure::MP_50, MemoryPressure::MP_87]
    } else {
        &MemoryPressure::PAPER_SWEEP
    };
    let ppns: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4] };
    let assocs: &[usize] = if smoke { &[4] } else { &[4, 8] };

    let mut specs: Vec<RunSpec> = Vec::new();
    let mut cells: Vec<Cell> = Vec::new();
    for app in AppId::TRAFFIC {
        for &ppn in ppns {
            // The NUMA anchor: memory pressure only sizes the AM, which a
            // NUMA machine does not have, so one cell per clustering degree.
            specs.push(
                RunSpec::new(app, ppn, MemoryPressure::MP_50)
                    .with_latency(fig5_latency())
                    .with_model(MemoryModel::Numa),
            );
            cells.push(Cell {
                app,
                model: MemoryModel::Numa,
                mp: MemoryPressure::MP_50,
                ppn,
                assoc: 4,
            });
            for &assoc in assocs {
                for &mp in mps {
                    specs.push(
                        RunSpec::new(app, ppn, mp)
                            .with_latency(fig5_latency())
                            .with_assoc(assoc),
                    );
                    cells.push(Cell {
                        app,
                        model: MemoryModel::Coma,
                        mp,
                        ppn,
                        assoc,
                    });
                }
            }
        }
    }
    let sweep = run_sweep(&ctx, "traffic", &specs);

    // NUMA anchor per (family, clustering degree).
    let numa_ns = |app: AppId, ppn: usize| {
        cells
            .iter()
            .position(|c| c.app == app && c.ppn == ppn && c.model == MemoryModel::Numa)
            .map(|row| sweep.u64("exec_time_ns", row))
            .unwrap_or(1)
            .max(1)
    };

    let mut t = Table::new(vec![
        "Family",
        "model",
        "MP",
        "ppn",
        "AM assoc",
        "exec (ms)",
        "vs NUMA",
        "RNMr",
        "read (KB)",
        "replace (KB)",
        "injections",
    ]);
    for (row, c) in cells.iter().enumerate() {
        let exec = sweep.u64("exec_time_ns", row);
        let base = numa_ns(c.app, c.ppn);
        t.row(vec![
            c.app.name().to_string(),
            match c.model {
                MemoryModel::Numa => "NUMA".to_string(),
                _ => "COMA".to_string(),
            },
            c.mp.to_string(),
            c.ppn.to_string(),
            c.assoc.to_string(),
            format!("{:.3}", exec as f64 / 1e6),
            format!("{:.1}%", exec as f64 / base as f64 * 100.0),
            format!("{:.3}%", sweep.f64("rnm_rate", row) * 100.0),
            (sweep.u64("read_bytes", row) / 1024).to_string(),
            (sweep.u64("replace_bytes", row) / 1024).to_string(),
            sweep.u64("injections", row).to_string(),
        ]);
    }

    // Chart: per family and clustering degree, COMA exec across the
    // pressure sweep (4-way AM) against the NUMA = 100 anchor.
    let mut chart = BarChart::new(
        "Traffic families: COMA execution time across memory pressure (NUMA = 100%)",
        vec!["exec".into()],
        "% of NUMA at same clustering degree",
    );
    for app in AppId::TRAFFIC {
        for &ppn in ppns {
            let base = numa_ns(app, ppn) as f64;
            let g = chart.group(format!("{} {ppn}ppn", app.name()));
            g.bars.push(Bar {
                label: "NUMA".to_string(),
                segments: vec![100.0],
            });
            for (row, c) in cells.iter().enumerate() {
                if c.app == app
                    && c.ppn == ppn
                    && c.assoc == assocs[0]
                    && c.model == MemoryModel::Coma
                {
                    g.bars.push(Bar {
                        label: format!("{}", c.mp),
                        segments: vec![sweep.u64("exec_time_ns", row) as f64 / base * 100.0],
                    });
                }
            }
        }
    }

    // Where attraction behavior helps most / least, from the stored rows.
    for app in AppId::TRAFFIC {
        let mut best: Option<(f64, &Cell)> = None;
        let mut worst: Option<(f64, &Cell)> = None;
        for (row, c) in cells.iter().enumerate() {
            if c.app != app || c.model != MemoryModel::Coma {
                continue;
            }
            let rel = sweep.u64("exec_time_ns", row) as f64 / numa_ns(app, c.ppn) as f64;
            if best.as_ref().is_none_or(|(b, _)| rel < *b) {
                best = Some((rel, c));
            }
            if worst.as_ref().is_none_or(|(w, _)| rel > *w) {
                worst = Some((rel, c));
            }
        }
        if let (Some((b, bc)), Some((w, wc))) = (best, worst) {
            println!(
                "{}: COMA best {:.1}% of NUMA ({} {}ppn {}-way), worst {:.1}% ({} {}ppn {}-way)",
                app.name(),
                b * 100.0,
                bc.mp,
                bc.ppn,
                bc.assoc,
                w * 100.0,
                wc.mp,
                wc.ppn,
                wc.assoc
            );
        }
    }

    println!("\nTraffic: production-shaped workloads, COMA vs NUMA\n");
    println!("{}", t.render());
    ctx.write_csv("traffic", &t);
    ctx.write_svg("traffic", &chart);
}
