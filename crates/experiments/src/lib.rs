//! Shared infrastructure for the experiment binaries.
//!
//! Every binary reproduces one table or figure of the paper. Common knobs
//! come from the environment so `cargo run --release -p coma-experiments
//! --bin fig3` just works:
//!
//! * `COMA_SCALE` — `paper` (default), `bench`, or `smoke`: trace length.
//! * `COMA_SEED` — experiment seed (default 42).
//! * `COMA_OUT` — directory for CSV output (default `results/`).
//! * `COMA_THREADS` — worker threads (default: available parallelism).

use coma_sim::{run_simulation, SimParams};
use coma_stats::{BarChart, SimReport, Table};
use coma_types::{LatencyConfig, MemoryPressure};
use coma_workloads::{AppId, Scale};
use std::path::PathBuf;
use std::sync::Mutex;

/// Experiment context (scale, seed, output directory).
#[derive(Clone, Debug)]
pub struct ExpCtx {
    pub scale: Scale,
    pub seed: u64,
    pub out_dir: PathBuf,
    pub threads: usize,
}

impl ExpCtx {
    /// Build from the environment (see module docs for the variables).
    pub fn from_env() -> Self {
        let scale = match std::env::var("COMA_SCALE").as_deref() {
            Ok("bench") => Scale::BENCH,
            Ok("smoke") => Scale::SMOKE,
            Ok(other) if !other.is_empty() && other != "paper" => {
                other.parse::<f64>().map(Scale).unwrap_or(Scale::PAPER)
            }
            _ => Scale::PAPER,
        };
        let seed = std::env::var("COMA_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        let out_dir = std::env::var("COMA_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        let threads = std::env::var("COMA_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ExpCtx {
            scale,
            seed,
            out_dir,
            threads,
        }
    }

    /// Persist a chart as SVG under the output directory.
    pub fn write_svg(&self, name: &str, chart: &BarChart) {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        let path = self.out_dir.join(format!("{name}.svg"));
        std::fs::write(&path, chart.to_svg()).expect("write SVG");
        println!("[svg] {}", path.display());
    }

    /// Persist a table as CSV under the output directory.
    pub fn write_csv(&self, name: &str, table: &Table) {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        let path = self.out_dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write CSV");
        println!("[csv] {}", path.display());
    }
}

/// One simulation point in an experiment grid.
#[derive(Clone, Debug)]
pub struct RunSpec {
    pub app: AppId,
    pub procs_per_node: usize,
    pub memory_pressure: MemoryPressure,
    pub am_assoc: usize,
    pub latency: LatencyConfig,
}

impl RunSpec {
    pub fn new(app: AppId, ppn: usize, mp: MemoryPressure) -> Self {
        RunSpec {
            app,
            procs_per_node: ppn,
            memory_pressure: mp,
            am_assoc: 4,
            latency: LatencyConfig::paper_default(),
        }
    }

    pub fn with_assoc(mut self, assoc: usize) -> Self {
        self.am_assoc = assoc;
        self
    }

    pub fn with_latency(mut self, lat: LatencyConfig) -> Self {
        self.latency = lat;
        self
    }

    /// Execute this point.
    pub fn run(&self, ctx: &ExpCtx) -> SimReport {
        let mut params = SimParams::default();
        params.machine.procs_per_node = self.procs_per_node;
        params.machine.memory_pressure = self.memory_pressure;
        params.machine.am_assoc = self.am_assoc;
        params.latency = self.latency.clone();
        let wl = self.app.build(params.machine.n_procs, ctx.seed, ctx.scale);
        run_simulation(wl, &params)
    }
}

/// Run every spec, using up to `ctx.threads` workers, preserving order.
pub fn run_grid(ctx: &ExpCtx, specs: &[RunSpec]) -> Vec<SimReport> {
    let n = specs.len();
    if ctx.threads <= 1 || n <= 1 {
        return specs.iter().map(|s| s.run(ctx)).collect();
    }
    let results: Vec<Mutex<Option<SimReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..ctx.threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let report = specs[i].run(ctx);
                *results[i].lock().unwrap() = Some(report);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker completed"))
        .collect()
}

/// The Figure 5 / §4.3 execution-time latency configuration.
pub fn fig5_latency() -> LatencyConfig {
    LatencyConfig::paper_double_dram()
}

/// Mean / standard deviation of a metric across workload seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeedStats {
    pub mean: f64,
    pub stddev: f64,
    pub n: usize,
}

impl SeedStats {
    /// Relative spread (coefficient of variation).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Run `spec` under `n_seeds` different workload seeds (ctx.seed,
/// ctx.seed+1, …) and summarize `metric` across them. Reviewers of
/// simulation studies rightly ask for this; a small CV means a single
/// seed's figures are representative.
pub fn across_seeds(
    ctx: &ExpCtx,
    spec: &RunSpec,
    n_seeds: usize,
    metric: impl Fn(&SimReport) -> f64 + Sync,
) -> SeedStats {
    assert!(n_seeds >= 1);
    let values: Vec<f64> = (0..n_seeds)
        .map(|k| {
            let mut c = ctx.clone();
            c.seed = ctx.seed + k as u64;
            metric(&spec.run(&c))
        })
        .collect();
    let mean = values.iter().sum::<f64>() / n_seeds as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        / n_seeds.max(2).saturating_sub(1) as f64;
    SeedStats {
        mean,
        stddev: var.sqrt(),
        n: n_seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_ctx() -> ExpCtx {
        ExpCtx {
            scale: Scale::SMOKE,
            seed: 1,
            out_dir: std::env::temp_dir().join("coma-exp-test"),
            threads: 2,
        }
    }

    #[test]
    fn run_grid_preserves_order_and_determinism() {
        let ctx = smoke_ctx();
        let specs = vec![
            RunSpec::new(AppId::WaterN2, 1, MemoryPressure::MP_50),
            RunSpec::new(AppId::WaterN2, 4, MemoryPressure::MP_50),
        ];
        let a = run_grid(&ctx, &specs);
        let b = run_grid(&ctx, &specs);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].exec_time_ns, b[0].exec_time_ns);
        assert_eq!(a[1].exec_time_ns, b[1].exec_time_ns);
        assert_ne!(a[0].exec_time_ns, a[1].exec_time_ns);
    }

    #[test]
    fn csv_written() {
        let ctx = smoke_ctx();
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        ctx.write_csv("unit-test", &t);
        let content = std::fs::read_to_string(ctx.out_dir.join("unit-test.csv")).unwrap();
        assert_eq!(content, "a\n1\n");
    }

    #[test]
    fn seed_stats_are_sane() {
        let ctx = smoke_ctx();
        let spec = RunSpec::new(AppId::WaterN2, 2, MemoryPressure::MP_50);
        let s = across_seeds(&ctx, &spec, 3, |r| r.rnm_rate());
        assert_eq!(s.n, 3);
        assert!(s.mean > 0.0 && s.mean < 1.0);
        assert!(s.stddev >= 0.0);
        // Across-seed noise on the RNMr should be small.
        assert!(s.cv() < 0.5, "cv = {}", s.cv());
    }

    #[test]
    fn single_seed_stats_degenerate_cleanly() {
        let ctx = smoke_ctx();
        let spec = RunSpec::new(AppId::WaterN2, 1, MemoryPressure::MP_50);
        let s = across_seeds(&ctx, &spec, 1, |r| r.exec_time_ns as f64);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn env_defaults() {
        let ctx = ExpCtx::from_env();
        assert!(ctx.threads >= 1);
        assert_eq!(ctx.seed, 42);
    }
}
