//! Shared infrastructure for the experiment binaries.
//!
//! Every binary reproduces one table or figure of the paper. Common knobs
//! come from the environment so `cargo run --release -p coma-experiments
//! --bin fig3` just works:
//!
//! * `COMA_SCALE` — `paper` (default), `bench`, or `smoke`: trace length.
//! * `COMA_SEED` — experiment seed (default 42).
//! * `COMA_OUT` — directory for CSV/store output (default `results/`).
//! * `COMA_THREADS` — sweep worker threads (default: available
//!   parallelism; an invalid value warns and falls back to the default).
//! * `COMA_NO_CACHE` — set non-empty (and not `0`) to bypass the result
//!   cache.
//!
//! The same knobs are accepted as command-line flags on every binary:
//! `--jobs N` overrides `COMA_THREADS`, `--no-cache` overrides
//! `COMA_NO_CACHE`.
//!
//! Experiment grids run on the work-stealing sweep scheduler in [`sweep`]:
//! cells are sharded across `COMA_THREADS` workers, deduplicated through a
//! config-hash result cache under `<out>/cache/`, and persisted once per
//! sweep as a columnar store under `<out>/store/` (see
//! `coma_bench::columnar`) with a JSON sidecar.

use coma_sim::{run_simulation, MemoryModel, SimParams};
use coma_stats::{BarChart, SimReport, Table};
use coma_types::{LatencyConfig, MemoryPressure};
use coma_workloads::{AppId, Scale};
use std::path::PathBuf;

pub mod sweep;

pub use sweep::{cached_sim, report_sweep_stats, run_sweep, Sweep};

/// Experiment context (scale, seed, output directory, scheduler knobs).
#[derive(Clone, Debug)]
pub struct ExpCtx {
    pub scale: Scale,
    pub seed: u64,
    pub out_dir: PathBuf,
    /// Sweep worker threads (≥ 1).
    pub threads: usize,
    /// Bypass the persistent result cache.
    pub no_cache: bool,
}

impl ExpCtx {
    /// Build from the environment and the process arguments (see the
    /// module docs for the variables and flags).
    pub fn from_env() -> Self {
        let scale = match std::env::var("COMA_SCALE").as_deref() {
            Ok("bench") => Scale::BENCH,
            Ok("smoke") => Scale::SMOKE,
            Ok(other) if !other.is_empty() && other != "paper" => {
                other.parse::<f64>().map(Scale).unwrap_or(Scale::PAPER)
            }
            _ => Scale::PAPER,
        };
        let seed = std::env::var("COMA_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        let out_dir = std::env::var("COMA_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        let default_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads = match std::env::var("COMA_THREADS") {
            Err(_) => default_threads,
            Ok(s) => match s.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!(
                        "warning: COMA_THREADS='{s}' is not a positive integer; \
                         falling back to available parallelism ({default_threads})"
                    );
                    default_threads
                }
            },
        };
        let no_cache = std::env::var("COMA_NO_CACHE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let mut ctx = ExpCtx {
            scale,
            seed,
            out_dir,
            threads,
            no_cache,
        };
        ctx.apply_args(std::env::args().skip(1));
        ctx
    }

    /// Apply `--jobs N` / `--jobs=N` and `--no-cache` from an argument
    /// list; unknown arguments are ignored (the binaries have no other
    /// flags, and cargo's test runner injects its own).
    pub fn apply_args<I: IntoIterator<Item = String>>(&mut self, args: I) {
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if a == "--no-cache" {
                self.no_cache = true;
            } else if let Some(v) = a.strip_prefix("--jobs=") {
                self.set_jobs(v);
            } else if a == "--jobs" {
                if let Some(v) = it.next() {
                    self.set_jobs(&v);
                }
            }
        }
    }

    fn set_jobs(&mut self, v: &str) {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => self.threads = n,
            _ => eprintln!("warning: --jobs '{v}' is not a positive integer; ignored"),
        }
    }

    /// Persist a chart as SVG under the output directory.
    pub fn write_svg(&self, name: &str, chart: &BarChart) {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        let path = self.out_dir.join(format!("{name}.svg"));
        std::fs::write(&path, chart.to_svg()).expect("write SVG");
        println!("[svg] {}", path.display());
    }

    /// Persist a table as CSV under the output directory.
    pub fn write_csv(&self, name: &str, table: &Table) {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        let path = self.out_dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write CSV");
        println!("[csv] {}", path.display());
    }
}

/// One simulation point in an experiment grid: an application plus the
/// complete machine configuration. Holding the full [`SimParams`] (rather
/// than a hand-picked subset of knobs) means the sweep cache key — a
/// canonical hash over every field — covers ablation and sensitivity
/// variants by construction.
#[derive(Clone, Debug)]
pub struct RunSpec {
    pub app: AppId,
    pub params: SimParams,
}

impl RunSpec {
    pub fn new(app: AppId, ppn: usize, mp: MemoryPressure) -> Self {
        let mut params = SimParams::default();
        params.machine.procs_per_node = ppn;
        params.machine.memory_pressure = mp;
        RunSpec { app, params }
    }

    pub fn with_assoc(mut self, assoc: usize) -> Self {
        self.params.machine.am_assoc = assoc;
        self
    }

    pub fn with_latency(mut self, lat: LatencyConfig) -> Self {
        self.params.latency = lat;
        self
    }

    pub fn with_model(mut self, model: MemoryModel) -> Self {
        self.params.memory_model = model;
        self
    }

    /// Apply an arbitrary parameter tweak (ablation knobs and the like).
    pub fn tweak(mut self, f: impl FnOnce(&mut SimParams)) -> Self {
        f(&mut self.params);
        self
    }

    pub fn procs_per_node(&self) -> usize {
        self.params.machine.procs_per_node
    }

    pub fn memory_pressure(&self) -> MemoryPressure {
        self.params.machine.memory_pressure
    }

    pub fn am_assoc(&self) -> usize {
        self.params.machine.am_assoc
    }

    /// Execute this point (uncached; the scheduler wraps this).
    pub fn run(&self, ctx: &ExpCtx) -> SimReport {
        let n_procs = self.params.machine.n_procs;
        let wl = self.app.build(n_procs, ctx.seed, ctx.scale);
        run_simulation(wl, &self.params)
    }
}

/// Run every spec through the sweep scheduler (work stealing across
/// `ctx.threads` workers, result-cache dedup), preserving order. Panics
/// if any cell fails; use [`run_sweep`] for per-cell fault isolation plus
/// the persistent columnar store.
pub fn run_grid(ctx: &ExpCtx, specs: &[RunSpec]) -> Vec<SimReport> {
    sweep::run_matrix(ctx, specs)
        .cells
        .into_iter()
        .enumerate()
        .map(|(i, cell)| match cell {
            Ok(r) => r,
            Err(e) => panic!("sweep cell {i} ({:?}) failed: {e}", specs[i].app),
        })
        .collect()
}

/// The Figure 5 / §4.3 execution-time latency configuration.
pub fn fig5_latency() -> LatencyConfig {
    LatencyConfig::paper_double_dram()
}

/// Mean / standard deviation of a metric across workload seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeedStats {
    pub mean: f64,
    pub stddev: f64,
    pub n: usize,
}

impl SeedStats {
    /// Relative spread (coefficient of variation).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Run `spec` under `n_seeds` different workload seeds (ctx.seed,
/// ctx.seed+1, …) and summarize `metric` across them. Reviewers of
/// simulation studies rightly ask for this; a small CV means a single
/// seed's figures are representative. The per-seed runs go through the
/// scheduler (parallel, cached).
pub fn across_seeds(
    ctx: &ExpCtx,
    spec: &RunSpec,
    n_seeds: usize,
    metric: impl Fn(&SimReport) -> f64 + Sync,
) -> SeedStats {
    assert!(n_seeds >= 1);
    let values: Vec<f64> = sweep::run_pool(ctx.threads, n_seeds, |k| {
        let mut c = ctx.clone();
        c.seed = ctx.seed + k as u64;
        metric(&sweep::run_spec_cached(&c, spec).unwrap_or_else(|e| panic!("seed run failed: {e}")))
    });
    let mean = values.iter().sum::<f64>() / n_seeds as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        / n_seeds.max(2).saturating_sub(1) as f64;
    SeedStats {
        mean,
        stddev: var.sqrt(),
        n: n_seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_ctx() -> ExpCtx {
        ExpCtx {
            scale: Scale::SMOKE,
            seed: 1,
            out_dir: std::env::temp_dir().join("coma-exp-test"),
            threads: 2,
            no_cache: true,
        }
    }

    #[test]
    fn run_grid_preserves_order_and_determinism() {
        let ctx = smoke_ctx();
        let specs = vec![
            RunSpec::new(AppId::WaterN2, 1, MemoryPressure::MP_50),
            RunSpec::new(AppId::WaterN2, 4, MemoryPressure::MP_50),
        ];
        let a = run_grid(&ctx, &specs);
        let b = run_grid(&ctx, &specs);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].exec_time_ns, b[0].exec_time_ns);
        assert_eq!(a[1].exec_time_ns, b[1].exec_time_ns);
        assert_ne!(a[0].exec_time_ns, a[1].exec_time_ns);
    }

    #[test]
    fn csv_written() {
        let ctx = smoke_ctx();
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        ctx.write_csv("unit-test", &t);
        let content = std::fs::read_to_string(ctx.out_dir.join("unit-test.csv")).unwrap();
        assert_eq!(content, "a\n1\n");
    }

    #[test]
    fn seed_stats_are_sane() {
        let ctx = smoke_ctx();
        let spec = RunSpec::new(AppId::WaterN2, 2, MemoryPressure::MP_50);
        let s = across_seeds(&ctx, &spec, 3, |r| r.rnm_rate());
        assert_eq!(s.n, 3);
        assert!(s.mean > 0.0 && s.mean < 1.0);
        assert!(s.stddev >= 0.0);
        // Across-seed noise on the RNMr should be small.
        assert!(s.cv() < 0.5, "cv = {}", s.cv());
    }

    #[test]
    fn single_seed_stats_degenerate_cleanly() {
        let ctx = smoke_ctx();
        let spec = RunSpec::new(AppId::WaterN2, 1, MemoryPressure::MP_50);
        let s = across_seeds(&ctx, &spec, 1, |r| r.exec_time_ns as f64);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn env_defaults() {
        let ctx = ExpCtx::from_env();
        assert!(ctx.threads >= 1);
        assert_eq!(ctx.seed, 42);
    }

    #[test]
    fn args_override_threads_and_cache() {
        let mut ctx = smoke_ctx();
        ctx.no_cache = false;
        ctx.apply_args(["--jobs", "7", "--no-cache"].map(String::from));
        assert_eq!(ctx.threads, 7);
        assert!(ctx.no_cache);
        ctx.apply_args(["--jobs=3"].map(String::from));
        assert_eq!(ctx.threads, 3);
        // Invalid values are ignored with a warning, not fatal.
        ctx.apply_args(["--jobs", "zero?"].map(String::from));
        assert_eq!(ctx.threads, 3);
    }

    #[test]
    fn tweak_reaches_every_knob() {
        let spec = RunSpec::new(AppId::Fft, 4, MemoryPressure::MP_87)
            .with_assoc(8)
            .tweak(|p| p.machine.inclusive_hierarchy = false);
        assert_eq!(spec.procs_per_node(), 4);
        assert_eq!(spec.am_assoc(), 8);
        assert!(!spec.params.machine.inclusive_hierarchy);
    }
}
