//! The work-stealing sweep engine: scheduler, result cache, columnar store.
//!
//! The paper's full experiment matrix is hundreds of *independent*
//! simulations. This module turns a `&[RunSpec]` into results three
//! layers deep:
//!
//! 1. **Scheduler** — [`run_pool`] shards cell indices across
//!    `ctx.threads` workers, each with its own deque; an idle worker
//!    steals from the back of a victim's deque, so a handful of slow
//!    cells (the 87.5 %-MP runs are several times costlier than the
//!    6.25 % ones) cannot strand the other workers. Each cell runs under
//!    `catch_unwind`, so one diverging simulation fails that cell — not
//!    the sweep.
//! 2. **Result cache** — every cell is keyed by a canonical 64-bit hash
//!    (`coma_sim::canon`) over the full `SimParams`, the application, the
//!    workload seed and scale, plus [`CODE_SALT`]. Entries persist under
//!    `<out>/cache/` with a version stamp and payload checksum; a stale
//!    or corrupt entry is detected and recomputed, never served.
//! 3. **Columnar store** — [`run_sweep`] writes one
//!    `coma_bench::columnar` file per sweep under `<out>/store/` (plus a
//!    human-readable JSON sidecar) and hands the binaries a [`Sweep`]
//!    whose accessors read *from the store*, so every figure is derived
//!    from the same bytes external tooling sees.
//!
//! Results are always returned in matrix order regardless of which worker
//! computed a cell, and the simulations themselves are single-threaded
//! and deterministic — so a parallel sweep is byte-identical to a serial
//! one (pinned by `tests/sweep_determinism.rs`).

use crate::{ExpCtx, RunSpec};
use coma_bench::columnar::{ColBuilder, ColFile};
use coma_bench::json::{self, Value};
use coma_sim::canon::{config_hash, fnv1a_bytes, fnv1a_u64, FNV_OFFSET};
use coma_sim::{run_simulation, MemoryModel, SimParams};
use coma_stats::{LatencyHisto, SimReport};
use coma_workloads::Workload;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Code-version salt folded into every cache key. Bump this whenever a
/// change anywhere in the simulator alters what any configuration
/// produces — old entries then miss (stale keys) instead of being served.
pub const CODE_SALT: u64 = 1;

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

/// Run `f(0..n)` on up to `threads` workers and return the results in
/// index order. Work-stealing: indices are dealt block-cyclically into
/// per-worker deques; a worker drains its own deque from the front and,
/// when empty, steals from the back of the next non-empty victim. No cell
/// produces further work, so a worker that finds every deque empty is
/// done. With `threads <= 1` the pool degenerates to a serial loop on the
/// calling thread.
pub fn run_pool<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..n).step_by(threads).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let deques = &deques;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let mut task = deques[w].lock().unwrap().pop_front();
                if task.is_none() {
                    for off in 1..threads {
                        let victim = (w + off) % threads;
                        if let Some(stolen) = deques[victim].lock().unwrap().pop_back() {
                            task = Some(stolen);
                            break;
                        }
                    }
                }
                match task {
                    Some(i) => *slots[i].lock().unwrap() = Some(f(i)),
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("cell executed"))
        .collect()
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked (non-string payload)".to_string()
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

const CACHE_MAGIC: [u8; 8] = *b"COMACEL1";
/// Cache *entry format* version; distinct from [`CODE_SALT`], which
/// versions the simulator's semantics.
const CACHE_VERSION: u32 = 1;

/// The cache key of one sweep cell: code salt, application, workload seed
/// and scale, and the canonical hash of the complete `SimParams`.
pub fn spec_key(ctx: &ExpCtx, spec: &RunSpec) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a_u64(h, CODE_SALT);
    h = fnv1a_bytes(h, spec.app.name().as_bytes());
    h = fnv1a_u64(h, ctx.seed);
    h = fnv1a_u64(h, ctx.scale.0.to_bits());
    fnv1a_u64(h, config_hash(&spec.params))
}

/// A cache key for a non-catalog workload: `tag` must identify the
/// workload (shape, inputs, generator version) completely, since only the
/// machine parameters are hashed alongside it.
pub fn tagged_key(tag: &str, params: &SimParams) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a_u64(h, CODE_SALT);
    h = fnv1a_bytes(h, tag.as_bytes());
    fnv1a_u64(h, config_hash(params))
}

/// Serialize a `SimReport` as fixed-width little-endian words.
fn encode_report(r: &SimReport) -> Vec<u8> {
    let mut w: Vec<u64> = Vec::new();
    w.push(r.exec_time_ns);
    w.extend_from_slice(&r.counts.reads);
    w.extend_from_slice(&r.counts.writes);
    w.extend_from_slice(&[
        r.traffic.read_bytes,
        r.traffic.write_bytes,
        r.traffic.replace_bytes,
        r.traffic.read_txns,
        r.traffic.write_txns,
        r.traffic.replace_txns,
        r.traffic.pageouts,
    ]);
    w.extend_from_slice(&[
        r.injections,
        r.ownership_migrations,
        r.shared_drops,
        r.cold_allocs,
        r.bus_busy_ns,
        r.dram_busy_ns,
    ]);
    w.push(r.per_proc.len() as u64);
    for b in &r.per_proc {
        w.extend_from_slice(&[b.busy_ns, b.slc_ns, b.am_ns, b.remote_ns, b.sync_ns]);
    }
    let histo = r.read_latency.to_words();
    w.push(histo.len() as u64);
    w.extend_from_slice(&histo);
    let mut bytes = Vec::with_capacity(w.len() * 8);
    for v in w {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

struct WordReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl WordReader<'_> {
    fn next(&mut self) -> Option<u64> {
        let end = self.at.checked_add(8)?;
        let v = u64::from_le_bytes(self.bytes.get(self.at..end)?.try_into().ok()?);
        self.at = end;
        Some(v)
    }

    fn take(&mut self, n: usize) -> Option<Vec<u64>> {
        (0..n).map(|_| self.next()).collect()
    }
}

/// Inverse of [`encode_report`]; `None` on any structural mismatch.
fn decode_report(bytes: &[u8]) -> Option<SimReport> {
    let mut r = WordReader { bytes, at: 0 };
    let mut report = SimReport {
        exec_time_ns: r.next()?,
        ..Default::default()
    };
    for i in 0..5 {
        report.counts.reads[i] = r.next()?;
    }
    for i in 0..5 {
        report.counts.writes[i] = r.next()?;
    }
    report.traffic.read_bytes = r.next()?;
    report.traffic.write_bytes = r.next()?;
    report.traffic.replace_bytes = r.next()?;
    report.traffic.read_txns = r.next()?;
    report.traffic.write_txns = r.next()?;
    report.traffic.replace_txns = r.next()?;
    report.traffic.pageouts = r.next()?;
    report.injections = r.next()?;
    report.ownership_migrations = r.next()?;
    report.shared_drops = r.next()?;
    report.cold_allocs = r.next()?;
    report.bus_busy_ns = r.next()?;
    report.dram_busy_ns = r.next()?;
    let n_procs = usize::try_from(r.next()?).ok()?;
    if n_procs > 4096 {
        return None;
    }
    for _ in 0..n_procs {
        let b = coma_stats::ExecBreakdown {
            busy_ns: r.next()?,
            slc_ns: r.next()?,
            am_ns: r.next()?,
            remote_ns: r.next()?,
            sync_ns: r.next()?,
        };
        report.per_proc.push(b);
    }
    let histo_len = usize::try_from(r.next()?).ok()?;
    if histo_len > 1024 {
        return None;
    }
    report.read_latency = LatencyHisto::from_words(&r.take(histo_len)?)?;
    if r.at != bytes.len() {
        return None; // trailing garbage
    }
    Some(report)
}

struct Cache {
    dir: PathBuf,
}

impl Cache {
    fn for_ctx(ctx: &ExpCtx) -> Option<Cache> {
        if ctx.no_cache {
            None
        } else {
            Some(Cache {
                dir: ctx.out_dir.join("cache"),
            })
        }
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.cell"))
    }

    /// Load a cached report; `None` on a miss *or* on any stale/corrupt
    /// entry (bad magic, wrong entry version, key mismatch, truncation,
    /// checksum mismatch, undecodable payload).
    fn load(&self, key: u64) -> Option<SimReport> {
        let bytes = std::fs::read(self.path(key)).ok()?;
        if bytes.len() < 32 || bytes[..8] != CACHE_MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != CACHE_VERSION {
            return None;
        }
        let stored_key = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if stored_key != key {
            return None;
        }
        let payload_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        if bytes.len() != 32 + payload_len + 8 {
            return None;
        }
        let payload = &bytes[32..32 + payload_len];
        let checksum = u64::from_le_bytes(bytes[32 + payload_len..].try_into().unwrap());
        if fnv1a_bytes(FNV_OFFSET, payload) != checksum {
            return None;
        }
        decode_report(payload)
    }

    /// Persist a report. Best-effort: a full disk or permission error
    /// costs the cache hit, never the sweep. Writes go through a per-key
    /// temp file and a rename, so readers only ever see complete entries.
    fn store(&self, key: u64, report: &SimReport) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let payload = encode_report(report);
        let mut bytes = Vec::with_capacity(40 + payload.len());
        bytes.extend_from_slice(&CACHE_MAGIC);
        bytes.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = fnv1a_bytes(FNV_OFFSET, &payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let tmp = self
            .dir
            .join(format!("{key:016x}.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, &bytes).is_ok() {
            let _ = std::fs::rename(&tmp, self.path(key));
        }
    }
}

#[derive(Default)]
struct SweepCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    failed: AtomicUsize,
}

/// Run one spec through the cache: serve a valid entry, otherwise compute
/// (with panic isolation) and persist. Used by the scheduler for every
/// cell and by [`across_seeds`](crate::across_seeds) for per-seed runs.
pub fn run_spec_cached(ctx: &ExpCtx, spec: &RunSpec) -> Result<SimReport, String> {
    let cache = Cache::for_ctx(ctx);
    let counters = SweepCounters::default();
    run_cell(ctx, spec, cache.as_ref(), &counters)
}

fn run_cell(
    ctx: &ExpCtx,
    spec: &RunSpec,
    cache: Option<&Cache>,
    counters: &SweepCounters,
) -> Result<SimReport, String> {
    let key = spec_key(ctx, spec);
    if let Some(c) = cache {
        if let Some(report) = c.load(key) {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(report);
        }
    }
    match catch_unwind(AssertUnwindSafe(|| spec.run(ctx))) {
        Ok(report) => {
            counters.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = cache {
                c.store(key, &report);
            }
            Ok(report)
        }
        Err(payload) => {
            counters.failed.fetch_add(1, Ordering::Relaxed);
            Err(panic_message(payload))
        }
    }
}

/// The raw outcome of scheduling a matrix: per-cell results in matrix
/// order plus cache accounting.
pub struct SweepOutcome {
    pub cells: Vec<Result<SimReport, String>>,
    pub hits: usize,
    pub misses: usize,
    pub failed: usize,
}

/// Schedule every spec across the work-stealing pool, consulting the
/// result cache per cell. No files other than cache entries are written;
/// [`run_sweep`] layers the columnar store on top.
pub fn run_matrix(ctx: &ExpCtx, specs: &[RunSpec]) -> SweepOutcome {
    let cache = Cache::for_ctx(ctx);
    let counters = SweepCounters::default();
    let cells = run_pool(ctx.threads, specs.len(), |i| {
        run_cell(ctx, &specs[i], cache.as_ref(), &counters)
    });
    SweepOutcome {
        cells,
        hits: counters.hits.into_inner(),
        misses: counters.misses.into_inner(),
        failed: counters.failed.into_inner(),
    }
}

/// Cached single simulation for experiments whose workload is not a
/// catalog application (e.g. the thresholds hot-line micro-benchmark).
/// Returns the report plus whether it was served from the cache.
pub fn cached_sim(
    ctx: &ExpCtx,
    tag: &str,
    params: &SimParams,
    build: impl FnOnce() -> Workload,
) -> (SimReport, bool) {
    let key = tagged_key(tag, params);
    if let Some(cache) = Cache::for_ctx(ctx) {
        if let Some(report) = cache.load(key) {
            return (report, true);
        }
        let report = run_simulation(build(), params);
        cache.store(key, &report);
        (report, false)
    } else {
        (run_simulation(build(), params), false)
    }
}

// ---------------------------------------------------------------------------
// Columnar store
// ---------------------------------------------------------------------------

/// Every numeric column the store holds, with its extractor. `rnm_rate`
/// is the only f64 column; everything else is a u64 counter or duration.
type U64Extract = fn(&SimReport) -> u64;
const U64_COLUMNS: &[(&str, U64Extract)] = &[
    ("exec_time_ns", |r| r.exec_time_ns),
    ("total_reads", |r| r.counts.total_reads()),
    ("total_writes", |r| r.counts.total_writes()),
    ("read_node_misses", |r| r.counts.read_node_misses()),
    ("read_bytes", |r| r.traffic.read_bytes),
    ("write_bytes", |r| r.traffic.write_bytes),
    ("replace_bytes", |r| r.traffic.replace_bytes),
    ("total_bytes", |r| r.traffic.total_bytes()),
    ("read_txns", |r| r.traffic.read_txns),
    ("write_txns", |r| r.traffic.write_txns),
    ("replace_txns", |r| r.traffic.replace_txns),
    ("total_txns", |r| r.traffic.total_txns()),
    ("pageouts", |r| r.traffic.pageouts),
    ("busy_ns", |r| r.avg_breakdown().busy_ns),
    ("slc_ns", |r| r.avg_breakdown().slc_ns),
    ("am_ns", |r| r.avg_breakdown().am_ns),
    ("remote_ns", |r| r.avg_breakdown().remote_ns),
    ("sync_ns", |r| r.avg_breakdown().sync_ns),
    ("injections", |r| r.injections),
    ("ownership_migrations", |r| r.ownership_migrations),
    ("shared_drops", |r| r.shared_drops),
    ("cold_allocs", |r| r.cold_allocs),
    ("bus_busy_ns", |r| r.bus_busy_ns),
    ("dram_busy_ns", |r| r.dram_busy_ns),
];

fn build_columns(cells: &[Result<SimReport, String>]) -> ColBuilder {
    let mut b = ColBuilder::new(cells.len());
    for (name, get) in U64_COLUMNS {
        b.col_u64(
            name,
            cells.iter().map(|c| c.as_ref().ok().map(get)).collect(),
        );
    }
    b.col_f64(
        "rnm_rate",
        cells
            .iter()
            .map(|c| c.as_ref().ok().map(|r| r.rnm_rate()))
            .collect(),
    );
    b
}

fn model_name(m: MemoryModel) -> &'static str {
    match m {
        MemoryModel::Coma => "coma",
        MemoryModel::Numa => "numa",
        MemoryModel::Uma => "uma",
    }
}

fn sidecar_json(
    ctx: &ExpCtx,
    name: &str,
    specs: &[RunSpec],
    cells: &[Result<SimReport, String>],
) -> String {
    let rows: Vec<Value> = specs
        .iter()
        .zip(cells)
        .enumerate()
        .map(|(i, (spec, cell))| {
            let mut row = vec![
                ("row".to_string(), Value::int(i as u64)),
                ("app".to_string(), Value::Str(spec.app.name().to_string())),
                ("ppn".to_string(), Value::int(spec.procs_per_node() as u64)),
                (
                    "mp".to_string(),
                    Value::Str(spec.memory_pressure().to_string()),
                ),
                ("assoc".to_string(), Value::int(spec.am_assoc() as u64)),
                (
                    "model".to_string(),
                    Value::Str(model_name(spec.params.memory_model).to_string()),
                ),
                (
                    "key".to_string(),
                    Value::Str(format!("{:016x}", spec_key(ctx, spec))),
                ),
            ];
            match cell {
                Ok(r) => {
                    row.push(("ok".to_string(), Value::Bool(true)));
                    row.push(("exec_time_ns".to_string(), Value::int(r.exec_time_ns)));
                    row.push(("rnm_rate".to_string(), Value::float(r.rnm_rate())));
                    row.push((
                        "total_bytes".to_string(),
                        Value::int(r.traffic.total_bytes()),
                    ));
                }
                Err(e) => {
                    row.push(("ok".to_string(), Value::Bool(false)));
                    row.push(("error".to_string(), Value::Str(e.clone())));
                }
            }
            Value::Obj(row)
        })
        .collect();
    let doc = Value::Obj(vec![
        ("schema".to_string(), Value::Str("coma-sweep/1".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("scale".to_string(), Value::float(ctx.scale.0)),
        ("seed".to_string(), Value::int(ctx.seed)),
        (
            "columns".to_string(),
            Value::Arr(
                U64_COLUMNS
                    .iter()
                    .map(|(n, _)| Value::Str(n.to_string()))
                    .chain([Value::Str("rnm_rate".to_string())])
                    .collect(),
            ),
        ),
        ("rows".to_string(), Value::Arr(rows)),
    ]);
    let text = doc.to_json();
    debug_assert!(json::validate(&text).is_ok());
    text
}

/// Print one sweep's cache accounting and append it to the stats log that
/// `experiments --bin all` aggregates (`<out>/cache/stats.log`).
pub fn report_sweep_stats(ctx: &ExpCtx, name: &str, hits: usize, misses: usize, failed: usize) {
    let failed_txt = if failed > 0 {
        format!(", {failed} FAILED")
    } else {
        String::new()
    };
    println!(
        "[sweep:{name}] {} cells on {} thread(s): {hits} cache hits, {misses} misses{failed_txt}",
        hits + misses + failed,
        ctx.threads
    );
    if !ctx.no_cache {
        let dir = ctx.out_dir.join("cache");
        if std::fs::create_dir_all(&dir).is_ok() {
            use std::io::Write as _;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(dir.join("stats.log"))
            {
                let _ = writeln!(f, "{name} {hits} {misses} {failed}");
            }
        }
    }
}

/// A completed sweep: the matrix specs plus the persisted columnar store,
/// reopened from its own serialized bytes so every read goes through the
/// on-disk format.
pub struct Sweep {
    specs: Vec<RunSpec>,
    file: ColFile,
    errors: Vec<Option<String>>,
    pub hits: usize,
    pub misses: usize,
    pub failed: usize,
}

impl Sweep {
    pub fn n_rows(&self) -> usize {
        self.file.n_rows()
    }

    pub fn spec(&self, row: usize) -> &RunSpec {
        &self.specs[row]
    }

    /// Did this cell complete?
    pub fn ok(&self, row: usize) -> bool {
        self.errors[row].is_none()
    }

    /// The failure message of a failed cell.
    pub fn error(&self, row: usize) -> Option<&str> {
        self.errors[row].as_deref()
    }

    /// A `u64` metric; panics if the cell failed (figure binaries treat a
    /// failed cell in their matrix as fatal — the figure would be wrong).
    pub fn u64(&self, col: &str, row: usize) -> u64 {
        self.file.get_u64(col, row).unwrap_or_else(|| {
            panic!(
                "row {row} ({:?}) of column '{col}' is null: {}",
                self.specs[row].app,
                self.errors[row].as_deref().unwrap_or("cell failed")
            )
        })
    }

    /// An `f64` metric; panics if the cell failed.
    pub fn f64(&self, col: &str, row: usize) -> f64 {
        self.file.get_f64(col, row).unwrap_or_else(|| {
            panic!(
                "row {row} ({:?}) of column '{col}' is null: {}",
                self.specs[row].app,
                self.errors[row].as_deref().unwrap_or("cell failed")
            )
        })
    }

    /// The underlying columnar file, for raw/batch access.
    pub fn store(&self) -> &ColFile {
        &self.file
    }
}

/// Run a named sweep end to end: schedule the matrix (work stealing +
/// cache), persist the columnar store and JSON sidecar under
/// `<out>/store/<name>.{cols,json}`, report cache accounting, and return
/// a [`Sweep`] that reads metrics back out of the store bytes.
pub fn run_sweep(ctx: &ExpCtx, name: &str, specs: &[RunSpec]) -> Sweep {
    let outcome = run_matrix(ctx, specs);
    let builder = build_columns(&outcome.cells);
    let bytes = builder.to_bytes();

    let store_dir = ctx.out_dir.join("store");
    std::fs::create_dir_all(&store_dir).expect("create store directory");
    let cols_path = store_dir.join(format!("{name}.cols"));
    write_atomic(&cols_path, &bytes).expect("write columnar store");
    let json_path = store_dir.join(format!("{name}.json"));
    write_atomic(
        &json_path,
        sidecar_json(ctx, name, specs, &outcome.cells).as_bytes(),
    )
    .expect("write sweep sidecar");
    println!("[store] {}", cols_path.display());
    report_sweep_stats(ctx, name, outcome.hits, outcome.misses, outcome.failed);

    let file = ColFile::from_bytes(bytes).expect("round-trip the freshly built store");
    Sweep {
        specs: specs.to_vec(),
        file,
        errors: outcome.cells.into_iter().map(|c| c.err()).collect(),
        hits: outcome.hits,
        misses: outcome.misses,
        failed: outcome.failed,
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}
