//! Cache-correctness tests: key stability, cold-vs-warm equality, and
//! poisoned-entry detection. The cache must never serve a wrong result —
//! a corrupt, truncated or version-stale entry is a *miss*, recomputed
//! from scratch.

use coma_experiments::sweep::{run_matrix, run_sweep, spec_key, tagged_key};
use coma_experiments::{ExpCtx, RunSpec};
use coma_types::MemoryPressure;
use coma_workloads::{AppId, Scale};
use std::path::PathBuf;

fn ctx(dir: &str) -> ExpCtx {
    let out = std::env::temp_dir().join("coma-sweep-cache").join(dir);
    let _ = std::fs::remove_dir_all(&out);
    ExpCtx {
        scale: Scale::SMOKE,
        seed: 42,
        out_dir: out,
        threads: 2,
        no_cache: false,
    }
}

fn specs() -> Vec<RunSpec> {
    vec![
        RunSpec::new(AppId::WaterN2, 1, MemoryPressure::MP_50),
        RunSpec::new(AppId::WaterN2, 4, MemoryPressure::MP_50),
        RunSpec::new(AppId::Fft, 4, MemoryPressure::MP_87),
    ]
}

fn cache_entries(ctx: &ExpCtx) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(ctx.out_dir.join("cache"))
        .expect("cache dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cell"))
        .collect();
    v.sort();
    v
}

#[test]
fn cold_run_misses_warm_run_hits_byte_identically() {
    let c = ctx("cold-warm");
    let m = specs();
    let cold = run_sweep(&c, "cw", &m);
    assert_eq!((cold.hits, cold.misses, cold.failed), (0, m.len(), 0));
    let warm = run_sweep(&c, "cw", &m);
    assert_eq!((warm.hits, warm.misses, warm.failed), (m.len(), 0, 0));
    // The warm store is byte-identical to the cold one.
    let path = c.out_dir.join("store").join("cw.cols");
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(cold.store().raw_bytes(), warm.store().raw_bytes());
    assert_eq!(bytes, warm.store().raw_bytes());
}

#[test]
fn poisoned_entries_are_detected_and_recomputed() {
    let c = ctx("poison");
    let m = specs();
    let cold = run_matrix(&c, &m);
    assert_eq!(cold.misses, m.len());
    let entries = cache_entries(&c);
    assert_eq!(entries.len(), m.len());

    // Flip one payload byte: the checksum catches it.
    let victim = &entries[0];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = 32 + (bytes.len() - 40) / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(victim, &bytes).unwrap();
    let warm = run_matrix(&c, &m);
    assert_eq!(warm.hits, m.len() - 1, "poisoned entry must not be served");
    assert_eq!(warm.misses, 1);

    // Stale entry-format version: also a miss.
    let entries = cache_entries(&c);
    let mut bytes = std::fs::read(&entries[1]).unwrap();
    bytes[8] ^= 0xFF; // version word at offset 8
    std::fs::write(&entries[1], &bytes).unwrap();
    // Truncation: also a miss.
    let bytes = std::fs::read(&entries[2]).unwrap();
    std::fs::write(&entries[2], &bytes[..bytes.len() / 2]).unwrap();
    let warm = run_matrix(&c, &m);
    assert_eq!((warm.hits, warm.misses), (m.len() - 2, 2));

    // Every recompute matches the original result exactly.
    let final_run = run_matrix(&c, &m);
    assert_eq!(final_run.hits, m.len());
    for (a, b) in cold.cells.iter().zip(&final_run.cells) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.exec_time_ns, b.exec_time_ns);
        assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
        assert_eq!(a.read_latency, b.read_latency);
        assert_eq!(a.per_proc, b.per_proc);
    }
}

#[test]
fn no_cache_mode_touches_no_cache_dir() {
    let mut c = ctx("disabled");
    c.no_cache = true;
    let out = run_matrix(&c, &specs());
    assert_eq!((out.hits, out.misses), (0, specs().len()));
    assert!(
        !c.out_dir.join("cache").exists(),
        "--no-cache must not create cache state"
    );
}

#[test]
fn cache_keys_cover_workload_identity_not_just_params() {
    let c = ctx("keys");
    let spec = RunSpec::new(AppId::Fft, 4, MemoryPressure::MP_81);
    let base = spec_key(&c, &spec);

    // Same params, different app → different key.
    let other_app = RunSpec::new(AppId::Barnes, 4, MemoryPressure::MP_81);
    assert_ne!(base, spec_key(&c, &other_app));

    // Different seed or scale → different key.
    let mut seeded = c.clone();
    seeded.seed = 43;
    assert_ne!(base, spec_key(&seeded, &spec));
    let mut scaled = c.clone();
    scaled.scale = Scale::BENCH;
    assert_ne!(base, spec_key(&scaled, &spec));

    // Any parameter change → different key (the canonical hash covers
    // every field; exhaustively pinned in coma-sim's canon tests).
    let tweaked = spec.clone().with_assoc(8);
    assert_ne!(base, spec_key(&c, &tweaked));

    // Identical inputs → identical key (stable across processes too: the
    // hash has no pointer or time dependence).
    assert_eq!(base, spec_key(&c, &spec.clone()));

    // Tagged keys separate workload families under the same params.
    assert_ne!(
        tagged_key("hotline-v1", &spec.params),
        tagged_key("hotline-v2", &spec.params)
    );
}
