//! `COMA_THREADS` handling: the knob must actually reach the scheduler
//! (it was historically parsed but easy to leave dead when the pool is
//! rewritten), an invalid value must fall back to available parallelism
//! with a warning rather than abort, and thread count must never change
//! results.
//!
//! Environment mutation is process-global, so every test here serializes
//! on one mutex and restores the prior state before releasing it.

use coma_experiments::{run_grid, ExpCtx, RunSpec};
use coma_types::MemoryPressure;
use coma_workloads::{AppId, Scale};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `COMA_THREADS` set to `val` (or unset for `None`),
/// restoring the previous value afterwards.
fn with_threads_env<T>(val: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    let prior = std::env::var("COMA_THREADS").ok();
    match val {
        Some(v) => std::env::set_var("COMA_THREADS", v),
        None => std::env::remove_var("COMA_THREADS"),
    }
    let out = f();
    match prior {
        Some(v) => std::env::set_var("COMA_THREADS", v),
        None => std::env::remove_var("COMA_THREADS"),
    }
    out
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[test]
fn threads_env_is_honored() {
    assert_eq!(
        with_threads_env(Some("1"), || ExpCtx::from_env().threads),
        1
    );
    assert_eq!(
        with_threads_env(Some("4"), || ExpCtx::from_env().threads),
        4
    );
}

#[test]
fn invalid_threads_value_falls_back_to_available_parallelism() {
    for bad in ["zap", "0", "-3", "1.5", ""] {
        assert_eq!(
            with_threads_env(Some(bad), || ExpCtx::from_env().threads),
            default_threads(),
            "COMA_THREADS='{bad}' must fall back"
        );
    }
    assert_eq!(
        with_threads_env(None, || ExpCtx::from_env().threads),
        default_threads()
    );
}

/// The knob is live end to end: a grid scheduled at COMA_THREADS=1 and at
/// =4 produces identical reports (and both actually complete — a dead or
/// deadlocked pool would hang or panic here).
#[test]
fn thread_count_does_not_change_results() {
    let specs: Vec<RunSpec> = [AppId::WaterN2, AppId::Fft]
        .into_iter()
        .flat_map(|app| [1usize, 4].map(|ppn| RunSpec::new(app, ppn, MemoryPressure::MP_50)))
        .collect();
    let run_at = |threads: usize| {
        let ctx = ExpCtx {
            scale: Scale::SMOKE,
            seed: 42,
            out_dir: std::env::temp_dir().join("coma-threads-env"),
            threads,
            no_cache: true,
        };
        run_grid(&ctx, &specs)
    };
    let serial = run_at(1);
    let parallel = run_at(4);
    // More workers than cells: the pool must clamp, not spin.
    let oversubscribed = run_at(64);
    for (i, s) in serial.iter().enumerate() {
        for other in [&parallel[i], &oversubscribed[i]] {
            assert_eq!(s.exec_time_ns, other.exec_time_ns, "cell {i}");
            assert_eq!(
                s.traffic.total_bytes(),
                other.traffic.total_bytes(),
                "cell {i}"
            );
            assert_eq!(s.read_latency, other.read_latency, "cell {i}");
        }
    }
}
