//! Global line directory — flat root plus the directory-level tree.
//!
//! The modeled hardware locates lines by snooping; the simulator shortcuts
//! the search with a directory mapping each live line to its responsible
//! (Owner/Exclusive) node and the set of Shared replica holders. The
//! directory is *simulation state*, not modeled hardware — it must stay
//! consistent with the per-node attraction memories, which the engine's
//! invariant checker verifies.
//!
//! In a hierarchical topology the directory additionally keeps one
//! [`DirectoryLevel`] per tree level above the cluster-group buses. Level
//! `h` records, per line, a presence bitmask over the directory units at
//! level `h-1` whose subtree holds any copy — the state a real
//! directory-tree COMA (DDM-style) uses to filter snoops: a request only
//! descends into subtrees whose presence bit is set, and climbs only when
//! some bit outside its own subtree is set. The masks are *redundant* with
//! the root's owner/sharer sets, which is exactly what makes them
//! checkable: the engine's live auditor, the model checker and the fuzzer
//! all recompute them independently and fail loudly on any divergence.
//!
//! The flat machine keeps zero levels and pays zero maintenance.
//!
//! Keys are line numbers; the maps are in-repo open-addressing tables
//! ([`OpenTable`]) because these lookups sit on the hot path of every
//! simulated miss — see the module docs of [`crate::table`].

use crate::table::OpenTable;
use coma_types::{LineNum, MachineGeometry, NodeId, NodeSet, Topology};

/// Where a live line's copies are.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct LineInfo {
    /// Node holding the responsible (Owner or Exclusive) copy.
    pub owner: NodeId,
    /// Set of nodes holding Shared replicas (owner never a member).
    pub sharers: NodeSet,
}

impl LineInfo {
    /// Number of Shared replicas.
    pub fn n_sharers(self) -> u32 {
        self.sharers.len() as u32
    }

    /// Nodes in the sharer set, ascending (bit-scan, no per-call
    /// allocation; cost proportional to the population count).
    pub fn sharer_nodes(self) -> impl Iterator<Item = NodeId> {
        self.sharers.iter().map(NodeId)
    }
}

/// One directory level of the tree: per-line presence masks over the
/// units of the level below.
#[derive(Clone, Debug)]
pub struct DirectoryLevel {
    /// Height in the tree (1 = directly above the group buses).
    height: usize,
    /// line → bitmask of level-`height-1` units whose subtree holds a copy.
    map: OpenTable<u64>,
}

impl DirectoryLevel {
    fn new(height: usize) -> Self {
        DirectoryLevel {
            height,
            map: OpenTable::new(),
        }
    }

    /// Height of this level above the group buses.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Stored presence mask for a line.
    #[inline]
    pub fn presence(&self, line: LineNum) -> Option<u64> {
        self.map.get(line.0)
    }

    /// Iterate all lines tracked at this level.
    pub fn iter(&self) -> impl Iterator<Item = (LineNum, u64)> + '_ {
        self.map.iter().map(|(l, m)| (LineNum(l), *m))
    }
}

/// Inline sharer capacity of a root-table entry. Four inline IDs keep a
/// root slot at 16 bytes (four slots per host cache line); the benched
/// workloads' lines rarely have more simultaneous Shared replicas than
/// that, so the spill table stays tiny and cold.
const INLINE_SHARERS: usize = 4;

/// `RootEntry::n` marker: the sharer set lives in the spill table.
const SPILLED: u8 = u8::MAX;

/// Compact stored form of a [`LineInfo`]. A full `NodeSet` is 32 bytes —
/// sized for 256-node machines — but the root table holds one entry per
/// live line and is probed on every global action, so its slots are the
/// single largest host-cache consumer in the simulator. Lines with at
/// most [`INLINE_SHARERS`] Shared replicas (the overwhelming majority)
/// store the sharer node IDs inline, unordered; wider lines park their
/// `NodeSet` in a side table. Once spilled, an entry stays spilled until
/// its sharer set is cleared — demotion would buy bytes back for a case
/// too rare to matter at the cost of churn on every `remove_sharer`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct RootEntry {
    owner: u16,
    /// Count of valid `inline` entries, or [`SPILLED`].
    n: u8,
    inline: [u16; INLINE_SHARERS],
}

/// The machine-wide line directory (root state + level tree).
#[derive(Clone, Debug)]
pub struct Directory {
    map: OpenTable<RootEntry>,
    /// Sharer sets of lines too wide for inline storage (see [`RootEntry`]).
    spill: OpenTable<NodeSet>,
    topo: Topology,
    nodes_per_group: usize,
    levels: Vec<DirectoryLevel>,
}

impl Default for Directory {
    fn default() -> Self {
        Self::flat()
    }
}

impl Directory {
    /// Flat single-bus directory (no levels, no presence state).
    pub fn flat() -> Self {
        Directory {
            map: OpenTable::new(),
            spill: OpenTable::new(),
            topo: Topology::flat(),
            nodes_per_group: usize::MAX, // any node maps to group 0
            levels: Vec::new(),
        }
    }

    pub fn new() -> Self {
        Self::flat()
    }

    /// Directory for a machine geometry: one [`DirectoryLevel`] per tree
    /// level above the group buses (none when flat).
    pub fn for_geometry(geom: &MachineGeometry) -> Self {
        let topo = geom.topology;
        Directory {
            map: OpenTable::new(),
            spill: OpenTable::new(),
            topo,
            nodes_per_group: if topo.is_flat() {
                usize::MAX
            } else {
                geom.nodes_per_group()
            },
            levels: (1..=topo.levels).map(DirectoryLevel::new).collect(),
        }
    }

    /// The hierarchy shape this directory tracks.
    #[inline]
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Cluster group of a node.
    #[inline]
    pub fn group_of(&self, node: NodeId) -> usize {
        node.0 as usize / self.nodes_per_group
    }

    /// The directory levels above the group buses (empty when flat).
    #[inline]
    pub fn levels(&self) -> &[DirectoryLevel] {
        &self.levels
    }

    /// Presence mask a line *should* have at level `height`, derived from
    /// the root owner/sharer state.
    pub fn expected_presence(&self, height: usize, info: LineInfo) -> u64 {
        let mut mask = 1u64 << self.topo.unit_of(self.group_of(info.owner), height - 1);
        for s in info.sharer_nodes() {
            mask |= 1 << self.topo.unit_of(self.group_of(s), height - 1);
        }
        mask
    }

    /// Materialize the full [`LineInfo`] a stored entry denotes.
    #[inline]
    fn info_of(&self, line: u64, e: RootEntry) -> LineInfo {
        let sharers = if e.n == SPILLED {
            self.spill.get(line).expect("spilled sharer set missing")
        } else {
            let mut s = NodeSet::empty();
            for &id in &e.inline[..e.n as usize] {
                s.insert(id);
            }
            s
        };
        LineInfo {
            owner: NodeId(e.owner),
            sharers,
        }
    }

    /// Re-derive every level's presence mask for `line` from the root
    /// entry (or drop them when the line died). Called after every
    /// root-state mutation; a no-op on flat machines.
    fn sync_presence(&mut self, line: LineNum) {
        if self.levels.is_empty() {
            return;
        }
        match self.map.get(line.0) {
            Some(e) => {
                let info = self.info_of(line.0, e);
                for h in 1..=self.levels.len() {
                    let mask = self.expected_presence(h, info);
                    self.levels[h - 1].map.insert(line.0, mask);
                }
            }
            None => {
                for lvl in &mut self.levels {
                    lvl.map.remove(line.0);
                }
            }
        }
    }

    /// Among the groups whose presence bit is set at level 1, the one
    /// whose copies are *farthest* from `from_group` (greatest LCA height,
    /// lowest group index on ties). This is the snoop-filter question a
    /// hierarchical write asks — "how high must my invalidation climb?" —
    /// answered from the stored masks, not the root sets, so corrupted
    /// presence state changes routing. `None` on flat machines.
    pub fn farthest_present(&self, line: LineNum, from_group: usize) -> Option<usize> {
        let mask = self.levels.first()?.presence(line)?;
        let mut best: Option<(usize, usize)> = None; // (height, group)
        for g in 0..64usize {
            if mask & (1 << g) == 0 {
                continue;
            }
            let h = self.topo.lca_height(from_group, g);
            if best.map(|(bh, _)| h > bh).unwrap_or(true) {
                best = Some((h, g));
            }
        }
        best.map(|(_, g)| g)
    }

    /// Mutable stored presence mask — a **fault-injection seam** for the
    /// verification mutants, never used by the protocol itself.
    pub fn presence_mut(&mut self, height: usize, line: LineNum) -> Option<&mut u64> {
        self.levels.get_mut(height - 1)?.map.get_mut(line.0)
    }

    /// Look up a live line.
    #[inline]
    pub fn get(&self, line: LineNum) -> Option<LineInfo> {
        self.map.get(line.0).map(|e| self.info_of(line.0, e))
    }

    /// Pull `line`'s root-table slot toward the host L1 ahead of a probe
    /// (performance hint only).
    #[inline]
    pub fn prefetch(&self, line: LineNum) {
        self.map.prefetch(line.0);
    }

    /// Is the line live anywhere in the machine?
    #[inline]
    pub fn contains(&self, line: LineNum) -> bool {
        self.map.contains(line.0)
    }

    /// Register a brand-new line with a sole (Exclusive) copy.
    pub fn insert_sole(&mut self, line: LineNum, owner: NodeId) {
        let prev = self.map.insert(
            line.0,
            RootEntry {
                owner: owner.0,
                n: 0,
                inline: [0; INLINE_SHARERS],
            },
        );
        debug_assert!(prev.is_none(), "line {line:?} already live");
        self.sync_presence(line);
    }

    /// Add a Shared replica holder (idempotent, set semantics).
    pub fn add_sharer(&mut self, line: LineNum, node: NodeId) {
        let e = self.map.get_mut(line.0).expect("sharer of dead line");
        debug_assert_ne!(e.owner, node.0, "owner cannot also be a sharer");
        if e.n == SPILLED {
            self.spill
                .get_mut(line.0)
                .expect("spilled sharer set missing")
                .insert(node.0);
        } else {
            let n = e.n as usize;
            if !e.inline[..n].contains(&node.0) {
                if n < INLINE_SHARERS {
                    e.inline[n] = node.0;
                    e.n += 1;
                } else {
                    let mut s = NodeSet::empty();
                    for &id in &e.inline {
                        s.insert(id);
                    }
                    s.insert(node.0);
                    e.n = SPILLED;
                    self.spill.insert(line.0, s);
                }
            }
        }
        self.sync_presence(line);
    }

    /// Drop a Shared replica holder.
    pub fn remove_sharer(&mut self, line: LineNum, node: NodeId) {
        if let Some(e) = self.map.get_mut(line.0) {
            Self::entry_remove_sharer(&mut self.spill, line, e, node);
            self.sync_presence(line);
        }
    }

    /// Drop `node` from an entry's sharer set, wherever it is stored.
    /// Inline removal is a swap-remove — order is immaterial, the set is
    /// materialized through [`NodeSet`].
    fn entry_remove_sharer(
        spill: &mut OpenTable<NodeSet>,
        line: LineNum,
        e: &mut RootEntry,
        node: NodeId,
    ) {
        if e.n == SPILLED {
            spill
                .get_mut(line.0)
                .expect("spilled sharer set missing")
                .remove(node.0);
        } else {
            let n = e.n as usize;
            if let Some(i) = e.inline[..n].iter().position(|&id| id == node.0) {
                e.inline[i] = e.inline[n - 1];
                e.n -= 1;
            }
        }
    }

    /// Is `node` a registered sharer?
    pub fn is_sharer(&self, line: LineNum, node: NodeId) -> bool {
        self.get(line)
            .map(|i| i.sharers.contains(node.0))
            .unwrap_or(false)
    }

    /// Move the responsible copy to `node` (which must not be a sharer
    /// afterward). Keeps the remaining sharer set unless cleared by the
    /// caller.
    pub fn set_owner(&mut self, line: LineNum, node: NodeId) {
        let e = self.map.get_mut(line.0).expect("owner of dead line");
        e.owner = node.0;
        Self::entry_remove_sharer(&mut self.spill, line, e, node);
        self.sync_presence(line);
    }

    /// Replace the sharer set wholesale (used by write invalidations).
    pub fn clear_sharers(&mut self, line: LineNum) {
        if let Some(e) = self.map.get_mut(line.0) {
            if e.n == SPILLED {
                self.spill.remove(line.0);
            }
            e.n = 0;
            self.sync_presence(line);
        }
    }

    /// Remove a line entirely (page-out).
    pub fn remove(&mut self, line: LineNum) -> Option<LineInfo> {
        let e = self.map.remove(line.0)?;
        let sharers = if e.n == SPILLED {
            self.spill
                .remove(line.0)
                .expect("spilled sharer set missing")
        } else {
            let mut s = NodeSet::empty();
            for &id in &e.inline[..e.n as usize] {
                s.insert(id);
            }
            s
        };
        self.sync_presence(line);
        Some(LineInfo {
            owner: NodeId(e.owner),
            sharers,
        })
    }

    /// Number of live lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate all live lines (invariant checking).
    pub fn iter(&self) -> impl Iterator<Item = (LineNum, LineInfo)> + '_ {
        self.map
            .iter()
            .map(move |(l, e)| (LineNum(l), self.info_of(l, *e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_types::MachineConfig;

    #[test]
    fn sole_insert_then_sharers() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(7), NodeId(2));
        d.add_sharer(LineNum(7), NodeId(5));
        d.add_sharer(LineNum(7), NodeId(0));
        let info = d.get(LineNum(7)).unwrap();
        assert_eq!(info.owner, NodeId(2));
        assert_eq!(info.n_sharers(), 2);
        let sharers: Vec<NodeId> = info.sharer_nodes().collect();
        assert_eq!(sharers, vec![NodeId(0), NodeId(5)]);
    }

    #[test]
    fn remove_sharer_idempotent() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(1), NodeId(0));
        d.add_sharer(LineNum(1), NodeId(3));
        d.remove_sharer(LineNum(1), NodeId(3));
        d.remove_sharer(LineNum(1), NodeId(3));
        assert_eq!(d.get(LineNum(1)).unwrap().n_sharers(), 0);
    }

    #[test]
    fn owner_migration_clears_new_owner_from_sharers() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(1), NodeId(0));
        d.add_sharer(LineNum(1), NodeId(3));
        d.set_owner(LineNum(1), NodeId(3));
        let info = d.get(LineNum(1)).unwrap();
        assert_eq!(info.owner, NodeId(3));
        assert_eq!(info.n_sharers(), 0);
    }

    #[test]
    fn remove_kills_line() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(9), NodeId(1));
        assert!(d.remove(LineNum(9)).is_some());
        assert!(!d.contains(LineNum(9)));
        assert!(d.remove(LineNum(9)).is_none());
    }

    #[test]
    fn is_sharer_checks_membership() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(2), NodeId(0));
        d.add_sharer(LineNum(2), NodeId(15));
        assert!(d.is_sharer(LineNum(2), NodeId(15)));
        assert!(!d.is_sharer(LineNum(2), NodeId(14)));
        assert!(!d.is_sharer(LineNum(3), NodeId(15)));
    }

    #[test]
    fn sharers_beyond_sixteen_nodes() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(4), NodeId(200));
        for n in [17u16, 63, 64, 255] {
            d.add_sharer(LineNum(4), NodeId(n));
        }
        let info = d.get(LineNum(4)).unwrap();
        assert_eq!(info.n_sharers(), 4);
        assert!(d.is_sharer(LineNum(4), NodeId(255)));
        assert_eq!(info.sharer_nodes().next(), Some(NodeId(17)));
    }

    #[test]
    fn hasher_distributes_sequential_keys() {
        // Sequential line numbers must not collide into one bucket chain:
        // just verify inserts/lookups work at scale.
        let mut d = Directory::new();
        for i in 0..10_000u64 {
            d.insert_sole(LineNum(i), NodeId((i % 16) as u16));
        }
        assert_eq!(d.len(), 10_000);
        for i in (0..10_000u64).step_by(997) {
            assert_eq!(d.get(LineNum(i)).unwrap().owner, NodeId((i % 16) as u16));
        }
    }

    fn two_level_dir() -> Directory {
        // 16 procs, 8 nodes, 4 groups of 2 nodes, one root level.
        let cfg = MachineConfig {
            procs_per_node: 2,
            topology: Topology::two_level(4),
            ..Default::default()
        };
        Directory::for_geometry(&cfg.geometry(4 << 20).unwrap())
    }

    #[test]
    fn flat_directory_keeps_no_levels() {
        let d = Directory::new();
        assert!(d.levels().is_empty());
        assert!(d.farthest_present(LineNum(0), 0).is_none());
    }

    #[test]
    fn presence_tracks_owner_and_sharers() {
        let mut d = two_level_dir();
        d.insert_sole(LineNum(1), NodeId(0)); // group 0
        assert_eq!(d.levels()[0].presence(LineNum(1)), Some(0b0001));
        d.add_sharer(LineNum(1), NodeId(5)); // group 2
        d.add_sharer(LineNum(1), NodeId(7)); // group 3
        assert_eq!(d.levels()[0].presence(LineNum(1)), Some(0b1101));
        d.remove_sharer(LineNum(1), NodeId(5));
        assert_eq!(d.levels()[0].presence(LineNum(1)), Some(0b1001));
        d.clear_sharers(LineNum(1));
        assert_eq!(d.levels()[0].presence(LineNum(1)), Some(0b0001));
        d.remove(LineNum(1));
        assert_eq!(d.levels()[0].presence(LineNum(1)), None);
    }

    #[test]
    fn presence_follows_ownership_migration() {
        let mut d = two_level_dir();
        d.insert_sole(LineNum(2), NodeId(0)); // group 0
        d.add_sharer(LineNum(2), NodeId(6)); // group 3
        d.set_owner(LineNum(2), NodeId(6));
        // Old owner's group no longer holds a copy.
        assert_eq!(d.levels()[0].presence(LineNum(2)), Some(0b1000));
    }

    #[test]
    fn farthest_present_uses_stored_masks() {
        let mut d = two_level_dir();
        d.insert_sole(LineNum(3), NodeId(0)); // group 0
                                              // Only the writer's own group holds it: farthest is itself.
        assert_eq!(d.farthest_present(LineNum(3), 0), Some(0));
        d.add_sharer(LineNum(3), NodeId(2)); // group 1
        assert_eq!(d.farthest_present(LineNum(3), 0), Some(1));
        // Corrupt the stored mask through the fault-injection seam: the
        // routing answer changes even though the root sets did not.
        *d.presence_mut(1, LineNum(3)).unwrap() = 0b0001;
        assert_eq!(d.farthest_present(LineNum(3), 0), Some(0));
        assert_ne!(
            d.levels()[0].presence(LineNum(3)).unwrap(),
            d.expected_presence(1, d.get(LineNum(3)).unwrap()),
            "corruption must be visible to the invariant checkers"
        );
    }

    #[test]
    fn deep_tree_presence_folds_upward() {
        // 16 nodes in 8 groups over 3 levels (fanout 2).
        let cfg = MachineConfig {
            topology: Topology::tree(8, 3),
            ..Default::default()
        };
        let mut d = Directory::for_geometry(&cfg.geometry(4 << 20).unwrap());
        d.insert_sole(LineNum(9), NodeId(0)); // group 0
        d.add_sharer(LineNum(9), NodeId(10)); // group 5
                                              // Level 1: groups {0, 5}. Level 2: units {0, 2}. Level 3: {0, 1}.
        assert_eq!(d.levels()[0].presence(LineNum(9)), Some(0b10_0001));
        assert_eq!(d.levels()[1].presence(LineNum(9)), Some(0b101));
        assert_eq!(d.levels()[2].presence(LineNum(9)), Some(0b11));
    }
}
