//! Global line directory.
//!
//! The modeled hardware locates lines by snooping; the simulator shortcuts
//! the search with a directory mapping each live line to its responsible
//! (Owner/Exclusive) node and the set of Shared replica holders. The
//! directory is *simulation state*, not modeled hardware — it must stay
//! consistent with the per-node attraction memories, which the engine's
//! invariant checker verifies.
//!
//! Keys are line numbers; the map is an in-repo open-addressing table
//! ([`OpenTable`]) because this lookup sits on the hot path of every
//! simulated miss — see the module docs of [`crate::table`].

use crate::table::OpenTable;
use coma_types::{LineNum, NodeId};

/// Where a live line's copies are.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct LineInfo {
    /// Node holding the responsible (Owner or Exclusive) copy.
    pub owner: NodeId,
    /// Bitmask of nodes holding Shared replicas (owner bit never set).
    pub sharers: u16,
}

impl LineInfo {
    /// Number of Shared replicas.
    pub fn n_sharers(self) -> u32 {
        self.sharers.count_ones()
    }

    /// Nodes in the sharer set, ascending (bit-scan, no per-call
    /// allocation; cost proportional to the population count).
    pub fn sharer_nodes(self) -> impl Iterator<Item = NodeId> {
        let mut mask = self.sharers;
        std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let i = mask.trailing_zeros() as u16;
            mask &= mask - 1;
            Some(NodeId(i))
        })
    }
}

/// The machine-wide line directory.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    map: OpenTable<LineInfo>,
}

impl Directory {
    pub fn new() -> Self {
        Directory::default()
    }

    /// Look up a live line.
    #[inline]
    pub fn get(&self, line: LineNum) -> Option<LineInfo> {
        self.map.get(line.0)
    }

    /// Is the line live anywhere in the machine?
    #[inline]
    pub fn contains(&self, line: LineNum) -> bool {
        self.map.contains(line.0)
    }

    /// Register a brand-new line with a sole (Exclusive) copy.
    pub fn insert_sole(&mut self, line: LineNum, owner: NodeId) {
        let prev = self.map.insert(line.0, LineInfo { owner, sharers: 0 });
        debug_assert!(prev.is_none(), "line {line:?} already live");
    }

    /// Add a Shared replica holder.
    pub fn add_sharer(&mut self, line: LineNum, node: NodeId) {
        let info = self.map.get_mut(line.0).expect("sharer of dead line");
        debug_assert_ne!(info.owner, node, "owner cannot also be a sharer");
        info.sharers |= 1 << node.0;
    }

    /// Drop a Shared replica holder.
    pub fn remove_sharer(&mut self, line: LineNum, node: NodeId) {
        if let Some(info) = self.map.get_mut(line.0) {
            info.sharers &= !(1 << node.0);
        }
    }

    /// Is `node` a registered sharer?
    pub fn is_sharer(&self, line: LineNum, node: NodeId) -> bool {
        self.get(line)
            .map(|i| i.sharers & (1 << node.0) != 0)
            .unwrap_or(false)
    }

    /// Move the responsible copy to `node` (which must not be a sharer
    /// afterward). Keeps the remaining sharer set unless cleared by the
    /// caller.
    pub fn set_owner(&mut self, line: LineNum, node: NodeId) {
        let info = self.map.get_mut(line.0).expect("owner of dead line");
        info.owner = node;
        info.sharers &= !(1 << node.0);
    }

    /// Replace the sharer set wholesale (used by write invalidations).
    pub fn clear_sharers(&mut self, line: LineNum) {
        if let Some(info) = self.map.get_mut(line.0) {
            info.sharers = 0;
        }
    }

    /// Remove a line entirely (page-out).
    pub fn remove(&mut self, line: LineNum) -> Option<LineInfo> {
        self.map.remove(line.0)
    }

    /// Number of live lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate all live lines (invariant checking).
    pub fn iter(&self) -> impl Iterator<Item = (LineNum, LineInfo)> + '_ {
        self.map.iter().map(|(l, i)| (LineNum(l), *i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sole_insert_then_sharers() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(7), NodeId(2));
        d.add_sharer(LineNum(7), NodeId(5));
        d.add_sharer(LineNum(7), NodeId(0));
        let info = d.get(LineNum(7)).unwrap();
        assert_eq!(info.owner, NodeId(2));
        assert_eq!(info.n_sharers(), 2);
        let sharers: Vec<NodeId> = info.sharer_nodes().collect();
        assert_eq!(sharers, vec![NodeId(0), NodeId(5)]);
    }

    #[test]
    fn remove_sharer_idempotent() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(1), NodeId(0));
        d.add_sharer(LineNum(1), NodeId(3));
        d.remove_sharer(LineNum(1), NodeId(3));
        d.remove_sharer(LineNum(1), NodeId(3));
        assert_eq!(d.get(LineNum(1)).unwrap().n_sharers(), 0);
    }

    #[test]
    fn owner_migration_clears_new_owner_from_sharers() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(1), NodeId(0));
        d.add_sharer(LineNum(1), NodeId(3));
        d.set_owner(LineNum(1), NodeId(3));
        let info = d.get(LineNum(1)).unwrap();
        assert_eq!(info.owner, NodeId(3));
        assert_eq!(info.n_sharers(), 0);
    }

    #[test]
    fn remove_kills_line() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(9), NodeId(1));
        assert!(d.remove(LineNum(9)).is_some());
        assert!(!d.contains(LineNum(9)));
        assert!(d.remove(LineNum(9)).is_none());
    }

    #[test]
    fn is_sharer_checks_bitmask() {
        let mut d = Directory::new();
        d.insert_sole(LineNum(2), NodeId(0));
        d.add_sharer(LineNum(2), NodeId(15));
        assert!(d.is_sharer(LineNum(2), NodeId(15)));
        assert!(!d.is_sharer(LineNum(2), NodeId(14)));
        assert!(!d.is_sharer(LineNum(3), NodeId(15)));
    }

    #[test]
    fn hasher_distributes_sequential_keys() {
        // Sequential line numbers must not collide into one bucket chain:
        // just verify inserts/lookups work at scale.
        let mut d = Directory::new();
        for i in 0..10_000u64 {
            d.insert_sole(LineNum(i), NodeId((i % 16) as u16));
        }
        assert_eq!(d.len(), 10_000);
        for i in (0..10_000u64).step_by(997) {
            assert_eq!(d.get(LineNum(i)).unwrap().owner, NodeId((i % 16) as u16));
        }
    }
}
