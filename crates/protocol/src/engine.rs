//! The coherence engine: every read and write of every processor walks
//! through here, mutating the machine's cache state and returning an
//! [`Outcome`] for the timing model.
//!
//! The engine is purely functional with respect to time — it does not
//! know what a nanosecond is. `coma-sim` layers the paper's §3.2 timing
//! (and resource contention) on top of the outcomes.

use crate::directory::{Directory, LineHasher};
use crate::node::NodeState;
use crate::outcome::Outcome;
use coma_cache::{AcceptPolicy, AcceptSlot, AmState, SlcState, Victim, VictimPolicy};
use coma_stats::{Level, Traffic};
use coma_types::{LineNum, MachineGeometry, NodeId, ProcId, LINE_SHIFT, PAGE_SHIFT};
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

/// Lines per page (4096 / 64).
const PAGE_LINES_SHIFT: u32 = PAGE_SHIFT - LINE_SHIFT;

/// Protocol-level event counters (beyond bus traffic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Successful injections of displaced responsible copies.
    pub injections: u64,
    /// Injections resolved by migrating ownership to an existing replica.
    pub ownership_migrations: u64,
    /// Shared replicas silently dropped by replacement.
    pub shared_drops: u64,
    /// Injections with no receiver anywhere (OS page-out).
    pub pageouts: u64,
    /// Lines first materialized by on-demand page allocation.
    pub cold_allocs: u64,
}

/// The machine-wide coherence state machine.
pub struct CoherenceEngine {
    geom: MachineGeometry,
    nodes: Vec<NodeState>,
    dir: Directory,
    /// On-demand page table: page number → first-touching (home) node.
    pages: HashMap<u64, NodeId, BuildHasherDefault<LineHasher>>,
    /// Lines currently paged out to the OS.
    paged_out: HashSet<LineNum, BuildHasherDefault<LineHasher>>,
    accept_policy: AcceptPolicy,
    intra_node_transfers: bool,
    inclusive_hierarchy: bool,
    /// Global bus traffic, decomposed as in Figures 3–4.
    pub traffic: Traffic,
    /// Replacement / allocation event counters.
    pub stats: ProtocolStats,
}

impl CoherenceEngine {
    pub fn new(
        geom: MachineGeometry,
        victim_policy: VictimPolicy,
        accept_policy: AcceptPolicy,
        intra_node_transfers: bool,
    ) -> Self {
        Self::with_inclusion(geom, victim_policy, accept_policy, intra_node_transfers, true)
    }

    /// Like [`CoherenceEngine::new`], with control over SLC/AM inclusion.
    /// With `inclusive = false`, SLC replicas survive attraction-memory
    /// replacements (the paper's §4.2 suggestion, after Joe & Hennessy):
    /// the private caches act as extra replication capacity when the AM
    /// sets fill with unique data at very high memory pressure.
    pub fn with_inclusion(
        geom: MachineGeometry,
        victim_policy: VictimPolicy,
        accept_policy: AcceptPolicy,
        intra_node_transfers: bool,
        inclusive_hierarchy: bool,
    ) -> Self {
        let nodes = (0..geom.n_nodes)
            .map(|_| NodeState::new(&geom, victim_policy))
            .collect();
        CoherenceEngine {
            geom,
            nodes,
            dir: Directory::new(),
            pages: HashMap::default(),
            paged_out: HashSet::default(),
            accept_policy,
            intra_node_transfers,
            inclusive_hierarchy,
            traffic: Traffic::default(),
            stats: ProtocolStats::default(),
        }
    }

    /// Does any private cache in `node_idx` still hold `line`?
    fn slc_holds(&self, node_idx: usize, line: LineNum) -> bool {
        self.nodes[node_idx]
            .slcs
            .iter()
            .any(|s| s.peek(line).is_valid())
    }

    /// An AM entry is being displaced (replacement, not coherence). Under
    /// inclusion the private copies die with it; without inclusion clean
    /// SLC replicas survive and the node remains a sharer. Returns true
    /// if the node keeps (SLC-only) copies.
    fn displace_private(&mut self, node_idx: usize, line: LineNum) -> bool {
        if self.inclusive_hierarchy {
            self.nodes[node_idx].invalidate_private(line);
            return false;
        }
        // Dirty data must not be lost: fold it back before the AM entry
        // goes (the write-back is part of the replacement).
        self.nodes[node_idx].downgrade_private(line);
        self.slc_holds(node_idx, line)
    }

    #[inline]
    pub fn geometry(&self) -> &MachineGeometry {
        &self.geom
    }

    #[inline]
    fn node_of(&self, proc: ProcId) -> usize {
        proc.node(self.geom.procs_per_node).as_usize()
    }

    /// Access to node state for diagnostics and invariant checks.
    pub fn node(&self, n: usize) -> &NodeState {
        &self.nodes[n]
    }

    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Perform a processor read of `line`.
    pub fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let n = self.node_of(proc);
        let pidx = proc.index_in_node(self.geom.procs_per_node);

        if self.nodes[n].flcs[pidx].read_hit(line) {
            return Outcome::at(Level::Flc);
        }
        let slc_state = self.nodes[n].slcs[pidx].lookup(line);
        if slc_state.is_valid() {
            self.nodes[n].flcs[pidx].fill(line, slc_state == SlcState::Modified);
            return Outcome::at(Level::Slc);
        }

        let mut out;
        if self.intra_node_transfers {
            if let Some(peer) = self.nodes[n].dirty_peer(line, pidx) {
                // Dirty intra-node supply: peer downgrades, data written
                // back into the AM (which must hold the line Exclusive).
                self.nodes[n].slcs[peer].downgrade(line);
                self.nodes[n].flcs[peer].downgrade(line);
                debug_assert_eq!(self.nodes[n].am.state(line), AmState::Exclusive);
                out = Outcome::at(Level::PeerSlc);
                out.peer_slc = Some(peer);
                self.fill_private_read(n, pidx, line, &mut out);
                return out;
            }
        } else if let Some(peer) = self.nodes[n].dirty_peer(line, pidx) {
            // Without direct transfers the peer writes back first and the
            // AM supplies; functionally identical, timed as an AM hit.
            self.nodes[n].slcs[peer].downgrade(line);
            self.nodes[n].flcs[peer].downgrade(line);
        }

        if self.nodes[n].am.touch(line).is_valid() {
            out = Outcome::at(Level::Am);
            self.fill_private_read(n, pidx, line, &mut out);
            return out;
        }

        // Node miss: the access goes on the global bus.
        out = self.global_read(n, line);
        self.fill_private_read(n, pidx, line, &mut out);
        out
    }

    /// Perform a processor write of `line` (ownership acquisition; the
    /// store data itself is not modeled).
    pub fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let n = self.node_of(proc);
        let pidx = proc.index_in_node(self.geom.procs_per_node);

        if self.nodes[n].flcs[pidx].write_hit(line) {
            return Outcome::at(Level::Flc);
        }
        if self.nodes[n].slcs[pidx].lookup(line) == SlcState::Modified {
            self.nodes[n].flcs[pidx].fill(line, true);
            return Outcome::at(Level::Slc);
        }

        // Ownership must be obtained: first silence the node-local peers.
        self.nodes[n].invalidate_peers(line, pidx);

        let mut out = match self.nodes[n].am.touch(line) {
            AmState::Exclusive => Outcome::at(Level::Am),
            AmState::Owner | AmState::Shared => self.global_upgrade(n, line),
            AmState::Invalid => self.global_read_exclusive(n, line),
        };
        self.fill_private_write(n, pidx, line, &mut out);
        out
    }

    /// Fill SLC (Shared) + FLC after a read serviced at/under the AM.
    fn fill_private_read(&mut self, n: usize, pidx: usize, line: LineNum, out: &mut Outcome) {
        if let Some((evicted, st)) = self.nodes[n].slcs[pidx].insert(line, SlcState::Shared) {
            if st == SlcState::Modified {
                // Write-back into the AM (data only; AM keeps Exclusive).
                out.slc_writeback = true;
            }
            self.nodes[n].flcs[pidx].invalidate(evicted);
            self.retire_slc_only_sharer(n, evicted);
        }
        self.nodes[n].flcs[pidx].fill(line, false);
    }

    /// Fill SLC (Modified) + FLC after a write obtained ownership.
    fn fill_private_write(&mut self, n: usize, pidx: usize, line: LineNum, out: &mut Outcome) {
        if let Some((evicted, st)) = self.nodes[n].slcs[pidx].insert(line, SlcState::Modified) {
            if st == SlcState::Modified {
                out.slc_writeback = true;
            }
            self.nodes[n].flcs[pidx].invalidate(evicted);
            self.retire_slc_only_sharer(n, evicted);
        }
        self.nodes[n].flcs[pidx].fill(line, true);
    }

    /// An SLC eviction may have destroyed a node's last copy of a line it
    /// held only in its private caches (non-inclusive hierarchies): the
    /// node then stops being a sharer.
    fn retire_slc_only_sharer(&mut self, n: usize, line: LineNum) {
        if !self.inclusive_hierarchy
            && !self.nodes[n].am.state(line).is_valid()
            && !self.slc_holds(n, line)
        {
            self.dir.remove_sharer(line, NodeId(n as u16));
        }
    }

    /// Remote read: supply a Shared copy into node `n`.
    fn global_read(&mut self, n: usize, line: LineNum) -> Outcome {
        let mut out = Outcome::at(Level::Remote);
        match self.dir.get(line) {
            Some(info) => {
                let owner = info.owner.as_usize();
                debug_assert_ne!(owner, n, "node-missing line owned locally");
                // Any dirty private copy in the owner node is written back.
                self.nodes[owner].downgrade_private(line);
                if self.nodes[owner].am.state(line) == AmState::Exclusive {
                    self.nodes[owner].am.set_state(line, AmState::Owner);
                }
                self.fill_am(n, line, AmState::Shared, &mut out);
                self.dir.add_sharer(line, NodeId(n as u16));
                out.remote_node = Some(NodeId(owner as u16));
                self.traffic.record_read_fill();
            }
            None => {
                let home = self.home_of(line, n);
                out.pagein = self.paged_out.remove(&line);
                if out.pagein {
                    self.stats.cold_allocs += 1;
                }
                if home == n {
                    // Local on-demand materialization: no bus traffic.
                    self.fill_am(n, line, AmState::Exclusive, &mut out);
                    self.dir.insert_sole(line, NodeId(n as u16));
                    self.stats.cold_allocs += 1;
                    out.level = Level::Am;
                } else {
                    // The page frame lives at `home`: materialize the
                    // responsible copy there and supply a replica here.
                    self.fill_am(home, line, AmState::Owner, &mut out);
                    self.dir.insert_sole(line, NodeId(home as u16));
                    self.fill_am(n, line, AmState::Shared, &mut out);
                    self.dir.add_sharer(line, NodeId(n as u16));
                    self.stats.cold_allocs += 1;
                    out.remote_node = Some(NodeId(home as u16));
                    self.traffic.record_read_fill();
                }
            }
        }
        out
    }

    /// Write upgrade: the node already holds the line (Owner or Shared);
    /// invalidate every other copy and end Exclusive.
    fn global_upgrade(&mut self, n: usize, line: LineNum) -> Outcome {
        let mut out = Outcome::at(Level::Remote);
        let info = self.dir.get(line).expect("valid AM line not in directory");
        for sh in info.sharer_nodes() {
            let s = sh.as_usize();
            if s != n {
                self.nodes[s].am.remove(line);
                self.nodes[s].invalidate_private(line);
            }
        }
        let owner = info.owner.as_usize();
        if owner != n {
            self.nodes[owner].am.remove(line);
            self.nodes[owner].invalidate_private(line);
        }
        self.dir.set_owner(line, NodeId(n as u16));
        self.dir.clear_sharers(line);
        self.nodes[n].am.set_state(line, AmState::Exclusive);
        out.upgrade = true;
        self.traffic.record_upgrade();
        out
    }

    /// Write miss: fetch the line with ownership (read-exclusive),
    /// invalidating every existing copy.
    fn global_read_exclusive(&mut self, n: usize, line: LineNum) -> Outcome {
        let mut out = Outcome::at(Level::Remote);
        match self.dir.get(line) {
            Some(info) => {
                for sh in info.sharer_nodes() {
                    let s = sh.as_usize();
                    self.nodes[s].am.remove(line);
                    self.nodes[s].invalidate_private(line);
                }
                let owner = info.owner.as_usize();
                debug_assert_ne!(owner, n);
                self.nodes[owner].am.remove(line);
                self.nodes[owner].invalidate_private(line);
                self.dir.remove(line);
                self.fill_am(n, line, AmState::Exclusive, &mut out);
                self.dir.insert_sole(line, NodeId(n as u16));
                out.read_exclusive = true;
                out.remote_node = Some(NodeId(owner as u16));
                self.traffic.record_read_exclusive();
            }
            None => {
                let home = self.home_of(line, n);
                out.pagein = self.paged_out.remove(&line);
                self.fill_am(n, line, AmState::Exclusive, &mut out);
                self.dir.insert_sole(line, NodeId(n as u16));
                self.stats.cold_allocs += 1;
                if home == n {
                    out.level = Level::Am; // local cold allocation
                } else {
                    // Data pulled from the home node's page frame.
                    out.read_exclusive = true;
                    out.remote_node = Some(NodeId(home as u16));
                    self.traffic.record_read_exclusive();
                }
            }
        }
        out
    }

    /// Home node of a line's page, allocating the page on first touch.
    fn home_of(&mut self, line: LineNum, toucher: usize) -> usize {
        let page = line.0 >> PAGE_LINES_SHIFT;
        self.pages
            .entry(page)
            .or_insert(NodeId(toucher as u16))
            .as_usize()
    }

    /// Make room for and insert `line` into node `node_idx`'s AM.
    fn fill_am(&mut self, node_idx: usize, line: LineNum, state: AmState, out: &mut Outcome) {
        match self.nodes[node_idx].am.make_room(line) {
            Victim::FreeSlot => {}
            Victim::DropShared(l) => {
                self.nodes[node_idx].am.remove(l);
                let keeps = self.displace_private(node_idx, l);
                if !keeps {
                    self.dir.remove_sharer(l, NodeId(node_idx as u16));
                }
                self.stats.shared_drops += 1;
                out.dropped_shared = true;
            }
            Victim::Inject(l, _) => {
                self.nodes[node_idx].am.remove(l);
                let keeps = self.displace_private(node_idx, l);
                self.inject(node_idx, l, keeps, out);
            }
        }
        self.nodes[node_idx].am.insert(line, state);
        out.am_filled = true;
    }

    /// Relocate a displaced responsible copy (the accept-based strategy).
    /// `from_keeps_slc` marks that the displacing node retains SLC-only
    /// replicas (non-inclusive hierarchies).
    fn inject(&mut self, from: usize, line: LineNum, from_keeps_slc: bool, out: &mut Outcome) {
        // 1. Ownership migration: a Shared replica anywhere can simply
        //    take over responsibility — no data slot is consumed.
        if let Some(info) = self.dir.get(line) {
            debug_assert_eq!(info.owner.as_usize(), from, "injecting non-owned line");
            if info.sharers != 0 {
                let new_owner = info.sharer_nodes().next().expect("sharers non-empty");
                self.nodes[new_owner.as_usize()]
                    .am
                    .set_state(line, AmState::Owner);
                self.dir.set_owner(line, new_owner);
                if from_keeps_slc {
                    self.dir.add_sharer(line, NodeId(from as u16));
                }
                self.traffic.record_ownership_migration();
                self.stats.ownership_migrations += 1;
                out.ownership_migrated = true;
                return;
            }
        }

        // 2. Snoop arbitration for a receiver, scanning nodes after the
        //    injector (deterministic round-robin).
        let n_nodes = self.geom.n_nodes;
        let order = (1..n_nodes).map(|k| (from + k) % n_nodes);
        let mut invalid_slot: Option<usize> = None;
        let mut shared_slot: Option<(usize, LineNum)> = None;
        for k in order {
            match self.nodes[k].am.accept_slot(line, self.accept_policy) {
                Some(AcceptSlot::Invalid) if invalid_slot.is_none() => invalid_slot = Some(k),
                Some(AcceptSlot::Shared(v)) if shared_slot.is_none() => shared_slot = Some((k, v)),
                _ => {}
            }
            if invalid_slot.is_some() && shared_slot.is_some() {
                break;
            }
        }
        let choice = match self.accept_policy {
            AcceptPolicy::InvalidThenShared | AcceptPolicy::FirstFit => invalid_slot
                .map(|k| (k, None))
                .or(shared_slot.map(|(k, v)| (k, Some(v)))),
            AcceptPolicy::SharedThenInvalid => shared_slot
                .map(|(k, v)| (k, Some(v)))
                .or(invalid_slot.map(|k| (k, None))),
        };

        match choice {
            Some((acceptor, sacrificed)) => {
                if let Some(v) = sacrificed {
                    self.nodes[acceptor].am.remove(v);
                    let keeps = self.displace_private(acceptor, v);
                    if !keeps {
                        self.dir.remove_sharer(v, NodeId(acceptor as u16));
                    }
                    self.stats.shared_drops += 1;
                }
                // Sole AM copy at the acceptor; Owner if the displacing
                // node retains SLC-only replicas, else Exclusive.
                if from_keeps_slc {
                    self.nodes[acceptor].am.insert(line, AmState::Owner);
                    self.dir.set_owner(line, NodeId(acceptor as u16));
                    self.dir.add_sharer(line, NodeId(from as u16));
                } else {
                    self.nodes[acceptor].am.insert(line, AmState::Exclusive);
                    self.dir.set_owner(line, NodeId(acceptor as u16));
                }
                self.traffic.record_injection();
                self.stats.injections += 1;
                out.injected_to = Some(NodeId(acceptor as u16));
            }
            None => {
                // Every slot machine-wide is responsible: OS page-out.
                if from_keeps_slc {
                    self.nodes[from].invalidate_private(line);
                }
                self.dir.remove(line);
                self.paged_out.insert(line);
                self.traffic.record_pageout();
                self.stats.pageouts += 1;
                out.pageout = true;
            }
        }
    }

    /// Verify every cross-structure invariant; returns a description of
    /// the first violation. Used by tests and (in debug builds) sims.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Directory ↔ AM consistency.
        for (line, info) in self.dir.iter() {
            let owner = info.owner.as_usize();
            let ostate = self.nodes[owner].am.state(line);
            if !ostate.is_responsible() {
                return Err(format!("{line:?}: owner {owner} has state {ostate}"));
            }
            if ostate == AmState::Exclusive && info.sharers != 0 {
                return Err(format!("{line:?}: Exclusive with sharers"));
            }
            for sh in info.sharer_nodes() {
                let s = self.nodes[sh.as_usize()].am.state(line);
                let slc_only = !self.inclusive_hierarchy && self.slc_holds(sh.as_usize(), line);
                if s != AmState::Shared && !(s == AmState::Invalid && slc_only) {
                    return Err(format!("{line:?}: sharer {sh} has state {s}"));
                }
            }
            for (k, node) in self.nodes.iter().enumerate() {
                let st = node.am.state(line);
                let is_registered = k == owner || info.sharers & (1 << k) != 0;
                if st.is_valid() && !is_registered {
                    return Err(format!(
                        "{line:?}: node {k} state {st} vs directory {info:?}"
                    ));
                }
                if !st.is_valid() && is_registered && k == owner {
                    return Err(format!("{line:?}: owner {k} has no AM copy"));
                }
                if !st.is_valid()
                    && is_registered
                    && self.inclusive_hierarchy
                {
                    return Err(format!(
                        "{line:?}: node {k} registered but holds nothing (inclusive mode)"
                    ));
                }
            }
        }
        // Every valid AM line is in the directory.
        for (k, node) in self.nodes.iter().enumerate() {
            for (line, st) in node.am.lines() {
                let info = self
                    .dir
                    .get(line)
                    .ok_or_else(|| format!("{line:?} in node {k} AM but not in directory"))?;
                match st {
                    AmState::Shared => {
                        if !self.dir.is_sharer(line, NodeId(k as u16)) {
                            return Err(format!("{line:?}: node {k} S but not a dir sharer"));
                        }
                    }
                    AmState::Owner | AmState::Exclusive => {
                        if info.owner.as_usize() != k {
                            return Err(format!("{line:?}: node {k} {st} but dir owner {:?}", info.owner));
                        }
                    }
                    AmState::Invalid => unreachable!(),
                }
            }
            // SLC inclusion + M ⇒ AM Exclusive. Without inclusion, a
            // clean SLC copy may outlive its AM entry, but must then be
            // registered as a sharer (or be the owner) in the directory.
            for (pidx, slc) in node.slcs.iter().enumerate() {
                for (line, st) in slc.lines() {
                    let am_st = node.am.state(line);
                    if !am_st.is_valid() {
                        if self.inclusive_hierarchy {
                            return Err(format!(
                                "{line:?}: SLC {k}/{pidx} holds {st} but AM invalid"
                            ));
                        }
                        let info = self.dir.get(line).ok_or_else(|| {
                            format!("{line:?}: SLC-only copy in node {k} of dead line")
                        })?;
                        let registered = info.owner.as_usize() == k
                            || info.sharers & (1 << k) != 0;
                        if !registered {
                            return Err(format!(
                                "{line:?}: SLC-only copy in node {k} unregistered"
                            ));
                        }
                        if st == SlcState::Modified {
                            return Err(format!(
                                "{line:?}: SLC {k}/{pidx} Modified without AM backing"
                            ));
                        }
                        continue;
                    }
                    if st == SlcState::Modified && am_st != AmState::Exclusive {
                        return Err(format!(
                            "{line:?}: SLC {k}/{pidx} Modified but AM {am_st}"
                        ));
                    }
                }
            }
        }
        // Paged-out lines are dead.
        for line in &self.paged_out {
            if self.dir.contains(*line) {
                return Err(format!("{line:?} both paged out and live"));
            }
        }
        Ok(())
    }

    /// Census over all AMs: `(shared, owner, exclusive)` entries.
    pub fn am_census(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for n in &self.nodes {
            let (s, o, e) = n.am.census();
            t.0 += s;
            t.1 += o;
            t.2 += e;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_types::{MachineConfig, MemoryPressure};

    /// Small machine: 4 procs; ws 64 KiB.
    fn engine(ppn: usize, mp: MemoryPressure) -> CoherenceEngine {
        let cfg = MachineConfig {
            n_procs: 4,
            procs_per_node: ppn,
            memory_pressure: mp,
            ..Default::default()
        };
        let geom = cfg.geometry(64 * 1024).unwrap();
        CoherenceEngine::new(
            geom,
            VictimPolicy::SharedFirst,
            AcceptPolicy::InvalidThenShared,
            true,
        )
    }

    #[test]
    fn cold_read_allocates_locally() {
        let mut e = engine(1, MemoryPressure::MP_50);
        let out = e.read(ProcId(0), LineNum(5));
        assert_eq!(out.level, Level::Am);
        assert_eq!(e.stats.cold_allocs, 1);
        assert_eq!(e.traffic.total_txns(), 0);
        e.check_invariants().unwrap();
        // Second read hits the FLC.
        assert_eq!(e.read(ProcId(0), LineNum(5)).level, Level::Flc);
    }

    #[test]
    fn remote_read_creates_replica_and_owner_downgrade() {
        let mut e = engine(1, MemoryPressure::MP_50);
        e.read(ProcId(0), LineNum(5)); // cold alloc at node 0 (Exclusive)
        let out = e.read(ProcId(2), LineNum(5));
        assert_eq!(out.level, Level::Remote);
        assert_eq!(out.remote_node, Some(NodeId(0)));
        assert_eq!(e.node(0).am.state(LineNum(5)), AmState::Owner);
        assert_eq!(e.node(2).am.state(LineNum(5)), AmState::Shared);
        assert_eq!(e.traffic.read_txns, 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn same_page_second_line_fetched_from_home() {
        let mut e = engine(1, MemoryPressure::MP_50);
        e.read(ProcId(0), LineNum(0)); // page 0 → home node 0
        // Proc 1 touches another line of page 0: remote materialization.
        let out = e.read(ProcId(1), LineNum(1));
        assert_eq!(out.level, Level::Remote);
        assert_eq!(out.remote_node, Some(NodeId(0)));
        assert_eq!(e.node(0).am.state(LineNum(1)), AmState::Owner);
        assert_eq!(e.node(1).am.state(LineNum(1)), AmState::Shared);
        e.check_invariants().unwrap();
    }

    #[test]
    fn clustering_prefetch_effect() {
        // Two procs in the SAME node: the second reader hits the AM.
        let mut e = engine(2, MemoryPressure::MP_50);
        e.read(ProcId(2), LineNum(64)); // proc 2 = node 1; page 1 home = node 1
        let out = e.read(ProcId(3), LineNum(64)); // same node
        assert_eq!(out.level, Level::Am, "shared AM should satisfy peer read");
        e.check_invariants().unwrap();
    }

    #[test]
    fn write_to_shared_upgrades_and_invalidates() {
        let mut e = engine(1, MemoryPressure::MP_50);
        e.read(ProcId(0), LineNum(5));
        e.read(ProcId(1), LineNum(5));
        e.read(ProcId(2), LineNum(5));
        let out = e.write(ProcId(1), LineNum(5));
        assert_eq!(out.level, Level::Remote);
        assert!(out.upgrade);
        assert_eq!(e.node(1).am.state(LineNum(5)), AmState::Exclusive);
        assert_eq!(e.node(0).am.state(LineNum(5)), AmState::Invalid);
        assert_eq!(e.node(2).am.state(LineNum(5)), AmState::Invalid);
        assert_eq!(e.traffic.write_txns, 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_is_read_exclusive() {
        let mut e = engine(1, MemoryPressure::MP_50);
        e.read(ProcId(0), LineNum(5));
        let out = e.write(ProcId(3), LineNum(5));
        assert!(out.read_exclusive);
        assert_eq!(out.remote_node, Some(NodeId(0)));
        assert_eq!(e.node(3).am.state(LineNum(5)), AmState::Exclusive);
        assert_eq!(e.node(0).am.state(LineNum(5)), AmState::Invalid);
        e.check_invariants().unwrap();
    }

    #[test]
    fn local_write_after_own_read_is_cheap() {
        let mut e = engine(1, MemoryPressure::MP_50);
        e.read(ProcId(0), LineNum(5)); // Exclusive locally
        let out = e.write(ProcId(0), LineNum(5));
        assert_eq!(out.level, Level::Am);
        assert!(!out.used_bus());
        // And a further write is an FLC/SLC hit.
        assert_eq!(e.write(ProcId(0), LineNum(5)).level, Level::Flc);
        e.check_invariants().unwrap();
    }

    #[test]
    fn dirty_peer_supplies_within_node() {
        let mut e = engine(2, MemoryPressure::MP_50);
        e.write(ProcId(0), LineNum(7)); // proc 0 (node 0) owns dirty
        let out = e.read(ProcId(1), LineNum(7)); // same node
        assert_eq!(out.level, Level::PeerSlc);
        assert_eq!(out.peer_slc, Some(0));
        e.check_invariants().unwrap();
    }

    #[test]
    fn barrier_style_sharing_and_invalidation_storm() {
        let mut e = engine(1, MemoryPressure::MP_50);
        let flag = LineNum(100);
        e.write(ProcId(0), flag);
        for p in 1..4 {
            assert_eq!(e.read(ProcId(p), flag).level, Level::Remote);
        }
        // Releaser writes again: all replicas invalidated.
        let out = e.write(ProcId(0), flag);
        assert!(out.upgrade);
        for p in 1..4u16 {
            assert_eq!(e.read(ProcId(p), flag).level, Level::Remote);
        }
        e.check_invariants().unwrap();
    }

    /// Tiny machine with a handful of AM slots per node to force
    /// replacements: ws 16 KiB at MP 87.5% → per-node AM 4.6 KiB ≈ 73
    /// lines… still big; instead use 4 procs, MP 87.5 and a working set
    /// sized so each AM holds few sets.
    fn tiny_engine() -> CoherenceEngine {
        let cfg = MachineConfig {
            n_procs: 4,
            procs_per_node: 1,
            memory_pressure: MemoryPressure::MP_87,
            slc_ws_ratio: 128,
            ..Default::default()
        };
        // ws = 128 KiB → total AM ≈ 146 KiB → 36.5 KiB/node ≈ 585 lines.
        let geom = cfg.geometry(128 * 1024).unwrap();
        CoherenceEngine::new(
            geom,
            VictimPolicy::SharedFirst,
            AcceptPolicy::InvalidThenShared,
            true,
        )
    }

    #[test]
    fn replacement_pressure_triggers_injections_not_losses() {
        let mut e = tiny_engine();
        let total_lines = 128 * 1024 / 64; // 2048 lines, AM total ~2340
        // One processor writes the whole working set: its node AM (~585
        // lines) must inject the overflow to the other nodes.
        for l in 0..total_lines {
            e.write(ProcId(0), LineNum(l));
        }
        assert!(e.stats.injections > 0, "no injections under pressure");
        e.check_invariants().unwrap();
        // Every line is still live somewhere (no pageouts needed: the
        // machine has capacity for the whole working set).
        assert_eq!(e.stats.pageouts, 0);
        assert_eq!(e.directory().len(), total_lines as usize);
    }

    #[test]
    fn ownership_migrates_to_replica_when_possible() {
        let mut e = tiny_engine();
        // Make a line widely shared, then force the owner to evict it by
        // filling the owner's AM set with conflicting writes.
        let line = LineNum(0);
        e.read(ProcId(0), line); // owner at node 0
        e.read(ProcId(1), line); // replica at node 1
        let sets = e.geometry().am_sets;
        let assoc = e.geometry().am_assoc as u64;
        // Touch enough conflicting lines in node 0 to evict line 0.
        for k in 1..=assoc + 1 {
            e.write(ProcId(0), LineNum(k * sets));
        }
        assert!(
            e.stats.ownership_migrations > 0,
            "expected ownership migration"
        );
        // The line must still be live, now owned by node 1.
        let info = e.directory().get(line).expect("line lost");
        assert_eq!(info.owner, NodeId(1));
        e.check_invariants().unwrap();
    }

    #[test]
    fn census_tracks_states() {
        let mut e = engine(1, MemoryPressure::MP_50);
        e.read(ProcId(0), LineNum(1));
        e.read(ProcId(1), LineNum(1));
        e.write(ProcId(2), LineNum(2));
        let (s, o, ex) = e.am_census();
        assert_eq!(s, 1);
        assert_eq!(o, 1);
        assert_eq!(ex, 1);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut e = engine(2, MemoryPressure::MP_87);
            let mut rng = coma_types::Rng64::new(99);
            for _ in 0..5_000 {
                let p = ProcId(rng.below(4) as u16);
                let l = LineNum(rng.below(1024));
                if rng.chance(0.3) {
                    e.write(p, l);
                } else {
                    e.read(p, l);
                }
            }
            (e.traffic, e.stats)
        };
        assert_eq!(run(), run());
    }

    fn non_inclusive_engine(mp: MemoryPressure) -> CoherenceEngine {
        let cfg = MachineConfig {
            n_procs: 4,
            procs_per_node: 1,
            memory_pressure: mp,
            ..Default::default()
        };
        let geom = cfg.geometry(128 * 1024).unwrap();
        CoherenceEngine::with_inclusion(
            geom,
            VictimPolicy::SharedFirst,
            AcceptPolicy::InvalidThenShared,
            true,
            false,
        )
    }

    #[test]
    fn non_inclusive_slc_copy_survives_am_replacement() {
        let mut e = non_inclusive_engine(MemoryPressure::MP_87);
        let line = LineNum(0);
        e.read(ProcId(0), line); // Exclusive at node 0
        e.read(ProcId(1), line); // Shared replica at node 1 (and its SLC)
        // Conflict node 1's AM set until the replica is displaced.
        let sets = e.geometry().am_sets;
        let assoc = e.geometry().am_assoc as u64;
        for k in 1..=assoc + 1 {
            e.write(ProcId(1), LineNum(k * sets));
        }
        // The AM replica is gone but the SLC copy still serves reads.
        assert_eq!(e.node(1).am.state(line), AmState::Invalid);
        let out = e.read(ProcId(1), line);
        assert!(
            matches!(out.level, Level::Slc | Level::Flc),
            "SLC-only copy should satisfy the read, got {:?}",
            out.level
        );
        e.check_invariants().unwrap();
    }

    #[test]
    fn non_inclusive_slc_only_copy_still_gets_invalidated() {
        let mut e = non_inclusive_engine(MemoryPressure::MP_87);
        let line = LineNum(0);
        e.read(ProcId(0), line);
        e.read(ProcId(1), line);
        let sets = e.geometry().am_sets;
        let assoc = e.geometry().am_assoc as u64;
        for k in 1..=assoc + 1 {
            e.write(ProcId(1), LineNum(k * sets));
        }
        // Writer elsewhere must kill the SLC-only replica (coherence!).
        e.write(ProcId(0), line);
        let out = e.read(ProcId(1), line);
        assert_eq!(out.level, Level::Remote, "stale SLC copy served a read");
        e.check_invariants().unwrap();
    }

    #[test]
    fn non_inclusive_invariants_under_storm() {
        let mut e = non_inclusive_engine(MemoryPressure::MP_87);
        let mut rng = coma_types::Rng64::new(17);
        for i in 0..20_000 {
            let p = ProcId(rng.below(4) as u16);
            let l = LineNum(rng.below(1024));
            if rng.chance(0.4) {
                e.write(p, l);
            } else {
                e.read(p, l);
            }
            if i % 2_000 == 0 {
                e.check_invariants().unwrap();
            }
        }
        e.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_under_random_storm() {
        let mut e = engine(2, MemoryPressure::MP_87);
        let mut rng = coma_types::Rng64::new(7);
        for i in 0..20_000 {
            let p = ProcId(rng.below(4) as u16);
            let l = LineNum(rng.below(1024));
            if rng.chance(0.4) {
                e.write(p, l);
            } else {
                e.read(p, l);
            }
            if i % 2_000 == 0 {
                e.check_invariants().unwrap();
            }
        }
        e.check_invariants().unwrap();
    }
}
