//! The coherence engine: every read and write of every processor walks
//! through here, mutating the machine's cache state and returning an
//! [`Outcome`] for the timing model.
//!
//! The engine is purely functional with respect to time — it does not
//! know what a nanosecond is. `coma-sim` layers the paper's §3.2 timing
//! (and resource contention) on top of the outcomes.
//!
//! This module is the thin coordinator: machine state, construction,
//! accessors and the invariant checker. The protocol logic proper is
//! split by concern into the child modules:
//!
//! * [`read_path`] — processor reads, from FLC hit down to the global
//!   bus read;
//! * [`write_path`] — ownership acquisition: upgrades and
//!   read-exclusive fetches;
//! * [`replacement`] — AM victim selection fallout: the accept-based
//!   injection protocol, ownership migration and page-out.
//!
//! All statistics flow through the engine's [`EventSink`]
//! (`coma-stats`): the protocol code reports *what happened* and the
//! sink turns it into traffic bytes and counters.

mod read_path;
mod replacement;
mod write_path;

use crate::directory::Directory;
use crate::node::NodeState;
use crate::outcome::Outcome;
use crate::table::{OpenTable, PageHomes};
use coma_cache::{AcceptPolicy, AcceptSlot, AmState, SlcState, Victim, VictimPolicy};
use coma_stats::{
    AuditSink, BatchedSink, EventSink, Level, ProtocolCounters, ProtocolEvent, Traffic,
};
use coma_types::{LineNum, MachineGeometry, NodeId, ProcId, LINE_SHIFT, PAGE_SHIFT};

/// Lines per page (4096 / 64).
const PAGE_LINES_SHIFT: u32 = PAGE_SHIFT - LINE_SHIFT;

/// The machine-wide coherence state machine.
///
/// `Clone` produces an independent snapshot of the entire machine state —
/// the model checker in `coma-verify` forks engines at every explored
/// transition.
#[derive(Clone)]
pub struct CoherenceEngine {
    geom: MachineGeometry,
    nodes: Vec<NodeState>,
    dir: Directory,
    /// On-demand page table: page number → first-touching (home) node.
    pages: PageHomes,
    /// Lines currently paged out to the OS (an [`OpenTable`] used as a set).
    paged_out: OpenTable<()>,
    accept_policy: AcceptPolicy,
    intra_node_transfers: bool,
    inclusive_hierarchy: bool,
    /// Precomputed `proc → (node, index-in-node)` so the per-access hot
    /// path never divides (ProcId::node is a `/`, index_in_node a `%`).
    proc_map: Box<[(u16, u16)]>,
    /// Where every protocol event lands: batched traffic + counters,
    /// behind the audit decorator that (when armed) still sees every
    /// event unbatched. The driver calls [`Self::flush_stats`] at sync
    /// points; [`Self::traffic`] / [`Self::counters`] require a flush
    /// first (debug-asserted inside `BatchedSink::sink`).
    sink: AuditSink<BatchedSink>,
}

impl CoherenceEngine {
    pub fn new(
        geom: MachineGeometry,
        victim_policy: VictimPolicy,
        accept_policy: AcceptPolicy,
        intra_node_transfers: bool,
    ) -> Self {
        Self::with_inclusion(
            geom,
            victim_policy,
            accept_policy,
            intra_node_transfers,
            true,
        )
    }

    /// Like [`CoherenceEngine::new`], with control over SLC/AM inclusion.
    /// With `inclusive = false`, SLC replicas survive attraction-memory
    /// replacements (the paper's §4.2 suggestion, after Joe & Hennessy):
    /// the private caches act as extra replication capacity when the AM
    /// sets fill with unique data at very high memory pressure.
    pub fn with_inclusion(
        geom: MachineGeometry,
        victim_policy: VictimPolicy,
        accept_policy: AcceptPolicy,
        intra_node_transfers: bool,
        inclusive_hierarchy: bool,
    ) -> Self {
        let nodes = (0..geom.n_nodes)
            .map(|_| NodeState::new(&geom, victim_policy))
            .collect();
        let proc_map = (0..geom.n_procs)
            .map(|p| {
                let proc = ProcId(p as u16);
                (
                    proc.node(geom.procs_per_node).0,
                    proc.index_in_node(geom.procs_per_node) as u16,
                )
            })
            .collect();
        CoherenceEngine {
            geom,
            nodes,
            dir: Directory::for_geometry(&geom),
            pages: PageHomes::new(),
            paged_out: OpenTable::new(),
            accept_policy,
            intra_node_transfers,
            inclusive_hierarchy,
            proc_map,
            sink: AuditSink::new(BatchedSink::new()),
        }
    }

    /// Perform a processor read of `line`, then (if the live auditor is
    /// armed) re-verify every machine-wide invariant when the access
    /// performed at least one protocol transaction.
    #[inline]
    pub fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let out = self.read_inner(proc, line);
        self.audit_after();
        out
    }

    /// Perform a processor write of `line`; audited like [`Self::read`].
    #[inline]
    pub fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let out = self.write_inner(proc, line);
        self.audit_after();
        out
    }

    /// Hint the host CPU to pull the state a `proc` access of `line`
    /// will probe — private caches, residency filter, AM set, directory
    /// slot — toward L1. The driver calls this one operation ahead, so
    /// the (host-cold) probes overlap the current operation's work.
    /// Purely a performance hint: no simulated state is read or written.
    #[inline]
    pub fn prefetch(&self, proc: ProcId, line: LineNum) {
        let (n, pidx) = self.proc_map[proc.as_usize()];
        self.nodes[n as usize].prefetch_access(pidx as usize, line);
        self.dir.prefetch(line);
    }

    /// Live invariant audit: runs after every access that emitted a
    /// protocol event. Pure hits emit nothing and stay cheap; accesses
    /// that changed global state pay a full [`Self::check_invariants`].
    #[inline]
    fn audit_after(&mut self) {
        if self.sink.armed() && self.sink.take_pending() > 0 {
            if let Err(e) = self.check_invariants() {
                panic!("live audit: protocol invariant violated: {e}");
            }
        }
    }

    /// Arm or disarm the live invariant auditor.
    pub fn set_audit(&mut self, on: bool) {
        self.sink.arm(on);
    }

    /// Is the live invariant auditor armed?
    pub fn audit_enabled(&self) -> bool {
        self.sink.armed()
    }

    /// Record one protocol event into the engine's sink.
    #[inline]
    fn emit(&mut self, ev: ProtocolEvent) {
        self.sink.record(ev);
    }

    /// Apply all batched event counts to the global totals. The driver
    /// calls this at sync points and before reading statistics; every
    /// counter is a plain sum, so flush placement never changes totals.
    #[inline]
    pub fn flush_stats(&mut self) {
        self.sink.inner.flush();
    }

    /// Forward every event straight to the global counters instead of
    /// batching (reference mode for the batching differential tests).
    #[doc(hidden)]
    pub fn set_direct_stats(&mut self, on: bool) {
        self.sink.inner.set_direct(on);
    }

    /// Global bus traffic, decomposed as in Figures 3–4. Requires a
    /// preceding [`Self::flush_stats`] (debug-asserted).
    #[inline]
    pub fn traffic(&self) -> &Traffic {
        &self.sink.inner.sink().traffic
    }

    /// Replacement / allocation event counters; same flush requirement
    /// as [`Self::traffic`].
    #[inline]
    pub fn counters(&self) -> &ProtocolCounters {
        &self.sink.inner.sink().counters
    }

    /// Does any private cache in `node_idx` still hold `line`? Gated on
    /// the node's residency filter, so the usual no case is one probe.
    fn slc_holds(&self, node_idx: usize, line: LineNum) -> bool {
        self.nodes[node_idx].slc_holds(line)
    }

    #[inline]
    pub fn geometry(&self) -> &MachineGeometry {
        &self.geom
    }

    #[inline]
    fn node_of(&self, proc: ProcId) -> usize {
        self.proc_map[proc.as_usize()].0 as usize
    }

    /// The processor's index within its node (precomputed, no division).
    #[inline]
    fn pidx_of(&self, proc: ProcId) -> usize {
        self.proc_map[proc.as_usize()].1 as usize
    }

    /// Access to node state for diagnostics and invariant checks.
    pub fn node(&self, n: usize) -> &NodeState {
        &self.nodes[n]
    }

    /// Mutable node access. This deliberately bypasses the protocol —
    /// it exists for fault injection in `coma-verify` (seeding a known
    /// corruption and proving the checkers catch it). Simulation code
    /// must never call it.
    pub fn node_mut(&mut self, n: usize) -> &mut NodeState {
        &mut self.nodes[n]
    }

    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Mutable directory access; same fault-injection caveat as
    /// [`Self::node_mut`].
    pub fn directory_mut(&mut self) -> &mut Directory {
        &mut self.dir
    }

    /// The set of lines currently paged out to the OS (verification).
    pub fn paged_out_lines(&self) -> impl Iterator<Item = LineNum> + '_ {
        self.paged_out.iter().map(|(l, ())| LineNum(l))
    }

    /// Home node of a line's page, allocating the page on first touch.
    #[inline]
    fn home_of(&mut self, line: LineNum, toucher: usize) -> usize {
        let page = line.0 >> PAGE_LINES_SHIFT;
        self.pages.home_of(page, NodeId(toucher as u16)).as_usize()
    }

    /// Verify every cross-structure invariant; returns a description of
    /// the first violation. Used by tests and (in debug builds) sims.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Directory ↔ AM consistency.
        for (line, info) in self.dir.iter() {
            let owner = info.owner.as_usize();
            let ostate = self.nodes[owner].am.state(line);
            if !ostate.is_responsible() {
                return Err(format!("{line:?}: owner {owner} has state {ostate}"));
            }
            if ostate == AmState::Exclusive && !info.sharers.is_empty() {
                return Err(format!("{line:?}: Exclusive with sharers"));
            }
            for sh in info.sharer_nodes() {
                let s = self.nodes[sh.as_usize()].am.state(line);
                let slc_only = !self.inclusive_hierarchy && self.slc_holds(sh.as_usize(), line);
                if s != AmState::Shared && !(s == AmState::Invalid && slc_only) {
                    return Err(format!("{line:?}: sharer {sh} has state {s}"));
                }
            }
            for (k, node) in self.nodes.iter().enumerate() {
                let st = node.am.state(line);
                let is_registered = k == owner || info.sharers.contains(k as u16);
                if st.is_valid() && !is_registered {
                    return Err(format!(
                        "{line:?}: node {k} state {st} vs directory {info:?}"
                    ));
                }
                if !st.is_valid() && is_registered && k == owner {
                    return Err(format!("{line:?}: owner {k} has no AM copy"));
                }
                if !st.is_valid() && is_registered && self.inclusive_hierarchy {
                    return Err(format!(
                        "{line:?}: node {k} registered but holds nothing (inclusive mode)"
                    ));
                }
            }
        }
        // Every valid AM line is in the directory.
        for (k, node) in self.nodes.iter().enumerate() {
            for (line, st) in node.am.lines() {
                let info = self
                    .dir
                    .get(line)
                    .ok_or_else(|| format!("{line:?} in node {k} AM but not in directory"))?;
                match st {
                    AmState::Shared => {
                        if !self.dir.is_sharer(line, NodeId(k as u16)) {
                            return Err(format!("{line:?}: node {k} S but not a dir sharer"));
                        }
                    }
                    AmState::Owner | AmState::Exclusive => {
                        if info.owner.as_usize() != k {
                            return Err(format!(
                                "{line:?}: node {k} {st} but dir owner {:?}",
                                info.owner
                            ));
                        }
                    }
                    AmState::Invalid => unreachable!(),
                }
            }
            // SLC inclusion + M ⇒ AM Exclusive. Without inclusion, a
            // clean SLC copy may outlive its AM entry, but must then be
            // registered as a sharer (or be the owner) in the directory.
            for (pidx, slc) in node.slcs.iter().enumerate() {
                for (line, st) in slc.lines() {
                    let am_st = node.am.state(line);
                    if !am_st.is_valid() {
                        if self.inclusive_hierarchy {
                            return Err(format!(
                                "{line:?}: SLC {k}/{pidx} holds {st} but AM invalid"
                            ));
                        }
                        let info = self.dir.get(line).ok_or_else(|| {
                            format!("{line:?}: SLC-only copy in node {k} of dead line")
                        })?;
                        let registered =
                            info.owner.as_usize() == k || info.sharers.contains(k as u16);
                        if !registered {
                            return Err(format!(
                                "{line:?}: SLC-only copy in node {k} unregistered"
                            ));
                        }
                        if st == SlcState::Modified {
                            return Err(format!(
                                "{line:?}: SLC {k}/{pidx} Modified without AM backing"
                            ));
                        }
                        continue;
                    }
                    if st == SlcState::Modified && am_st != AmState::Exclusive {
                        return Err(format!("{line:?}: SLC {k}/{pidx} Modified but AM {am_st}"));
                    }
                }
            }
        }
        // Paged-out lines are dead.
        for (l, ()) in self.paged_out.iter() {
            let line = LineNum(l);
            if self.dir.contains(line) {
                return Err(format!("{line:?} both paged out and live"));
            }
        }
        // Directory-level presence masks agree with the root sets: every
        // live line's stored mask at each level equals the fold of the
        // owner+sharer groups, and no dead line lingers at any level.
        for (line, info) in self.dir.iter() {
            for lvl in self.dir.levels() {
                let h = lvl.height();
                let expect = self.dir.expected_presence(h, info);
                match lvl.presence(line) {
                    Some(mask) if mask == expect => {}
                    Some(mask) => {
                        return Err(format!(
                            "{line:?}: level-{h} presence {mask:#b} but copies span {expect:#b}"
                        ));
                    }
                    None => {
                        return Err(format!("{line:?}: live but untracked at level {h}"));
                    }
                }
            }
        }
        for lvl in self.dir.levels() {
            for (line, _) in lvl.iter() {
                if !self.dir.contains(line) {
                    return Err(format!(
                        "{line:?}: dead but still present at level {}",
                        lvl.height()
                    ));
                }
            }
        }
        // Each node's SLC residency filter matches its SLC contents
        // (the filter gates private-cache probes; a stale count could
        // silently skip a required invalidation or downgrade).
        for (k, node) in self.nodes.iter().enumerate() {
            node.filter_consistent()
                .map_err(|e| format!("node {k}: {e}"))?;
        }
        Ok(())
    }

    /// Census over all AMs: `(shared, owner, exclusive)` entries.
    pub fn am_census(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for n in &self.nodes {
            let (s, o, e) = n.am.census();
            t.0 += s;
            t.1 += o;
            t.2 += e;
        }
        t
    }
}
