//! The read path: FLC → own SLC → dirty peer SLC → attraction memory →
//! global bus, with the private-cache fill bookkeeping on the way back.

use super::*;

impl CoherenceEngine {
    /// Perform a processor read of `line` (unaudited; the public
    /// [`CoherenceEngine::read`] wraps this with the live auditor).
    pub(super) fn read_inner(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let n = self.node_of(proc);
        let pidx = self.pidx_of(proc);

        if self.nodes[n].flcs[pidx].read_hit(line) {
            return Outcome::at(Level::Flc);
        }
        let slc_state = self.nodes[n].slcs[pidx].lookup(line);
        if slc_state.is_valid() {
            self.nodes[n].flcs[pidx].fill(line, slc_state == SlcState::Modified);
            return Outcome::at(Level::Slc);
        }

        let mut out;
        if self.intra_node_transfers {
            if let Some(peer) = self.nodes[n].dirty_peer(line, pidx) {
                // Dirty intra-node supply: peer downgrades, data written
                // back into the AM (which must hold the line Exclusive).
                self.nodes[n].slcs[peer].downgrade(line);
                self.nodes[n].flcs[peer].downgrade(line);
                debug_assert_eq!(self.nodes[n].am.state(line), AmState::Exclusive);
                out = Outcome::at(Level::PeerSlc);
                out.peer_slc = Some(peer);
                self.fill_private_read(n, pidx, line, &mut out);
                return out;
            }
        } else if let Some(peer) = self.nodes[n].dirty_peer(line, pidx) {
            // Without direct transfers the peer writes back first and the
            // AM supplies; functionally identical, timed as an AM hit.
            self.nodes[n].slcs[peer].downgrade(line);
            self.nodes[n].flcs[peer].downgrade(line);
        }

        if self.nodes[n].am.touch(line).is_valid() {
            out = Outcome::at(Level::Am);
            self.fill_private_read(n, pidx, line, &mut out);
            return out;
        }

        // Node miss: the access goes on the global bus.
        out = self.global_read(n, line);
        self.fill_private_read(n, pidx, line, &mut out);
        out
    }

    /// Fill SLC (Shared) + FLC after a read serviced at/under the AM.
    fn fill_private_read(&mut self, n: usize, pidx: usize, line: LineNum, out: &mut Outcome) {
        if let Some((evicted, st)) = self.nodes[n].slc_fill(pidx, line, SlcState::Shared) {
            if st == SlcState::Modified {
                // Write-back into the AM (data only; AM keeps Exclusive).
                out.slc_writeback = true;
            }
            self.nodes[n].flcs[pidx].invalidate(evicted);
            self.retire_slc_only_sharer(n, evicted);
        }
        self.nodes[n].flcs[pidx].fill(line, false);
    }

    /// Remote read: supply a Shared copy into node `n`.
    fn global_read(&mut self, n: usize, line: LineNum) -> Outcome {
        let mut out = Outcome::at(Level::Remote);
        match self.dir.get(line) {
            Some(info) => {
                let owner = info.owner.as_usize();
                debug_assert_ne!(owner, n, "node-missing line owned locally");
                // Any dirty private copy in the owner node is written back.
                self.nodes[owner].downgrade_private(line);
                if self.nodes[owner].am.state(line) == AmState::Exclusive {
                    self.nodes[owner].am.set_state(line, AmState::Owner);
                }
                self.fill_am(n, line, AmState::Shared, &mut out);
                self.dir.add_sharer(line, NodeId(n as u16));
                out.remote_node = Some(NodeId(owner as u16));
                self.emit(ProtocolEvent::ReadFill);
            }
            None => {
                let home = self.home_of(line, n);
                out.pagein = self.paged_out.remove(line.0).is_some();
                if out.pagein {
                    self.emit(ProtocolEvent::ColdAlloc);
                }
                if home == n {
                    // Local on-demand materialization: no bus traffic.
                    self.fill_am(n, line, AmState::Exclusive, &mut out);
                    self.dir.insert_sole(line, NodeId(n as u16));
                    self.emit(ProtocolEvent::ColdAlloc);
                    out.level = Level::Am;
                } else {
                    // The page frame lives at `home`: materialize the
                    // responsible copy there and supply a replica here.
                    self.fill_am(home, line, AmState::Owner, &mut out);
                    self.dir.insert_sole(line, NodeId(home as u16));
                    self.fill_am(n, line, AmState::Shared, &mut out);
                    self.dir.add_sharer(line, NodeId(n as u16));
                    self.emit(ProtocolEvent::ColdAlloc);
                    out.remote_node = Some(NodeId(home as u16));
                    self.emit(ProtocolEvent::ReadFill);
                }
            }
        }
        out
    }
}
