//! Replacement: what happens when an attraction-memory set is full.
//! Shared replicas are silently dropped; a displaced responsible copy
//! enters the paper's accept-based injection protocol — ownership
//! migration to an existing replica if one exists, otherwise snoop
//! arbitration for a receiver, otherwise OS page-out.

use super::*;

impl CoherenceEngine {
    /// An AM entry is being displaced (replacement, not coherence). Under
    /// inclusion the private copies die with it; without inclusion clean
    /// SLC replicas survive and the node remains a sharer. Returns true
    /// if the node keeps (SLC-only) copies.
    fn displace_private(&mut self, node_idx: usize, line: LineNum) -> bool {
        if self.inclusive_hierarchy {
            self.nodes[node_idx].invalidate_private(line);
            return false;
        }
        // Dirty data must not be lost: fold it back before the AM entry
        // goes (the write-back is part of the replacement).
        self.nodes[node_idx].downgrade_private(line);
        self.slc_holds(node_idx, line)
    }

    /// An SLC eviction may have destroyed a node's last copy of a line it
    /// held only in its private caches (non-inclusive hierarchies): the
    /// node then stops being a sharer.
    pub(super) fn retire_slc_only_sharer(&mut self, n: usize, line: LineNum) {
        if !self.inclusive_hierarchy
            && !self.nodes[n].am.state(line).is_valid()
            && !self.slc_holds(n, line)
        {
            self.dir.remove_sharer(line, NodeId(n as u16));
        }
    }

    /// Make room for and insert `line` into node `node_idx`'s AM.
    pub(super) fn fill_am(
        &mut self,
        node_idx: usize,
        line: LineNum,
        state: AmState,
        out: &mut Outcome,
    ) {
        match self.nodes[node_idx].am.make_room(line) {
            Victim::FreeSlot => {}
            Victim::DropShared(l) => {
                self.nodes[node_idx].am.remove(l);
                let keeps = self.displace_private(node_idx, l);
                if !keeps {
                    self.dir.remove_sharer(l, NodeId(node_idx as u16));
                }
                self.emit(ProtocolEvent::SharedDrop);
                out.dropped_shared = true;
            }
            Victim::Inject(l, _) => {
                self.nodes[node_idx].am.remove(l);
                let keeps = self.displace_private(node_idx, l);
                self.inject(node_idx, l, keeps, out);
            }
        }
        self.nodes[node_idx].am.insert(line, state);
        out.am_filled = true;
    }

    /// Relocate a displaced responsible copy (the accept-based strategy).
    /// `from_keeps_slc` marks that the displacing node retains SLC-only
    /// replicas (non-inclusive hierarchies).
    fn inject(&mut self, from: usize, line: LineNum, from_keeps_slc: bool, out: &mut Outcome) {
        // 1. Ownership migration: a Shared replica anywhere can simply
        //    take over responsibility — no data slot is consumed.
        if let Some(info) = self.dir.get(line) {
            debug_assert_eq!(info.owner.as_usize(), from, "injecting non-owned line");
            if !info.sharers.is_empty() {
                let new_owner = info.sharer_nodes().next().expect("sharers non-empty");
                self.nodes[new_owner.as_usize()]
                    .am
                    .set_state(line, AmState::Owner);
                self.dir.set_owner(line, new_owner);
                if from_keeps_slc {
                    self.dir.add_sharer(line, NodeId(from as u16));
                }
                self.emit(ProtocolEvent::OwnershipMigration);
                out.ownership_migrated = true;
                out.migrated_to = Some(new_owner);
                return;
            }
        }

        // 2. Snoop arbitration for a receiver, scanning nodes after the
        //    injector (deterministic round-robin).
        let n_nodes = self.geom.n_nodes;
        let order = (1..n_nodes).map(|k| (from + k) % n_nodes);
        let mut invalid_slot: Option<usize> = None;
        let mut shared_slot: Option<(usize, LineNum)> = None;
        for k in order {
            match self.nodes[k].am.accept_slot(line, self.accept_policy) {
                Some(AcceptSlot::Invalid) if invalid_slot.is_none() => invalid_slot = Some(k),
                Some(AcceptSlot::Shared(v)) if shared_slot.is_none() => shared_slot = Some((k, v)),
                _ => {}
            }
            if invalid_slot.is_some() && shared_slot.is_some() {
                break;
            }
        }
        let choice = match self.accept_policy {
            AcceptPolicy::InvalidThenShared | AcceptPolicy::FirstFit => invalid_slot
                .map(|k| (k, None))
                .or(shared_slot.map(|(k, v)| (k, Some(v)))),
            AcceptPolicy::SharedThenInvalid => shared_slot
                .map(|(k, v)| (k, Some(v)))
                .or(invalid_slot.map(|k| (k, None))),
        };

        match choice {
            Some((acceptor, sacrificed)) => {
                if let Some(v) = sacrificed {
                    self.nodes[acceptor].am.remove(v);
                    let keeps = self.displace_private(acceptor, v);
                    if !keeps {
                        self.dir.remove_sharer(v, NodeId(acceptor as u16));
                    }
                    self.emit(ProtocolEvent::SharedDrop);
                }
                // Sole AM copy at the acceptor; Owner if the displacing
                // node retains SLC-only replicas, else Exclusive.
                if from_keeps_slc {
                    self.nodes[acceptor].am.insert(line, AmState::Owner);
                    self.dir.set_owner(line, NodeId(acceptor as u16));
                    self.dir.add_sharer(line, NodeId(from as u16));
                } else {
                    self.nodes[acceptor].am.insert(line, AmState::Exclusive);
                    self.dir.set_owner(line, NodeId(acceptor as u16));
                }
                self.emit(ProtocolEvent::Injection);
                out.injected_to = Some(NodeId(acceptor as u16));
            }
            None => {
                // Every slot machine-wide is responsible: OS page-out.
                if from_keeps_slc {
                    self.nodes[from].invalidate_private(line);
                }
                self.dir.remove(line);
                self.paged_out.insert(line.0, ());
                self.emit(ProtocolEvent::Pageout);
                out.pageout = true;
            }
        }
    }
}
