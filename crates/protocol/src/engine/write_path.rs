//! The write path: ownership acquisition. A write that misses the
//! private caches silences the node-local peers, then either upgrades an
//! existing copy (invalidation broadcast) or fetches the line with
//! ownership (read-exclusive).

use super::*;

impl CoherenceEngine {
    /// Perform a processor write of `line` (ownership acquisition; the
    /// store data itself is not modeled). Unaudited; the public
    /// [`CoherenceEngine::write`] wraps this with the live auditor.
    pub(super) fn write_inner(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let n = self.node_of(proc);
        let pidx = self.pidx_of(proc);

        if self.nodes[n].flcs[pidx].write_hit(line) {
            return Outcome::at(Level::Flc);
        }
        if self.nodes[n].slcs[pidx].lookup(line) == SlcState::Modified {
            self.nodes[n].flcs[pidx].fill(line, true);
            return Outcome::at(Level::Slc);
        }

        // Ownership must be obtained: first silence the node-local peers.
        self.nodes[n].invalidate_peers(line, pidx);

        let mut out = match self.nodes[n].am.touch(line) {
            AmState::Exclusive => Outcome::at(Level::Am),
            AmState::Owner | AmState::Shared => self.global_upgrade(n, line),
            AmState::Invalid => self.global_read_exclusive(n, line),
        };
        self.fill_private_write(n, pidx, line, &mut out);
        out
    }

    /// Fill SLC (Modified) + FLC after a write obtained ownership.
    fn fill_private_write(&mut self, n: usize, pidx: usize, line: LineNum, out: &mut Outcome) {
        if let Some((evicted, st)) = self.nodes[n].slc_fill(pidx, line, SlcState::Modified) {
            if st == SlcState::Modified {
                out.slc_writeback = true;
            }
            self.nodes[n].flcs[pidx].invalidate(evicted);
            self.retire_slc_only_sharer(n, evicted);
        }
        self.nodes[n].flcs[pidx].fill(line, true);
    }

    /// Write upgrade: the node already holds the line (Owner or Shared);
    /// invalidate every other copy and end Exclusive.
    fn global_upgrade(&mut self, n: usize, line: LineNum) -> Outcome {
        let mut out = Outcome::at(Level::Remote);
        let info = self.dir.get(line).expect("valid AM line not in directory");
        // Ask the directory levels how far the invalidation must climb
        // (the stored presence masks, not the root sets, answer this —
        // they are the modeled snoop filter). Flat machines have no
        // levels and broadcast to everyone.
        out.inval_scope = self
            .dir
            .farthest_present(line, self.dir.group_of(NodeId(n as u16)))
            .map(|g| NodeId((g * self.geom.nodes_per_group()) as u16));
        for sh in info.sharer_nodes() {
            let s = sh.as_usize();
            if s != n {
                self.nodes[s].am.remove(line);
                self.nodes[s].invalidate_private(line);
            }
        }
        let owner = info.owner.as_usize();
        if owner != n {
            self.nodes[owner].am.remove(line);
            self.nodes[owner].invalidate_private(line);
        }
        self.dir.set_owner(line, NodeId(n as u16));
        self.dir.clear_sharers(line);
        self.nodes[n].am.set_state(line, AmState::Exclusive);
        out.upgrade = true;
        self.emit(ProtocolEvent::Upgrade);
        out
    }

    /// Write miss: fetch the line with ownership (read-exclusive),
    /// invalidating every existing copy.
    fn global_read_exclusive(&mut self, n: usize, line: LineNum) -> Outcome {
        let mut out = Outcome::at(Level::Remote);
        match self.dir.get(line) {
            Some(info) => {
                for sh in info.sharer_nodes() {
                    let s = sh.as_usize();
                    self.nodes[s].am.remove(line);
                    self.nodes[s].invalidate_private(line);
                }
                let owner = info.owner.as_usize();
                debug_assert_ne!(owner, n);
                self.nodes[owner].am.remove(line);
                self.nodes[owner].invalidate_private(line);
                self.dir.remove(line);
                self.fill_am(n, line, AmState::Exclusive, &mut out);
                self.dir.insert_sole(line, NodeId(n as u16));
                out.read_exclusive = true;
                out.remote_node = Some(NodeId(owner as u16));
                self.emit(ProtocolEvent::ReadExclusive);
            }
            None => {
                let home = self.home_of(line, n);
                out.pagein = self.paged_out.remove(line.0).is_some();
                self.fill_am(n, line, AmState::Exclusive, &mut out);
                self.dir.insert_sole(line, NodeId(n as u16));
                self.emit(ProtocolEvent::ColdAlloc);
                if home == n {
                    out.level = Level::Am; // local cold allocation
                } else {
                    // Data pulled from the home node's page frame.
                    out.read_exclusive = true;
                    out.remote_node = Some(NodeId(home as u16));
                    self.emit(ProtocolEvent::ReadExclusive);
                }
            }
        }
        out
    }
}
