//! The Bus-Based COMA coherence protocol (paper §3.1).
//!
//! This crate implements the functional (state-machine) half of the
//! memory system: what moves where, which copies get invalidated, where a
//! displaced responsible copy is re-homed. The timing half — how long it
//! all takes under contention — lives in `coma-sim`, which interprets the
//! [`Outcome`] each access returns.
//!
//! Protocol summary:
//!
//! * AM line states Exclusive / Owner / Shared / Invalid, with exactly one
//!   E-or-O ("responsible") copy per live line machine-wide.
//! * Invalidation-based writes: gaining ownership invalidates every other
//!   copy; the writer's AM ends in Exclusive.
//! * **Accept-based replacement**: a displaced E/O line is *injected* on
//!   the bus; if a replica exists anywhere, ownership simply migrates to
//!   it; otherwise the snoop arbitration picks a receiver with an Invalid
//!   slot in the line's home set, then one that would overwrite a Shared
//!   replica; if every slot machine-wide is responsible, the line leaves
//!   through the OS (page-out).
//! * Intra-node MSI over the private SLCs with AM inclusion, including
//!   dirty peer-to-peer supplies within a node.
//! * Pages are allocated on demand to the first-touching node; untouched
//!   lines of an allocated page materialize at that home node.

pub mod directory;
pub mod engine;
pub mod memory;
pub mod node;
pub mod numa;
pub mod outcome;
pub mod table;

pub use coma_stats::ProtocolCounters;
pub use directory::Directory;
pub use engine::CoherenceEngine;
pub use memory::MemorySystem;
pub use node::NodeState;
pub use numa::{BaselineEngine, BaselineKind};
pub use outcome::Outcome;
