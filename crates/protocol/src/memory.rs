//! The [`MemorySystem`] trait: the simulator-facing surface of a whole
//! memory architecture.
//!
//! `coma-sim` drives every machine — the paper's bus-based COMA and the
//! NUMA/UMA baselines alike — through this one interface: issue a read
//! or write, get back an [`Outcome`] for the timing model, and read the
//! accumulated [`Traffic`] and [`ProtocolCounters`] at the end. Adding a
//! new architecture (a flat COMA, a directory NUMA with a remote cache)
//! means implementing this trait, not editing the simulation driver.

use crate::engine::CoherenceEngine;
use crate::numa::BaselineEngine;
use crate::outcome::Outcome;
use coma_stats::{ProtocolCounters, Traffic};
use coma_types::{LineNum, MachineGeometry, ProcId};
use std::any::Any;

/// A complete memory architecture: caches, coherence, replacement.
///
/// Implementations are purely functional with respect to time; the
/// simulator interprets each [`Outcome`] against the machine's contended
/// resources.
pub trait MemorySystem {
    /// Perform a processor read of `line`.
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome;

    /// Perform a processor write of `line` (ownership acquisition).
    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome;

    /// Hint that `proc` is about to access `line`: pull the host cache
    /// lines its probe path will touch toward L1. Purely a performance
    /// hint — implementations must not change any simulated state — so
    /// the no-op default is always correct.
    fn prefetch(&self, _proc: ProcId, _line: LineNum) {}

    /// The machine geometry this system was built for.
    fn geometry(&self) -> &MachineGeometry;

    /// Apply any internally batched statistics to the global totals.
    /// The driver calls this at sync points and before reading
    /// [`Self::traffic`] / [`Self::counters`]; systems that count
    /// directly need not override the no-op default. Every statistic is
    /// a plain sum, so flush placement never changes final totals.
    fn flush_stats(&mut self) {}

    /// Global interconnect traffic accumulated so far (after a
    /// [`Self::flush_stats`]).
    fn traffic(&self) -> &Traffic;

    /// Replacement / allocation event counters accumulated so far (after
    /// a [`Self::flush_stats`]).
    fn counters(&self) -> &ProtocolCounters;

    /// Verify every internal invariant; returns a description of the
    /// first violation.
    fn check_invariants(&self) -> Result<(), String>;

    /// Census over the attraction memories: `(shared, owner, exclusive)`
    /// entries machine-wide. Architectures without AMs report zeros.
    fn am_census(&self) -> (usize, usize, usize) {
        (0, 0, 0)
    }

    /// Escape hatch for tests and diagnostics that need the concrete
    /// engine behind the trait object.
    fn as_any(&self) -> &dyn Any;
}

impl MemorySystem for CoherenceEngine {
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        CoherenceEngine::read(self, proc, line)
    }

    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        CoherenceEngine::write(self, proc, line)
    }

    fn prefetch(&self, proc: ProcId, line: LineNum) {
        CoherenceEngine::prefetch(self, proc, line)
    }

    fn geometry(&self) -> &MachineGeometry {
        CoherenceEngine::geometry(self)
    }

    fn flush_stats(&mut self) {
        CoherenceEngine::flush_stats(self)
    }

    fn traffic(&self) -> &Traffic {
        CoherenceEngine::traffic(self)
    }

    fn counters(&self) -> &ProtocolCounters {
        CoherenceEngine::counters(self)
    }

    fn check_invariants(&self) -> Result<(), String> {
        CoherenceEngine::check_invariants(self)
    }

    fn am_census(&self) -> (usize, usize, usize) {
        CoherenceEngine::am_census(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl MemorySystem for BaselineEngine {
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        BaselineEngine::read(self, proc, line)
    }

    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        BaselineEngine::write(self, proc, line)
    }

    fn prefetch(&self, proc: ProcId, line: LineNum) {
        BaselineEngine::prefetch(self, proc, line)
    }

    fn geometry(&self) -> &MachineGeometry {
        BaselineEngine::geometry(self)
    }

    fn flush_stats(&mut self) {
        BaselineEngine::flush_stats(self)
    }

    fn traffic(&self) -> &Traffic {
        BaselineEngine::traffic(self)
    }

    fn counters(&self) -> &ProtocolCounters {
        BaselineEngine::counters(self)
    }

    fn check_invariants(&self) -> Result<(), String> {
        BaselineEngine::check_invariants(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl<M: MemorySystem + ?Sized> MemorySystem for Box<M> {
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        (**self).read(proc, line)
    }

    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        (**self).write(proc, line)
    }

    fn prefetch(&self, proc: ProcId, line: LineNum) {
        (**self).prefetch(proc, line)
    }

    fn geometry(&self) -> &MachineGeometry {
        (**self).geometry()
    }

    fn flush_stats(&mut self) {
        (**self).flush_stats()
    }

    fn traffic(&self) -> &Traffic {
        (**self).traffic()
    }

    fn counters(&self) -> &ProtocolCounters {
        (**self).counters()
    }

    fn check_invariants(&self) -> Result<(), String> {
        (**self).check_invariants()
    }

    fn am_census(&self) -> (usize, usize, usize) {
        (**self).am_census()
    }

    fn as_any(&self) -> &dyn Any {
        (**self).as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numa::BaselineKind;
    use coma_cache::{AcceptPolicy, VictimPolicy};
    use coma_types::{MachineConfig, MemoryPressure};

    fn geom() -> MachineGeometry {
        let cfg = MachineConfig {
            n_procs: 4,
            procs_per_node: 1,
            memory_pressure: MemoryPressure::MP_50,
            ..Default::default()
        };
        cfg.geometry(64 * 1024).unwrap()
    }

    fn systems() -> Vec<Box<dyn MemorySystem>> {
        vec![
            Box::new(CoherenceEngine::new(
                geom(),
                VictimPolicy::SharedFirst,
                AcceptPolicy::InvalidThenShared,
                true,
            )),
            Box::new(BaselineEngine::new(geom(), BaselineKind::Numa)),
            Box::new(BaselineEngine::new(geom(), BaselineKind::Uma)),
        ]
    }

    #[test]
    fn every_system_serves_the_same_trace() {
        for mut m in systems() {
            m.write(ProcId(0), LineNum(3));
            m.read(ProcId(1), LineNum(3));
            let out = m.read(ProcId(1), LineNum(3));
            assert_eq!(out.level, coma_stats::Level::Flc);
            m.check_invariants().unwrap();
            assert_eq!(m.geometry().n_procs, 4);
        }
    }

    #[test]
    fn downcast_recovers_the_concrete_engine() {
        let systems = systems();
        assert!(systems[0]
            .as_any()
            .downcast_ref::<CoherenceEngine>()
            .is_some());
        assert!(systems[1]
            .as_any()
            .downcast_ref::<BaselineEngine>()
            .is_some());
        assert!(systems[1]
            .as_any()
            .downcast_ref::<CoherenceEngine>()
            .is_none());
    }

    #[test]
    fn census_defaults_to_zero_for_baselines() {
        let mut systems = systems();
        for m in &mut systems {
            m.write(ProcId(0), LineNum(1));
        }
        assert_ne!(systems[0].am_census(), (0, 0, 0));
        assert_eq!(systems[1].am_census(), (0, 0, 0));
    }
}
