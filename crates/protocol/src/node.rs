//! Per-node state: the attraction memory plus the private cache
//! hierarchies of the node's processors.

use coma_cache::{AttractionMemory, Flc, Slc, SlcState, VictimPolicy};
use coma_types::{LineNum, MachineGeometry};

/// One cluster node (Figure 1 of the paper): `procs_per_node` processors,
/// each with a private FLC and SLC, sharing one attraction memory.
#[derive(Clone, Debug)]
pub struct NodeState {
    pub am: AttractionMemory,
    /// Private SLCs, indexed by the processor's index *within the node*.
    pub slcs: Vec<Slc>,
    /// Private FLCs, same indexing.
    pub flcs: Vec<Flc>,
}

impl NodeState {
    pub fn new(geom: &MachineGeometry, victim_policy: VictimPolicy) -> Self {
        NodeState {
            am: AttractionMemory::new(geom.am_sets, geom.am_assoc, victim_policy),
            slcs: (0..geom.procs_per_node)
                .map(|_| Slc::new(geom.slc_sets, geom.slc_assoc))
                .collect(),
            flcs: (0..geom.procs_per_node)
                .map(|_| Flc::new(geom.flc_sets))
                .collect(),
        }
    }

    /// Enforce inclusion: the AM lost `line`, so every private cache in
    /// the node must drop it too.
    pub fn invalidate_private(&mut self, line: LineNum) {
        for slc in &mut self.slcs {
            slc.invalidate(line);
        }
        for flc in &mut self.flcs {
            flc.invalidate(line);
        }
    }

    /// Downgrade every private copy to read-only (a reader appeared
    /// elsewhere). Returns true if some SLC held the line Modified.
    pub fn downgrade_private(&mut self, line: LineNum) -> bool {
        let mut had_dirty = false;
        for slc in &mut self.slcs {
            had_dirty |= slc.downgrade(line);
        }
        for flc in &mut self.flcs {
            flc.downgrade(line);
        }
        had_dirty
    }

    /// Index of a peer SLC (≠ `except`) holding `line` Modified, if any.
    pub fn dirty_peer(&self, line: LineNum, except: usize) -> Option<usize> {
        self.slcs
            .iter()
            .enumerate()
            .find(|(i, s)| *i != except && s.peek(line) == SlcState::Modified)
            .map(|(i, _)| i)
    }

    /// Invalidate `line` in every private cache except processor `except`
    /// (intra-node write invalidation). Returns true if a dirty peer copy
    /// was destroyed-by-upgrade (its data first merged via the AM).
    pub fn invalidate_peers(&mut self, line: LineNum, except: usize) -> bool {
        let mut had_dirty = false;
        for (i, slc) in self.slcs.iter_mut().enumerate() {
            if i != except {
                had_dirty |= slc.invalidate(line) == SlcState::Modified;
            }
        }
        for (i, flc) in self.flcs.iter_mut().enumerate() {
            if i != except {
                flc.invalidate(line);
            }
        }
        had_dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_types::{MachineConfig, MemoryPressure};

    fn node() -> NodeState {
        let cfg = MachineConfig::paper(4, MemoryPressure::MP_50);
        let geom = cfg.geometry(1 << 20).unwrap();
        NodeState::new(&geom, VictimPolicy::SharedFirst)
    }

    #[test]
    fn construction_matches_geometry() {
        let n = node();
        assert_eq!(n.slcs.len(), 4);
        assert_eq!(n.flcs.len(), 4);
        assert!(n.am.capacity() > 0);
    }

    #[test]
    fn invalidate_private_clears_all_levels() {
        let mut n = node();
        n.slcs[1].insert(LineNum(5), SlcState::Shared);
        n.flcs[1].fill(LineNum(5), false);
        n.invalidate_private(LineNum(5));
        assert_eq!(n.slcs[1].peek(LineNum(5)), SlcState::Invalid);
        assert!(!n.flcs[1].read_hit(LineNum(5)));
    }

    #[test]
    fn dirty_peer_found_and_excluded() {
        let mut n = node();
        n.slcs[2].insert(LineNum(9), SlcState::Modified);
        assert_eq!(n.dirty_peer(LineNum(9), 0), Some(2));
        assert_eq!(n.dirty_peer(LineNum(9), 2), None);
    }

    #[test]
    fn downgrade_reports_dirty() {
        let mut n = node();
        n.slcs[0].insert(LineNum(3), SlcState::Modified);
        n.slcs[1].insert(LineNum(3), SlcState::Shared);
        assert!(n.downgrade_private(LineNum(3)));
        assert_eq!(n.slcs[0].peek(LineNum(3)), SlcState::Shared);
        assert!(!n.downgrade_private(LineNum(3)));
    }

    #[test]
    fn invalidate_peers_spares_writer() {
        let mut n = node();
        n.slcs[0].insert(LineNum(4), SlcState::Shared);
        n.slcs[1].insert(LineNum(4), SlcState::Shared);
        let dirty = n.invalidate_peers(LineNum(4), 0);
        assert!(!dirty);
        assert_eq!(n.slcs[0].peek(LineNum(4)), SlcState::Shared);
        assert_eq!(n.slcs[1].peek(LineNum(4)), SlcState::Invalid);
    }
}
