//! Per-node state: the attraction memory plus the private cache
//! hierarchies of the node's processors.
//!
//! The node also keeps a [`ResidencyFilter`] — an exact-counting,
//! conservative summary of which lines are resident in *any* of the
//! node's SLCs. The coherence engine consults it before probing the
//! private caches on the remote paths (peer-SLC search, invalidation,
//! downgrade): those probes almost always miss, and each one is a cold
//! host-cache access into a per-processor slab. A zero count proves the
//! line is in no SLC of the node — and, because the FLCs are strict
//! subsets of their SLCs, in no FLC either — so the probe loop can be
//! skipped without changing a single protocol transition. A non-zero
//! count (real residency or a hash collision) falls through to the exact
//! probes, so behaviour is byte-identical either way.

use coma_cache::{AttractionMemory, Flc, Slc, SlcState, VictimPolicy};
use coma_types::{LineNum, MachineGeometry};

/// Knuth's multiplicative constant (2^64 / φ), as used by the protocol's
/// open-addressing tables.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Exact counting filter over a node's SLC-resident lines.
///
/// Every SLC membership change (fill, eviction, invalidation) adjusts the
/// count of the line's hash slot, so `count == 0` is a proof of absence
/// while `count > 0` is only a hint (collisions conflate lines). The
/// filter never influences protocol decisions directly — it only gates
/// whether the exact private-cache probes run at all.
#[derive(Clone, Debug)]
pub struct ResidencyFilter {
    counts: Box<[u16]>,
    /// Right-shift turning a 64-bit hash into a slot index.
    shift: u32,
}

impl ResidencyFilter {
    fn new(lines_hint: usize) -> Self {
        // 4× the maximum resident-line count keeps collision-induced
        // false positives rare without outgrowing the host caches.
        let cap = (lines_hint * 4).next_power_of_two().clamp(1024, 1 << 16);
        ResidencyFilter {
            counts: vec![0u16; cap].into_boxed_slice(),
            shift: 64 - cap.trailing_zeros(),
        }
    }

    #[inline]
    fn slot(&self, line: LineNum) -> usize {
        (line.0.wrapping_mul(FIB) >> self.shift) as usize
    }

    #[inline]
    fn add(&mut self, line: LineNum) {
        self.counts[self.slot(line)] += 1;
    }

    #[inline]
    fn remove(&mut self, line: LineNum) {
        let s = self.slot(line);
        debug_assert!(self.counts[s] > 0, "filter underflow for {line:?}");
        self.counts[s] -= 1;
    }

    /// Could `line` be resident in some SLC? `false` is exact.
    #[inline]
    pub fn may_hold(&self, line: LineNum) -> bool {
        self.counts[self.slot(line)] != 0
    }

    /// Pull `line`'s count slot toward the host L1 (performance hint).
    #[inline]
    fn prefetch(&self, line: LineNum) {
        coma_types::prefetch_read(&self.counts[self.slot(line)]);
    }
}

/// One cluster node (Figure 1 of the paper): `procs_per_node` processors,
/// each with a private FLC and SLC, sharing one attraction memory.
///
/// The `slcs`/`flcs` arrays stay public for read-only inspection
/// (verification, invariant checks, statistics), but *membership*
/// mutations of the SLCs must go through [`NodeState::slc_fill`] and the
/// invalidation helpers below so the residency filter stays exact —
/// [`NodeState::filter_consistent`] (run by the engine's invariant
/// checker) catches any bypass.
#[derive(Clone, Debug)]
pub struct NodeState {
    pub am: AttractionMemory,
    /// Private SLCs, indexed by the processor's index *within the node*.
    pub slcs: Vec<Slc>,
    /// Private FLCs, same indexing.
    pub flcs: Vec<Flc>,
    /// Conservative union-of-SLC-contents summary (see module docs).
    filter: ResidencyFilter,
}

impl NodeState {
    pub fn new(geom: &MachineGeometry, victim_policy: VictimPolicy) -> Self {
        let slc_lines = geom.slc_sets as usize * geom.slc_assoc * geom.procs_per_node;
        NodeState {
            am: AttractionMemory::new(geom.am_sets, geom.am_assoc, victim_policy),
            slcs: (0..geom.procs_per_node)
                .map(|_| Slc::new(geom.slc_sets, geom.slc_assoc))
                .collect(),
            flcs: (0..geom.procs_per_node)
                .map(|_| Flc::new(geom.flc_sets))
                .collect(),
            filter: ResidencyFilter::new(slc_lines),
        }
    }

    /// Insert `line` into processor `pidx`'s SLC, keeping the residency
    /// filter exact. Same contract as [`Slc::insert`]: returns the
    /// evicted `(line, state)` if the set was full.
    pub fn slc_fill(
        &mut self,
        pidx: usize,
        line: LineNum,
        state: SlcState,
    ) -> Option<(LineNum, SlcState)> {
        let slc = &mut self.slcs[pidx];
        let before = slc.len();
        let evicted = slc.insert(line, state);
        // Three cases: update-in-place (no membership change), fill of a
        // free slot (line joins), evicting fill (line joins, victim
        // leaves).
        if evicted.is_some() || slc.len() > before {
            self.filter.add(line);
        }
        if let Some((victim, _)) = evicted {
            self.filter.remove(victim);
        }
        evicted
    }

    /// Could any SLC of this node hold `line`? `false` is exact; `true`
    /// may be a hash collision.
    #[inline]
    pub fn may_hold_private(&self, line: LineNum) -> bool {
        self.filter.may_hold(line)
    }

    /// Pull the structures processor `pidx` probes when accessing `line`
    /// — its FLC slot, its SLC set, the residency-filter count and the
    /// AM set — toward the host L1. Performance hint only.
    #[inline]
    pub fn prefetch_access(&self, pidx: usize, line: LineNum) {
        self.flcs[pidx].prefetch(line);
        self.slcs[pidx].prefetch(line);
        self.filter.prefetch(line);
        self.am.prefetch(line);
    }

    /// Does some SLC of this node actually hold `line` (valid state)?
    #[inline]
    pub fn slc_holds(&self, line: LineNum) -> bool {
        self.filter.may_hold(line) && self.slcs.iter().any(|s| s.peek(line).is_valid())
    }

    /// Enforce inclusion: the AM lost `line`, so every private cache in
    /// the node must drop it too.
    pub fn invalidate_private(&mut self, line: LineNum) {
        if !self.filter.may_hold(line) {
            return; // no SLC holds it, hence (FLC ⊆ SLC) no FLC either
        }
        let NodeState {
            slcs, flcs, filter, ..
        } = self;
        for slc in slcs.iter_mut() {
            if slc.invalidate(line).is_valid() {
                filter.remove(line);
            }
        }
        for flc in flcs.iter_mut() {
            flc.invalidate(line);
        }
    }

    /// Downgrade every private copy to read-only (a reader appeared
    /// elsewhere). Returns true if some SLC held the line Modified.
    pub fn downgrade_private(&mut self, line: LineNum) -> bool {
        if !self.filter.may_hold(line) {
            return false;
        }
        let mut had_dirty = false;
        for slc in &mut self.slcs {
            had_dirty |= slc.downgrade(line);
        }
        for flc in &mut self.flcs {
            flc.downgrade(line);
        }
        had_dirty
    }

    /// Index of a peer SLC (≠ `except`) holding `line` Modified, if any.
    pub fn dirty_peer(&self, line: LineNum, except: usize) -> Option<usize> {
        if !self.filter.may_hold(line) {
            return None;
        }
        self.slcs
            .iter()
            .enumerate()
            .find(|(i, s)| *i != except && s.peek(line) == SlcState::Modified)
            .map(|(i, _)| i)
    }

    /// Invalidate `line` in every private cache except processor `except`
    /// (intra-node write invalidation). Returns true if a dirty peer copy
    /// was destroyed-by-upgrade (its data first merged via the AM).
    pub fn invalidate_peers(&mut self, line: LineNum, except: usize) -> bool {
        if !self.filter.may_hold(line) {
            return false;
        }
        let mut had_dirty = false;
        let NodeState {
            slcs, flcs, filter, ..
        } = self;
        for (i, slc) in slcs.iter_mut().enumerate() {
            if i != except {
                let prev = slc.invalidate(line);
                if prev.is_valid() {
                    filter.remove(line);
                }
                had_dirty |= prev == SlcState::Modified;
            }
        }
        for (i, flc) in flcs.iter_mut().enumerate() {
            if i != except {
                flc.invalidate(line);
            }
        }
        had_dirty
    }

    /// Verify the residency filter exactly matches the SLC contents
    /// (invariant check: catches any mutation that bypassed the
    /// filter-maintaining methods).
    pub fn filter_consistent(&self) -> Result<(), String> {
        let mut expect = vec![0u16; self.filter.counts.len()];
        for slc in &self.slcs {
            for (line, _) in slc.lines() {
                expect[self.filter.slot(line)] += 1;
            }
        }
        if expect[..] != self.filter.counts[..] {
            let bad = expect
                .iter()
                .zip(self.filter.counts.iter())
                .position(|(e, g)| e != g)
                .unwrap();
            return Err(format!(
                "SLC residency filter slot {bad} holds {} but SLC contents say {}",
                self.filter.counts[bad], expect[bad]
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_types::{MachineConfig, MemoryPressure};

    fn node() -> NodeState {
        let cfg = MachineConfig::paper(4, MemoryPressure::MP_50);
        let geom = cfg.geometry(1 << 20).unwrap();
        NodeState::new(&geom, VictimPolicy::SharedFirst)
    }

    #[test]
    fn construction_matches_geometry() {
        let n = node();
        assert_eq!(n.slcs.len(), 4);
        assert_eq!(n.flcs.len(), 4);
        assert!(n.am.capacity() > 0);
    }

    #[test]
    fn invalidate_private_clears_all_levels() {
        let mut n = node();
        n.slc_fill(1, LineNum(5), SlcState::Shared);
        n.flcs[1].fill(LineNum(5), false);
        n.invalidate_private(LineNum(5));
        assert_eq!(n.slcs[1].peek(LineNum(5)), SlcState::Invalid);
        assert!(!n.flcs[1].read_hit(LineNum(5)));
        n.filter_consistent().unwrap();
    }

    #[test]
    fn dirty_peer_found_and_excluded() {
        let mut n = node();
        n.slc_fill(2, LineNum(9), SlcState::Modified);
        assert_eq!(n.dirty_peer(LineNum(9), 0), Some(2));
        assert_eq!(n.dirty_peer(LineNum(9), 2), None);
    }

    #[test]
    fn downgrade_reports_dirty() {
        let mut n = node();
        n.slc_fill(0, LineNum(3), SlcState::Modified);
        n.slc_fill(1, LineNum(3), SlcState::Shared);
        assert!(n.downgrade_private(LineNum(3)));
        assert_eq!(n.slcs[0].peek(LineNum(3)), SlcState::Shared);
        assert!(!n.downgrade_private(LineNum(3)));
        n.filter_consistent().unwrap();
    }

    #[test]
    fn invalidate_peers_spares_writer() {
        let mut n = node();
        n.slc_fill(0, LineNum(4), SlcState::Shared);
        n.slc_fill(1, LineNum(4), SlcState::Shared);
        let dirty = n.invalidate_peers(LineNum(4), 0);
        assert!(!dirty);
        assert_eq!(n.slcs[0].peek(LineNum(4)), SlcState::Shared);
        assert_eq!(n.slcs[1].peek(LineNum(4)), SlcState::Invalid);
        n.filter_consistent().unwrap();
    }

    #[test]
    fn filter_tracks_fill_update_and_eviction() {
        let mut n = node();
        // Fresh fill: filter sees the line.
        assert!(n.slc_fill(0, LineNum(10), SlcState::Shared).is_none());
        assert!(n.may_hold_private(LineNum(10)));
        // Update in place: count unchanged (still consistent).
        assert!(n.slc_fill(0, LineNum(10), SlcState::Modified).is_none());
        n.filter_consistent().unwrap();
        // Fill the set until line 10's set evicts it; whatever is evicted
        // must leave the filter.
        let assoc = n.slcs[0].len(); // currently 1
        assert_eq!(assoc, 1);
        let mut evicted = Vec::new();
        for k in 1..100_000u64 {
            if let Some((l, _)) = n.slc_fill(0, LineNum(k), SlcState::Shared) {
                evicted.push(l);
                break;
            }
        }
        assert!(!evicted.is_empty(), "no eviction after 100k fills");
        n.filter_consistent().unwrap();
    }

    #[test]
    fn zero_count_is_exact_absence() {
        let mut n = node();
        n.slc_fill(3, LineNum(77), SlcState::Shared);
        n.invalidate_private(LineNum(77));
        assert!(!n.slc_holds(LineNum(77)));
        n.filter_consistent().unwrap();
        // slc_holds on a never-seen line must not probe wrongly either.
        assert!(!n.slc_holds(LineNum(123_456)));
    }

    #[test]
    fn filter_consistency_catches_bypass() {
        let mut n = node();
        // Mutating the SLC directly (bypassing slc_fill) desynchronizes
        // the filter, and the checker must say so.
        n.slcs[0].insert(LineNum(42), SlcState::Shared);
        assert!(n.filter_consistent().is_err());
    }
}
