//! CC-NUMA and UMA baseline memory models.
//!
//! The paper motivates COMA by contrast with NUMA/UMA machines: "In a UMA
//! or NUMA machine replacement results in increased traffic … In a COMA,
//! the effects may be even worse" (§2) — and conversely, at sane memory
//! pressures the COMA's migration and replication remove most remote
//! accesses. These baselines make that comparison measurable:
//!
//! * **CC-NUMA**: every page has a fixed home node (first touch); the
//!   home DRAM always backs the line. The private SLCs are kept coherent
//!   with an invalidation directory at the home. There is no attraction
//!   memory: capacity beyond the working set is simply unused, so NUMA
//!   performance is independent of the memory pressure.
//! * **UMA**: a dancehall machine — all memory is equally far away, every
//!   SLC miss crosses the interconnect.
//!
//! Both implement the same access API as [`crate::CoherenceEngine`] and
//! return the same [`Outcome`]s, so the simulator's timing model applies
//! unchanged.

use crate::outcome::Outcome;
use crate::table::{OpenTable, PageHomes};
use coma_cache::{Flc, Slc, SlcState};
use coma_stats::{BatchedSink, EventSink, Level, ProtocolCounters, ProtocolEvent, Traffic};
use coma_types::{LineNum, MachineGeometry, NodeId, NodeSet, ProcId, LINE_SHIFT, PAGE_SHIFT};

const PAGE_LINES_SHIFT: u32 = PAGE_SHIFT - LINE_SHIFT;

/// Inline reader capacity of a directory entry (see [`DirEntry`]).
const INLINE_READERS: usize = 4;

/// `DirEntry::n` marker: the reader set lives in the spill table.
const SPILLED: u8 = u8::MAX;

/// Sharing state of one line across the private SLCs, stored compactly:
/// a full `NodeSet` is 32 bytes sized for 256 processors, but the
/// directory holds one entry per live line and is probed on every SLC
/// miss, so entry bytes are host-cache reach. Lines with at most
/// [`INLINE_READERS`] clean copies (the overwhelming majority) keep the
/// reader processor IDs inline, unordered; wider lines park a `NodeSet`
/// in the engine's spill table and stay spilled until their readers are
/// cleared.
#[derive(Clone, Copy, Debug, Default)]
struct DirEntry {
    /// Processor holding the line Modified, stored as `proc + 1`
    /// (`0` = none) so the all-zero entry is the empty one.
    writer_p1: u16,
    /// Count of valid `inline` entries, or [`SPILLED`].
    n: u8,
    /// Processors with a (clean) SLC copy.
    inline: [u16; INLINE_READERS],
}

impl DirEntry {
    #[inline]
    fn writer(&self) -> Option<ProcId> {
        match self.writer_p1 {
            0 => None,
            w => Some(ProcId(w - 1)),
        }
    }

    #[inline]
    fn set_writer(&mut self, w: Option<ProcId>) {
        self.writer_p1 = match w {
            None => 0,
            Some(p) => p.0 + 1,
        };
    }
}

/// Which baseline is modeled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineKind {
    /// Fixed first-touch homes; local accesses hit the home DRAM.
    Numa,
    /// Dancehall: every SLC miss is a remote access.
    Uma,
}

/// A directory-based CC-NUMA (or UMA) machine with the same processor
/// caches as the COMA configuration.
pub struct BaselineEngine {
    geom: MachineGeometry,
    kind: BaselineKind,
    slcs: Vec<Slc>,
    flcs: Vec<Flc>,
    pages: PageHomes,
    dir: OpenTable<DirEntry>,
    /// Reader sets of lines too wide for inline storage (see [`DirEntry`]).
    spill: OpenTable<NodeSet>,
    /// Precomputed `proc → node`, so the miss paths never divide.
    node_map: Box<[NodeId]>,
    /// Where every protocol event lands: batched traffic + counters (the
    /// same decomposition as the COMA bus). Flushed by the driver at
    /// sync points and before any statistics read.
    sink: BatchedSink,
}

impl BaselineEngine {
    pub fn new(geom: MachineGeometry, kind: BaselineKind) -> Self {
        BaselineEngine {
            geom,
            kind,
            slcs: (0..geom.n_procs)
                .map(|_| Slc::new(geom.slc_sets, geom.slc_assoc))
                .collect(),
            flcs: (0..geom.n_procs).map(|_| Flc::new(geom.flc_sets)).collect(),
            pages: PageHomes::new(),
            dir: OpenTable::new(),
            spill: OpenTable::new(),
            node_map: (0..geom.n_procs)
                .map(|p| ProcId(p as u16).node(geom.procs_per_node))
                .collect(),
            sink: BatchedSink::new(),
        }
    }

    /// The processor's node (precomputed, no division).
    #[inline]
    fn node_of(&self, proc: ProcId) -> NodeId {
        self.node_map[proc.as_usize()]
    }

    /// Materialize an entry's reader set, wherever it is stored.
    fn entry_readers(spill: &OpenTable<NodeSet>, line: u64, e: &DirEntry) -> NodeSet {
        if e.n == SPILLED {
            spill.get(line).expect("spilled reader set missing")
        } else {
            let mut s = NodeSet::empty();
            for &id in &e.inline[..e.n as usize] {
                s.insert(id);
            }
            s
        }
    }

    /// Add a reader (idempotent, set semantics), spilling on overflow.
    fn entry_add_reader(spill: &mut OpenTable<NodeSet>, line: u64, e: &mut DirEntry, p: u16) {
        if e.n == SPILLED {
            spill
                .get_mut(line)
                .expect("spilled reader set missing")
                .insert(p);
            return;
        }
        let n = e.n as usize;
        if e.inline[..n].contains(&p) {
            return;
        }
        if n < INLINE_READERS {
            e.inline[n] = p;
            e.n += 1;
        } else {
            let mut s = NodeSet::empty();
            for &id in &e.inline {
                s.insert(id);
            }
            s.insert(p);
            e.n = SPILLED;
            spill.insert(line, s);
        }
    }

    /// Drop a reader. Inline removal is a swap-remove — order is
    /// immaterial, the set is materialized through `NodeSet`.
    fn entry_remove_reader(spill: &mut OpenTable<NodeSet>, line: u64, e: &mut DirEntry, p: u16) {
        if e.n == SPILLED {
            spill
                .get_mut(line)
                .expect("spilled reader set missing")
                .remove(p);
            return;
        }
        let n = e.n as usize;
        if let Some(i) = e.inline[..n].iter().position(|&id| id == p) {
            e.inline[i] = e.inline[n - 1];
            e.n -= 1;
        }
    }

    /// Materialize and simultaneously clear an entry's reader set.
    fn entry_take_readers(spill: &mut OpenTable<NodeSet>, line: u64, e: &mut DirEntry) -> NodeSet {
        let readers = if e.n == SPILLED {
            spill.remove(line).expect("spilled reader set missing")
        } else {
            let mut s = NodeSet::empty();
            for &id in &e.inline[..e.n as usize] {
                s.insert(id);
            }
            s
        };
        e.n = 0;
        readers
    }

    /// Pull the structures a `proc` access of `line` will probe — its FLC
    /// slot, its SLC set and the directory slot — toward the host L1.
    /// Performance hint only; no simulated state changes.
    #[inline]
    pub fn prefetch(&self, proc: ProcId, line: LineNum) {
        let p = proc.as_usize();
        self.flcs[p].prefetch(line);
        self.slcs[p].prefetch(line);
        self.dir.prefetch(line.0);
    }

    pub fn geometry(&self) -> &MachineGeometry {
        &self.geom
    }

    /// Apply all batched event counts to the global totals; required
    /// before reading [`Self::traffic`] / [`Self::counters`].
    #[inline]
    pub fn flush_stats(&mut self) {
        self.sink.flush();
    }

    /// Forward every event straight to the global counters instead of
    /// batching (reference mode for the batching differential tests).
    #[doc(hidden)]
    pub fn set_direct_stats(&mut self, on: bool) {
        self.sink.set_direct(on);
    }

    /// Interconnect traffic, decomposed as on the COMA bus. Requires a
    /// preceding [`Self::flush_stats`] (debug-asserted).
    #[inline]
    pub fn traffic(&self) -> &Traffic {
        &self.sink.sink().traffic
    }

    /// Protocol event counters (only `remote_writebacks` is ever nonzero
    /// for the baselines); same flush requirement as [`Self::traffic`].
    #[inline]
    pub fn counters(&self) -> &ProtocolCounters {
        &self.sink.sink().counters
    }

    /// Dirty write-backs to a remote home (NUMA's replacement analogue).
    #[inline]
    pub fn remote_writebacks(&mut self) -> u64 {
        self.sink.flush();
        self.sink.sink().counters.remote_writebacks
    }

    /// Home node of a line (first touch allocates the page).
    #[inline]
    fn home_of(&mut self, line: LineNum, toucher: NodeId) -> NodeId {
        let page = line.0 >> PAGE_LINES_SHIFT;
        self.pages.home_of(page, toucher)
    }

    /// Level at which the home's DRAM answers for this node.
    fn supply_level(&self, home: NodeId, me: NodeId) -> Level {
        match self.kind {
            BaselineKind::Uma => Level::Remote,
            BaselineKind::Numa => {
                if home == me {
                    Level::Am
                } else {
                    Level::Remote
                }
            }
        }
    }

    /// Handle the SLC fill bookkeeping (possible dirty victim).
    fn fill_slc(&mut self, p: usize, line: LineNum, state: SlcState, out: &mut Outcome) {
        if let Some((victim, st)) = self.slcs[p].insert(line, state) {
            self.flcs[p].invalidate(victim);
            // Remove from the directory.
            let me = ProcId(p as u16);
            if let Some(e) = self.dir.get_mut(victim.0) {
                Self::entry_remove_reader(&mut self.spill, victim.0, e, p as u16);
                if e.writer() == Some(me) {
                    e.set_writer(None);
                }
            }
            if st == SlcState::Modified {
                // Dirty write-back to the home.
                let node = self.node_of(me);
                let home = self.home_of(victim, node);
                if self.supply_level(home, node) == Level::Remote {
                    self.sink.record(ProtocolEvent::RemoteWriteback);
                }
                out.slc_writeback = true;
            }
        }
    }

    /// Invalidate every cached copy except processor `keep`.
    fn invalidate_others(&mut self, line: LineNum, keep: ProcId) -> bool {
        let Some(e) = self.dir.get_mut(line.0) else {
            return false;
        };
        let mut had_any = false;
        let readers = Self::entry_take_readers(&mut self.spill, line.0, e);
        let writer = e.writer();
        e.set_writer(None);
        for p in readers.iter() {
            if p != keep.0 {
                self.slcs[p as usize].invalidate(line);
                self.flcs[p as usize].invalidate(line);
                had_any = true;
            }
        }
        if let Some(w) = writer {
            if w != keep {
                self.slcs[w.as_usize()].invalidate(line);
                self.flcs[w.as_usize()].invalidate(line);
                had_any = true;
            }
        }
        had_any
    }

    /// Processor read.
    pub fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let p = proc.as_usize();
        if self.flcs[p].read_hit(line) {
            return Outcome::at(Level::Flc);
        }
        if self.slcs[p].lookup(line).is_valid() {
            let writable = self.slcs[p].peek(line) == SlcState::Modified;
            self.flcs[p].fill(line, writable);
            return Outcome::at(Level::Slc);
        }

        let me = self.node_of(proc);
        let home = self.home_of(line, me);
        // If some processor holds it dirty, it is written back through the
        // home first (we charge one remote transfer when the home is far).
        let entry = self.dir.get_or_insert(line.0, DirEntry::default());
        let writer = entry.writer();
        if let Some(w) = writer {
            self.slcs[w.as_usize()].downgrade(line);
            self.flcs[w.as_usize()].downgrade(line);
            let e = self.dir.get_mut(line.0).expect("entry exists");
            e.set_writer(None);
            Self::entry_add_reader(&mut self.spill, line.0, e, w.0);
        }

        let level = self.supply_level(home, me);
        let mut out = Outcome::at(level);
        if level == Level::Remote {
            out.remote_node = Some(home);
            self.sink.record(ProtocolEvent::ReadFill);
        }
        let e = self.dir.get_mut(line.0).expect("entry exists");
        Self::entry_add_reader(&mut self.spill, line.0, e, proc.0);
        self.fill_slc(p, line, SlcState::Shared, &mut out);
        self.flcs[p].fill(line, false);
        out
    }

    /// Processor write (ownership acquisition).
    pub fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let p = proc.as_usize();
        if self.flcs[p].write_hit(line) {
            return Outcome::at(Level::Flc);
        }
        if self.slcs[p].lookup(line) == SlcState::Modified {
            self.flcs[p].fill(line, true);
            return Outcome::at(Level::Slc);
        }

        let me = self.node_of(proc);
        let home = self.home_of(line, me);
        let had_copy = self.slcs[p].peek(line) == SlcState::Shared;
        self.dir.get_or_insert(line.0, DirEntry::default());
        let had_others = self.invalidate_others(line, proc);

        let level = self.supply_level(home, me);
        let mut out = Outcome::at(level);
        if level == Level::Remote {
            out.remote_node = Some(home);
            if had_copy {
                out.upgrade = true;
                self.sink.record(ProtocolEvent::Upgrade);
            } else {
                out.read_exclusive = true;
                self.sink.record(ProtocolEvent::ReadExclusive);
            }
        } else if had_others {
            // Local home but other caches invalidated: command traffic.
            self.sink.record(ProtocolEvent::Upgrade);
            out.upgrade = true;
        }
        let e = self.dir.get_mut(line.0).expect("entry exists");
        e.set_writer(Some(proc));
        Self::entry_take_readers(&mut self.spill, line.0, e);
        self.fill_slc(p, line, SlcState::Modified, &mut out);
        self.flcs[p].fill(line, true);
        out
    }

    /// Directory ↔ SLC consistency check (tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (l, e) in self.dir.iter() {
            let line = LineNum(l);
            let readers = Self::entry_readers(&self.spill, l, e);
            if let Some(w) = e.writer() {
                if self.slcs[w.as_usize()].peek(line) != SlcState::Modified {
                    return Err(format!("{line:?}: writer {w} not Modified"));
                }
                let mut others = readers;
                others.remove(w.0);
                if !others.is_empty() {
                    return Err(format!("{line:?}: writer plus readers"));
                }
            }
            for p in readers.iter() {
                if !self.slcs[p as usize].peek(line).is_valid() {
                    return Err(format!("{line:?}: reader P{p} has no copy"));
                }
            }
        }
        // Every valid SLC line is registered.
        for (p, slc) in self.slcs.iter().enumerate() {
            for (line, st) in slc.lines() {
                let e = self
                    .dir
                    .get(line.0)
                    .ok_or_else(|| format!("{line:?}: cached by P{p} but not in dir"))?;
                match st {
                    SlcState::Modified => {
                        if e.writer() != Some(ProcId(p as u16)) {
                            return Err(format!(
                                "{line:?}: P{p} M but dir writer {:?}",
                                e.writer()
                            ));
                        }
                    }
                    SlcState::Shared => {
                        if !Self::entry_readers(&self.spill, line.0, &e).contains(p as u16) {
                            return Err(format!("{line:?}: P{p} S but not a dir reader"));
                        }
                    }
                    SlcState::Invalid => unreachable!(),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_types::{MachineConfig, MemoryPressure};

    fn engine(kind: BaselineKind) -> BaselineEngine {
        let cfg = MachineConfig {
            n_procs: 4,
            procs_per_node: 1,
            memory_pressure: MemoryPressure::MP_50,
            ..Default::default()
        };
        BaselineEngine::new(cfg.geometry(64 * 1024).unwrap(), kind)
    }

    #[test]
    fn numa_local_home_read_is_node_local() {
        let mut e = engine(BaselineKind::Numa);
        let out = e.read(ProcId(0), LineNum(5));
        assert_eq!(out.level, Level::Am);
        // Second read: FLC.
        assert_eq!(e.read(ProcId(0), LineNum(5)).level, Level::Flc);
        e.check_invariants().unwrap();
    }

    #[test]
    fn numa_remote_home_read_crosses_interconnect_every_refill() {
        let mut e = engine(BaselineKind::Numa);
        e.read(ProcId(0), LineNum(5)); // home = node 0
        let out = e.read(ProcId(2), LineNum(5));
        assert_eq!(out.level, Level::Remote);
        assert_eq!(out.remote_node, Some(NodeId(0)));
        e.flush_stats();
        assert_eq!(e.traffic().read_txns, 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn uma_everything_is_remote() {
        let mut e = engine(BaselineKind::Uma);
        assert_eq!(e.read(ProcId(0), LineNum(5)).level, Level::Remote);
        // Cached after the fill.
        assert_eq!(e.read(ProcId(0), LineNum(5)).level, Level::Flc);
        e.check_invariants().unwrap();
    }

    #[test]
    fn write_invalidates_all_readers() {
        let mut e = engine(BaselineKind::Numa);
        for p in 0..4 {
            e.read(ProcId(p), LineNum(7));
        }
        let out = e.write(ProcId(1), LineNum(7));
        assert!(out.upgrade);
        // The home (node 0, first toucher) re-reads from its own DRAM;
        // everyone else crosses the interconnect again.
        assert_eq!(e.read(ProcId(0), LineNum(7)).level, Level::Am);
        for p in [2u16, 3] {
            assert_eq!(e.read(ProcId(p), LineNum(7)).level, Level::Remote);
        }
        e.check_invariants().unwrap();
    }

    #[test]
    fn dirty_read_downgrades_writer() {
        let mut e = engine(BaselineKind::Numa);
        e.write(ProcId(0), LineNum(3));
        let out = e.read(ProcId(2), LineNum(3));
        assert_eq!(out.level, Level::Remote);
        e.check_invariants().unwrap();
        // Writer still has a clean copy.
        assert_eq!(e.read(ProcId(0), LineNum(3)).level, Level::Flc);
    }

    #[test]
    fn dirty_eviction_counts_remote_writeback() {
        let mut e = engine(BaselineKind::Numa);
        // Proc 1 writes lines homed at node 0 until its SLC evicts dirty.
        e.read(ProcId(0), LineNum(0)); // page 0 homed at node 0
        let slc_lines = engine(BaselineKind::Numa).geometry().slc_lines();
        for k in 0..slc_lines + 8 {
            e.write(ProcId(1), LineNum(k % 64)); // stay within page 0
        }
        // Force conflict evictions with more distinct lines of page 0…
        // page has 64 lines; SLC has slc_lines ≥ 1 sets… write more pages
        // homed elsewhere? Simply assert invariants and that some remote
        // writeback happened if capacity was exceeded.
        e.check_invariants().unwrap();
        if slc_lines < 64 {
            assert!(e.remote_writebacks() > 0);
        }
    }

    #[test]
    fn determinism() {
        let run = |kind| {
            let mut e = engine(kind);
            let mut rng = Rng64ForTest::new(5);
            for _ in 0..3000 {
                let p = ProcId(rng.next() % 4);
                let l = LineNum((rng.next() % 512) as u64);
                if rng.next().is_multiple_of(3) {
                    e.write(p, l);
                } else {
                    e.read(p, l);
                }
            }
            e.check_invariants().unwrap();
            e.flush_stats();
            *e.traffic()
        };
        assert_eq!(run(BaselineKind::Numa), run(BaselineKind::Numa));
        assert_eq!(run(BaselineKind::Uma), run(BaselineKind::Uma));
    }

    /// Tiny local RNG to avoid a dev-dependency here.
    struct Rng64ForTest(u64);
    impl Rng64ForTest {
        fn new(seed: u64) -> Self {
            Rng64ForTest(seed)
        }
        fn next(&mut self) -> u16 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 33) as u16
        }
    }
}
