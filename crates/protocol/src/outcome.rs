//! What one access did — the interface between the functional protocol
//! and the timing model in `coma-sim`.

use coma_stats::Level;
use coma_types::NodeId;

/// The effects of a single read or write walked through the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// The level that satisfied the access (read: supplied data;
    /// write: granted ownership). Determines the latency path.
    pub level: Level,
    /// Index *within the node* of a peer SLC that supplied dirty data.
    pub peer_slc: Option<usize>,
    /// Remote node that supplied data / held the responsible copy.
    pub remote_node: Option<NodeId>,
    /// A global invalidation broadcast happened (write upgrade).
    pub upgrade: bool,
    /// Farthest node (by tree distance) whose copy an upgrade
    /// invalidated, answered from the directory-level presence masks:
    /// the invalidation must climb to the LCA of writer and this node.
    /// `None` on flat machines (the broadcast reaches everyone anyway).
    pub inval_scope: Option<NodeId>,
    /// A read-exclusive data fetch happened (write miss).
    pub read_exclusive: bool,
    /// The local AM fill displaced a Shared replica (silent drop).
    pub dropped_shared: bool,
    /// A responsible copy was injected to this node (extra bus + remote
    /// DRAM work, off the requester's critical path).
    pub injected_to: Option<NodeId>,
    /// The injection resolved as an ownership migration to a replica.
    pub ownership_migrated: bool,
    /// The replica that took over responsibility in an ownership
    /// migration (routes the off-critical-path command).
    pub migrated_to: Option<NodeId>,
    /// An injection found no receiver: OS page-out (large penalty).
    pub pageout: bool,
    /// This access re-materialized a previously paged-out line (page-in).
    pub pagein: bool,
    /// The SLC fill evicted a Modified line (write-back into the AM).
    pub slc_writeback: bool,
    /// The access loaded a line into the local AM (DRAM fill occupancy).
    pub am_filled: bool,
}

impl Outcome {
    /// A fresh outcome at the given level with no side effects.
    pub fn at(level: Level) -> Self {
        Outcome {
            level,
            peer_slc: None,
            remote_node: None,
            upgrade: false,
            inval_scope: None,
            read_exclusive: false,
            dropped_shared: false,
            injected_to: None,
            ownership_migrated: false,
            migrated_to: None,
            pageout: false,
            pagein: false,
            slc_writeback: false,
            am_filled: false,
        }
    }

    /// Did the access cross the global bus at all?
    pub fn used_bus(&self) -> bool {
        self.level == Level::Remote
            || self.upgrade
            || self.read_exclusive
            || self.injected_to.is_some()
            || self.ownership_migrated
            || self.pageout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_hit_does_not_use_bus() {
        assert!(!Outcome::at(Level::Flc).used_bus());
        assert!(!Outcome::at(Level::Am).used_bus());
    }

    #[test]
    fn remote_and_side_effects_use_bus() {
        assert!(Outcome::at(Level::Remote).used_bus());
        let mut o = Outcome::at(Level::Am);
        o.injected_to = Some(NodeId(3));
        assert!(o.used_bus());
        let mut u = Outcome::at(Level::Am);
        u.upgrade = true;
        assert!(u.used_bus());
    }
}
