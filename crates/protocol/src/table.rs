//! Flat hot-path containers for the coherence engines.
//!
//! Every simulated miss probes the line directory, the page table and the
//! paged-out set; with `std::collections::HashMap` each probe pays SipHash
//! or (with a custom hasher) still a bucket indirection per access. The
//! two structures here are built for the access pattern the simulator
//! actually has:
//!
//! * [`OpenTable`] — open addressing with linear probing over one flat
//!   slot array, power-of-two capacity, a Fibonacci-multiply hash of the
//!   already well-distributed `u64` keys, and backward-shift deletion (no
//!   tombstones, so load never rots). A lookup is one multiply, one shift
//!   and a short contiguous scan.
//! * [`PageHomes`] — the first-touch page table. The paper allocates
//!   pages *consecutively* on demand (§3), so page numbers are dense from
//!   zero and the map degenerates into a plain array indexed by page
//!   number; hashing it at all is wasted work.

use coma_types::NodeId;

/// Sentinel stored key marking an empty slot.
const EMPTY: u32 = u32::MAX;

/// Largest insertable key. Keys are stored narrowed to `u32`: real keys
/// are line or page numbers bounded by the applications' working sets,
/// far below `u32::MAX`, and the narrow key shrinks every slot — the
/// line directory is DRAM-resident at working-set scale, so slot bytes
/// translate directly into host cache and TLB reach.
const MAX_KEY: u64 = (u32::MAX - 1) as u64;

/// Knuth's multiplicative constant (2^64 / φ).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// One packed table slot: key and value side by side, so a probe that
/// finds its key has already pulled the value into cache (split key/value
/// arrays cost a second miss per hit on tables too big for the host LLC,
/// which the line directory always is).
#[derive(Clone, Copy, Debug)]
struct TableSlot<V> {
    key: u32,
    val: V,
}

/// Stored key a probe compares against. Keys beyond [`MAX_KEY`] cannot be
/// present (insertion rejects them), so their probes must simply miss —
/// map them to the unmatchable sentinel instead of letting the narrowing
/// conversion alias a small resident key.
#[inline]
fn probe_key(key: u64) -> u32 {
    if key <= MAX_KEY {
        key as u32
    } else {
        EMPTY
    }
}

/// An open-addressing hash table from `u64` keys to copyable values.
#[derive(Clone, Debug)]
pub struct OpenTable<V> {
    slots: Vec<TableSlot<V>>,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
    /// Right-shift turning a 64-bit hash into a slot index.
    shift: u32,
    len: usize,
}

impl<V: Copy + Default> Default for OpenTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> OpenTable<V> {
    pub fn new() -> Self {
        Self::with_capacity_pow2(64)
    }

    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        OpenTable {
            slots: vec![
                TableSlot {
                    key: EMPTY,
                    val: V::default()
                };
                cap
            ],
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
            len: 0,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let needle = probe_key(key);
        if needle == EMPTY {
            return None; // out-of-range key: cannot be resident
        }
        let mut i = self.slot_of(key);
        loop {
            let k = self.slots[i].key;
            if k == needle {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Pull `key`'s home slot toward the host L1 ahead of a probe
    /// (performance hint only; the linear-probe tail is contiguous and
    /// rides the hardware prefetcher).
    #[inline]
    pub fn prefetch(&self, key: u64) {
        coma_types::prefetch_read(&self.slots[self.slot_of(key)]);
    }

    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        self.find(key).map(|i| self.slots[i].val)
    }

    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.slots[i].val)
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        assert!(key <= MAX_KEY, "key exceeds u32 storage range");
        let needle = key as u32;
        self.reserve_one();
        let mut i = self.slot_of(key);
        loop {
            let k = self.slots[i].key;
            if k == needle {
                return Some(std::mem::replace(&mut self.slots[i].val, val));
            }
            if k == EMPTY {
                self.slots[i] = TableSlot { key: needle, val };
                self.len += 1;
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Value for `key`, inserting `default` first if absent.
    pub fn get_or_insert(&mut self, key: u64, default: V) -> &mut V {
        assert!(key <= MAX_KEY, "key exceeds u32 storage range");
        let needle = key as u32;
        self.reserve_one();
        let mut i = self.slot_of(key);
        loop {
            let k = self.slots[i].key;
            if k == needle {
                return &mut self.slots[i].val;
            }
            if k == EMPTY {
                self.slots[i] = TableSlot {
                    key: needle,
                    val: default,
                };
                self.len += 1;
                return &mut self.slots[i].val;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Remove `key`, returning its value if present. Uses backward-shift
    /// deletion: later entries of the probe chain are moved up so that no
    /// tombstone is ever left behind.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.find(key)?;
        let out = self.slots[i].val;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            if self.slots[j].key == EMPTY {
                break;
            }
            // `slots[j]` may back-fill the hole at `i` only if its home
            // slot does not lie cyclically within (i, j] — otherwise the
            // move would break its own probe chain.
            let home = self.slot_of(self.slots[j].key as u64);
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.slots[i] = self.slots[j];
                i = j;
            }
        }
        self.slots[i].key = EMPTY;
        self.len -= 1;
        Some(out)
    }

    /// Iterate all entries (diagnostics; order is unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter(|s| s.key != EMPTY)
            .map(|s| (s.key as u64, &s.val))
    }

    /// Grow (×2) when the next insert would push load past 1/2. Linear
    /// probing degrades sharply for *unsuccessful* probes as load rises,
    /// and the directory is probed with cold (absent) lines constantly —
    /// buying short miss chains with memory is the right trade here.
    #[inline]
    fn reserve_one(&mut self) {
        if (self.len + 1) * 2 > self.mask + 1 {
            self.grow();
        }
    }

    #[cold]
    fn grow(&mut self) {
        let mut bigger = Self::with_capacity_pow2((self.mask + 1) * 2);
        for slot in &self.slots {
            if slot.key != EMPTY {
                let mut i = bigger.slot_of(slot.key as u64);
                while bigger.slots[i].key != EMPTY {
                    i = (i + 1) & bigger.mask;
                }
                bigger.slots[i] = *slot;
                bigger.len += 1;
            }
        }
        *self = bigger;
    }
}

/// The first-touch page table: page number → home node, as a flat array.
#[derive(Clone, Debug, Default)]
pub struct PageHomes {
    /// Home node per page; `u16::MAX` marks an untouched page.
    homes: Vec<u16>,
}

const UNTOUCHED: u16 = u16::MAX;

impl PageHomes {
    pub fn new() -> Self {
        PageHomes::default()
    }

    /// Home node of `page`, allocating it to `toucher` on first touch.
    #[inline]
    pub fn home_of(&mut self, page: u64, toucher: NodeId) -> NodeId {
        let p = page as usize;
        if p >= self.homes.len() {
            // Amortized growth; pages are touched roughly consecutively.
            self.homes
                .resize((p + 1).max(self.homes.len() * 2), UNTOUCHED);
        }
        let h = &mut self.homes[p];
        if *h == UNTOUCHED {
            *h = toucher.0;
        }
        NodeId(*h)
    }

    /// Number of allocated pages.
    pub fn allocated(&self) -> usize {
        self.homes.iter().filter(|&&h| h != UNTOUCHED).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut t: OpenTable<u32> = OpenTable::new();
        assert_eq!(t.insert(5, 10), None);
        assert_eq!(t.get(5), Some(10));
        assert_eq!(t.insert(5, 11), Some(10));
        assert_eq!(t.get(5), Some(11));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(6), None);
    }

    #[test]
    fn get_or_insert_keeps_existing() {
        let mut t: OpenTable<u32> = OpenTable::new();
        *t.get_or_insert(9, 1) += 5;
        assert_eq!(*t.get_or_insert(9, 100), 6);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_with_backward_shift_keeps_chains_probeable() {
        let mut t: OpenTable<u64> = OpenTable::new();
        // Force a long collision chain by saturating a small table.
        for k in 0..48u64 {
            t.insert(k, k * 2);
        }
        // Remove every third key and verify the rest stay findable.
        for k in (0..48u64).step_by(3) {
            assert_eq!(t.remove(k), Some(k * 2));
            assert_eq!(t.remove(k), None);
        }
        for k in 0..48u64 {
            let want = if k % 3 == 0 { None } else { Some(k * 2) };
            assert_eq!(t.get(k), want, "key {k}");
        }
        assert_eq!(t.len(), 32);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t: OpenTable<u64> = OpenTable::new();
        for k in 0..10_000u64 {
            t.insert(k, !k);
        }
        assert_eq!(t.len(), 10_000);
        for k in (0..10_000u64).step_by(997) {
            assert_eq!(t.get(k), Some(!k));
        }
    }

    #[test]
    fn unit_value_acts_as_set() {
        let mut s: OpenTable<()> = OpenTable::new();
        assert_eq!(s.insert(3, ()), None);
        assert!(s.contains(3));
        assert_eq!(s.remove(3), Some(()));
        assert!(!s.contains(3));
    }

    #[test]
    fn iter_yields_all_live_entries() {
        let mut t: OpenTable<u8> = OpenTable::new();
        for k in [2u64, 7, 11] {
            t.insert(k, k as u8);
        }
        t.remove(7);
        let mut got: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        got.sort_unstable();
        assert_eq!(got, vec![2, 11]);
    }

    #[test]
    fn out_of_range_key_probes_miss_without_aliasing() {
        let mut t: OpenTable<u8> = OpenTable::new();
        t.insert(7, 1);
        // (2^32 + 7) narrows to 7 — the guard must keep it a miss.
        assert_eq!(t.get((1u64 << 32) + 7), None);
        assert!(!t.contains((1u64 << 32) + 7));
        assert_eq!(t.remove(u64::MAX), None);
        assert_eq!(t.get(7), Some(1));
    }

    #[test]
    #[should_panic(expected = "u32 storage range")]
    fn oversized_key_insert_panics() {
        OpenTable::<u8>::new().insert(u64::MAX - 1, 1);
    }

    #[test]
    fn page_homes_first_touch_wins() {
        let mut p = PageHomes::new();
        assert_eq!(p.home_of(0, NodeId(3)), NodeId(3));
        assert_eq!(p.home_of(0, NodeId(5)), NodeId(3));
        assert_eq!(p.home_of(700, NodeId(1)), NodeId(1));
        assert_eq!(p.allocated(), 2);
    }
}
