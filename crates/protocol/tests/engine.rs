//! Behavioral tests of the coherence engine through its public API:
//! read/write outcomes, replacement (injection, migration, page-out),
//! inclusion modes and the cross-structure invariants.

use coma_cache::{AcceptPolicy, AmState, VictimPolicy};
use coma_protocol::CoherenceEngine;
use coma_stats::Level;
use coma_types::{LineNum, MachineConfig, MemoryPressure, NodeId, ProcId};

/// Small machine: 4 procs; ws 64 KiB.
fn engine(ppn: usize, mp: MemoryPressure) -> CoherenceEngine {
    let cfg = MachineConfig {
        n_procs: 4,
        procs_per_node: ppn,
        memory_pressure: mp,
        ..Default::default()
    };
    let geom = cfg.geometry(64 * 1024).unwrap();
    CoherenceEngine::new(
        geom,
        VictimPolicy::SharedFirst,
        AcceptPolicy::InvalidThenShared,
        true,
    )
}

#[test]
fn cold_read_allocates_locally() {
    let mut e = engine(1, MemoryPressure::MP_50);
    let out = e.read(ProcId(0), LineNum(5));
    assert_eq!(out.level, Level::Am);
    e.flush_stats();
    assert_eq!(e.counters().cold_allocs, 1);
    assert_eq!(e.traffic().total_txns(), 0);
    e.check_invariants().unwrap();
    // Second read hits the FLC.
    assert_eq!(e.read(ProcId(0), LineNum(5)).level, Level::Flc);
}

#[test]
fn remote_read_creates_replica_and_owner_downgrade() {
    let mut e = engine(1, MemoryPressure::MP_50);
    e.read(ProcId(0), LineNum(5)); // cold alloc at node 0 (Exclusive)
    let out = e.read(ProcId(2), LineNum(5));
    assert_eq!(out.level, Level::Remote);
    assert_eq!(out.remote_node, Some(NodeId(0)));
    assert_eq!(e.node(0).am.state(LineNum(5)), AmState::Owner);
    assert_eq!(e.node(2).am.state(LineNum(5)), AmState::Shared);
    e.flush_stats();
    assert_eq!(e.traffic().read_txns, 1);
    e.check_invariants().unwrap();
}

#[test]
fn same_page_second_line_fetched_from_home() {
    let mut e = engine(1, MemoryPressure::MP_50);
    e.read(ProcId(0), LineNum(0)); // page 0 → home node 0
                                   // Proc 1 touches another line of page 0: remote materialization.
    let out = e.read(ProcId(1), LineNum(1));
    assert_eq!(out.level, Level::Remote);
    assert_eq!(out.remote_node, Some(NodeId(0)));
    assert_eq!(e.node(0).am.state(LineNum(1)), AmState::Owner);
    assert_eq!(e.node(1).am.state(LineNum(1)), AmState::Shared);
    e.check_invariants().unwrap();
}

#[test]
fn clustering_prefetch_effect() {
    // Two procs in the SAME node: the second reader hits the AM.
    let mut e = engine(2, MemoryPressure::MP_50);
    e.read(ProcId(2), LineNum(64)); // proc 2 = node 1; page 1 home = node 1
    let out = e.read(ProcId(3), LineNum(64)); // same node
    assert_eq!(out.level, Level::Am, "shared AM should satisfy peer read");
    e.check_invariants().unwrap();
}

#[test]
fn write_to_shared_upgrades_and_invalidates() {
    let mut e = engine(1, MemoryPressure::MP_50);
    e.read(ProcId(0), LineNum(5));
    e.read(ProcId(1), LineNum(5));
    e.read(ProcId(2), LineNum(5));
    let out = e.write(ProcId(1), LineNum(5));
    assert_eq!(out.level, Level::Remote);
    assert!(out.upgrade);
    assert_eq!(e.node(1).am.state(LineNum(5)), AmState::Exclusive);
    assert_eq!(e.node(0).am.state(LineNum(5)), AmState::Invalid);
    assert_eq!(e.node(2).am.state(LineNum(5)), AmState::Invalid);
    e.flush_stats();
    assert_eq!(e.traffic().write_txns, 1);
    e.check_invariants().unwrap();
}

#[test]
fn write_miss_is_read_exclusive() {
    let mut e = engine(1, MemoryPressure::MP_50);
    e.read(ProcId(0), LineNum(5));
    let out = e.write(ProcId(3), LineNum(5));
    assert!(out.read_exclusive);
    assert_eq!(out.remote_node, Some(NodeId(0)));
    assert_eq!(e.node(3).am.state(LineNum(5)), AmState::Exclusive);
    assert_eq!(e.node(0).am.state(LineNum(5)), AmState::Invalid);
    e.check_invariants().unwrap();
}

#[test]
fn local_write_after_own_read_is_cheap() {
    let mut e = engine(1, MemoryPressure::MP_50);
    e.read(ProcId(0), LineNum(5)); // Exclusive locally
    let out = e.write(ProcId(0), LineNum(5));
    assert_eq!(out.level, Level::Am);
    assert!(!out.used_bus());
    // And a further write is an FLC/SLC hit.
    assert_eq!(e.write(ProcId(0), LineNum(5)).level, Level::Flc);
    e.check_invariants().unwrap();
}

#[test]
fn dirty_peer_supplies_within_node() {
    let mut e = engine(2, MemoryPressure::MP_50);
    e.write(ProcId(0), LineNum(7)); // proc 0 (node 0) owns dirty
    let out = e.read(ProcId(1), LineNum(7)); // same node
    assert_eq!(out.level, Level::PeerSlc);
    assert_eq!(out.peer_slc, Some(0));
    e.check_invariants().unwrap();
}

#[test]
fn barrier_style_sharing_and_invalidation_storm() {
    let mut e = engine(1, MemoryPressure::MP_50);
    let flag = LineNum(100);
    e.write(ProcId(0), flag);
    for p in 1..4 {
        assert_eq!(e.read(ProcId(p), flag).level, Level::Remote);
    }
    // Releaser writes again: all replicas invalidated.
    let out = e.write(ProcId(0), flag);
    assert!(out.upgrade);
    for p in 1..4u16 {
        assert_eq!(e.read(ProcId(p), flag).level, Level::Remote);
    }
    e.check_invariants().unwrap();
}

/// Tiny machine with a handful of AM slots per node to force
/// replacements: 4 single-processor nodes at 87.5% memory pressure with
/// a working set sized so each AM holds few sets.
fn tiny_engine() -> CoherenceEngine {
    let cfg = MachineConfig {
        n_procs: 4,
        procs_per_node: 1,
        memory_pressure: MemoryPressure::MP_87,
        slc_ws_ratio: 128,
        ..Default::default()
    };
    // ws = 128 KiB → total AM ≈ 146 KiB → 36.5 KiB/node ≈ 585 lines.
    let geom = cfg.geometry(128 * 1024).unwrap();
    CoherenceEngine::new(
        geom,
        VictimPolicy::SharedFirst,
        AcceptPolicy::InvalidThenShared,
        true,
    )
}

#[test]
fn replacement_pressure_triggers_injections_not_losses() {
    let mut e = tiny_engine();
    let total_lines = 128 * 1024 / 64; // 2048 lines, AM total ~2340
                                       // One processor writes the whole working set: its node AM (~585
                                       // lines) must inject the overflow to the other nodes.
    for l in 0..total_lines {
        e.write(ProcId(0), LineNum(l));
    }
    e.flush_stats();
    assert!(e.counters().injections > 0, "no injections under pressure");
    e.check_invariants().unwrap();
    // Every line is still live somewhere (no pageouts needed: the
    // machine has capacity for the whole working set).
    assert_eq!(e.counters().pageouts, 0);
    assert_eq!(e.directory().len(), total_lines as usize);
}

#[test]
fn ownership_migrates_to_replica_when_possible() {
    let mut e = tiny_engine();
    // Make a line widely shared, then force the owner to evict it by
    // filling the owner's AM set with conflicting writes.
    let line = LineNum(0);
    e.read(ProcId(0), line); // owner at node 0
    e.read(ProcId(1), line); // replica at node 1
    let sets = e.geometry().am_sets;
    let assoc = e.geometry().am_assoc as u64;
    // Touch enough conflicting lines in node 0 to evict line 0.
    for k in 1..=assoc + 1 {
        e.write(ProcId(0), LineNum(k * sets));
    }
    e.flush_stats();
    assert!(
        e.counters().ownership_migrations > 0,
        "expected ownership migration"
    );
    // The line must still be live, now owned by node 1.
    let info = e.directory().get(line).expect("line lost");
    assert_eq!(info.owner, NodeId(1));
    e.check_invariants().unwrap();
}

#[test]
fn census_tracks_states() {
    let mut e = engine(1, MemoryPressure::MP_50);
    e.read(ProcId(0), LineNum(1));
    e.read(ProcId(1), LineNum(1));
    e.write(ProcId(2), LineNum(2));
    let (s, o, ex) = e.am_census();
    assert_eq!(s, 1);
    assert_eq!(o, 1);
    assert_eq!(ex, 1);
}

#[test]
fn determinism() {
    let run = || {
        let mut e = engine(2, MemoryPressure::MP_87);
        let mut rng = coma_types::Rng64::new(99);
        for _ in 0..5_000 {
            let p = ProcId(rng.below(4) as u16);
            let l = LineNum(rng.below(1024));
            if rng.chance(0.3) {
                e.write(p, l);
            } else {
                e.read(p, l);
            }
        }
        e.flush_stats();
        (*e.traffic(), *e.counters())
    };
    assert_eq!(run(), run());
}

fn non_inclusive_engine(mp: MemoryPressure) -> CoherenceEngine {
    let cfg = MachineConfig {
        n_procs: 4,
        procs_per_node: 1,
        memory_pressure: mp,
        ..Default::default()
    };
    let geom = cfg.geometry(128 * 1024).unwrap();
    CoherenceEngine::with_inclusion(
        geom,
        VictimPolicy::SharedFirst,
        AcceptPolicy::InvalidThenShared,
        true,
        false,
    )
}

#[test]
fn non_inclusive_slc_copy_survives_am_replacement() {
    let mut e = non_inclusive_engine(MemoryPressure::MP_87);
    let line = LineNum(0);
    e.read(ProcId(0), line); // Exclusive at node 0
    e.read(ProcId(1), line); // Shared replica at node 1 (and its SLC)
                             // Conflict node 1's AM set until the replica is displaced.
    let sets = e.geometry().am_sets;
    let assoc = e.geometry().am_assoc as u64;
    for k in 1..=assoc + 1 {
        e.write(ProcId(1), LineNum(k * sets));
    }
    // The AM replica is gone but the SLC copy still serves reads.
    assert_eq!(e.node(1).am.state(line), AmState::Invalid);
    let out = e.read(ProcId(1), line);
    assert!(
        matches!(out.level, Level::Slc | Level::Flc),
        "SLC-only copy should satisfy the read, got {:?}",
        out.level
    );
    e.check_invariants().unwrap();
}

#[test]
fn non_inclusive_slc_only_copy_still_gets_invalidated() {
    let mut e = non_inclusive_engine(MemoryPressure::MP_87);
    let line = LineNum(0);
    e.read(ProcId(0), line);
    e.read(ProcId(1), line);
    let sets = e.geometry().am_sets;
    let assoc = e.geometry().am_assoc as u64;
    for k in 1..=assoc + 1 {
        e.write(ProcId(1), LineNum(k * sets));
    }
    // Writer elsewhere must kill the SLC-only replica (coherence!).
    e.write(ProcId(0), line);
    let out = e.read(ProcId(1), line);
    assert_eq!(out.level, Level::Remote, "stale SLC copy served a read");
    e.check_invariants().unwrap();
}

#[test]
fn non_inclusive_invariants_under_storm() {
    let mut e = non_inclusive_engine(MemoryPressure::MP_87);
    let mut rng = coma_types::Rng64::new(17);
    for i in 0..20_000 {
        let p = ProcId(rng.below(4) as u16);
        let l = LineNum(rng.below(1024));
        if rng.chance(0.4) {
            e.write(p, l);
        } else {
            e.read(p, l);
        }
        if i % 2_000 == 0 {
            e.check_invariants().unwrap();
        }
    }
    e.check_invariants().unwrap();
}

#[test]
fn invariants_hold_under_random_storm() {
    let mut e = engine(2, MemoryPressure::MP_87);
    let mut rng = coma_types::Rng64::new(7);
    for i in 0..20_000 {
        let p = ProcId(rng.below(4) as u16);
        let l = LineNum(rng.below(1024));
        if rng.chance(0.4) {
            e.write(p, l);
        } else {
            e.read(p, l);
        }
        if i % 2_000 == 0 {
            e.check_invariants().unwrap();
        }
    }
    e.check_invariants().unwrap();
}
