//! Randomized equivalence test: the open-addressing [`OpenTable`] must be
//! observationally indistinguishable from `std::collections::HashMap` (the
//! implementation it replaced on the hot path) under arbitrary interleaved
//! insert / lookup / remove / in-place-update sequences — including the
//! backward-shift deletion paths that keep probe chains intact.

use coma_protocol::table::OpenTable;
use coma_types::Rng64;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
    /// `get_or_insert` then mutate through the returned reference.
    Bump(u64, u64),
}

fn random_op(rng: &mut Rng64, key_space: u64) -> Op {
    let k = rng.below(key_space);
    match rng.below(4) {
        0 => Op::Insert(k, rng.next_u64()),
        1 => Op::Get(k),
        2 => Op::Remove(k),
        _ => Op::Bump(k, rng.range(1, 100)),
    }
}

#[test]
fn open_table_matches_std_hashmap() {
    let mut rng = Rng64::new(0x7AB1E);
    for case in 0..48 {
        // Small key spaces force dense collision chains and heavy
        // remove/re-insert churn; large ones force growth.
        let key_space = [8, 64, 4096][case % 3];
        let n_ops = rng.range(100, 4000);
        let mut table: OpenTable<u64> = OpenTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..n_ops {
            match random_op(&mut rng, key_space) {
                Op::Insert(k, v) => {
                    assert_eq!(table.insert(k, v), model.insert(k, v));
                }
                Op::Get(k) => {
                    assert_eq!(table.get(k), model.get(&k).copied());
                    assert_eq!(table.contains(k), model.contains_key(&k));
                }
                Op::Remove(k) => {
                    assert_eq!(table.remove(k), model.remove(&k));
                }
                Op::Bump(k, by) => {
                    *table.get_or_insert(k, 0) += by;
                    *model.entry(k).or_insert(0) += by;
                }
            }
            assert_eq!(table.len(), model.len());
        }
        // Full-content agreement at the end of every case.
        let mut got: Vec<(u64, u64)> = table.iter().map(|(k, v)| (k, *v)).collect();
        let mut want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "content diverged (key_space {key_space})");
    }
}
