//! Canonical field enumeration and stable hashing of simulation configs.
//!
//! The sweep engine's result cache (coma-experiments) keys cached runs by
//! a 64-bit hash of everything that determines a simulation's output. For
//! that key to be trustworthy it must
//!
//! * cover **every** sweep-relevant [`SimParams`] field — a field the hash
//!   misses would let a changed configuration be served a stale result;
//! * be **canonical** — independent of the order fields are visited in, so
//!   refactoring the walk (or a struct) can never silently change keys;
//! * be **stable** across runs and platforms — no pointer values, no
//!   `Hash`-trait randomization, fixed-width little-endian encoding.
//!
//! [`walk_params`] destructures `SimParams` and its sub-structs
//! *exhaustively* (no `..` patterns), so adding a field to any of them is
//! a compile error here until the walk is updated — the canonicalizer can
//! not drift out of sync with the config structs. [`FieldWalk::hash`]
//! sorts the named fields before hashing, giving order independence, and
//! uses FNV-1a over the name and the value's little-endian bytes.

use crate::machine::{InterconnectKind, MemoryModel, SimParams};
use coma_cache::{AcceptPolicy, VictimPolicy};
use coma_types::{LatencyConfig, MachineConfig, MemoryPressure, Topology};

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a 64-bit hash state.
#[inline]
pub fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold one `u64` (as little-endian bytes) into an FNV-1a hash state.
#[inline]
pub fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a_bytes(h, &v.to_le_bytes())
}

/// An ordered collection of named scalar fields, hashed canonically.
///
/// Every field is reduced to a `u64` (bools as 0/1, enums as their
/// variant index, `f64`s as their bit pattern). Names must be unique;
/// [`FieldWalk::hash`] asserts this, because a duplicate would make two
/// different configs collide by construction.
#[derive(Clone, Debug, Default)]
pub struct FieldWalk {
    fields: Vec<(&'static str, u64)>,
}

impl FieldWalk {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one field. Insertion order does not affect the hash.
    pub fn field(&mut self, name: &'static str, value: u64) {
        self.fields.push((name, value));
    }

    /// The names of every recorded field (insertion order).
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.fields.iter().map(|(n, _)| *n)
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Canonical hash: fields sorted by name, then FNV-1a over
    /// `name \0 value_le` per field. Panics on duplicate names.
    pub fn hash(&self) -> u64 {
        let mut sorted = self.fields.clone();
        sorted.sort_by_key(|(n, _)| *n);
        for w in sorted.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate canonical field '{}'", w[0].0);
        }
        let mut h = FNV_OFFSET;
        for (name, value) in &sorted {
            h = fnv1a_bytes(h, name.as_bytes());
            h = fnv1a_bytes(h, &[0]);
            h = fnv1a_u64(h, *value);
        }
        h
    }
}

fn victim_code(p: VictimPolicy) -> u64 {
    match p {
        VictimPolicy::SharedFirst => 0,
        VictimPolicy::StrictLru => 1,
    }
}

fn accept_code(p: AcceptPolicy) -> u64 {
    match p {
        AcceptPolicy::InvalidThenShared => 0,
        AcceptPolicy::SharedThenInvalid => 1,
        AcceptPolicy::FirstFit => 2,
    }
}

fn model_code(m: MemoryModel) -> u64 {
    match m {
        MemoryModel::Coma => 0,
        MemoryModel::Numa => 1,
        MemoryModel::Uma => 2,
    }
}

fn interconnect_code(i: InterconnectKind) -> u64 {
    match i {
        InterconnectKind::SnoopingBus => 0,
        InterconnectKind::Ideal => 1,
    }
}

/// Walk every field of `SimParams` into a [`FieldWalk`].
///
/// The destructuring patterns are exhaustive on purpose: a new field in
/// `SimParams`, `MachineConfig` or `LatencyConfig` fails to compile here
/// until it is given a canonical name and encoding.
pub fn walk_params(p: &SimParams) -> FieldWalk {
    let SimParams {
        machine,
        latency,
        victim_policy,
        accept_policy,
        memory_model,
        interconnect,
        audit,
    } = p;
    let MachineConfig {
        n_procs,
        procs_per_node,
        flc_bytes,
        slc_ws_ratio,
        slc_assoc,
        am_assoc,
        memory_pressure,
        write_buffer_entries,
        intra_node_transfers,
        inclusive_hierarchy,
        topology,
    } = machine;
    let MemoryPressure { num, den } = memory_pressure;
    let Topology { n_groups, levels } = topology;
    let LatencyConfig {
        slc_ns,
        slc_occ_ns,
        ctrl_ns,
        ctrl_occ_ns,
        dram_ns,
        dram_occ_ns,
        bus_ns,
        bus_occ_ns,
        remote_extra_ns,
        pageout_ns,
        link_ns,
        link_occ_ns,
    } = latency;

    let mut w = FieldWalk::new();
    w.field("machine.n_procs", *n_procs as u64);
    w.field("machine.procs_per_node", *procs_per_node as u64);
    w.field("machine.flc_bytes", *flc_bytes);
    w.field("machine.slc_ws_ratio", *slc_ws_ratio);
    w.field("machine.slc_assoc", *slc_assoc as u64);
    w.field("machine.am_assoc", *am_assoc as u64);
    w.field("machine.memory_pressure.num", *num as u64);
    w.field("machine.memory_pressure.den", *den as u64);
    w.field("machine.write_buffer_entries", *write_buffer_entries as u64);
    w.field("machine.intra_node_transfers", *intra_node_transfers as u64);
    w.field("machine.inclusive_hierarchy", *inclusive_hierarchy as u64);
    w.field("machine.topology.n_groups", *n_groups as u64);
    w.field("machine.topology.levels", *levels as u64);
    w.field("latency.slc_ns", *slc_ns);
    w.field("latency.slc_occ_ns", *slc_occ_ns);
    w.field("latency.ctrl_ns", *ctrl_ns);
    w.field("latency.ctrl_occ_ns", *ctrl_occ_ns);
    w.field("latency.dram_ns", *dram_ns);
    w.field("latency.dram_occ_ns", *dram_occ_ns);
    w.field("latency.bus_ns", *bus_ns);
    w.field("latency.bus_occ_ns", *bus_occ_ns);
    w.field("latency.remote_extra_ns", *remote_extra_ns);
    w.field("latency.pageout_ns", *pageout_ns);
    w.field("latency.link_ns", *link_ns);
    w.field("latency.link_occ_ns", *link_occ_ns);
    w.field("victim_policy", victim_code(*victim_policy));
    w.field("accept_policy", accept_code(*accept_policy));
    w.field("memory_model", model_code(*memory_model));
    w.field("interconnect", interconnect_code(*interconnect));
    w.field("audit", *audit as u64);
    w
}

/// The canonical 64-bit hash of a `SimParams`.
pub fn config_hash(p: &SimParams) -> u64 {
    walk_params(p).hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = FieldWalk::new();
        a.field("x", 1);
        a.field("y", 2);
        a.field("z", 3);
        let mut b = FieldWalk::new();
        b.field("z", 3);
        b.field("x", 1);
        b.field("y", 2);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn name_and_value_both_matter() {
        let mut a = FieldWalk::new();
        a.field("x", 1);
        let mut b = FieldWalk::new();
        b.field("x", 2);
        let mut c = FieldWalk::new();
        c.field("y", 1);
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    #[should_panic(expected = "duplicate canonical field")]
    fn duplicate_names_are_rejected() {
        let mut w = FieldWalk::new();
        w.field("x", 1);
        w.field("x", 2);
        w.hash();
    }

    #[test]
    fn default_params_hash_is_stable_within_a_run() {
        let p = SimParams::default();
        assert_eq!(config_hash(&p), config_hash(&p.clone()));
    }

    /// Every field the canonicalizer emits must change the hash when the
    /// corresponding `SimParams` field changes — and the mutation list
    /// below must cover exactly the emitted field set, so a new field
    /// cannot land without a sensitivity check.
    #[test]
    fn every_canonical_field_changes_the_hash() {
        type Mutation = (&'static str, fn(&mut SimParams));
        let mutations: &[Mutation] = &[
            ("machine.n_procs", |p| p.machine.n_procs = 8),
            ("machine.procs_per_node", |p| p.machine.procs_per_node = 4),
            ("machine.flc_bytes", |p| p.machine.flc_bytes = 8192),
            ("machine.slc_ws_ratio", |p| p.machine.slc_ws_ratio = 64),
            ("machine.slc_assoc", |p| p.machine.slc_assoc = 8),
            ("machine.am_assoc", |p| p.machine.am_assoc = 8),
            ("machine.memory_pressure.num", |p| {
                p.machine.memory_pressure = MemoryPressure::new(14, 16)
            }),
            ("machine.memory_pressure.den", |p| {
                p.machine.memory_pressure = MemoryPressure::new(8, 32)
            }),
            ("machine.write_buffer_entries", |p| {
                p.machine.write_buffer_entries = 2
            }),
            ("machine.intra_node_transfers", |p| {
                p.machine.intra_node_transfers = false
            }),
            ("machine.inclusive_hierarchy", |p| {
                p.machine.inclusive_hierarchy = false
            }),
            ("machine.topology.n_groups", |p| {
                p.machine.topology = Topology::two_level(4)
            }),
            ("machine.topology.levels", |p| {
                p.machine.topology = Topology {
                    n_groups: 4,
                    levels: 2,
                }
            }),
            ("latency.slc_ns", |p| p.latency.slc_ns += 1),
            ("latency.slc_occ_ns", |p| p.latency.slc_occ_ns += 1),
            ("latency.ctrl_ns", |p| p.latency.ctrl_ns += 1),
            ("latency.ctrl_occ_ns", |p| p.latency.ctrl_occ_ns += 1),
            ("latency.dram_ns", |p| p.latency.dram_ns += 1),
            ("latency.dram_occ_ns", |p| p.latency.dram_occ_ns += 1),
            ("latency.bus_ns", |p| p.latency.bus_ns += 1),
            ("latency.bus_occ_ns", |p| p.latency.bus_occ_ns += 1),
            ("latency.remote_extra_ns", |p| {
                p.latency.remote_extra_ns += 1
            }),
            ("latency.pageout_ns", |p| p.latency.pageout_ns += 1),
            ("latency.link_ns", |p| p.latency.link_ns += 1),
            ("latency.link_occ_ns", |p| p.latency.link_occ_ns += 1),
            ("victim_policy", |p| {
                p.victim_policy = VictimPolicy::StrictLru
            }),
            ("accept_policy", |p| {
                p.accept_policy = AcceptPolicy::FirstFit
            }),
            ("memory_model", |p| p.memory_model = MemoryModel::Numa),
            ("interconnect", |p| p.interconnect = InterconnectKind::Ideal),
            ("audit", |p| p.audit = true),
        ];

        let base = SimParams::default();
        let emitted: HashSet<&str> = walk_params(&base).names().collect();
        let covered: HashSet<&str> = mutations.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            emitted, covered,
            "mutation list out of sync with the canonical field walk"
        );

        let h0 = config_hash(&base);
        for (name, mutate) in mutations {
            let mut p = base.clone();
            mutate(&mut p);
            assert_ne!(
                config_hash(&p),
                h0,
                "field '{name}' did not change the hash"
            );
        }
    }

    /// The hash must distinguish configurations that merely *render* the
    /// same (e.g. equal-fraction memory pressures with different nums).
    #[test]
    fn rational_pressure_is_hashed_exactly() {
        let mut a = SimParams::default();
        a.machine.memory_pressure = MemoryPressure::new(8, 16);
        let mut b = SimParams::default();
        b.machine.memory_pressure = MemoryPressure::new(16, 32);
        assert_ne!(config_hash(&a), config_hash(&b));
    }
}
