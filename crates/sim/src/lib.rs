//! Whole-machine simulation of the cluster-based COMA multiprocessor.
//!
//! This is the core library of the reproduction: it assembles the
//! coherence protocol (`coma-protocol`), the contention timing model
//! (`coma-timing`) and a workload (`coma-workloads`) into a 16-processor
//! machine and runs it to completion, producing the paper's statistics
//! (`coma-stats`).
//!
//! The simulation is *timing-coupled trace generation*: each processor
//! pulls its next operation from its generator, and the globally earliest
//! processor advances first, so stalls reorder the interleaving exactly
//! as in program-driven simulation. Synchronization (locks, barriers)
//! executes real coherence transactions on dedicated sync lines.
//!
//! # Quickstart
//!
//! ```
//! use coma_sim::{run_simulation, SimParams};
//! use coma_types::MemoryPressure;
//! use coma_workloads::{AppId, Scale};
//!
//! let mut params = SimParams::default();
//! params.machine.procs_per_node = 4;
//! params.machine.memory_pressure = MemoryPressure::MP_50;
//! let workload = AppId::WaterN2.build(16, 42, Scale::SMOKE);
//! let report = run_simulation(workload, &params);
//! assert!(report.exec_time_ns > 0);
//! assert!(report.rnm_rate() < 1.0);
//! ```

pub mod canon;
pub mod machine;
pub mod resources;
pub mod sync;

pub use machine::{run_simulation, InterconnectKind, MemoryModel, SimParams, Simulation};
pub use resources::MachineResources;
