//! The simulation driver: event-driven execution of one workload on one
//! machine configuration, producing a [`SimReport`].
//!
//! The per-event path is deliberately interpreter-free: each workload's
//! reference stream is compiled ahead of the run into a flat
//! [`OpArena`] (one fixed-width record per memory/sync operation, with
//! the preceding compute gap packed inline — see `coma-workloads`), so
//! the hot loop reads an array instead of re-running generator logic,
//! and pure compute gaps fuse with the operation they precede whenever
//! the processor would step straight through anyway (DESIGN.md §13).

use crate::resources::MachineResources;
use crate::sync::{BarrierState, LockState};
use coma_cache::{AcceptPolicy, VictimPolicy};
use coma_protocol::{BaselineEngine, BaselineKind, CoherenceEngine, MemorySystem};
use coma_stats::{AccessCounts, ExecBreakdown, Level, SimReport};
use coma_timing::{
    EventQueue, HierarchicalFabric, IdealInterconnect, Interconnect, WriteBufferArray,
};
use coma_types::{Addr, ConfigError, LatencyConfig, MachineConfig, MachineGeometry, Nanos, ProcId};
use coma_workloads::{FlatKind, OpArena, Workload};

/// Which memory architecture the machine implements.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemoryModel {
    /// The paper's bus-based COMA with attraction memories.
    #[default]
    Coma,
    /// CC-NUMA baseline: fixed first-touch homes, no attraction memory.
    Numa,
    /// UMA baseline: dancehall memory, every SLC miss is remote.
    Uma,
}

/// Which global interconnect backend the machine uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InterconnectKind {
    /// The arbitrated fabric shaped by the machine's [`coma_types::Topology`]:
    /// the paper's single snooping bus when flat, a directory tree of
    /// group buses and inter-level links otherwise.
    #[default]
    SnoopingBus,
    /// A contention-free medium: same routed latency, infinite bandwidth.
    Ideal,
}

impl InterconnectKind {
    fn build(self, geom: &MachineGeometry, lat: &LatencyConfig) -> Box<dyn Interconnect> {
        match self {
            InterconnectKind::SnoopingBus => Box::new(HierarchicalFabric::new(
                geom.topology,
                lat.link_ns,
                lat.link_occ_ns,
            )),
            InterconnectKind::Ideal => Box::new(IdealInterconnect::new(
                geom.topology,
                lat.link_ns,
                lat.link_occ_ns,
            )),
        }
    }
}

/// The memory systems the driver knows statically, plus a trait-object
/// escape hatch for externally constructed ones ([`Simulation::with_memory`]).
///
/// The built-in engines are dispatched through this enum rather than a
/// `Box<dyn MemorySystem>` so the two `mem.read`/`mem.write` calls on the
/// per-event hot path are direct (and cross-crate inlinable under LTO)
/// instead of virtual. Every simulation the crate itself assembles takes
/// the static arms; only an external architecture pays the indirect call.
enum Engine {
    Coma(CoherenceEngine),
    Baseline(BaselineEngine),
    Custom(Box<dyn MemorySystem>),
}

impl MemorySystem for Engine {
    #[inline]
    fn read(&mut self, proc: ProcId, line: coma_types::LineNum) -> coma_protocol::Outcome {
        match self {
            Engine::Coma(e) => e.read(proc, line),
            Engine::Baseline(e) => e.read(proc, line),
            Engine::Custom(m) => m.read(proc, line),
        }
    }

    #[inline]
    fn write(&mut self, proc: ProcId, line: coma_types::LineNum) -> coma_protocol::Outcome {
        match self {
            Engine::Coma(e) => e.write(proc, line),
            Engine::Baseline(e) => e.write(proc, line),
            Engine::Custom(m) => m.write(proc, line),
        }
    }

    fn geometry(&self) -> &coma_types::MachineGeometry {
        match self {
            Engine::Coma(e) => e.geometry(),
            Engine::Baseline(e) => e.geometry(),
            Engine::Custom(m) => m.geometry(),
        }
    }

    fn flush_stats(&mut self) {
        match self {
            Engine::Coma(e) => e.flush_stats(),
            Engine::Baseline(e) => e.flush_stats(),
            Engine::Custom(m) => m.flush_stats(),
        }
    }

    fn traffic(&self) -> &coma_stats::Traffic {
        match self {
            Engine::Coma(e) => e.traffic(),
            Engine::Baseline(e) => e.traffic(),
            Engine::Custom(m) => m.traffic(),
        }
    }

    fn counters(&self) -> &coma_stats::ProtocolCounters {
        match self {
            Engine::Coma(e) => e.counters(),
            Engine::Baseline(e) => e.counters(),
            Engine::Custom(m) => m.counters(),
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        match self {
            Engine::Coma(e) => e.check_invariants(),
            Engine::Baseline(e) => e.check_invariants(),
            Engine::Custom(m) => m.check_invariants(),
        }
    }

    fn am_census(&self) -> (usize, usize, usize) {
        match self {
            Engine::Coma(e) => MemorySystem::am_census(e),
            Engine::Baseline(e) => MemorySystem::am_census(e),
            Engine::Custom(m) => m.am_census(),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        match self {
            Engine::Coma(e) => e,
            Engine::Baseline(e) => e,
            Engine::Custom(m) => m.as_any(),
        }
    }
}

/// Everything that parameterizes one simulation run.
#[derive(Clone, Debug)]
pub struct SimParams {
    pub machine: MachineConfig,
    pub latency: LatencyConfig,
    pub victim_policy: VictimPolicy,
    pub accept_policy: AcceptPolicy,
    pub memory_model: MemoryModel,
    pub interconnect: InterconnectKind,
    /// Arm the live invariant auditor: the COMA engine re-verifies every
    /// machine-wide protocol invariant after each access that performed a
    /// protocol transaction (panicking on violation). Expensive — meant
    /// for tests and debugging, not measurement runs.
    pub audit: bool,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            machine: MachineConfig::default(),
            latency: LatencyConfig::paper_default(),
            victim_policy: VictimPolicy::SharedFirst,
            accept_policy: AcceptPolicy::InvalidThenShared,
            memory_model: MemoryModel::Coma,
            interconnect: InterconnectKind::SnoopingBus,
            audit: false,
        }
    }
}

/// The §4.3 execution-time breakdown as parallel per-processor arrays
/// (structure-of-arrays): every event updates exactly one counter, so
/// the hot loop indexes one contiguous `Box<[Nanos]>` instead of
/// striding across five-field records.
struct BreakdownSoA {
    busy_ns: Box<[Nanos]>,
    slc_ns: Box<[Nanos]>,
    am_ns: Box<[Nanos]>,
    remote_ns: Box<[Nanos]>,
    sync_ns: Box<[Nanos]>,
}

impl BreakdownSoA {
    fn new(n_procs: usize) -> Self {
        let zeroed = || vec![0; n_procs].into_boxed_slice();
        BreakdownSoA {
            busy_ns: zeroed(),
            slc_ns: zeroed(),
            am_ns: zeroed(),
            remote_ns: zeroed(),
            sync_ns: zeroed(),
        }
    }

    /// Charge a memory access's stall to the level that supplied it.
    #[inline]
    fn bucket(&mut self, p: usize, level: Level, ns: Nanos) {
        match level {
            Level::Flc => self.busy_ns[p] += ns,
            Level::Slc => self.slc_ns[p] += ns,
            Level::PeerSlc | Level::Am => self.am_ns[p] += ns,
            Level::Remote => self.remote_ns[p] += ns,
        }
    }

    /// Reassemble the report's per-processor records.
    fn into_breakdowns(self) -> Vec<ExecBreakdown> {
        (0..self.busy_ns.len())
            .map(|p| ExecBreakdown {
                busy_ns: self.busy_ns[p],
                slc_ns: self.slc_ns[p],
                am_ns: self.am_ns[p],
                remote_ns: self.remote_ns[p],
                sync_ns: self.sync_ns[p],
            })
            .collect()
    }
}

/// A fully assembled machine + workload, ready to run.
pub struct Simulation {
    mem: Engine,
    res: MachineResources,
    lat: LatencyConfig,
    /// Every processor's reference stream, precompiled to flat records.
    ops: OpArena,
    /// Next record index per processor (SoA against `ops`).
    pos: Box<[u32]>,
    /// One-past-last record index per processor.
    end: Box<[u32]>,
    /// Set when a record's inline gap has been consumed but its
    /// operation not yet executed (the processor parked in between).
    gap_done: Box<[bool]>,
    /// Fold a record's compute gap and its operation into one step when
    /// the processor would step straight through anyway. Always on in
    /// real runs; the differential tests switch it off to replay the
    /// one-event-per-gap reference schedule.
    fuse_gaps: bool,
    wbs: WriteBufferArray,
    breakdown: BreakdownSoA,
    counts: AccessCounts,
    read_latency: coma_stats::LatencyHisto,
    queue: EventQueue,
    locks: Vec<LockState>,
    barrier: BarrierState,
    lock_addrs: Vec<Addr>,
    barrier_counter: Addr,
    barrier_flag: Addr,
    /// Completion time per processor; valid once the processor finished.
    finish: Box<[Nanos]>,
    n_done: usize,
    n_procs: usize,
}

impl Simulation {
    /// Assemble a machine for `workload` under `params`.
    pub fn new(workload: Workload, params: &SimParams) -> Result<Self, ConfigError> {
        let geom = params.machine.geometry(workload.ws_bytes)?;
        let mem = match params.memory_model {
            MemoryModel::Coma => {
                let mut e = CoherenceEngine::with_inclusion(
                    geom,
                    params.victim_policy,
                    params.accept_policy,
                    params.machine.intra_node_transfers,
                    params.machine.inclusive_hierarchy,
                );
                e.set_audit(params.audit);
                Engine::Coma(e)
            }
            MemoryModel::Numa => Engine::Baseline(BaselineEngine::new(geom, BaselineKind::Numa)),
            MemoryModel::Uma => Engine::Baseline(BaselineEngine::new(geom, BaselineKind::Uma)),
        };
        Ok(Self::assemble(workload, params, mem))
    }

    /// Assemble a machine around an externally constructed memory
    /// system. This is how a new architecture (or an instrumented
    /// engine) runs under the standard driver without touching it.
    pub fn with_memory(workload: Workload, params: &SimParams, mem: Box<dyn MemorySystem>) -> Self {
        Self::assemble(workload, params, Engine::Custom(mem))
    }

    fn assemble(workload: Workload, params: &SimParams, mem: Engine) -> Self {
        let geom = *mem.geometry();
        assert_eq!(
            workload.streams.len(),
            geom.n_procs,
            "workload has {} streams for {} processors",
            workload.streams.len(),
            geom.n_procs
        );
        let n_procs = geom.n_procs;
        let res = MachineResources::with_interconnect(
            &geom,
            params.interconnect.build(&geom, &params.latency),
        );
        let mut queue = EventQueue::new();
        for p in 0..n_procs {
            queue.push(0, ProcId(p as u16));
        }
        let lock_addrs = (0..workload.n_locks)
            .map(|i| workload.lock_addr(i))
            .collect();
        let barrier_counter = workload.barrier_counter_addr();
        let barrier_flag = workload.barrier_flag_addr();
        // Pay all generator dispatch once, up front: the run itself only
        // ever reads the arena.
        let ops = OpArena::compile(workload.streams);
        let pos = (0..n_procs).map(|p| ops.span(p).0).collect();
        let end = (0..n_procs).map(|p| ops.span(p).1).collect();
        Simulation {
            mem,
            res,
            lat: params.latency.clone(),
            ops,
            pos,
            end,
            gap_done: vec![false; n_procs].into_boxed_slice(),
            fuse_gaps: true,
            wbs: WriteBufferArray::new(n_procs, params.machine.write_buffer_entries),
            breakdown: BreakdownSoA::new(n_procs),
            counts: AccessCounts::default(),
            read_latency: coma_stats::LatencyHisto::new(),
            queue,
            locks: vec![LockState::default(); workload.n_locks as usize],
            barrier: BarrierState::new(n_procs),
            lock_addrs,
            barrier_counter,
            barrier_flag,
            finish: vec![0; n_procs].into_boxed_slice(),
            n_done: 0,
            n_procs,
        }
    }

    /// Disable the fused compute-gap fast path, restoring the reference
    /// schedule in which every gap is its own event. Identical results
    /// either way (pinned by the `gap_fusion` differential tests); only
    /// the number of driver iterations differs.
    #[doc(hidden)]
    pub fn set_fuse_gaps(&mut self, on: bool) {
        self.fuse_gaps = on;
    }

    /// Timed protocol read with stall accounting.
    fn do_read(&mut self, p: ProcId, addr: Addr, t: Nanos) -> Nanos {
        let out = self.mem.read(p, addr.line());
        let done = self.res.time_access(t, p, &out, &self.lat);
        self.counts.record_read(out.level);
        self.read_latency.record(done - t);
        self.breakdown.bucket(p.as_usize(), out.level, done - t);
        done
    }

    /// Timed protocol write (blocking — used for sync lines).
    fn do_write(&mut self, p: ProcId, addr: Addr, t: Nanos) -> Nanos {
        let out = self.mem.write(p, addr.line());
        let done = self.res.time_access(t, p, &out, &self.lat);
        self.counts.record_write(out.level);
        self.breakdown.bucket(p.as_usize(), out.level, done - t);
        done
    }

    /// Atomic read-modify-write (lock acquisition, barrier counter).
    fn rmw(&mut self, p: ProcId, addr: Addr, t: Nanos) -> Nanos {
        let t1 = self.do_read(p, addr, t);
        self.do_write(p, addr, t1)
    }

    /// Release the gathered barrier at `now`: every parked processor
    /// re-fetches the (just invalidated) flag line and resumes.
    fn release_barrier(&mut self, now: Nanos) {
        let released = self.barrier.release();
        for (q, parked) in released {
            let start = now.max(parked);
            self.breakdown.sync_ns[q.as_usize()] += start - parked;
            let done = self.do_read(q, self.barrier_flag, start);
            self.queue.push(done, q);
        }
    }

    /// A processor's stream ended at time `t`.
    fn finish_proc(&mut self, p: ProcId, t: Nanos) {
        let pi = p.as_usize();
        let drained = self.wbs.drain(pi, t);
        self.breakdown.sync_ns[pi] += drained - t;
        self.finish[pi] = drained;
        self.n_done += 1;
        self.mem.flush_stats();
        // If the remaining processors are all waiting at a barrier this
        // processor will never reach, complete it for them.
        if self.barrier.retire_participant() {
            self.release_barrier(drained);
        }
    }

    /// Execute one compiled record of processor `p` popped at time `t`.
    ///
    /// Returns the time at which `p` itself resumes, or `None` if it
    /// parked (lock, barrier) or finished. Wake-ups for *other*
    /// processors are pushed directly; `p`'s own continuation is the
    /// caller's to schedule, so the run loop can keep stepping `p`
    /// without queue traffic while it remains the earliest wake-up.
    ///
    /// A record's inline compute gap fuses with its operation: the gap
    /// advances time locally, and when `(t + gap, p)` still precedes
    /// every pending wake-up the operation executes in the same call —
    /// the gap never becomes a queue event. When the processor would
    /// *not* step straight through, the gap is consumed (`gap_done`) and
    /// the operation waits for the next pop, which is exactly the
    /// schedule the unfused path produces; either way the sequence of
    /// side-effecting events is identical, because a pure gap touches
    /// nothing but this processor's clock and busy counter.
    fn step(&mut self, p: ProcId, t: Nanos) -> Option<Nanos> {
        let pi = p.as_usize();
        let pos = self.pos[pi];
        if pos == self.end[pi] {
            self.finish_proc(p, t);
            return None;
        }
        let rec = self.ops.get(pos);
        let kind = rec.kind();
        if kind == FlatKind::Gap {
            // A gap too long to pack inline: one pure time advance.
            self.breakdown.busy_ns[pi] += rec.payload();
            self.pos[pi] = pos + 1;
            return Some(t + rec.payload());
        }
        let mut now = t;
        let gap = rec.gap_ns();
        if gap > 0 && !self.gap_done[pi] {
            self.breakdown.busy_ns[pi] += gap;
            let resumed = now + gap;
            if self.fuse_gaps && self.queue.precedes(resumed, p) {
                // Fast path: the processor is still the machine-wide
                // earliest at `resumed`, so run the operation now.
                now = resumed;
            } else {
                self.gap_done[pi] = true;
                return Some(resumed);
            }
        }
        self.gap_done[pi] = false;
        self.pos[pi] = pos + 1;
        match kind {
            FlatKind::Read => {
                // One issue slot for the load instruction itself.
                self.breakdown.busy_ns[pi] += 1;
                Some(self.do_read(p, rec.addr(), now + 1))
            }
            FlatKind::Write => {
                self.breakdown.busy_ns[pi] += 1;
                let issue = now + 1;
                let out = self.mem.write(p, rec.addr().line());
                let completes = self.res.time_access(issue, p, &out, &self.lat);
                self.counts.record_write(out.level);
                // Release consistency: the processor stalls only if the
                // write buffer is full.
                let resume = self.wbs.push(pi, issue, completes);
                self.breakdown.bucket(pi, out.level, resume - issue);
                Some(resume)
            }
            FlatKind::Lock => {
                let id = rec.id() as usize;
                self.mem.flush_stats();
                if self.locks[id].try_acquire(p) {
                    Some(self.rmw(p, self.lock_addrs[id], now))
                } else {
                    self.locks[id].park(p, now);
                    None
                }
            }
            FlatKind::Unlock => {
                let id = rec.id() as usize;
                self.mem.flush_stats();
                // Release consistency: drain the write buffer first.
                let drained = self.wbs.drain(pi, now);
                self.breakdown.sync_ns[pi] += drained - now;
                let done = self.do_write(p, self.lock_addrs[id], drained);
                if let Some((next, parked)) = self.locks[id].release(p) {
                    let start = done.max(parked);
                    self.breakdown.sync_ns[next.as_usize()] += start - parked;
                    // The new holder re-acquires the (invalidated) lock line.
                    let acquired = self.rmw(next, self.lock_addrs[id], start);
                    self.queue.push(acquired, next);
                }
                Some(done)
            }
            FlatKind::Barrier => {
                let id = rec.id();
                self.mem.flush_stats();
                let drained = self.wbs.drain(pi, now);
                self.breakdown.sync_ns[pi] += drained - now;
                let counted = self.rmw(p, self.barrier_counter, drained);
                if self.barrier.arrive(id) {
                    // Last arrival: write the release flag (invalidating
                    // every waiter's copy) and wake everyone.
                    let released = self.do_write(p, self.barrier_flag, counted);
                    self.release_barrier(released);
                    Some(released)
                } else {
                    self.barrier.park(p, counted);
                    None
                }
            }
            FlatKind::Gap => unreachable!("handled above"),
        }
    }

    /// Run to completion and produce the report.
    pub fn run(mut self) -> SimReport {
        self.run_loop();
        self.into_report()
    }

    /// Run to completion, verify every protocol invariant over the final
    /// machine state, and produce the report.
    pub fn run_checked(mut self) -> Result<SimReport, String> {
        self.run_loop();
        self.mem.check_invariants()?;
        Ok(self.into_report())
    }

    fn run_loop(&mut self) {
        // Follow-through: after a step, `p`'s continuation `(next, p)`
        // often still lexicographically precedes every pending wake-up —
        // pushing it and popping would hand it straight back. Stepping on
        // directly is therefore the *identical* event order with the
        // queue round-trip elided; with the paper's 2-6 ns compute gaps
        // between references this skips the queue for most events.
        while let Some((mut t, p)) = self.queue.pop() {
            while let Some(next) = self.step(p, t) {
                if !self.queue.precedes(next, p) {
                    self.queue.push(next, p);
                    break;
                }
                t = next;
            }
        }
    }

    fn into_report(mut self) -> SimReport {
        assert_eq!(
            self.n_done, self.n_procs,
            "deadlock: {} of {} processors finished (parked at locks/barrier)",
            self.n_done, self.n_procs
        );
        let exec_time_ns = self.finish.iter().copied().max().unwrap_or(0);
        self.mem.flush_stats();
        let traffic = *self.mem.traffic();
        let counters = *self.mem.counters();
        SimReport {
            exec_time_ns,
            counts: self.counts,
            traffic,
            per_proc: self.breakdown.into_breakdowns(),
            injections: counters.injections,
            ownership_migrations: counters.ownership_migrations,
            shared_drops: counters.shared_drops,
            cold_allocs: counters.cold_allocs,
            bus_busy_ns: self.res.bus.busy_ns(),
            dram_busy_ns: self.res.dram_busy_ns(),
            read_latency: self.read_latency,
        }
    }

    /// The memory system under simulation, for post-run inspection.
    pub fn memory(&self) -> &dyn MemorySystem {
        &self.mem
    }

    /// The COMA engine, for post-run inspection in tests (None when a
    /// baseline memory model is configured).
    pub fn engine(&self) -> Option<&CoherenceEngine> {
        self.mem.as_any().downcast_ref::<CoherenceEngine>()
    }
}

/// Build and run in one call (panics on an invalid configuration; use
/// [`Simulation::new`] to handle configuration errors explicitly).
pub fn run_simulation(workload: Workload, params: &SimParams) -> SimReport {
    Simulation::new(workload, params)
        .unwrap_or_else(|e| panic!("invalid simulation configuration: {e}"))
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_types::MemoryPressure;
    use coma_workloads::{AppId, Scale};

    fn params(ppn: usize, mp: MemoryPressure) -> SimParams {
        let mut p = SimParams::default();
        p.machine.procs_per_node = ppn;
        p.machine.memory_pressure = mp;
        p
    }

    #[test]
    fn water_runs_to_completion() {
        let wl = AppId::WaterN2.build(16, 1, Scale::SMOKE);
        let r = run_simulation(wl, &params(1, MemoryPressure::MP_50));
        assert!(r.exec_time_ns > 0);
        assert!(r.counts.total_reads() > 1000);
        assert!(r.counts.total_writes() > 100);
        // Time must be fully accounted per processor (within the final
        // event-alignment slack).
        for b in &r.per_proc {
            assert!(b.total_ns() > 0);
            assert!(b.total_ns() <= r.exec_time_ns);
        }
    }

    #[test]
    fn deterministic_report() {
        let run = || {
            let wl = AppId::Fft.build(16, 7, Scale::SMOKE);
            let r = run_simulation(wl, &params(2, MemoryPressure::MP_75));
            (r.exec_time_ns, r.counts, r.traffic)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clustering_reduces_rnm_at_low_pressure() {
        // The paper's core Figure 2 effect, on one communication-heavy app.
        let rnm = |ppn| {
            let wl = AppId::OceanNon.build(16, 3, Scale::SMOKE);
            run_simulation(wl, &params(ppn, MemoryPressure::MP_6)).rnm_rate()
        };
        let r1 = rnm(1);
        let r4 = rnm(4);
        assert!(r4 < r1, "4-way clustering RNMr {r4} !< 1-way {r1}");
    }

    #[test]
    fn higher_pressure_means_more_traffic() {
        let traffic = |mp| {
            let wl = AppId::Fft.build(16, 3, Scale::SMOKE);
            run_simulation(wl, &params(1, mp)).traffic.total_bytes()
        };
        let low = traffic(MemoryPressure::MP_6);
        let high = traffic(MemoryPressure::MP_87);
        assert!(high > low, "high-MP traffic {high} !> low-MP {low}");
    }

    #[test]
    fn no_replacements_at_infinite_caches() {
        // At 6.25% MP every AM holds the whole working set: replacement
        // traffic must be zero (paper §4.2: "no replacements are made at
        // 6% MP").
        let wl = AppId::WaterSp.build(16, 5, Scale::SMOKE);
        let r = run_simulation(wl, &params(1, MemoryPressure::MP_6));
        assert_eq!(r.traffic.replace_txns, 0);
        assert_eq!(r.injections, 0);
    }

    #[test]
    fn locks_serialize_and_complete() {
        let wl = AppId::Radiosity.build(16, 9, Scale::SMOKE);
        let r = run_simulation(wl, &params(4, MemoryPressure::MP_50));
        assert!(r.exec_time_ns > 0);
        // Some sync waiting must have occurred under 16-way lock traffic.
        let sync: u64 = r.per_proc.iter().map(|b| b.sync_ns).sum();
        assert!(sync > 0);
    }

    #[test]
    fn invariants_hold_after_full_run() {
        let wl = AppId::LuNon.build(16, 11, Scale::SMOKE);
        let sim = Simulation::new(wl, &params(4, MemoryPressure::MP_87)).unwrap();
        sim.run_checked().expect("protocol invariants hold");
    }

    #[test]
    fn live_audit_clean_on_full_run() {
        // The auditor re-checks every invariant after each protocol
        // transaction; a full (if small) run at high pressure exercises
        // injections, migrations and page-outs under audit.
        let wl = AppId::LuNon.build(16, 11, Scale::SMOKE);
        let mut p = params(4, MemoryPressure::MP_87);
        p.audit = true;
        let r = run_simulation(wl, &p);
        assert!(r.injections > 0, "run too tame to exercise the auditor");
    }

    #[test]
    fn barrier_waiters_resume_after_release() {
        let wl = AppId::Fft.build(16, 13, Scale::SMOKE);
        let r = run_simulation(wl, &params(1, MemoryPressure::MP_50));
        // All processors finished (no deadlock) and every one of them
        // accumulated some barrier wait.
        assert!(r.per_proc.iter().filter(|b| b.sync_ns > 0).count() >= 8);
    }

    #[test]
    fn mismatched_stream_count_panics() {
        let wl = AppId::Fft.build(8, 1, Scale::SMOKE); // 8 streams
        let p = params(1, MemoryPressure::MP_50); // 16-proc machine
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Simulation::new(wl, &p).unwrap()
        }))
        .is_err());
    }

    #[test]
    fn unfused_reference_schedule_matches_fused() {
        // The in-crate smoke version of the full differential suite in
        // tests/gap_fusion.rs: one app, whole report must be identical.
        let run = |fuse| {
            let wl = AppId::Radiosity.build(16, 3, Scale::SMOKE);
            let mut sim = Simulation::new(wl, &params(2, MemoryPressure::MP_75)).unwrap();
            sim.set_fuse_gaps(fuse);
            sim.run()
        };
        assert_eq!(run(true), run(false));
    }
}
