//! The machine's contended resources and the timing walk.
//!
//! One [`Resource`] per node controller, per AM DRAM, per SLC port, plus
//! the global bus (paper §3.2: "the memory system simulator models
//! contention effects for the node controllers, attraction memory DRAMs,
//! second-level caches and the shared bus").
//!
//! [`MachineResources::time_access`] converts a protocol [`Outcome`] into
//! a completion time by walking the affected resources in path order.
//! Contention-less totals reproduce the paper exactly: SLC 32 ns, AM
//! 148 ns, remote 332 ns (validated in tests).

use coma_protocol::Outcome;
use coma_stats::Level;
use coma_timing::{HierarchicalFabric, Interconnect, Resource};
use coma_types::{LatencyConfig, MachineGeometry, Nanos, ProcId};

/// All contended hardware of the machine.
pub struct MachineResources {
    /// The interconnect fabric (the paper's snooping bus is the
    /// degenerate flat instance).
    pub bus: Box<dyn Interconnect>,
    /// Node controller / AM state+tag pipeline, per node.
    pub ctrl: Vec<Resource>,
    /// Attraction-memory DRAM, per node.
    pub dram: Vec<Resource>,
    /// SLC port, per processor.
    pub slc: Vec<Resource>,
    procs_per_node: usize,
    nodes_per_group: usize,
    /// Precomputed `proc → node`, so the per-access walk never divides.
    node_of: Box<[u16]>,
}

impl MachineResources {
    pub fn new(geom: &MachineGeometry, lat: &LatencyConfig) -> Self {
        Self::with_interconnect(
            geom,
            Box::new(HierarchicalFabric::new(
                geom.topology,
                lat.link_ns,
                lat.link_occ_ns,
            )),
        )
    }

    /// Assemble the machine's resources around a specific interconnect
    /// backend (arbitrated fabric, ideal network, …).
    pub fn with_interconnect(geom: &MachineGeometry, bus: Box<dyn Interconnect>) -> Self {
        MachineResources {
            bus,
            ctrl: (0..geom.n_nodes).map(|_| Resource::new()).collect(),
            dram: (0..geom.n_nodes).map(|_| Resource::new()).collect(),
            slc: (0..geom.n_procs).map(|_| Resource::new()).collect(),
            procs_per_node: geom.procs_per_node,
            nodes_per_group: geom.nodes_per_group(),
            node_of: (0..geom.n_procs)
                .map(|p| ProcId(p as u16).node(geom.procs_per_node).0)
                .collect(),
        }
    }

    /// Cluster group of a node (always 0 on the flat machine).
    #[inline]
    fn group(&self, node: usize) -> usize {
        node / self.nodes_per_group
    }

    /// Completion time of an access that started at `now`, walking the
    /// resources dictated by `out`. Works for reads (processor stalls
    /// until the returned time) and writes (the returned time is the
    /// write-buffer completion time).
    pub fn time_access(
        &mut self,
        now: Nanos,
        proc: ProcId,
        out: &Outcome,
        lat: &LatencyConfig,
    ) -> Nanos {
        let p = proc.as_usize();
        let n = self.node_of[p] as usize;

        // A node-controller pass costs `ctrl_ns` of latency; the lookup
        // and return passes of one access are queued as a single
        // double-occupancy reservation so that independent accesses
        // pipeline at the controller's *bandwidth* (occupancy) rather
        // than serializing on the whole access latency.
        let ctrl2 = 2 * lat.ctrl_occ_ns;
        let mut t = match out.level {
            Level::Flc => now,
            Level::Slc => self.slc[p].serve(now, lat.slc_occ_ns, lat.slc_ns),
            Level::PeerSlc => {
                // Own SLC miss check runs in parallel with the controller
                // lookup; the peer's SLC port supplies the data.
                self.slc[p].acquire(now, lat.slc_occ_ns);
                let t = self.ctrl[n].serve(now, ctrl2, lat.ctrl_ns);
                let peer_proc = n * self.procs_per_node + out.peer_slc.unwrap_or(0);
                let t = self.slc[peer_proc].serve(t, lat.slc_occ_ns, lat.slc_ns);
                t + lat.ctrl_ns
            }
            Level::Am => {
                // SLC checked in parallel; AM hit = ctrl + DRAM + ctrl.
                self.slc[p].acquire(now, lat.slc_occ_ns);
                let t = self.ctrl[n].serve(now, ctrl2, lat.ctrl_ns);
                let t = self.dram[n].serve(t, lat.dram_occ_ns, lat.dram_ns);
                t + lat.ctrl_ns
            }
            Level::Remote => {
                self.slc[p].acquire(now, lat.slc_occ_ns);
                let g = self.group(n);
                if out.upgrade && !out.read_exclusive {
                    // Invalidation: climbs only as high as the directory
                    // levels say copies reach (flat: the one broadcast).
                    let scope = out
                        .inval_scope
                        .map(|k| self.group(k.as_usize()))
                        .unwrap_or(g);
                    let t = self.ctrl[n].serve(now, ctrl2, lat.ctrl_ns);
                    let t = self.bus.transfer(t, g, scope, lat.bus_occ_ns, lat.bus_ns);
                    t + lat.ctrl_ns
                } else {
                    // Data fetch from the remote (owner/home) node,
                    // request and response each routed through the levels
                    // between the two groups.
                    let r = out
                        .remote_node
                        .map(|k| k.as_usize())
                        .unwrap_or((n + 1) % self.ctrl.len());
                    let gr = self.group(r);
                    let t = self.ctrl[n].serve(now, ctrl2, lat.ctrl_ns);
                    let t = self.bus.transfer(t, g, gr, lat.bus_occ_ns, lat.bus_ns);
                    let t = self.ctrl[r].serve(t, ctrl2, lat.ctrl_ns);
                    let t = self.dram[r].serve(t, lat.dram_occ_ns, lat.dram_ns);
                    let t = t + lat.ctrl_ns; // remote controller return pass
                    let t = self.bus.transfer(t, gr, g, lat.bus_occ_ns, lat.bus_ns);
                    let t = t + lat.ctrl_ns; // local controller return pass
                    t + lat.remote_extra_ns
                }
            }
        };

        // Off-critical-path work still consumes bandwidth.
        if out.am_filled && out.level == Level::Remote {
            // The incoming line is written into the local AM DRAM,
            // overlapped with the data return to the processor.
            self.dram[n].acquire(t, lat.dram_occ_ns);
        }
        if out.slc_writeback {
            self.dram[n].acquire(t, lat.dram_occ_ns);
        }
        if let Some(k) = out.injected_to {
            // Injection: one more fabric transfer plus the acceptor's
            // controller and DRAM time (replacements are buffered, so the
            // requester does not wait for them).
            let k = k.as_usize();
            self.bus
                .post(t, self.group(n), self.group(k), lat.bus_occ_ns);
            self.ctrl[k].acquire(t, lat.ctrl_occ_ns);
            self.dram[k].acquire(t, lat.dram_occ_ns);
        }
        if out.ownership_migrated {
            let dst = out
                .migrated_to
                .map(|k| self.group(k.as_usize()))
                .unwrap_or_else(|| self.group(n));
            self.bus.post(t, self.group(n), dst, lat.bus_occ_ns);
        }
        if out.pageout || out.pagein {
            // OS involvement: dominates everything else on this access.
            t += lat.pageout_ns;
        }
        t
    }

    /// Total DRAM busy time across nodes (report metric).
    pub fn dram_busy_ns(&self) -> Nanos {
        self.dram.iter().map(Resource::busy_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_stats::Level;
    use coma_types::{MachineConfig, MemoryPressure, NodeId};

    fn setup(ppn: usize) -> (MachineResources, LatencyConfig) {
        let cfg = MachineConfig::paper(ppn, MemoryPressure::MP_50);
        let geom = cfg.geometry(1 << 20).unwrap();
        let lat = LatencyConfig::paper_default();
        (MachineResources::new(&geom, &lat), lat)
    }

    /// A 16-node machine in 4 groups of 4 under one root level.
    fn setup_hierarchical() -> (MachineResources, LatencyConfig) {
        let cfg = MachineConfig {
            topology: coma_types::Topology::two_level(4),
            ..MachineConfig::paper(1, MemoryPressure::MP_50)
        };
        let geom = cfg.geometry(1 << 20).unwrap();
        let lat = LatencyConfig::paper_default();
        (MachineResources::new(&geom, &lat), lat)
    }

    #[test]
    fn contention_less_latencies_match_paper() {
        let (mut r, lat) = setup(1);
        let flc = r.time_access(0, ProcId(0), &Outcome::at(Level::Flc), &lat);
        assert_eq!(flc, 0);
        let slc = r.time_access(1000, ProcId(1), &Outcome::at(Level::Slc), &lat);
        assert_eq!(slc - 1000, 32);
        let am = r.time_access(2000, ProcId(2), &Outcome::at(Level::Am), &lat);
        assert_eq!(am - 2000, 148);
        let mut remote = Outcome::at(Level::Remote);
        remote.remote_node = Some(NodeId(5));
        let rem = r.time_access(3000, ProcId(3), &remote, &lat);
        assert_eq!(rem - 3000, 332);
    }

    #[test]
    fn dram_contention_queues_same_node() {
        let (mut r, lat) = setup(4);
        // Two processors of node 0 hit the AM simultaneously.
        let a = r.time_access(0, ProcId(0), &Outcome::at(Level::Am), &lat);
        let b = r.time_access(0, ProcId(1), &Outcome::at(Level::Am), &lat);
        assert_eq!(a, 148);
        // Second access waits for ctrl (24) and DRAM (100) bandwidth.
        assert!(b > a, "no contention modeled: {b} <= {a}");
    }

    #[test]
    fn doubled_dram_bandwidth_reduces_queueing_not_latency() {
        // Under a sustained burst the DRAM (100 ns occupancy) is the
        // bottleneck; halving its occupancy must shorten the burst.
        let (mut r1, lat1) = setup(4);
        let (mut r2, _) = setup(4);
        let lat2 = LatencyConfig::paper_double_dram();
        let burst = |r: &mut MachineResources, lat: &LatencyConfig| {
            let mut last = 0;
            for i in 0..16 {
                last = r.time_access(0, ProcId(i % 4), &Outcome::at(Level::Am), lat);
            }
            last
        };
        let slow1 = burst(&mut r1, &lat1);
        let slow2 = burst(&mut r2, &lat2);
        assert!(
            slow2 < slow1,
            "double bandwidth should cut queueing: {slow2} !< {slow1}"
        );
        // First access latency unchanged.
        let (mut r3, _) = setup(4);
        assert_eq!(
            r3.time_access(0, ProcId(0), &Outcome::at(Level::Am), &lat2),
            148
        );
    }

    #[test]
    fn different_nodes_do_not_contend_on_dram() {
        let (mut r, lat) = setup(1);
        let a = r.time_access(0, ProcId(0), &Outcome::at(Level::Am), &lat);
        let b = r.time_access(0, ProcId(1), &Outcome::at(Level::Am), &lat);
        assert_eq!(a, 148);
        assert_eq!(b, 148);
    }

    #[test]
    fn remote_accesses_contend_on_bus() {
        let (mut r, lat) = setup(1);
        let mk = |node| {
            let mut o = Outcome::at(Level::Remote);
            o.remote_node = Some(NodeId(node));
            o
        };
        let a = r.time_access(0, ProcId(0), &mk(5), &lat);
        let b = r.time_access(0, ProcId(1), &mk(6), &lat);
        assert_eq!(a, 332);
        assert!(b > 332, "bus contention missing");
    }

    #[test]
    fn upgrade_is_cheaper_than_data_fetch() {
        let (mut r, lat) = setup(1);
        let mut up = Outcome::at(Level::Remote);
        up.upgrade = true;
        let t = r.time_access(0, ProcId(0), &up, &lat);
        assert!(t < 332, "upgrade {t} should beat full remote fetch");
    }

    #[test]
    fn pageout_penalty_applied() {
        let (mut r, lat) = setup(1);
        let mut o = Outcome::at(Level::Am);
        o.pageout = true;
        let t = r.time_access(0, ProcId(0), &o, &lat);
        assert!(t >= lat.pageout_ns);
    }

    #[test]
    fn same_group_remote_skips_the_upper_levels() {
        // Node 0 fetching from node 3 (same group of 4): both bus phases
        // stay on the group-0 bus, so the contention-less total is the
        // paper's flat 332 ns.
        let (mut r, lat) = setup_hierarchical();
        let mut o = Outcome::at(Level::Remote);
        o.remote_node = Some(NodeId(3));
        assert_eq!(r.time_access(0, ProcId(0), &o, &lat), 332);
    }

    #[test]
    fn cross_group_remote_pays_link_crossings_and_far_bus() {
        // Node 0 fetching from node 12 (group 3): each phase additionally
        // crosses two links (up+down) and arbitrates on the far group's
        // bus: 332 + 2 × (2·link + bus) = 332 + 2 × 60 = 452.
        let (mut r, lat) = setup_hierarchical();
        let mut o = Outcome::at(Level::Remote);
        o.remote_node = Some(NodeId(12));
        assert_eq!(r.time_access(0, ProcId(0), &o, &lat), 452);
    }

    #[test]
    fn upgrade_scope_bounds_the_invalidation_cost() {
        // An upgrade whose farthest holder is in the writer's own group
        // stays on the local bus; one reaching another group climbs the
        // tree and costs two extra link crossings plus the far bus.
        let (mut r, lat) = setup_hierarchical();
        let mut near = Outcome::at(Level::Remote);
        near.upgrade = true;
        near.inval_scope = Some(NodeId(1)); // group 0
        let t_near = r.time_access(0, ProcId(0), &near, &lat);
        let (mut r2, _) = setup_hierarchical();
        let mut far = near;
        far.inval_scope = Some(NodeId(15)); // group 3
        let t_far = r2.time_access(0, ProcId(0), &far, &lat);
        assert_eq!(t_far - t_near, 2 * lat.link_ns + lat.bus_ns);
    }

    #[test]
    fn disjoint_groups_do_not_contend() {
        // Two same-group remote fetches in different groups at once: no
        // shared medium, both complete in the contention-less 332 ns.
        let (mut r, lat) = setup_hierarchical();
        let mk = |node| {
            let mut o = Outcome::at(Level::Remote);
            o.remote_node = Some(NodeId(node));
            o
        };
        assert_eq!(r.time_access(0, ProcId(0), &mk(3), &lat), 332);
        assert_eq!(r.time_access(0, ProcId(4), &mk(7), &lat), 332);
    }

    #[test]
    fn injection_consumes_acceptor_bandwidth() {
        let (mut r, lat) = setup(1);
        let mut o = Outcome::at(Level::Am);
        o.injected_to = Some(NodeId(3));
        let t0 = r.time_access(0, ProcId(0), &o, &lat);
        // The acceptor's DRAM is now busy; its own AM hit queues.
        let t1 = r.time_access(t0, ProcId(3), &Outcome::at(Level::Am), &lat);
        assert!(t1 - t0 > 148);
    }
}
