//! Lock and barrier bookkeeping.
//!
//! The *traffic* of synchronization is produced by real protocol accesses
//! to dedicated sync lines (the workload's lock lines and the barrier
//! counter/flag lines); this module only tracks who is parked where.
//! Parked processors leave the event queue and are re-scheduled by the
//! releasing processor — the scheduling analogue of a blocked
//! test&test&set spin with exponential back-off (no spin storm is
//! simulated, but the hand-off invalidation + re-fetch is).

use coma_types::{Nanos, ProcId};
use std::collections::VecDeque;

/// One lock's runtime state.
#[derive(Clone, Debug, Default)]
pub struct LockState {
    pub held_by: Option<ProcId>,
    /// FIFO of parked waiters with their park times.
    pub queue: VecDeque<(ProcId, Nanos)>,
}

impl LockState {
    /// Try to take the lock; returns false if the caller must park.
    pub fn try_acquire(&mut self, proc: ProcId) -> bool {
        if self.held_by.is_none() {
            self.held_by = Some(proc);
            true
        } else {
            false
        }
    }

    pub fn park(&mut self, proc: ProcId, now: Nanos) {
        self.queue.push_back((proc, now));
    }

    /// Release; hands the lock to the next waiter if any.
    pub fn release(&mut self, proc: ProcId) -> Option<(ProcId, Nanos)> {
        assert_eq!(self.held_by, Some(proc), "release by non-holder");
        match self.queue.pop_front() {
            Some((next, parked_at)) => {
                self.held_by = Some(next);
                Some((next, parked_at))
            }
            None => {
                self.held_by = None;
                None
            }
        }
    }
}

/// The (single, reused) global barrier.
#[derive(Clone, Debug)]
pub struct BarrierState {
    expected: usize,
    /// Barrier id currently being gathered.
    pub current_id: u32,
    arrived: usize,
    /// Parked processors with park times.
    pub waiting: Vec<(ProcId, Nanos)>,
}

impl BarrierState {
    pub fn new(expected: usize) -> Self {
        BarrierState {
            expected,
            current_id: 0,
            arrived: 0,
            waiting: Vec::new(),
        }
    }

    /// Register an arrival at barrier `id`; returns true if this is the
    /// last arrival (the caller becomes the releaser).
    pub fn arrive(&mut self, id: u32) -> bool {
        assert_eq!(
            id, self.current_id,
            "barrier id mismatch: arrived at {id}, gathering {}",
            self.current_id
        );
        self.arrived += 1;
        assert!(self.arrived <= self.expected, "too many barrier arrivals");
        self.arrived == self.expected
    }

    pub fn park(&mut self, proc: ProcId, now: Nanos) {
        self.waiting.push((proc, now));
    }

    /// Release everyone and advance to the next barrier generation.
    pub fn release(&mut self) -> Vec<(ProcId, Nanos)> {
        assert_eq!(self.arrived, self.expected);
        self.arrived = 0;
        self.current_id += 1;
        std::mem::take(&mut self.waiting)
    }

    /// Number of processors that already arrived at the current barrier.
    pub fn arrived(&self) -> usize {
        self.arrived
    }

    /// Lower the expected count (a processor finished its stream early or
    /// will never synchronize again). If the remaining arrivals now
    /// complete the barrier, the caller must release it.
    pub fn retire_participant(&mut self) -> bool {
        assert!(self.expected > 0);
        self.expected -= 1;
        self.expected > 0 && self.arrived == self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_handoff_fifo() {
        let mut l = LockState::default();
        assert!(l.try_acquire(ProcId(0)));
        assert!(!l.try_acquire(ProcId(1)));
        l.park(ProcId(1), 100);
        assert!(!l.try_acquire(ProcId(2)));
        l.park(ProcId(2), 200);
        assert_eq!(l.release(ProcId(0)), Some((ProcId(1), 100)));
        assert_eq!(l.held_by, Some(ProcId(1)));
        assert_eq!(l.release(ProcId(1)), Some((ProcId(2), 200)));
        assert_eq!(l.release(ProcId(2)), None);
        assert_eq!(l.held_by, None);
    }

    #[test]
    #[should_panic]
    fn release_by_non_holder_panics() {
        let mut l = LockState::default();
        l.try_acquire(ProcId(0));
        l.release(ProcId(1));
    }

    #[test]
    fn barrier_gathers_and_releases() {
        let mut b = BarrierState::new(3);
        assert!(!b.arrive(0));
        b.park(ProcId(0), 10);
        assert!(!b.arrive(0));
        b.park(ProcId(1), 20);
        assert!(b.arrive(0)); // last arrival releases
        let released = b.release();
        assert_eq!(released.len(), 2);
        assert_eq!(b.current_id, 1);
        // Next generation works.
        assert!(!b.arrive(1));
    }

    #[test]
    #[should_panic]
    fn wrong_barrier_id_panics() {
        let mut b = BarrierState::new(2);
        b.arrive(1);
    }

    #[test]
    fn retiring_participant_can_complete_barrier() {
        let mut b = BarrierState::new(3);
        b.arrive(0);
        b.park(ProcId(0), 1);
        b.arrive(0);
        b.park(ProcId(1), 2);
        // Third participant finishes its stream instead of arriving.
        assert!(b.retire_participant());
        let released = b.release();
        assert_eq!(released.len(), 2);
    }

    #[test]
    fn retiring_below_arrivals_is_safe_when_empty() {
        let mut b = BarrierState::new(2);
        assert!(!b.retire_participant()); // 1 expected, 0 arrived
        assert!(!b.retire_participant()); // 0 expected → barrier unused
    }
}
