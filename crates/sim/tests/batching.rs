//! Sink-batching differential: a full simulation whose engine forwards
//! every protocol event straight into the global `CounterSink` must
//! produce a byte-identical `SimReport` — traffic, counters, breakdowns
//! and all — to the default batched configuration, whose counts flush
//! only at sync points (lock/unlock/barrier/drain) and at report time.
//!
//! The apps are chosen to exercise every flush point: Radiosity is
//! lock-heavy (flushes interleave with lock parks and handoffs), FFT and
//! Ocean are barrier-heavy (flushes straddle barrier parks/releases),
//! and the MP_87 runs add replacement events (injections, migrations)
//! between flushes.

use coma_protocol::{BaselineEngine, BaselineKind, CoherenceEngine, MemorySystem};
use coma_sim::{MemoryModel, SimParams, Simulation};
use coma_stats::SimReport;
use coma_types::MemoryPressure;
use coma_workloads::AppId;
use coma_workloads::Scale;

fn params(ppn: usize, mp: MemoryPressure, model: MemoryModel) -> SimParams {
    let mut p = SimParams::default();
    p.machine.procs_per_node = ppn;
    p.machine.memory_pressure = mp;
    p.memory_model = model;
    p
}

/// Run with the engine's default batched sink.
fn run_batched(app: AppId, params: &SimParams) -> SimReport {
    let wl = app.build(16, 7, Scale::SMOKE);
    Simulation::new(wl, params).unwrap().run()
}

/// Run with an identically built engine forced into direct (unbatched)
/// event forwarding, driven through `Simulation::with_memory`.
fn run_direct(app: AppId, params: &SimParams) -> SimReport {
    let wl = app.build(16, 7, Scale::SMOKE);
    let geom = params.machine.geometry(wl.ws_bytes).unwrap();
    let mem: Box<dyn MemorySystem> = match params.memory_model {
        MemoryModel::Coma => {
            let mut e = CoherenceEngine::with_inclusion(
                geom,
                params.victim_policy,
                params.accept_policy,
                params.machine.intra_node_transfers,
                params.machine.inclusive_hierarchy,
            );
            e.set_direct_stats(true);
            Box::new(e)
        }
        MemoryModel::Numa => {
            let mut e = BaselineEngine::new(geom, BaselineKind::Numa);
            e.set_direct_stats(true);
            Box::new(e)
        }
        MemoryModel::Uma => {
            let mut e = BaselineEngine::new(geom, BaselineKind::Uma);
            e.set_direct_stats(true);
            Box::new(e)
        }
    };
    Simulation::with_memory(wl, params, mem).run()
}

fn assert_identical(app: AppId, params: &SimParams) {
    let batched = run_batched(app, params);
    let direct = run_direct(app, params);
    assert_eq!(
        batched.traffic, direct.traffic,
        "{app}: batched traffic diverges from direct"
    );
    assert_eq!(
        (
            batched.injections,
            batched.ownership_migrations,
            batched.shared_drops,
            batched.cold_allocs
        ),
        (
            direct.injections,
            direct.ownership_migrations,
            direct.shared_drops,
            direct.cold_allocs
        ),
        "{app}: batched protocol counters diverge from direct"
    );
    assert_eq!(batched, direct, "{app}: batched SimReport diverges");
}

#[test]
fn lock_heavy_run_flushes_across_lock_parks() {
    // Radiosity's task-queue locks park and hand off constantly; batched
    // counts must survive every park/release boundary.
    assert_identical(
        AppId::Radiosity,
        &params(2, MemoryPressure::MP_50, MemoryModel::Coma),
    );
}

#[test]
fn barrier_heavy_run_flushes_across_barrier_parks() {
    assert_identical(
        AppId::Fft,
        &params(1, MemoryPressure::MP_50, MemoryModel::Coma),
    );
}

#[test]
fn replacement_storm_keeps_batched_counts_exact() {
    // MP_87 drives injections/migrations/pageouts between flush points.
    assert_identical(
        AppId::OceanNon,
        &params(4, MemoryPressure::MP_87, MemoryModel::Coma),
    );
}

#[test]
fn numa_baseline_batches_identically() {
    assert_identical(
        AppId::Fft,
        &params(2, MemoryPressure::MP_50, MemoryModel::Numa),
    );
}

#[test]
fn uma_baseline_batches_identically() {
    assert_identical(
        AppId::LuCont,
        &params(1, MemoryPressure::MP_50, MemoryModel::Uma),
    );
}

#[test]
fn audit_still_sees_every_event_when_batched() {
    // The live auditor polls per-access transaction counts off the
    // decorator above the batched sink; with batching on it must still
    // fire (and find clean invariants) on a replacement-heavy run.
    let mut p = params(4, MemoryPressure::MP_87, MemoryModel::Coma);
    p.audit = true;
    let r = run_batched(AppId::LuNon, &p);
    assert!(r.injections > 0, "run too tame to exercise the auditor");
}
