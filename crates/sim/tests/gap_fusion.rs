//! Gap-fusion differential: with the fused compute-gap fast path on
//! (the default), every simulation must issue the *same memory accesses
//! in the same order* and produce the same `exec_time_ns` — in fact the
//! same whole `SimReport` — as the unfused reference schedule in which
//! every compute gap is a separate driver event.
//!
//! A recording `MemorySystem` wrapper captures the exact sequence of
//! protocol-level reads and writes (the only side-effecting events a
//! gap could conceivably displace), so this checks event *order*, not
//! just totals.

use std::cell::RefCell;
use std::rc::Rc;

use coma_protocol::{CoherenceEngine, MemorySystem, Outcome};
use coma_sim::{SimParams, Simulation};
use coma_stats::{ProtocolCounters, SimReport, Traffic};
use coma_types::{LineNum, MachineGeometry, MemoryPressure, ProcId};
use coma_workloads::{AppId, Scale};

/// One protocol access: `(is_write, proc, line)`.
type Access = (bool, u16, u64);

/// A `MemorySystem` decorator that logs every read/write in issue order.
struct Recorder {
    inner: CoherenceEngine,
    log: Rc<RefCell<Vec<Access>>>,
}

impl MemorySystem for Recorder {
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        self.log
            .borrow_mut()
            .push((false, proc.as_usize() as u16, line.0));
        self.inner.read(proc, line)
    }

    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        self.log
            .borrow_mut()
            .push((true, proc.as_usize() as u16, line.0));
        self.inner.write(proc, line)
    }

    fn geometry(&self) -> &MachineGeometry {
        self.inner.geometry()
    }

    fn flush_stats(&mut self) {
        self.inner.flush_stats()
    }

    fn traffic(&self) -> &Traffic {
        self.inner.traffic()
    }

    fn counters(&self) -> &ProtocolCounters {
        self.inner.counters()
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.inner.check_invariants()
    }

    fn am_census(&self) -> (usize, usize, usize) {
        self.inner.am_census()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        &self.inner
    }
}

fn params(ppn: usize, mp: MemoryPressure) -> SimParams {
    let mut p = SimParams::default();
    p.machine.procs_per_node = ppn;
    p.machine.memory_pressure = mp;
    p
}

/// Run `app` with fusion on or off, returning the report and the full
/// ordered access log.
fn run_recorded(app: AppId, params: &SimParams, fuse: bool) -> (SimReport, Vec<Access>) {
    let wl = app.build(16, 3, Scale::SMOKE);
    let geom = params.machine.geometry(wl.ws_bytes).unwrap();
    let log = Rc::new(RefCell::new(Vec::new()));
    let rec = Recorder {
        inner: CoherenceEngine::with_inclusion(
            geom,
            params.victim_policy,
            params.accept_policy,
            params.machine.intra_node_transfers,
            params.machine.inclusive_hierarchy,
        ),
        log: Rc::clone(&log),
    };
    let mut sim = Simulation::with_memory(wl, params, Box::new(rec));
    sim.set_fuse_gaps(fuse);
    let report = sim.run();
    let accesses = log.borrow().clone();
    (report, accesses)
}

fn assert_fusion_invisible(app: AppId, params: &SimParams) {
    let (fused_report, fused_log) = run_recorded(app, params, true);
    let (ref_report, ref_log) = run_recorded(app, params, false);
    assert_eq!(
        fused_log.len(),
        ref_log.len(),
        "{app}: fusion changed the number of protocol accesses"
    );
    if let Some(i) = (0..ref_log.len()).find(|&i| fused_log[i] != ref_log[i]) {
        panic!(
            "{app}: access {i} reordered by fusion: fused {:?} vs reference {:?}",
            fused_log[i], ref_log[i]
        );
    }
    assert_eq!(
        fused_report.exec_time_ns, ref_report.exec_time_ns,
        "{app}: fusion changed exec_time_ns"
    );
    assert_eq!(fused_report, ref_report, "{app}: fusion changed the report");
}

#[test]
fn fft_barrier_phases() {
    // Long per-phase gap runs ending at barriers: fused advances must
    // park at exactly the reference instants.
    assert_fusion_invisible(AppId::Fft, &params(2, MemoryPressure::MP_75));
}

#[test]
fn radiosity_lock_handoffs() {
    // Lock parks interleave with gap-consumed-but-op-pending states
    // (`gap_done`), the subtlest corner of the fused path.
    assert_fusion_invisible(AppId::Radiosity, &params(4, MemoryPressure::MP_50));
}

#[test]
fn radix_zero_gap_bursts() {
    // Radix phases emit back-to-back references with zero-length gaps:
    // the fast path must not insert or lose any time there.
    assert_fusion_invisible(AppId::Radix, &params(1, MemoryPressure::MP_50));
}

#[test]
fn ocean_high_pressure_contention() {
    // Replacement storms plus nearest-neighbour sharing: heavy resource
    // contention makes `precedes` fail often, exercising the unfused
    // fallback arm inside the fused run itself.
    assert_fusion_invisible(AppId::OceanNon, &params(1, MemoryPressure::MP_87));
}

#[test]
fn barnes_irregular_sharing() {
    assert_fusion_invisible(AppId::Barnes, &params(2, MemoryPressure::MP_50));
}
