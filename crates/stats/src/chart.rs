//! Minimal dependency-free SVG charts.
//!
//! The experiment binaries regenerate the paper's figures as stacked-bar
//! SVGs (the same visual form the paper uses): groups of bars per
//! application, each bar stacked from segments (read/write/replace
//! traffic, or busy/SLC/AM/remote time).

use std::fmt::Write as _;

/// One stacked bar.
#[derive(Clone, Debug)]
pub struct Bar {
    /// Small label under the bar (e.g. "1p@50%").
    pub label: String,
    /// Segment values, bottom-up, in the chart's unit.
    pub segments: Vec<f64>,
}

/// A group of bars sharing a heading (e.g. one application).
#[derive(Clone, Debug)]
pub struct BarGroup {
    pub label: String,
    pub bars: Vec<Bar>,
}

/// A stacked-bar chart.
#[derive(Clone, Debug)]
pub struct BarChart {
    pub title: String,
    /// Legend entries, one per segment, bottom-up.
    pub series: Vec<String>,
    pub groups: Vec<BarGroup>,
    /// Y-axis label.
    pub y_label: String,
}

/// Brand-neutral categorical palette (≤ 5 segments used here).
const COLORS: [&str; 5] = ["#4878a8", "#e49444", "#d1605e", "#85b6b2", "#6a9f58"];

const BAR_W: f64 = 16.0;
const BAR_GAP: f64 = 4.0;
const GROUP_GAP: f64 = 26.0;
const PLOT_H: f64 = 260.0;
const MARGIN_L: f64 = 56.0;
const MARGIN_T: f64 = 46.0;
const MARGIN_B: f64 = 64.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

impl BarChart {
    pub fn new(title: impl Into<String>, series: Vec<String>, y_label: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            series,
            groups: Vec::new(),
            y_label: y_label.into(),
        }
    }

    pub fn group(&mut self, label: impl Into<String>) -> &mut BarGroup {
        self.groups.push(BarGroup {
            label: label.into(),
            bars: Vec::new(),
        });
        self.groups.last_mut().expect("just pushed")
    }

    /// Largest stacked total (for the y scale); at least 1 to stay finite.
    fn max_total(&self) -> f64 {
        self.groups
            .iter()
            .flat_map(|g| &g.bars)
            .map(|b| b.segments.iter().sum::<f64>())
            .fold(1.0_f64, f64::max)
    }

    /// Render the chart as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let max = self.max_total() * 1.05;
        let mut x = MARGIN_L + 10.0;
        // Pre-compute bar x positions.
        let mut group_spans = Vec::new();
        for g in &self.groups {
            let start = x;
            x += g.bars.len() as f64 * (BAR_W + BAR_GAP) - BAR_GAP;
            group_spans.push((start, x));
            x += GROUP_GAP;
        }
        let width = (x - GROUP_GAP + 140.0).max(320.0);
        let height = MARGIN_T + PLOT_H + MARGIN_B;

        let mut s = String::new();
        let _ = write!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}" font-family="sans-serif">"#
        );
        let _ = write!(
            s,
            r#"<rect width="100%" height="100%" fill="white"/><text x="{MARGIN_L}" y="24" font-size="15" font-weight="bold">{}</text>"#,
            esc(&self.title)
        );
        // Y axis with gridlines at quarters of the max.
        for k in 0..=4 {
            let v = max * k as f64 / 4.0;
            let y = MARGIN_T + PLOT_H - PLOT_H * k as f64 / 4.0;
            let _ = write!(
                s,
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/><text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{v:.0}</text>"##,
                width - 120.0,
                MARGIN_L - 6.0,
                y + 3.0
            );
        }
        let _ = write!(
            s,
            r#"<text x="14" y="{:.1}" font-size="11" transform="rotate(-90 14 {:.1})" text-anchor="middle">{}</text>"#,
            MARGIN_T + PLOT_H / 2.0,
            MARGIN_T + PLOT_H / 2.0,
            esc(&self.y_label)
        );

        // Bars.
        for (g, (start, end)) in self.groups.iter().zip(&group_spans) {
            let mut bx = *start;
            for bar in &g.bars {
                let mut y = MARGIN_T + PLOT_H;
                for (i, &v) in bar.segments.iter().enumerate() {
                    let h = (v / max) * PLOT_H;
                    y -= h;
                    let color = COLORS[i % COLORS.len()];
                    let _ = write!(
                        s,
                        r#"<rect x="{bx:.1}" y="{y:.1}" width="{BAR_W}" height="{h:.2}" fill="{color}"><title>{}: {} = {v:.1}</title></rect>"#,
                        esc(&bar.label),
                        esc(self.series.get(i).map(String::as_str).unwrap_or("?")),
                    );
                }
                // Bar sublabel, rotated.
                let _ = write!(
                    s,
                    r#"<text x="{:.1}" y="{:.1}" font-size="8" text-anchor="end" transform="rotate(-55 {:.1} {:.1})">{}</text>"#,
                    bx + BAR_W / 2.0,
                    MARGIN_T + PLOT_H + 12.0,
                    bx + BAR_W / 2.0,
                    MARGIN_T + PLOT_H + 12.0,
                    esc(&bar.label)
                );
                bx += BAR_W + BAR_GAP;
            }
            // Group heading under the bars.
            let _ = write!(
                s,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle" font-weight="bold">{}</text>"#,
                (start + end) / 2.0,
                MARGIN_T + PLOT_H + MARGIN_B - 10.0,
                esc(&g.label)
            );
        }

        // Legend.
        let lx = width - 110.0;
        for (i, name) in self.series.iter().enumerate() {
            let ly = MARGIN_T + 12.0 + i as f64 * 18.0;
            let _ = write!(
                s,
                r#"<rect x="{lx:.1}" y="{:.1}" width="12" height="12" fill="{}"/><text x="{:.1}" y="{ly:.1}" font-size="11">{}</text>"#,
                ly - 10.0,
                COLORS[i % COLORS.len()],
                lx + 16.0,
                esc(name)
            );
        }
        s.push_str("</svg>");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        let mut c = BarChart::new("Test", vec!["read".into(), "write".into()], "traffic (%)");
        let g = c.group("FFT");
        g.bars.push(Bar {
            label: "1p".into(),
            segments: vec![30.0, 10.0],
        });
        g.bars.push(Bar {
            label: "4p".into(),
            segments: vec![15.0, 5.0],
        });
        c
    }

    #[test]
    fn produces_valid_svg_shell() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Two bars × two segments = four rects plus background/legend.
        assert!(svg.matches("<rect").count() >= 6);
        assert!(svg.contains("FFT"));
        assert!(svg.contains("read"));
    }

    #[test]
    fn scales_to_largest_bar() {
        let svg = chart().to_svg();
        // The 40-unit bar must be drawn taller than the 20-unit bar:
        // compare total rect heights per bar via the title tooltips.
        assert!(svg.contains("1p: read = 30.0"));
        assert!(svg.contains("4p: write = 5.0"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = BarChart::new("a<b", vec!["s&p".into()], "y");
        c.group("g>h").bars.push(Bar {
            label: "l<l".into(),
            segments: vec![1.0],
        });
        let svg = c.to_svg();
        assert!(!svg.contains("a<b"));
        assert!(svg.contains("a&lt;b"));
        assert!(svg.contains("s&amp;p"));
    }

    #[test]
    fn empty_chart_is_still_valid() {
        let c = BarChart::new("empty", vec![], "y");
        let svg = c.to_svg();
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }
}
