//! Access counters and the Read Node Miss rate.

/// The level of the hierarchy that satisfied an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Level {
    /// First-level cache hit (costs nothing; counted as busy time).
    Flc,
    /// Own second-level cache hit.
    Slc,
    /// Dirty transfer from another SLC in the same node.
    PeerSlc,
    /// Node's attraction memory hit (includes on-demand page allocation).
    Am,
    /// The access left the node over the global bus — a *node miss*.
    Remote,
}

impl Level {
    /// All levels, for iteration.
    pub const ALL: [Level; 5] = [
        Level::Flc,
        Level::Slc,
        Level::PeerSlc,
        Level::Am,
        Level::Remote,
    ];

    /// Index into per-level count arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Level::Flc => 0,
            Level::Slc => 1,
            Level::PeerSlc => 2,
            Level::Am => 3,
            Level::Remote => 4,
        }
    }

    /// Did the access stay inside the node?
    #[inline]
    pub fn is_node_local(self) -> bool {
        self != Level::Remote
    }
}

/// Per-machine (or per-processor) access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// Reads by satisfying level.
    pub reads: [u64; 5],
    /// Writes by the level that granted ownership.
    pub writes: [u64; 5],
}

impl AccessCounts {
    pub fn record_read(&mut self, level: Level) {
        self.reads[level.idx()] += 1;
    }

    pub fn record_write(&mut self, level: Level) {
        self.writes[level.idx()] += 1;
    }

    /// Total reads performed.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total writes performed.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Reads that missed in the node (went on the global bus).
    pub fn read_node_misses(&self) -> u64 {
        self.reads[Level::Remote.idx()]
    }

    /// The paper's RNMr: node misses over *all* reads performed.
    pub fn rnm_rate(&self) -> f64 {
        let t = self.total_reads();
        if t == 0 {
            0.0
        } else {
            self.read_node_misses() as f64 / t as f64
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &AccessCounts) {
        for i in 0..5 {
            self.reads[i] += other.reads[i];
            self.writes[i] += other.writes[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rnm_rate_over_all_reads() {
        let mut c = AccessCounts::default();
        for _ in 0..90 {
            c.record_read(Level::Flc);
        }
        for _ in 0..10 {
            c.record_read(Level::Remote);
        }
        assert!((c.rnm_rate() - 0.10).abs() < 1e-12);
        assert_eq!(c.read_node_misses(), 10);
        assert_eq!(c.total_reads(), 100);
    }

    #[test]
    fn empty_counts_have_zero_rate() {
        assert_eq!(AccessCounts::default().rnm_rate(), 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = AccessCounts::default();
        a.record_read(Level::Am);
        a.record_write(Level::Slc);
        let mut b = AccessCounts::default();
        b.record_read(Level::Am);
        b.record_read(Level::Remote);
        a.merge(&b);
        assert_eq!(a.reads[Level::Am.idx()], 2);
        assert_eq!(a.reads[Level::Remote.idx()], 1);
        assert_eq!(a.total_writes(), 1);
    }

    #[test]
    fn level_locality() {
        assert!(Level::Flc.is_node_local());
        assert!(Level::PeerSlc.is_node_local());
        assert!(Level::Am.is_node_local());
        assert!(!Level::Remote.is_node_local());
    }

    #[test]
    fn level_indices_unique() {
        let mut seen = [false; 5];
        for l in Level::ALL {
            assert!(!seen[l.idx()]);
            seen[l.idx()] = true;
        }
    }
}
