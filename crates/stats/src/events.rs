//! The observability seam between the protocol engines and everything
//! that counts: a memory system emits [`ProtocolEvent`]s, an
//! [`EventSink`] turns them into numbers.
//!
//! Before this seam existed the engines poked `Traffic` methods and ad-hoc
//! counter fields directly, so every new statistic meant touching the
//! protocol code. Now the engines report *what happened* exactly once per
//! event and the sink decides what to count; experiments, the CLI and
//! tests all read the same [`CounterSink`] totals.

use crate::traffic::Traffic;

/// One protocol-level event, as emitted by a memory system.
///
/// Each variant corresponds to exactly one global-interconnect transaction
/// or bookkeeping fact; the mapping to bytes/segments (Figures 3–4) lives
/// in the sink, not the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolEvent {
    /// A remote read fill supplied a Shared copy (data transaction).
    ReadFill,
    /// An ownership upgrade (invalidation broadcast, command only).
    Upgrade,
    /// A read-exclusive fetch (write miss carrying data + invalidation).
    ReadExclusive,
    /// A displaced responsible copy was injected to another node (data).
    Injection,
    /// An injection resolved by migrating ownership to a replica (command).
    OwnershipMigration,
    /// An injection found no receiver machine-wide: OS page-out.
    Pageout,
    /// A Shared replica was silently dropped by replacement (no traffic).
    SharedDrop,
    /// A line was first materialized by on-demand page allocation.
    ColdAlloc,
    /// A dirty private-cache victim was written back to a remote home
    /// (the NUMA baseline's replacement-traffic analogue; data).
    RemoteWriteback,
}

impl ProtocolEvent {
    /// Number of distinct event kinds (size of batched count arrays).
    pub const COUNT: usize = 9;

    /// All event kinds, in [`Self::idx`] order.
    pub const ALL: [ProtocolEvent; Self::COUNT] = [
        ProtocolEvent::ReadFill,
        ProtocolEvent::Upgrade,
        ProtocolEvent::ReadExclusive,
        ProtocolEvent::Injection,
        ProtocolEvent::OwnershipMigration,
        ProtocolEvent::Pageout,
        ProtocolEvent::SharedDrop,
        ProtocolEvent::ColdAlloc,
        ProtocolEvent::RemoteWriteback,
    ];

    /// Index into per-event count arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// Anything that consumes protocol events.
///
/// The default implementation every simulation uses is [`CounterSink`];
/// tests can substitute recording sinks, and future backends (tracing,
/// sampling, per-node attribution) slot in here without touching the
/// protocol crates.
pub trait EventSink {
    fn record(&mut self, ev: ProtocolEvent);
}

/// Replacement / allocation event counters (beyond bus traffic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// Successful injections of displaced responsible copies.
    pub injections: u64,
    /// Injections resolved by migrating ownership to an existing replica.
    pub ownership_migrations: u64,
    /// Shared replicas silently dropped by replacement.
    pub shared_drops: u64,
    /// Injections with no receiver anywhere (OS page-out).
    pub pageouts: u64,
    /// Lines first materialized by on-demand page allocation.
    pub cold_allocs: u64,
    /// Dirty write-backs to a remote home (NUMA baseline only).
    pub remote_writebacks: u64,
}

/// The standard sink: the paper's traffic decomposition plus the
/// replacement counters, updated exactly as the figures require.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSink {
    /// Global interconnect traffic, decomposed as in Figures 3–4.
    pub traffic: Traffic,
    /// Replacement / allocation event counters.
    pub counters: ProtocolCounters,
}

impl EventSink for CounterSink {
    fn record(&mut self, ev: ProtocolEvent) {
        match ev {
            ProtocolEvent::ReadFill => self.traffic.record_read_fill(),
            ProtocolEvent::Upgrade => self.traffic.record_upgrade(),
            ProtocolEvent::ReadExclusive => self.traffic.record_read_exclusive(),
            ProtocolEvent::Injection => {
                self.traffic.record_injection();
                self.counters.injections += 1;
            }
            ProtocolEvent::OwnershipMigration => {
                self.traffic.record_ownership_migration();
                self.counters.ownership_migrations += 1;
            }
            ProtocolEvent::Pageout => {
                self.traffic.record_pageout();
                self.counters.pageouts += 1;
            }
            ProtocolEvent::SharedDrop => self.counters.shared_drops += 1,
            ProtocolEvent::ColdAlloc => self.counters.cold_allocs += 1,
            ProtocolEvent::RemoteWriteback => {
                // The victim line's data crosses the interconnect to its
                // home: replacement-segment traffic, like an injection.
                self.traffic.record_injection();
                self.counters.remote_writebacks += 1;
            }
        }
    }
}

impl CounterSink {
    /// Record `n` occurrences of `ev` at once. Every counter this sink
    /// maintains is a plain sum, so bulk application is byte-identical
    /// to `n` individual [`EventSink::record`] calls — this is what a
    /// [`BatchedSink`] flush uses.
    pub fn record_n(&mut self, ev: ProtocolEvent, n: u64) {
        use crate::traffic::{CMD_TXN_BYTES, DATA_TXN_BYTES};
        if n == 0 {
            return;
        }
        match ev {
            ProtocolEvent::ReadFill => {
                self.traffic.read_txns += n;
                self.traffic.read_bytes += n * DATA_TXN_BYTES;
            }
            ProtocolEvent::Upgrade => {
                self.traffic.write_txns += n;
                self.traffic.write_bytes += n * CMD_TXN_BYTES;
            }
            ProtocolEvent::ReadExclusive => {
                self.traffic.write_txns += n;
                self.traffic.write_bytes += n * DATA_TXN_BYTES;
            }
            ProtocolEvent::Injection => {
                self.traffic.replace_txns += n;
                self.traffic.replace_bytes += n * DATA_TXN_BYTES;
                self.counters.injections += n;
            }
            ProtocolEvent::OwnershipMigration => {
                self.traffic.replace_txns += n;
                self.traffic.replace_bytes += n * CMD_TXN_BYTES;
                self.counters.ownership_migrations += n;
            }
            ProtocolEvent::Pageout => {
                self.traffic.pageouts += n;
                self.traffic.replace_txns += n;
                self.traffic.replace_bytes += n * DATA_TXN_BYTES;
                self.counters.pageouts += n;
            }
            ProtocolEvent::SharedDrop => self.counters.shared_drops += n,
            ProtocolEvent::ColdAlloc => self.counters.cold_allocs += n,
            ProtocolEvent::RemoteWriteback => {
                self.traffic.replace_txns += n;
                self.traffic.replace_bytes += n * DATA_TXN_BYTES;
                self.counters.remote_writebacks += n;
            }
        }
    }
}

/// An [`EventSink`] that batches: the per-event cost is one increment of
/// a small local count array; the [`CounterSink`]'s scattered traffic
/// and counter fields are only touched when [`BatchedSink::flush`] runs
/// (the driver flushes at synchronization points — lock, unlock,
/// barrier, write-buffer drain — and when building the final report).
///
/// Because every number the inner sink maintains is a plain sum, flush
/// placement cannot change any total: a batched run is byte-identical
/// to a direct one (pinned by the differential tests). Code that reads
/// [`Self::sink`] mid-run must flush first; the accessor debug-asserts
/// that nothing is pending.
///
/// `direct` mode (for differential testing) bypasses batching entirely
/// and forwards each event straight to the inner sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchedSink {
    pending: [u64; ProtocolEvent::COUNT],
    inner: CounterSink,
    direct: bool,
}

impl EventSink for BatchedSink {
    #[inline]
    fn record(&mut self, ev: ProtocolEvent) {
        if self.direct {
            self.inner.record(ev);
        } else {
            self.pending[ev.idx()] += 1;
        }
    }
}

impl BatchedSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink that forwards every event unbatched (reference behavior
    /// for the batching differential tests).
    pub fn direct() -> Self {
        BatchedSink {
            direct: true,
            ..Self::default()
        }
    }

    /// Switch between batched and direct forwarding. Flushes first, so
    /// toggling mid-run loses nothing.
    pub fn set_direct(&mut self, on: bool) {
        self.flush();
        self.direct = on;
    }

    /// Apply all pending counts to the inner [`CounterSink`].
    pub fn flush(&mut self) {
        for ev in ProtocolEvent::ALL {
            let n = std::mem::take(&mut self.pending[ev.idx()]);
            self.inner.record_n(ev, n);
        }
    }

    /// Events recorded since the last flush.
    pub fn pending_events(&self) -> u64 {
        self.pending.iter().sum()
    }

    /// The flushed totals. Callers must [`Self::flush`] first; reading
    /// with events pending means the totals are stale.
    #[inline]
    pub fn sink(&self) -> &CounterSink {
        debug_assert_eq!(
            self.pending_events(),
            0,
            "reading batched totals with unflushed events pending"
        );
        &self.inner
    }
}

/// An [`EventSink`] decorator that counts protocol transactions on top of
/// whatever the inner sink does with them.
///
/// This is the seam the live invariant auditor hangs off: the engines emit
/// events exactly once per global transaction, so "did this access perform
/// a protocol transaction?" is answerable by polling
/// [`AuditSink::take_pending`] after the access — without the protocol code
/// knowing auditing exists. When disarmed (the default) the decorator adds
/// one predictable branch per event.
#[derive(Clone, Copy, Debug, Default)]
pub struct AuditSink<S = CounterSink> {
    /// The decorated sink; totals keep flowing through unchanged.
    pub inner: S,
    armed: bool,
    pending: u32,
}

impl<S: EventSink> EventSink for AuditSink<S> {
    #[inline]
    fn record(&mut self, ev: ProtocolEvent) {
        if self.armed {
            self.pending += 1;
        }
        self.inner.record(ev);
    }
}

impl<S> AuditSink<S> {
    pub fn new(inner: S) -> Self {
        AuditSink {
            inner,
            armed: false,
            pending: 0,
        }
    }

    /// Enable or disable transaction counting.
    pub fn arm(&mut self, on: bool) {
        self.armed = on;
        self.pending = 0;
    }

    /// Is the decorator currently counting?
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Number of events recorded since the last poll; resets the count.
    pub fn take_pending(&mut self) -> u32 {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{CMD_TXN_BYTES, DATA_TXN_BYTES};

    #[test]
    fn events_map_to_traffic_segments() {
        let mut s = CounterSink::default();
        s.record(ProtocolEvent::ReadFill);
        s.record(ProtocolEvent::Upgrade);
        s.record(ProtocolEvent::ReadExclusive);
        s.record(ProtocolEvent::Injection);
        s.record(ProtocolEvent::OwnershipMigration);
        assert_eq!(s.traffic.read_bytes, DATA_TXN_BYTES);
        assert_eq!(s.traffic.write_bytes, CMD_TXN_BYTES + DATA_TXN_BYTES);
        assert_eq!(s.traffic.replace_bytes, DATA_TXN_BYTES + CMD_TXN_BYTES);
        assert_eq!(s.counters.injections, 1);
        assert_eq!(s.counters.ownership_migrations, 1);
    }

    #[test]
    fn bookkeeping_events_move_no_bytes() {
        let mut s = CounterSink::default();
        s.record(ProtocolEvent::SharedDrop);
        s.record(ProtocolEvent::ColdAlloc);
        assert_eq!(s.traffic.total_bytes(), 0);
        assert_eq!(s.counters.shared_drops, 1);
        assert_eq!(s.counters.cold_allocs, 1);
    }

    #[test]
    fn pageout_counts_in_both_traffic_and_counters() {
        let mut s = CounterSink::default();
        s.record(ProtocolEvent::Pageout);
        assert_eq!(s.traffic.pageouts, 1);
        assert_eq!(s.traffic.replace_txns, 1);
        assert_eq!(s.counters.pageouts, 1);
    }

    #[test]
    fn remote_writeback_is_replacement_traffic() {
        let mut s = CounterSink::default();
        s.record(ProtocolEvent::RemoteWriteback);
        assert_eq!(s.traffic.replace_bytes, DATA_TXN_BYTES);
        assert_eq!(s.counters.remote_writebacks, 1);
    }

    #[test]
    fn all_table_matches_discriminant_order() {
        for (i, ev) in ProtocolEvent::ALL.into_iter().enumerate() {
            assert_eq!(ev.idx(), i);
        }
    }

    #[test]
    fn record_n_matches_n_individual_records() {
        for ev in ProtocolEvent::ALL {
            for n in [0u64, 1, 2, 7] {
                let mut bulk = CounterSink::default();
                bulk.record_n(ev, n);
                let mut one_by_one = CounterSink::default();
                for _ in 0..n {
                    one_by_one.record(ev);
                }
                assert_eq!(bulk, one_by_one, "{ev:?} x{n}");
            }
        }
    }

    #[test]
    fn batched_flush_is_byte_identical_to_direct() {
        // A deterministic pseudo-random event sequence, replayed through a
        // direct CounterSink and a BatchedSink with flushes interleaved at
        // arbitrary points: totals must agree exactly.
        let mut direct = CounterSink::default();
        let mut batched = BatchedSink::new();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let ev = ProtocolEvent::ALL[(x % ProtocolEvent::COUNT as u64) as usize];
            direct.record(ev);
            batched.record(ev);
            if x.is_multiple_of(37) {
                batched.flush();
            }
            if i == 5000 {
                // Mid-run read after a flush must already match.
                batched.flush();
                assert_eq!(*batched.sink(), direct);
            }
        }
        batched.flush();
        assert_eq!(batched.pending_events(), 0);
        assert_eq!(*batched.sink(), direct);
    }

    #[test]
    fn direct_mode_bypasses_batching() {
        let mut s = BatchedSink::direct();
        s.record(ProtocolEvent::ReadFill);
        assert_eq!(s.pending_events(), 0);
        assert_eq!(s.sink().traffic.read_txns, 1);
    }

    #[test]
    fn audit_decorator_counts_over_batched_inner() {
        // The auditor sees every event unbatched even when the inner sink
        // defers its counting.
        let mut s: AuditSink<BatchedSink> = AuditSink::new(BatchedSink::new());
        s.arm(true);
        s.record(ProtocolEvent::Upgrade);
        s.record(ProtocolEvent::SharedDrop);
        assert_eq!(s.take_pending(), 2);
        assert_eq!(s.inner.pending_events(), 2);
        s.inner.flush();
        assert_eq!(s.inner.sink().counters.shared_drops, 1);
    }
}
