//! The observability seam between the protocol engines and everything
//! that counts: a memory system emits [`ProtocolEvent`]s, an
//! [`EventSink`] turns them into numbers.
//!
//! Before this seam existed the engines poked `Traffic` methods and ad-hoc
//! counter fields directly, so every new statistic meant touching the
//! protocol code. Now the engines report *what happened* exactly once per
//! event and the sink decides what to count; experiments, the CLI and
//! tests all read the same [`CounterSink`] totals.

use crate::traffic::Traffic;

/// One protocol-level event, as emitted by a memory system.
///
/// Each variant corresponds to exactly one global-interconnect transaction
/// or bookkeeping fact; the mapping to bytes/segments (Figures 3–4) lives
/// in the sink, not the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolEvent {
    /// A remote read fill supplied a Shared copy (data transaction).
    ReadFill,
    /// An ownership upgrade (invalidation broadcast, command only).
    Upgrade,
    /// A read-exclusive fetch (write miss carrying data + invalidation).
    ReadExclusive,
    /// A displaced responsible copy was injected to another node (data).
    Injection,
    /// An injection resolved by migrating ownership to a replica (command).
    OwnershipMigration,
    /// An injection found no receiver machine-wide: OS page-out.
    Pageout,
    /// A Shared replica was silently dropped by replacement (no traffic).
    SharedDrop,
    /// A line was first materialized by on-demand page allocation.
    ColdAlloc,
    /// A dirty private-cache victim was written back to a remote home
    /// (the NUMA baseline's replacement-traffic analogue; data).
    RemoteWriteback,
}

/// Anything that consumes protocol events.
///
/// The default implementation every simulation uses is [`CounterSink`];
/// tests can substitute recording sinks, and future backends (tracing,
/// sampling, per-node attribution) slot in here without touching the
/// protocol crates.
pub trait EventSink {
    fn record(&mut self, ev: ProtocolEvent);
}

/// Replacement / allocation event counters (beyond bus traffic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// Successful injections of displaced responsible copies.
    pub injections: u64,
    /// Injections resolved by migrating ownership to an existing replica.
    pub ownership_migrations: u64,
    /// Shared replicas silently dropped by replacement.
    pub shared_drops: u64,
    /// Injections with no receiver anywhere (OS page-out).
    pub pageouts: u64,
    /// Lines first materialized by on-demand page allocation.
    pub cold_allocs: u64,
    /// Dirty write-backs to a remote home (NUMA baseline only).
    pub remote_writebacks: u64,
}

/// The standard sink: the paper's traffic decomposition plus the
/// replacement counters, updated exactly as the figures require.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSink {
    /// Global interconnect traffic, decomposed as in Figures 3–4.
    pub traffic: Traffic,
    /// Replacement / allocation event counters.
    pub counters: ProtocolCounters,
}

impl EventSink for CounterSink {
    fn record(&mut self, ev: ProtocolEvent) {
        match ev {
            ProtocolEvent::ReadFill => self.traffic.record_read_fill(),
            ProtocolEvent::Upgrade => self.traffic.record_upgrade(),
            ProtocolEvent::ReadExclusive => self.traffic.record_read_exclusive(),
            ProtocolEvent::Injection => {
                self.traffic.record_injection();
                self.counters.injections += 1;
            }
            ProtocolEvent::OwnershipMigration => {
                self.traffic.record_ownership_migration();
                self.counters.ownership_migrations += 1;
            }
            ProtocolEvent::Pageout => {
                self.traffic.record_pageout();
                self.counters.pageouts += 1;
            }
            ProtocolEvent::SharedDrop => self.counters.shared_drops += 1,
            ProtocolEvent::ColdAlloc => self.counters.cold_allocs += 1,
            ProtocolEvent::RemoteWriteback => {
                // The victim line's data crosses the interconnect to its
                // home: replacement-segment traffic, like an injection.
                self.traffic.record_injection();
                self.counters.remote_writebacks += 1;
            }
        }
    }
}

/// An [`EventSink`] decorator that counts protocol transactions on top of
/// whatever the inner sink does with them.
///
/// This is the seam the live invariant auditor hangs off: the engines emit
/// events exactly once per global transaction, so "did this access perform
/// a protocol transaction?" is answerable by polling
/// [`AuditSink::take_pending`] after the access — without the protocol code
/// knowing auditing exists. When disarmed (the default) the decorator adds
/// one predictable branch per event.
#[derive(Clone, Copy, Debug, Default)]
pub struct AuditSink<S = CounterSink> {
    /// The decorated sink; totals keep flowing through unchanged.
    pub inner: S,
    armed: bool,
    pending: u32,
}

impl<S: EventSink> EventSink for AuditSink<S> {
    #[inline]
    fn record(&mut self, ev: ProtocolEvent) {
        if self.armed {
            self.pending += 1;
        }
        self.inner.record(ev);
    }
}

impl<S> AuditSink<S> {
    pub fn new(inner: S) -> Self {
        AuditSink {
            inner,
            armed: false,
            pending: 0,
        }
    }

    /// Enable or disable transaction counting.
    pub fn arm(&mut self, on: bool) {
        self.armed = on;
        self.pending = 0;
    }

    /// Is the decorator currently counting?
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Number of events recorded since the last poll; resets the count.
    pub fn take_pending(&mut self) -> u32 {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{CMD_TXN_BYTES, DATA_TXN_BYTES};

    #[test]
    fn events_map_to_traffic_segments() {
        let mut s = CounterSink::default();
        s.record(ProtocolEvent::ReadFill);
        s.record(ProtocolEvent::Upgrade);
        s.record(ProtocolEvent::ReadExclusive);
        s.record(ProtocolEvent::Injection);
        s.record(ProtocolEvent::OwnershipMigration);
        assert_eq!(s.traffic.read_bytes, DATA_TXN_BYTES);
        assert_eq!(s.traffic.write_bytes, CMD_TXN_BYTES + DATA_TXN_BYTES);
        assert_eq!(s.traffic.replace_bytes, DATA_TXN_BYTES + CMD_TXN_BYTES);
        assert_eq!(s.counters.injections, 1);
        assert_eq!(s.counters.ownership_migrations, 1);
    }

    #[test]
    fn bookkeeping_events_move_no_bytes() {
        let mut s = CounterSink::default();
        s.record(ProtocolEvent::SharedDrop);
        s.record(ProtocolEvent::ColdAlloc);
        assert_eq!(s.traffic.total_bytes(), 0);
        assert_eq!(s.counters.shared_drops, 1);
        assert_eq!(s.counters.cold_allocs, 1);
    }

    #[test]
    fn pageout_counts_in_both_traffic_and_counters() {
        let mut s = CounterSink::default();
        s.record(ProtocolEvent::Pageout);
        assert_eq!(s.traffic.pageouts, 1);
        assert_eq!(s.traffic.replace_txns, 1);
        assert_eq!(s.counters.pageouts, 1);
    }

    #[test]
    fn remote_writeback_is_replacement_traffic() {
        let mut s = CounterSink::default();
        s.record(ProtocolEvent::RemoteWriteback);
        assert_eq!(s.traffic.replace_bytes, DATA_TXN_BYTES);
        assert_eq!(s.counters.remote_writebacks, 1);
    }
}
