//! Execution-time decomposition (Figure 5).
//!
//! Per-processor time is split into the paper's four categories plus an
//! explicit synchronization-wait bucket:
//!
//! * **busy** — instruction execution and FLC hits;
//! * **slc** — stalls satisfied by the own second-level cache;
//! * **am** — stalls satisfied inside the node (AM or a peer SLC);
//! * **remote** — stalls that crossed the global bus (incl. write-buffer
//!   full stalls attributed to the level that was draining);
//! * **sync** — time parked at barriers and contended locks.
//!
//! When reproducing Figure 5 the sync bucket is folded into *remote*
//! (barrier and lock hand-offs are dominated by the coherence misses on
//! the sync lines, which is where the paper's categories put them).

use coma_types::Nanos;

/// One processor's (or the machine-average) time breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecBreakdown {
    pub busy_ns: Nanos,
    pub slc_ns: Nanos,
    pub am_ns: Nanos,
    pub remote_ns: Nanos,
    pub sync_ns: Nanos,
}

impl ExecBreakdown {
    /// Total accounted time.
    pub fn total_ns(&self) -> Nanos {
        self.busy_ns + self.slc_ns + self.am_ns + self.remote_ns + self.sync_ns
    }

    /// The paper's four Figure-5 segments `(busy, slc, am, remote)` with
    /// sync folded into remote.
    pub fn figure5_segments(&self) -> (Nanos, Nanos, Nanos, Nanos) {
        (
            self.busy_ns,
            self.slc_ns,
            self.am_ns,
            self.remote_ns + self.sync_ns,
        )
    }

    /// Fractions of total for the four Figure-5 segments.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_ns();
        if t == 0 {
            return [0.0; 4];
        }
        let (b, s, a, r) = self.figure5_segments();
        [
            b as f64 / t as f64,
            s as f64 / t as f64,
            a as f64 / t as f64,
            r as f64 / t as f64,
        ]
    }

    pub fn merge(&mut self, o: &ExecBreakdown) {
        self.busy_ns += o.busy_ns;
        self.slc_ns += o.slc_ns;
        self.am_ns += o.am_ns;
        self.remote_ns += o.remote_ns;
        self.sync_ns += o.sync_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_buckets() {
        let e = ExecBreakdown {
            busy_ns: 10,
            slc_ns: 20,
            am_ns: 30,
            remote_ns: 40,
            sync_ns: 5,
        };
        assert_eq!(e.total_ns(), 105);
    }

    #[test]
    fn figure5_folds_sync_into_remote() {
        let e = ExecBreakdown {
            busy_ns: 1,
            slc_ns: 2,
            am_ns: 3,
            remote_ns: 4,
            sync_ns: 6,
        };
        assert_eq!(e.figure5_segments(), (1, 2, 3, 10));
    }

    #[test]
    fn fractions_sum_to_one() {
        let e = ExecBreakdown {
            busy_ns: 25,
            slc_ns: 25,
            am_ns: 25,
            remote_ns: 20,
            sync_ns: 5,
        };
        let f = e.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_breakdown_has_zero_fractions() {
        assert_eq!(ExecBreakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn merge_adds() {
        let mut a = ExecBreakdown {
            busy_ns: 1,
            ..Default::default()
        };
        a.merge(&ExecBreakdown {
            busy_ns: 2,
            sync_ns: 3,
            ..Default::default()
        });
        assert_eq!(a.busy_ns, 3);
        assert_eq!(a.sync_ns, 3);
    }
}
