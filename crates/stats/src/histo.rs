//! Read-latency histogram.
//!
//! Power-of-two buckets over nanoseconds: enough resolution to separate
//! the hierarchy's levels (0 / 32 / 148 / 332 ns and their queued tails)
//! at constant memory cost. The simulator records every read's latency;
//! reports expose percentiles — the tail is where contention lives.

use coma_types::Nanos;

/// Number of log2 buckets (covers up to ~2 ms, far beyond any access).
const BUCKETS: usize = 22;

/// A histogram of read latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHisto {
    counts: [u64; BUCKETS],
    total: u64,
    max_ns: Nanos,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto {
            counts: [0; BUCKETS],
            total: 0,
            max_ns: 0,
        }
    }
}

#[inline]
fn bucket_of(ns: Nanos) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Upper bound (exclusive) of a bucket, for display.
fn bucket_hi(i: usize) -> Nanos {
    if i == 0 {
        1
    } else {
        1u64 << i
    }
}

impl LatencyHisto {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access latency.
    #[inline]
    pub fn record(&mut self, ns: Nanos) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn max_ns(&self) -> Nanos {
        self.max_ns
    }

    /// Upper-bound estimate of the `q`-quantile (0.0 ..= 1.0): the
    /// exclusive top of the bucket containing it (exact for the max).
    pub fn quantile(&self, q: f64) -> Nanos {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_hi(i).min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, o: &LatencyHisto) {
        for i in 0..BUCKETS {
            self.counts[i] += o.counts[i];
        }
        self.total += o.total;
        self.max_ns = self.max_ns.max(o.max_ns);
    }

    /// Fixed-width serialization for the sweep result cache: every bucket
    /// count, then the total, then the maximum. See [`Self::from_words`].
    pub fn to_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(BUCKETS + 2);
        w.extend_from_slice(&self.counts);
        w.push(self.total);
        w.push(self.max_ns);
        w
    }

    /// Rebuild a histogram from [`Self::to_words`] output. Returns `None`
    /// on a length mismatch or an internally inconsistent encoding (the
    /// recorded total must equal the sum of the bucket counts), so a
    /// corrupted cache entry is rejected rather than decoded.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        if words.len() != BUCKETS + 2 {
            return None;
        }
        let mut counts = [0u64; BUCKETS];
        counts.copy_from_slice(&words[..BUCKETS]);
        let total = words[BUCKETS];
        let max_ns = words[BUCKETS + 1];
        if counts.iter().copied().try_fold(0u64, u64::checked_add)? != total {
            return None;
        }
        Some(LatencyHisto {
            counts,
            total,
            max_ns,
        })
    }

    /// Non-empty buckets as `(range_hi_ns, count)` pairs, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (Nanos, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_hi(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(32), 6);
        assert_eq!(bucket_of(332), 9);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LatencyHisto::new();
        for _ in 0..90 {
            h.record(0); // FLC hits
        }
        for _ in 0..10 {
            h.record(332); // remote
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile(0.5), 1); // bucket [0,1): FLC
        let p99 = h.quantile(0.99);
        assert!((332..=512).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 332u64.max(h.quantile(1.0)).min(512));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHisto::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHisto::new();
        a.record(32);
        let mut b = LatencyHisto::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.max_ns(), 1000);
    }

    #[test]
    fn words_round_trip_and_reject_corruption() {
        let mut h = LatencyHisto::new();
        for ns in [0, 32, 332, 332, 100_000] {
            h.record(ns);
        }
        let words = h.to_words();
        assert_eq!(LatencyHisto::from_words(&words), Some(h));
        // Wrong length.
        assert_eq!(LatencyHisto::from_words(&words[1..]), None);
        // Inconsistent total.
        let mut bad = words.clone();
        bad[BUCKETS] += 1;
        assert_eq!(LatencyHisto::from_words(&bad), None);
    }

    #[test]
    fn buckets_iteration() {
        let mut h = LatencyHisto::new();
        h.record(0);
        h.record(100);
        h.record(100);
        let v: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(v, vec![(1, 1), (128, 2)]);
    }
}
