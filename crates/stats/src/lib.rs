//! Statistics for the cluster-based COMA simulator.
//!
//! The paper reports three families of numbers, and this crate carries
//! all of them:
//!
//! * the **Read Node Miss rate** (RNMr, §4.1) — reads that leave the node
//!   as a fraction of *all* reads, tracked by [`AccessCounts`];
//! * **global bus traffic** split into read / write / replacement bytes
//!   (§4.2, Figures 3–4) — [`Traffic`];
//! * the **execution-time breakdown** into Busy / SLC-stall / AM-stall /
//!   Remote-stall (§4.3, Figure 5) — [`ExecBreakdown`].
//!
//! [`SimReport`] bundles one run's worth of everything, and [`table`]
//! renders aligned ASCII tables and CSV for the experiment binaries.

pub mod chart;
pub mod counts;
pub mod events;
pub mod exec;
pub mod histo;
pub mod report;
pub mod table;
pub mod traffic;

pub use chart::{Bar, BarChart, BarGroup};
pub use counts::{AccessCounts, Level};
pub use events::{AuditSink, BatchedSink, CounterSink, EventSink, ProtocolCounters, ProtocolEvent};
pub use exec::ExecBreakdown;
pub use histo::LatencyHisto;
pub use report::SimReport;
pub use table::Table;
pub use traffic::Traffic;
