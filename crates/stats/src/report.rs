//! The complete result of one simulation run.

use crate::counts::AccessCounts;
use crate::exec::ExecBreakdown;
use crate::histo::LatencyHisto;
use crate::traffic::Traffic;
use coma_types::Nanos;

/// Everything a single simulation produced. `Eq` is exact — the
/// byte-identity differential tests (batched sinks, gap fusion) compare
/// whole reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Wall-clock of the simulated parallel section: the time at which the
    /// last processor finished.
    pub exec_time_ns: Nanos,
    /// Machine-wide access counters.
    pub counts: AccessCounts,
    /// Global-bus traffic.
    pub traffic: Traffic,
    /// Per-processor execution-time breakdowns (index = processor id).
    pub per_proc: Vec<ExecBreakdown>,
    /// Total attraction-memory injections (successful relocations).
    pub injections: u64,
    /// Injections resolved by migrating ownership to an existing replica.
    pub ownership_migrations: u64,
    /// Shared replicas silently dropped by replacements.
    pub shared_drops: u64,
    /// Lines first materialized by on-demand page allocation.
    pub cold_allocs: u64,
    /// Global-bus busy time (for utilization).
    pub bus_busy_ns: Nanos,
    /// Sum of AM DRAM busy time across nodes.
    pub dram_busy_ns: Nanos,
    /// Distribution of read latencies (all processors).
    pub read_latency: LatencyHisto,
}

impl SimReport {
    /// Machine-average execution breakdown.
    pub fn avg_breakdown(&self) -> ExecBreakdown {
        let mut total = ExecBreakdown::default();
        for b in &self.per_proc {
            total.merge(b);
        }
        if self.per_proc.is_empty() {
            return total;
        }
        let n = self.per_proc.len() as u64;
        ExecBreakdown {
            busy_ns: total.busy_ns / n,
            slc_ns: total.slc_ns / n,
            am_ns: total.am_ns / n,
            remote_ns: total.remote_ns / n,
            sync_ns: total.sync_ns / n,
        }
    }

    /// The paper's Read Node Miss rate.
    pub fn rnm_rate(&self) -> f64 {
        self.counts.rnm_rate()
    }

    /// Global-bus utilization over the run.
    pub fn bus_utilization(&self) -> f64 {
        if self.exec_time_ns == 0 {
            0.0
        } else {
            self.bus_busy_ns as f64 / self.exec_time_ns as f64
        }
    }

    /// Bus bytes per processor read+write (traffic intensity).
    pub fn bytes_per_ref(&self) -> f64 {
        let refs = self.counts.total_reads() + self.counts.total_writes();
        if refs == 0 {
            0.0
        } else {
            self.traffic.total_bytes() as f64 / refs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::Level;

    #[test]
    fn avg_breakdown_divides_by_procs() {
        let r = SimReport {
            per_proc: vec![
                ExecBreakdown {
                    busy_ns: 10,
                    ..Default::default()
                },
                ExecBreakdown {
                    busy_ns: 30,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.avg_breakdown().busy_ns, 20);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.rnm_rate(), 0.0);
        assert_eq!(r.bus_utilization(), 0.0);
        assert_eq!(r.bytes_per_ref(), 0.0);
        assert_eq!(r.avg_breakdown(), ExecBreakdown::default());
    }

    #[test]
    fn bytes_per_ref_uses_all_refs() {
        let mut r = SimReport::default();
        r.counts.record_read(Level::Flc);
        r.counts.record_write(Level::Flc);
        r.traffic.record_read_fill();
        assert!((r.bytes_per_ref() - 36.0).abs() < 1e-12);
    }
}
