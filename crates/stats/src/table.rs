//! Minimal aligned-table and CSV rendering for the experiment binaries.
//!
//! No external dependency: the experiment harness prints the same rows
//! and series the paper's figures show, as plain text and as CSV files
//! suitable for replotting.

use std::fmt::Write as _;

/// A simple column-aligned text table that can also serialize to CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align first column, right-align the rest (numbers).
                if i == 0 {
                    let _ = write!(out, "{:<width$}", c, width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", c, width = widths[i]);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render as CSV (no quoting needed for our numeric content; commas in
    /// cells are replaced by semicolons defensively).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| c.replace(',', ";")).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a ratio relative to a baseline as a percentage (paper style:
/// "relative RNMr", "execution time vs baseline").
pub fn rel(x: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        "n/a".to_string()
    } else {
        pct(x / baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["App", "RNMr"]);
        t.row(vec!["FFT", "1.23%"]);
        t.row(vec!["Water n2", "0.5%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // right-aligned numeric column
        assert!(lines[2].ends_with("1.23%"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x", "1"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\nx,1\n");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y"]);
        assert_eq!(t.to_csv(), "a\nx;y\n");
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn pct_and_rel() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(rel(0.4, 0.5), "80.0%");
        assert_eq!(rel(1.0, 0.0), "n/a");
    }
}
