//! Global-bus traffic, decomposed as in Figures 3 and 4.
//!
//! Transactions carry either a full cache line (64 bytes of data plus an
//! 8-byte header) or just an address/command (8 bytes). The figures'
//! three segments map to:
//!
//! * **read** — remote read fills (data);
//! * **write** — ownership traffic: upgrades/invalidations (command) and
//!   read-exclusive fetches (data);
//! * **replace** — injections of displaced Owner/Exclusive lines (data),
//!   ownership migrations to an existing replica (command), and page-outs.

/// Bytes on the bus for a transaction carrying a data line.
pub const DATA_TXN_BYTES: u64 = 72;
/// Bytes for an address-only command transaction.
pub const CMD_TXN_BYTES: u64 = 8;

/// Accumulated global-bus traffic for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub replace_bytes: u64,
    pub read_txns: u64,
    pub write_txns: u64,
    pub replace_txns: u64,
    /// Injections that found no receiver and fell back to the OS.
    pub pageouts: u64,
}

impl Traffic {
    /// A remote read fill.
    pub fn record_read_fill(&mut self) {
        self.read_txns += 1;
        self.read_bytes += DATA_TXN_BYTES;
    }

    /// An ownership upgrade (invalidation broadcast, no data).
    pub fn record_upgrade(&mut self) {
        self.write_txns += 1;
        self.write_bytes += CMD_TXN_BYTES;
    }

    /// A read-exclusive fetch (write miss bringing data + invalidating).
    pub fn record_read_exclusive(&mut self) {
        self.write_txns += 1;
        self.write_bytes += DATA_TXN_BYTES;
    }

    /// An injection carrying the displaced line's data.
    pub fn record_injection(&mut self) {
        self.replace_txns += 1;
        self.replace_bytes += DATA_TXN_BYTES;
    }

    /// An ownership migration to a node that already holds a replica.
    pub fn record_ownership_migration(&mut self) {
        self.replace_txns += 1;
        self.replace_bytes += CMD_TXN_BYTES;
    }

    /// A failed injection: the line leaves the machine via the OS.
    pub fn record_pageout(&mut self) {
        self.pageouts += 1;
        self.replace_txns += 1;
        self.replace_bytes += DATA_TXN_BYTES;
    }

    /// Total bytes moved over the global bus.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes + self.replace_bytes
    }

    /// Total transactions.
    pub fn total_txns(&self) -> u64 {
        self.read_txns + self.write_txns + self.replace_txns
    }

    pub fn merge(&mut self, o: &Traffic) {
        self.read_bytes += o.read_bytes;
        self.write_bytes += o.write_bytes;
        self.replace_bytes += o.replace_bytes;
        self.read_txns += o.read_txns;
        self.write_txns += o.write_txns;
        self.replace_txns += o.replace_txns;
        self.pageouts += o.pageouts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_accumulate_independently() {
        let mut t = Traffic::default();
        t.record_read_fill();
        t.record_read_fill();
        t.record_upgrade();
        t.record_injection();
        assert_eq!(t.read_bytes, 2 * DATA_TXN_BYTES);
        assert_eq!(t.write_bytes, CMD_TXN_BYTES);
        assert_eq!(t.replace_bytes, DATA_TXN_BYTES);
        assert_eq!(t.total_txns(), 4);
        assert_eq!(t.total_bytes(), 3 * DATA_TXN_BYTES + CMD_TXN_BYTES);
    }

    #[test]
    fn read_exclusive_counts_as_write_traffic() {
        let mut t = Traffic::default();
        t.record_read_exclusive();
        assert_eq!(t.write_bytes, DATA_TXN_BYTES);
        assert_eq!(t.read_bytes, 0);
    }

    #[test]
    fn pageout_counts_in_replacement() {
        let mut t = Traffic::default();
        t.record_pageout();
        assert_eq!(t.pageouts, 1);
        assert_eq!(t.replace_txns, 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Traffic::default();
        a.record_read_fill();
        let mut b = Traffic::default();
        b.record_injection();
        b.record_pageout();
        a.merge(&b);
        assert_eq!(a.read_txns, 1);
        assert_eq!(a.replace_txns, 2);
        assert_eq!(a.pageouts, 1);
    }
}
