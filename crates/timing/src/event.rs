//! Processor wake-up ordering.
//!
//! The whole-machine simulation is driven by repeatedly advancing the
//! processor with the earliest pending wake-up time. Ties are broken by
//! processor id so runs are fully deterministic.

use coma_types::{Nanos, ProcId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(time, processor)` wake-ups.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Nanos, u16)>>,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `proc` to run at `time`.
    pub fn push(&mut self, time: Nanos, proc: ProcId) {
        self.heap.push(Reverse((time, proc.0)));
    }

    /// Remove and return the earliest wake-up.
    pub fn pop(&mut self) -> Option<(Nanos, ProcId)> {
        self.heap.pop().map(|Reverse((t, p))| (t, ProcId(p)))
    }

    /// Time of the earliest wake-up without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, ProcId(0));
        q.push(10, ProcId(1));
        q.push(20, ProcId(2));
        assert_eq!(q.pop(), Some((10, ProcId(1))));
        assert_eq!(q.pop(), Some((20, ProcId(2))));
        assert_eq!(q.pop(), Some((30, ProcId(0))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_proc_id() {
        let mut q = EventQueue::new();
        q.push(10, ProcId(5));
        q.push(10, ProcId(2));
        assert_eq!(q.pop(), Some((10, ProcId(2))));
        assert_eq!(q.pop(), Some((10, ProcId(5))));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, ProcId(0));
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }
}
