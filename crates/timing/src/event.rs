//! Processor wake-up ordering.
//!
//! The whole-machine simulation is driven by repeatedly advancing the
//! processor with the earliest pending wake-up time. Ties are broken by
//! processor id so runs are fully deterministic.
//!
//! The driver maintains at most **one** pending wake-up per processor (a
//! processor is either running or parked at exactly one resume time), so
//! the queue is a fixed array of per-processor wake-up times rather than a
//! binary heap, with the current minimum cached:
//!
//! * `push` is a store plus one compare against the cached minimum;
//! * `precedes` — the driver's *follow-through* test, "would this wake-up
//!   be popped next anyway?" — is a single compare, letting the driver
//!   keep stepping a processor without any queue traffic while it stays
//!   the earliest;
//! * only a real `pop` rescans the ≤ 64 slots (one or two cache lines) to
//!   re-establish the cached minimum.
//!
//! The cached minimum is the *first* slot holding the minimal time, which
//! is exactly the heap's `(time, proc)` lexicographic order, so replacing
//! the heap changes nothing observable.

use coma_types::{Nanos, ProcId};

/// Slot value marking "no pending wake-up".
const IDLE: Nanos = Nanos::MAX;

/// Pending wake-up times, indexed by processor id.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    slots: Vec<Nanos>,
    len: usize,
    /// `(time, proc)` of the earliest pending wake-up; `(IDLE, 0)` when
    /// the queue is empty. Maintained on every mutation.
    min: (Nanos, u16),
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            len: 0,
            min: (IDLE, 0),
        }
    }

    /// Schedule `proc` to run at `time`. At most one wake-up may be
    /// pending per processor.
    pub fn push(&mut self, time: Nanos, proc: ProcId) {
        let p = proc.0 as usize;
        if p >= self.slots.len() {
            self.slots.resize(p + 1, IDLE);
        }
        debug_assert_ne!(time, IDLE, "IDLE sentinel used as a wake-up time");
        debug_assert_eq!(self.slots[p], IDLE, "processor {p} already scheduled");
        self.slots[p] = time;
        self.len += 1;
        if (time, proc.0) < self.min {
            self.min = (time, proc.0);
        }
    }

    /// Would a wake-up `(time, proc)` run before everything pending?
    /// True when the queue is empty or `(time, proc)` lexicographically
    /// precedes the earliest pending wake-up — i.e. pushing it and then
    /// popping would return it straight back.
    #[inline]
    pub fn precedes(&self, time: Nanos, proc: ProcId) -> bool {
        (time, proc.0) < self.min
    }

    /// Remove and return the earliest wake-up (ties: lowest processor id).
    pub fn pop(&mut self) -> Option<(Nanos, ProcId)> {
        if self.len == 0 {
            return None;
        }
        let (t, p) = self.min;
        debug_assert_eq!(self.slots[p as usize], t, "cached minimum is stale");
        self.slots[p as usize] = IDLE;
        self.len -= 1;
        self.rescan();
        Some((t, ProcId(p)))
    }

    /// Re-establish the cached minimum: two branchless passes — a
    /// min-reduction, then a first-index search for that minimum — which
    /// vectorize cleanly, unlike a fused index-tracking scan whose
    /// data-dependent branch mispredicts on irregular wake-up times. IDLE
    /// slots hold `u64::MAX`, so they win only when nothing is pending,
    /// which leaves the cache at its empty value.
    fn rescan(&mut self) {
        let t = self.slots.iter().copied().min().unwrap_or(IDLE);
        if t == IDLE {
            self.min = (IDLE, 0);
        } else {
            let p = self.slots.iter().position(|&s| s == t).expect("min exists");
            self.min = (t, p as u16);
        }
    }

    /// Time of the earliest wake-up without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        (self.len > 0).then_some(self.min.0)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, ProcId(0));
        q.push(10, ProcId(1));
        q.push(20, ProcId(2));
        assert_eq!(q.pop(), Some((10, ProcId(1))));
        assert_eq!(q.pop(), Some((20, ProcId(2))));
        assert_eq!(q.pop(), Some((30, ProcId(0))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_proc_id() {
        let mut q = EventQueue::new();
        q.push(10, ProcId(5));
        q.push(10, ProcId(2));
        assert_eq!(q.pop(), Some((10, ProcId(2))));
        assert_eq!(q.pop(), Some((10, ProcId(5))));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, ProcId(0));
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn popped_processor_can_be_rescheduled() {
        let mut q = EventQueue::new();
        q.push(5, ProcId(3));
        assert_eq!(q.pop(), Some((5, ProcId(3))));
        q.push(9, ProcId(3));
        assert_eq!(q.peek_time(), Some(9));
        assert_eq!(q.pop(), Some((9, ProcId(3))));
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_peeks_none() {
        let q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn precedes_matches_push_pop_order() {
        let mut q = EventQueue::new();
        // Empty queue: anything runs next.
        assert!(q.precedes(100, ProcId(7)));
        q.push(50, ProcId(2));
        // Earlier time precedes; later does not.
        assert!(q.precedes(49, ProcId(9)));
        assert!(!q.precedes(51, ProcId(0)));
        // Equal time: proc id breaks the tie.
        assert!(q.precedes(50, ProcId(1)));
        assert!(!q.precedes(50, ProcId(3)));
    }

    #[test]
    fn precedes_agrees_with_pop_after_mutations() {
        let mut q = EventQueue::new();
        q.push(10, ProcId(4));
        q.push(20, ProcId(1));
        assert_eq!(q.pop(), Some((10, ProcId(4))));
        // Remaining min is (20, 1).
        assert!(q.precedes(19, ProcId(8)));
        assert!(q.precedes(20, ProcId(0)));
        assert!(!q.precedes(20, ProcId(2)));
        assert!(!q.precedes(21, ProcId(0)));
    }

    #[test]
    fn popping_empty_queue_is_none_and_harmless() {
        let mut q = EventQueue::new();
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // still fine after a failed pop
        q.push(3, ProcId(1));
        assert_eq!(q.pop(), Some((3, ProcId(1))));
        assert_eq!(q.pop(), None); // and after draining
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn many_way_tie_pops_in_proc_id_order() {
        // The old BinaryHeap ordered by (time, proc); an all-way tie is
        // the purest probe of that lexicographic order.
        let mut q = EventQueue::new();
        for p in [6u16, 0, 3, 5, 1, 4, 2] {
            q.push(42, ProcId(p));
        }
        for p in 0..7 {
            assert_eq!(q.pop(), Some((42, ProcId(p))));
        }
        assert_eq!(q.pop(), None);
    }

    /// Differential check against the pre-refactor semantics: a
    /// `BinaryHeap<Reverse<(time, proc)>>` run in lockstep through a
    /// seeded random push/pop/probe schedule, with small times so
    /// equal-timestamp ties are frequent.
    #[test]
    fn differential_vs_binary_heap_reference() {
        use coma_types::Rng64;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        const PROCS: usize = 16;
        let mut rng = Rng64::new(0x0E7E);
        let mut q = EventQueue::new();
        let mut heap: BinaryHeap<Reverse<(Nanos, u16)>> = BinaryHeap::new();
        let mut pending = [false; PROCS];

        for _ in 0..20_000 {
            let idle: Vec<u16> = (0..PROCS as u16)
                .filter(|&p| !pending[p as usize])
                .collect();
            let do_push = !idle.is_empty() && (heap.is_empty() || rng.below(100) < 55);
            if do_push {
                let p = *rng.pick(&idle);
                let t = rng.below(32); // tiny time range → constant ties
                q.push(t, ProcId(p));
                heap.push(Reverse((t, p)));
                pending[p as usize] = true;
            } else {
                let expect = heap.pop().map(|Reverse((t, p))| (t, ProcId(p)));
                assert_eq!(q.pop(), expect);
                if let Some((_, p)) = expect {
                    pending[p.0 as usize] = false;
                }
            }
            // The follow-through probe must agree with the heap's view:
            // "precedes" iff pushing then popping would return it back.
            let probe = (rng.below(32), ProcId(rng.below(PROCS as u64) as u16));
            let heap_says = heap
                .peek()
                .is_none_or(|&Reverse(min)| (probe.0, probe.1 .0) < min);
            assert_eq!(q.precedes(probe.0, probe.1), heap_says);
        }
        // Drain both and compare the tail order.
        while let Some(Reverse((t, p))) = heap.pop() {
            assert_eq!(q.pop(), Some((t, ProcId(p))));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn follow_through_probe_is_push_pop_equivalent() {
        // `precedes(t, p)` promises: push(t, p) followed by pop() returns
        // (t, p) straight back. Verify the promise on both outcomes.
        let mut q = EventQueue::new();
        q.push(50, ProcId(2));
        q.push(50, ProcId(6));

        assert!(q.precedes(50, ProcId(1)));
        q.push(50, ProcId(1));
        assert_eq!(q.pop(), Some((50, ProcId(1)))); // came straight back

        assert!(!q.precedes(50, ProcId(4)));
        q.push(50, ProcId(4));
        assert_ne!(q.pop(), Some((50, ProcId(4)))); // (50,2) runs first
    }
}
