//! The interconnect fabric abstraction.
//!
//! The paper's machine has exactly one global medium: a snooping bus all
//! inter-node transactions arbitrate for. The hierarchical configurations
//! replace it with a tree: one local bus per cluster group and a layer of
//! inter-level links above them, so a transaction only occupies the media
//! on the path between its endpoints. The simulator talks to the fabric
//! through the [`Interconnect`] trait, routing by *group index*: the
//! timing walk passes the source and destination groups and the fabric
//! decides which media the transaction crosses.
//!
//! Two operations cover everything the protocol generates:
//!
//! * [`transfer`](Interconnect::transfer) — a critical-path transaction:
//!   the requester stalls until arbitration *and* the transfer latency
//!   complete on every medium crossed (read fills, upgrades,
//!   read-exclusives).
//! * [`post`](Interconnect::post) — a buffered transaction that consumes
//!   bandwidth along the path but does not stall the poster (injections,
//!   ownership migrations: replacements are buffered, §3.1).
//!
//! The paper's flat bus is the degenerate [`HierarchicalFabric`] with one
//! group and zero levels: both endpoints always map to group 0, so every
//! operation is a single arbitration on the single leaf [`Resource`] —
//! operation-for-operation identical to a bare snooping bus.

use crate::resource::Resource;
use coma_types::{Nanos, Topology};

/// A transfer fabric with per-medium arbitration and busy-time accounting.
///
/// `src` and `dst` are *cluster group* indices; a flat machine passes
/// `0, 0` everywhere.
pub trait Interconnect {
    /// Arbitrate along the `src → dst` path starting at `now`, occupying
    /// each medium crossed, and return the completion time of a
    /// critical-path transfer whose per-bus latency is `lat_ns`.
    fn transfer(
        &mut self,
        now: Nanos,
        src: usize,
        dst: usize,
        occ_ns: Nanos,
        lat_ns: Nanos,
    ) -> Nanos;

    /// Consume bandwidth along the `src → dst` path starting no earlier
    /// than `now` for a buffered (off-critical-path) transaction; the
    /// caller does not wait.
    fn post(&mut self, now: Nanos, src: usize, dst: usize, occ_ns: Nanos);

    /// Total time all media have been occupied (utilization numerator).
    fn busy_ns(&self) -> Nanos;
}

/// A directory-tree fabric: one FIFO-arbitrated bus per cluster group and
/// one link [`Resource`] per directory unit and level above them.
///
/// A transaction between groups `a` and `b` climbs to their lowest common
/// ancestor at height `h = lca_height(a, b)` and back down, serializing
/// through `2h` links plus both endpoint buses. With one group and zero
/// levels this degenerates to the paper's single snooping bus: every
/// transaction is one `serve`/`acquire` on the lone leaf resource.
#[derive(Debug)]
pub struct HierarchicalFabric {
    topo: Topology,
    /// One bus per cluster group.
    leaves: Vec<Resource>,
    /// `links[h-1][u]`: the link connecting unit `u` at level `h-1` to its
    /// parent at level `h`.
    links: Vec<Vec<Resource>>,
    link_ns: Nanos,
    link_occ_ns: Nanos,
}

impl HierarchicalFabric {
    pub fn new(topo: Topology, link_ns: Nanos, link_occ_ns: Nanos) -> Self {
        let links = (1..=topo.levels)
            .map(|h| {
                (0..topo.units_at(h - 1))
                    .map(|_| Resource::default())
                    .collect()
            })
            .collect();
        HierarchicalFabric {
            topo,
            leaves: (0..topo.n_groups).map(|_| Resource::default()).collect(),
            links,
            link_ns,
            link_occ_ns,
        }
    }

    /// The paper's flat snooping bus (degenerate 1-group, 0-level tree).
    pub fn flat() -> Self {
        Self::new(Topology::flat(), 0, 0)
    }
}

impl Interconnect for HierarchicalFabric {
    fn transfer(
        &mut self,
        now: Nanos,
        src: usize,
        dst: usize,
        occ_ns: Nanos,
        lat_ns: Nanos,
    ) -> Nanos {
        let mut t = self.leaves[src].serve(now, occ_ns, lat_ns);
        if src != dst {
            let h = self.topo.lca_height(src, dst);
            for l in 1..=h {
                let u = self.topo.unit_of(src, l - 1);
                t = self.links[l - 1][u].serve(t, self.link_occ_ns, self.link_ns);
            }
            for l in (1..=h).rev() {
                let u = self.topo.unit_of(dst, l - 1);
                t = self.links[l - 1][u].serve(t, self.link_occ_ns, self.link_ns);
            }
            t = self.leaves[dst].serve(t, occ_ns, lat_ns);
        }
        t
    }

    fn post(&mut self, now: Nanos, src: usize, dst: usize, occ_ns: Nanos) {
        self.leaves[src].acquire(now, occ_ns);
        if src != dst {
            let h = self.topo.lca_height(src, dst);
            for l in 1..=h {
                let u = self.topo.unit_of(src, l - 1);
                self.links[l - 1][u].acquire(now, self.link_occ_ns);
            }
            for l in (1..=h).rev() {
                let u = self.topo.unit_of(dst, l - 1);
                self.links[l - 1][u].acquire(now, self.link_occ_ns);
            }
            self.leaves[dst].acquire(now, occ_ns);
        }
    }

    fn busy_ns(&self) -> Nanos {
        self.leaves
            .iter()
            .chain(self.links.iter().flatten())
            .map(Resource::busy_ns)
            .sum()
    }
}

/// A contention-free interconnect: transfers take the configured latency
/// of the path they cross but never queue (infinite bandwidth, e.g. an
/// idealized point-to-point network). Running the same workload on
/// [`HierarchicalFabric`] and on this gives an upper bound on what
/// arbitration costs.
#[derive(Debug)]
pub struct IdealInterconnect {
    topo: Topology,
    link_ns: Nanos,
    link_occ_ns: Nanos,
    busy: Nanos,
}

impl Default for IdealInterconnect {
    fn default() -> Self {
        Self::flat()
    }
}

impl IdealInterconnect {
    pub fn new(topo: Topology, link_ns: Nanos, link_occ_ns: Nanos) -> Self {
        IdealInterconnect {
            topo,
            link_ns,
            link_occ_ns,
            busy: 0,
        }
    }

    /// Flat single-group instance (the pre-hierarchy behaviour).
    pub fn flat() -> Self {
        Self::new(Topology::flat(), 0, 0)
    }

    /// Latency and bandwidth charged for one `src → dst` crossing on top
    /// of a single bus phase.
    #[inline]
    fn route(&self, src: usize, dst: usize, occ_ns: Nanos, lat_ns: Nanos) -> (Nanos, Nanos) {
        if src == dst {
            return (lat_ns, occ_ns);
        }
        let hops = 2 * self.topo.lca_height(src, dst) as Nanos;
        (
            2 * lat_ns + hops * self.link_ns,
            2 * occ_ns + hops * self.link_occ_ns,
        )
    }
}

impl Interconnect for IdealInterconnect {
    fn transfer(
        &mut self,
        now: Nanos,
        src: usize,
        dst: usize,
        occ_ns: Nanos,
        lat_ns: Nanos,
    ) -> Nanos {
        let (lat, occ) = self.route(src, dst, occ_ns, lat_ns);
        self.busy += occ;
        now + lat
    }

    fn post(&mut self, _now: Nanos, src: usize, dst: usize, occ_ns: Nanos) {
        let (_, occ) = self.route(src, dst, occ_ns, 0);
        self.busy += occ;
    }

    fn busy_ns(&self) -> Nanos {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_fabric_serializes_transfers() {
        let mut bus = HierarchicalFabric::flat();
        assert_eq!(bus.transfer(0, 0, 0, 28, 28), 28);
        // Second transfer at t=0 waits for the first's occupancy.
        assert_eq!(bus.transfer(0, 0, 0, 28, 28), 56);
        assert_eq!(bus.busy_ns(), 56);
    }

    #[test]
    fn flat_fabric_posts_consume_bandwidth() {
        let mut bus = HierarchicalFabric::flat();
        bus.post(0, 0, 0, 28);
        // A transfer arriving during the posted occupancy queues behind it.
        assert_eq!(bus.transfer(0, 0, 0, 28, 28), 56);
    }

    #[test]
    fn flat_fabric_matches_bare_resource() {
        // The degenerate-equivalence argument: the flat fabric must issue
        // the identical operation sequence a bare snooping-bus Resource
        // would, so every pre-hierarchy golden stays byte-identical.
        let mut fabric = HierarchicalFabric::flat();
        let mut bare = Resource::default();
        let ops = [
            (0u64, 20u64, 20u64),
            (5, 20, 20),
            (5, 40, 20),
            (100, 20, 60),
        ];
        for (now, occ, lat) in ops {
            assert_eq!(
                fabric.transfer(now, 0, 0, occ, lat),
                bare.serve(now, occ, lat)
            );
            fabric.post(now, 0, 0, occ);
            bare.acquire(now, occ);
        }
        assert_eq!(fabric.busy_ns(), bare.busy_ns());
    }

    #[test]
    fn same_group_transfer_stays_local() {
        let mut f = HierarchicalFabric::new(Topology::two_level(4), 20, 20);
        // Group 2 internal transfer: one bus phase, no links.
        assert_eq!(f.transfer(0, 2, 2, 20, 20), 20);
        // Group 0 is untouched: its bus is still free at t=0.
        assert_eq!(f.transfer(0, 0, 0, 20, 20), 20);
    }

    #[test]
    fn cross_group_transfer_crosses_links_and_both_buses() {
        let mut f = HierarchicalFabric::new(Topology::two_level(4), 20, 20);
        // src bus (20) + up link (20) + down link (20) + dst bus (20).
        assert_eq!(f.transfer(0, 0, 3, 20, 20), 80);
        assert_eq!(f.busy_ns(), 80);
    }

    #[test]
    fn three_level_route_length_follows_lca() {
        // 16 groups over 2 levels, fanout 4.
        let topo = Topology::tree(16, 2);
        let mut f = HierarchicalFabric::new(topo, 10, 10);
        // Same 4-group cluster: LCA at level 1 → 2 links.
        assert_eq!(f.transfer(0, 0, 3, 20, 20), 20 + 10 + 10 + 20);
        // Different clusters: LCA at the root → 4 links.
        let mut f = HierarchicalFabric::new(topo, 10, 10);
        assert_eq!(f.transfer(0, 0, 15, 20, 20), 20 + 4 * 10 + 20);
    }

    #[test]
    fn disjoint_group_pairs_do_not_contend() {
        let mut f = HierarchicalFabric::new(Topology::two_level(4), 20, 20);
        // 0→1 and 2→3 share no medium under a 1-level root: both finish
        // as if alone.
        assert_eq!(f.transfer(0, 0, 1, 20, 20), 80);
        assert_eq!(f.transfer(0, 2, 3, 20, 20), 80);
        // But a second transaction out of group 0 queues on group 0's bus.
        assert!(f.transfer(0, 0, 1, 20, 20) > 80);
    }

    #[test]
    fn fabric_posts_occupy_the_whole_path() {
        let mut f = HierarchicalFabric::new(Topology::two_level(2), 20, 20);
        f.post(0, 0, 1, 30);
        // Both leaf buses 30 + two links 20 each.
        assert_eq!(f.busy_ns(), 30 + 30 + 20 + 20);
        // A transfer out of group 1 queues behind the posted occupancy.
        assert_eq!(f.transfer(0, 1, 1, 20, 20), 50);
    }

    #[test]
    fn ideal_interconnect_never_queues() {
        let mut net = IdealInterconnect::flat();
        assert_eq!(net.transfer(0, 0, 0, 28, 28), 28);
        assert_eq!(net.transfer(0, 0, 0, 28, 28), 28);
        net.post(0, 0, 0, 28);
        assert_eq!(net.transfer(0, 0, 0, 28, 28), 28);
        // Bandwidth is still accounted for utilization reporting.
        assert_eq!(net.busy_ns(), 112);
    }

    #[test]
    fn ideal_posts_never_move_the_critical_path() {
        // Satellite pin: buffered posts on the ideal fabric must be
        // invisible to later transfers, no matter how they interleave.
        let mut net = IdealInterconnect::flat();
        assert_eq!(net.transfer(100, 0, 0, 28, 28), 128);
        net.post(100, 0, 0, 500);
        net.post(110, 0, 0, 500);
        assert_eq!(net.transfer(120, 0, 0, 28, 28), 148);
        let mut hier = IdealInterconnect::new(Topology::two_level(2), 20, 20);
        hier.post(0, 0, 1, 300);
        assert_eq!(hier.transfer(0, 0, 1, 20, 20), 2 * 20 + 2 * 20);
        assert_eq!(hier.transfer(0, 0, 0, 20, 20), 20);
    }

    #[test]
    fn ideal_busy_sums_under_interleaved_transfer_and_post() {
        // Satellite pin: busy_ns is the plain sum of all occupancies.
        let mut net = IdealInterconnect::flat();
        net.transfer(0, 0, 0, 20, 20); // +20
        net.post(5, 0, 0, 32); // +32
        net.transfer(7, 0, 0, 40, 20); // +40
        net.post(9, 0, 0, 8); // +8
        assert_eq!(net.busy_ns(), 100);
        // Cross-group charges both buses and the two link crossings.
        let mut hier = IdealInterconnect::new(Topology::two_level(2), 20, 15);
        hier.transfer(0, 0, 1, 20, 20); // 2×20 + 2×15 = 70
        hier.post(0, 1, 0, 10); // 2×10 + 2×15 = 50
        assert_eq!(hier.busy_ns(), 120);
    }

    #[test]
    fn ideal_routes_latency_by_lca_height() {
        let mut net = IdealInterconnect::new(Topology::tree(16, 2), 10, 10);
        // Same group: one phase.
        assert_eq!(net.transfer(0, 5, 5, 20, 20), 20);
        // Sibling groups: two phases + 2 links.
        assert_eq!(net.transfer(0, 0, 3, 20, 20), 60);
        // Across the root: two phases + 4 links.
        assert_eq!(net.transfer(0, 0, 15, 20, 20), 80);
    }

    #[test]
    fn trait_objects_are_swappable() {
        let media: Vec<Box<dyn Interconnect>> = vec![
            Box::new(HierarchicalFabric::flat()),
            Box::new(IdealInterconnect::flat()),
        ];
        for mut m in media {
            let t = m.transfer(10, 0, 0, 28, 28);
            assert_eq!(t, 38);
            assert_eq!(m.busy_ns(), 28);
        }
    }
}
