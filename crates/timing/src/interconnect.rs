//! The global interconnect abstraction.
//!
//! The paper's machine has exactly one global medium: a snooping bus all
//! inter-node transactions arbitrate for. The simulator talks to it
//! through the [`Interconnect`] trait so alternative fabrics — a
//! split-transaction bus, a ring, an ideal contention-free network — can
//! be swapped in without touching the timing walk in `coma-sim`.
//!
//! Two operations cover everything the protocol generates:
//!
//! * [`transfer`](Interconnect::transfer) — a critical-path transaction:
//!   the requester stalls until arbitration *and* the transfer latency
//!   complete (read fills, upgrades, read-exclusives).
//! * [`post`](Interconnect::post) — a buffered transaction that consumes
//!   bandwidth but does not stall the poster (injections, ownership
//!   migrations: replacements are buffered, §3.1).

use crate::resource::Resource;
use coma_types::Nanos;

/// A global transfer medium with arbitration and busy-time accounting.
pub trait Interconnect {
    /// Arbitrate at `now`, occupy the medium for `occ_ns`, and return the
    /// completion time of a critical-path transfer with latency `lat_ns`.
    fn transfer(&mut self, now: Nanos, occ_ns: Nanos, lat_ns: Nanos) -> Nanos;

    /// Consume `occ_ns` of bandwidth starting no earlier than `now` for a
    /// buffered (off-critical-path) transaction; the caller does not wait.
    fn post(&mut self, now: Nanos, occ_ns: Nanos);

    /// Total time the medium has been occupied (utilization numerator).
    fn busy_ns(&self) -> Nanos;
}

/// The paper's single snooping bus: one FIFO-arbitrated shared medium.
///
/// Every transaction, critical-path or buffered, serializes through the
/// same [`Resource`], which is exactly what makes the bus the saturating
/// bottleneck in the high-memory-pressure experiments.
#[derive(Debug, Default)]
pub struct SnoopingBus {
    res: Resource,
}

impl SnoopingBus {
    pub fn new() -> Self {
        SnoopingBus::default()
    }
}

impl Interconnect for SnoopingBus {
    fn transfer(&mut self, now: Nanos, occ_ns: Nanos, lat_ns: Nanos) -> Nanos {
        self.res.serve(now, occ_ns, lat_ns)
    }

    fn post(&mut self, now: Nanos, occ_ns: Nanos) {
        self.res.acquire(now, occ_ns);
    }

    fn busy_ns(&self) -> Nanos {
        self.res.busy_ns()
    }
}

/// A contention-free interconnect: transfers take the configured latency
/// but never queue (infinite bandwidth, e.g. an idealized point-to-point
/// network). Running the same workload on [`SnoopingBus`] and on this
/// gives an upper bound on what bus arbitration costs.
#[derive(Debug, Default)]
pub struct IdealInterconnect {
    busy: Nanos,
}

impl IdealInterconnect {
    pub fn new() -> Self {
        IdealInterconnect::default()
    }
}

impl Interconnect for IdealInterconnect {
    fn transfer(&mut self, now: Nanos, occ_ns: Nanos, lat_ns: Nanos) -> Nanos {
        self.busy += occ_ns;
        now + lat_ns
    }

    fn post(&mut self, _now: Nanos, occ_ns: Nanos) {
        self.busy += occ_ns;
    }

    fn busy_ns(&self) -> Nanos {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snooping_bus_serializes_transfers() {
        let mut bus = SnoopingBus::new();
        assert_eq!(bus.transfer(0, 28, 28), 28);
        // Second transfer at t=0 waits for the first's occupancy.
        assert_eq!(bus.transfer(0, 28, 28), 56);
        assert_eq!(bus.busy_ns(), 56);
    }

    #[test]
    fn snooping_bus_posts_consume_bandwidth() {
        let mut bus = SnoopingBus::new();
        bus.post(0, 28);
        // A transfer arriving during the posted occupancy queues behind it.
        assert_eq!(bus.transfer(0, 28, 28), 56);
    }

    #[test]
    fn ideal_interconnect_never_queues() {
        let mut net = IdealInterconnect::new();
        assert_eq!(net.transfer(0, 28, 28), 28);
        assert_eq!(net.transfer(0, 28, 28), 28);
        net.post(0, 28);
        assert_eq!(net.transfer(0, 28, 28), 28);
        // Bandwidth is still accounted for utilization reporting.
        assert_eq!(net.busy_ns(), 112);
    }

    #[test]
    fn trait_objects_are_swappable() {
        let media: Vec<Box<dyn Interconnect>> = vec![
            Box::new(SnoopingBus::new()),
            Box::new(IdealInterconnect::new()),
        ];
        for mut m in media {
            let t = m.transfer(10, 28, 28);
            assert_eq!(t, 38);
            assert_eq!(m.busy_ns(), 28);
        }
    }
}
