//! Timing model for the cluster-based COMA simulator (paper §3.2).
//!
//! The memory-system simulator "models contention effects for the node
//! controllers, attraction memory DRAMs, second-level caches and the
//! shared bus". Each of those is a [`Resource`]: a FIFO server with a
//! `free_at` horizon, an *occupancy* per use (the bandwidth knob) and a
//! caller-visible latency. Doubling DRAM bandwidth while holding latency
//! constant — the paper's §4.3 experiment — is just halving the occupancy.
//!
//! Writes retire into a per-processor [`WriteBuffer`] (10 entries, release
//! consistency): the processor only stalls when the buffer is full or when
//! it must drain at a synchronization release.
//!
//! The [`EventQueue`] orders processor wake-ups so the whole-machine
//! simulation advances the globally earliest processor first, which is
//! what couples the timing model back into the reference interleaving
//! (program-driven simulation's essential property).

pub mod event;
pub mod interconnect;
pub mod resource;
pub mod write_buffer;

pub use event::EventQueue;
pub use interconnect::{HierarchicalFabric, IdealInterconnect, Interconnect};
pub use resource::Resource;
pub use write_buffer::{WriteBuffer, WriteBufferArray};
