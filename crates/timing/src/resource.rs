//! Contended FIFO resources.
//!
//! A [`Resource`] models a unit of hardware that serves one request at a
//! time: the node controller / AM state+tag pipeline, the AM DRAM, an SLC
//! port, or the global shared bus. Requests are served in arrival order;
//! a request arriving at `now` starts at `max(now, free_at)` and holds the
//! resource for its *occupancy*. The requester usually perceives a
//! *latency* that is ≥ the occupancy (e.g. DRAM with doubled bandwidth:
//! occupancy 50 ns, latency still 100 ns).

use coma_types::Nanos;

/// A single-server FIFO resource.
#[derive(Clone, Debug, Default)]
pub struct Resource {
    free_at: Nanos,
    busy_ns: Nanos,
    uses: u64,
}

impl Resource {
    pub fn new() -> Self {
        Resource::default()
    }

    /// Acquire the resource at time `now` for `occupancy` ns.
    /// Returns the *service start* time (≥ `now`); the caller adds its own
    /// latency on top of the start time.
    #[inline]
    pub fn acquire(&mut self, now: Nanos, occupancy: Nanos) -> Nanos {
        let start = self.free_at.max(now);
        self.free_at = start + occupancy;
        self.busy_ns += occupancy;
        self.uses += 1;
        start
    }

    /// Acquire and return the time at which the requester's access
    /// completes: `start + latency`, with the resource held for
    /// `occupancy` (≤ or ≥ latency, independently).
    #[inline]
    pub fn serve(&mut self, now: Nanos, occupancy: Nanos, latency: Nanos) -> Nanos {
        self.acquire(now, occupancy) + latency
    }

    /// Earliest time a new request could start service.
    #[inline]
    pub fn free_at(&self) -> Nanos {
        self.free_at
    }

    /// Total time this resource has been occupied.
    #[inline]
    pub fn busy_ns(&self) -> Nanos {
        self.busy_ns
    }

    /// Number of requests served.
    #[inline]
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Utilization over an interval `[0, horizon]`.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_ns as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(100, 20), 100);
        assert_eq!(r.free_at(), 120);
    }

    #[test]
    fn contention_queues_fifo() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0, 50), 0);
        // Second request arrives at t=10 but waits until t=50.
        assert_eq!(r.acquire(10, 50), 50);
        assert_eq!(r.free_at(), 100);
    }

    #[test]
    fn gap_resets_start_time() {
        let mut r = Resource::new();
        r.acquire(0, 10);
        assert_eq!(r.acquire(1000, 10), 1000);
    }

    #[test]
    fn serve_adds_latency_not_occupancy() {
        let mut r = Resource::new();
        // Doubled-bandwidth DRAM: occ 50, latency 100.
        assert_eq!(r.serve(0, 50, 100), 100);
        // Next request can start at t=50 (bandwidth), completes 150.
        assert_eq!(r.serve(0, 50, 100), 150);
    }

    #[test]
    fn busy_accounting() {
        let mut r = Resource::new();
        r.acquire(0, 30);
        r.acquire(100, 30);
        assert_eq!(r.busy_ns(), 60);
        assert_eq!(r.uses(), 2);
        assert!((r.utilization(600) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_occupancy_is_transparent() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(5, 0), 5);
        assert_eq!(r.acquire(5, 0), 5);
        assert_eq!(r.busy_ns(), 0);
    }

    #[test]
    fn utilization_zero_horizon() {
        let r = Resource::new();
        assert_eq!(r.utilization(0), 0.0);
    }
}
