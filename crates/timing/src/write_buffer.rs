//! Per-processor write buffer under release consistency (paper §3.2:
//! "a release consistency model with a 10 entry write buffer").
//!
//! A write retires into the buffer immediately; the ownership acquisition
//! and data transfer proceed in the background, finishing at a completion
//! time computed by the memory system. The processor stalls only when
//!
//! * the buffer is full — it waits for the oldest outstanding write to
//!   complete — or
//! * it executes a *release* (unlock, barrier entry), at which point all
//!   buffered writes must have completed before the release is visible.

use coma_types::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bounded buffer of in-flight writes, identified by completion time.
#[derive(Clone, Debug)]
pub struct WriteBuffer {
    capacity: usize,
    in_flight: BinaryHeap<Reverse<Nanos>>,
    /// Total time processors spent stalled on a full buffer.
    full_stall_ns: Nanos,
}

impl WriteBuffer {
    /// Create a buffer with the given entry count (10 in the paper).
    /// A capacity of 0 means every write stalls until it completes
    /// (processor-blocking writes; ablation configuration).
    pub fn new(capacity: usize) -> Self {
        WriteBuffer {
            capacity,
            in_flight: BinaryHeap::new(),
            full_stall_ns: 0,
        }
    }

    /// Drop entries that have completed by `now`.
    fn retire(&mut self, now: Nanos) {
        while matches!(self.in_flight.peek(), Some(&Reverse(t)) if t <= now) {
            self.in_flight.pop();
        }
    }

    /// Record a write that will complete at `completes_at`, issued at
    /// `now`. Returns the time at which the *processor* may continue:
    /// `now` if a slot was free, later if it had to wait for one (or for
    /// the write itself when capacity is 0).
    pub fn push(&mut self, now: Nanos, completes_at: Nanos) -> Nanos {
        self.retire(now);
        if self.capacity == 0 {
            // Blocking writes: the processor waits out the whole write.
            let resume = completes_at.max(now);
            self.full_stall_ns += resume - now;
            return resume;
        }
        let mut resume = now;
        if self.in_flight.len() >= self.capacity {
            let Reverse(oldest) = self.in_flight.pop().expect("buffer full implies non-empty");
            resume = oldest.max(now);
            self.full_stall_ns += resume - now;
            // Entries that completed while we waited also retire.
            self.retire(resume);
        }
        self.in_flight.push(Reverse(completes_at));
        resume
    }

    /// Drain the buffer at a release point: returns the time at which all
    /// currently buffered writes have completed (≥ `now`), and empties it.
    pub fn drain(&mut self, now: Nanos) -> Nanos {
        let done = self
            .in_flight
            .iter()
            .map(|&Reverse(t)| t)
            .max()
            .unwrap_or(now)
            .max(now);
        self.in_flight.clear();
        done
    }

    /// Writes currently outstanding (after retiring completions at `now`).
    pub fn outstanding(&mut self, now: Nanos) -> usize {
        self.retire(now);
        self.in_flight.len()
    }

    /// Accumulated full-buffer stall time.
    pub fn full_stall_ns(&self) -> Nanos {
        self.full_stall_ns
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_full_buffer_never_stalls() {
        let mut wb = WriteBuffer::new(4);
        for i in 0..4 {
            assert_eq!(wb.push(i, i + 1000), i);
        }
        assert_eq!(wb.full_stall_ns(), 0);
    }

    #[test]
    fn full_buffer_stalls_until_oldest_completes() {
        let mut wb = WriteBuffer::new(2);
        wb.push(0, 100);
        wb.push(0, 200);
        // Buffer full; oldest completes at 100.
        assert_eq!(wb.push(10, 300), 100);
        assert_eq!(wb.full_stall_ns(), 90);
    }

    #[test]
    fn completed_writes_free_slots() {
        let mut wb = WriteBuffer::new(2);
        wb.push(0, 50);
        wb.push(0, 60);
        // At t=70 both completed; no stall.
        assert_eq!(wb.push(70, 500), 70);
        assert_eq!(wb.outstanding(70), 1);
    }

    #[test]
    fn drain_waits_for_slowest() {
        let mut wb = WriteBuffer::new(4);
        wb.push(0, 100);
        wb.push(0, 400);
        wb.push(0, 250);
        assert_eq!(wb.drain(50), 400);
        assert_eq!(wb.outstanding(50), 0);
    }

    #[test]
    fn drain_empty_returns_now() {
        let mut wb = WriteBuffer::new(4);
        assert_eq!(wb.drain(123), 123);
    }

    #[test]
    fn drain_never_travels_back_in_time() {
        let mut wb = WriteBuffer::new(4);
        wb.push(0, 100);
        assert_eq!(wb.drain(500), 500);
    }

    #[test]
    fn zero_capacity_blocks_every_write() {
        let mut wb = WriteBuffer::new(0);
        assert_eq!(wb.push(10, 300), 300);
        assert_eq!(wb.full_stall_ns(), 290);
        assert_eq!(wb.outstanding(300), 0);
    }

    #[test]
    fn outstanding_counts_in_flight_only() {
        let mut wb = WriteBuffer::new(8);
        wb.push(0, 100);
        wb.push(0, 200);
        wb.push(0, 300);
        assert_eq!(wb.outstanding(150), 2);
        assert_eq!(wb.outstanding(250), 1);
        assert_eq!(wb.outstanding(350), 0);
    }
}
