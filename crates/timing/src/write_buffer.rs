//! Per-processor write buffer under release consistency (paper §3.2:
//! "a release consistency model with a 10 entry write buffer").
//!
//! A write retires into the buffer immediately; the ownership acquisition
//! and data transfer proceed in the background, finishing at a completion
//! time computed by the memory system. The processor stalls only when
//!
//! * the buffer is full — it waits for the oldest outstanding write to
//!   complete — or
//! * it executes a *release* (unlock, barrier entry), at which point all
//!   buffered writes must have completed before the release is visible.

use coma_types::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bounded buffer of in-flight writes, identified by completion time.
#[derive(Clone, Debug)]
pub struct WriteBuffer {
    capacity: usize,
    in_flight: BinaryHeap<Reverse<Nanos>>,
    /// Total time processors spent stalled on a full buffer.
    full_stall_ns: Nanos,
}

impl WriteBuffer {
    /// Create a buffer with the given entry count (10 in the paper).
    /// A capacity of 0 means every write stalls until it completes
    /// (processor-blocking writes; ablation configuration).
    pub fn new(capacity: usize) -> Self {
        WriteBuffer {
            capacity,
            in_flight: BinaryHeap::new(),
            full_stall_ns: 0,
        }
    }

    /// Drop entries that have completed by `now`.
    fn retire(&mut self, now: Nanos) {
        while matches!(self.in_flight.peek(), Some(&Reverse(t)) if t <= now) {
            self.in_flight.pop();
        }
    }

    /// Record a write that will complete at `completes_at`, issued at
    /// `now`. Returns the time at which the *processor* may continue:
    /// `now` if a slot was free, later if it had to wait for one (or for
    /// the write itself when capacity is 0).
    pub fn push(&mut self, now: Nanos, completes_at: Nanos) -> Nanos {
        self.retire(now);
        if self.capacity == 0 {
            // Blocking writes: the processor waits out the whole write.
            let resume = completes_at.max(now);
            self.full_stall_ns += resume - now;
            return resume;
        }
        let mut resume = now;
        if self.in_flight.len() >= self.capacity {
            let Reverse(oldest) = self.in_flight.pop().expect("buffer full implies non-empty");
            resume = oldest.max(now);
            self.full_stall_ns += resume - now;
            // Entries that completed while we waited also retire.
            self.retire(resume);
        }
        self.in_flight.push(Reverse(completes_at));
        resume
    }

    /// Drain the buffer at a release point: returns the time at which all
    /// currently buffered writes have completed (≥ `now`), and empties it.
    pub fn drain(&mut self, now: Nanos) -> Nanos {
        let done = self
            .in_flight
            .iter()
            .map(|&Reverse(t)| t)
            .max()
            .unwrap_or(now)
            .max(now);
        self.in_flight.clear();
        done
    }

    /// Writes currently outstanding (after retiring completions at `now`).
    pub fn outstanding(&mut self, now: Nanos) -> usize {
        self.retire(now);
        self.in_flight.len()
    }

    /// Accumulated full-buffer stall time.
    pub fn full_stall_ns(&self) -> Nanos {
        self.full_stall_ns
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// All processors' write buffers in one flat slab: completion times live
/// in a single `n_procs × capacity` array walked by processor index, so
/// the simulation driver's hot path stays on contiguous memory instead
/// of chasing one heap allocation per processor.
///
/// Semantically identical to a `Vec<WriteBuffer>` (pinned by the
/// differential test below): the buffer is a *set* of completion times,
/// so the unsorted fixed slab with linear min-scan — capacity is 10 in
/// the paper, so a scan beats a heap — retires, stalls and drains at
/// exactly the same instants.
#[derive(Clone, Debug)]
pub struct WriteBufferArray {
    capacity: usize,
    /// Slot `p * capacity ..` holds processor `p`'s in-flight times.
    times: Box<[Nanos]>,
    /// Live entries per processor (≤ capacity).
    len: Box<[u32]>,
    full_stall_ns: Box<[Nanos]>,
}

impl WriteBufferArray {
    pub fn new(n_procs: usize, capacity: usize) -> Self {
        WriteBufferArray {
            capacity,
            times: vec![0; n_procs * capacity].into_boxed_slice(),
            len: vec![0; n_procs].into_boxed_slice(),
            full_stall_ns: vec![0; n_procs].into_boxed_slice(),
        }
    }

    /// Drop processor `p`'s entries that have completed by `now`.
    #[inline]
    fn retire(&mut self, p: usize, now: Nanos) {
        let base = p * self.capacity;
        let mut n = self.len[p] as usize;
        let mut i = 0;
        while i < n {
            if self.times[base + i] <= now {
                n -= 1;
                self.times.swap(base + i, base + n);
            } else {
                i += 1;
            }
        }
        self.len[p] = n as u32;
    }

    /// [`WriteBuffer::push`] for processor `p`.
    pub fn push(&mut self, p: usize, now: Nanos, completes_at: Nanos) -> Nanos {
        self.retire(p, now);
        if self.capacity == 0 {
            let resume = completes_at.max(now);
            self.full_stall_ns[p] += resume - now;
            return resume;
        }
        let base = p * self.capacity;
        let mut resume = now;
        if self.len[p] as usize == self.capacity {
            // Full: wait for (and evict) the oldest outstanding write.
            let n = self.capacity;
            let mut min_i = 0;
            for i in 1..n {
                if self.times[base + i] < self.times[base + min_i] {
                    min_i = i;
                }
            }
            resume = self.times[base + min_i].max(now);
            self.full_stall_ns[p] += resume - now;
            self.times.swap(base + min_i, base + n - 1);
            self.len[p] -= 1;
            self.retire(p, resume);
        }
        let n = self.len[p] as usize;
        self.times[base + n] = completes_at;
        self.len[p] += 1;
        resume
    }

    /// [`WriteBuffer::drain`] for processor `p`.
    pub fn drain(&mut self, p: usize, now: Nanos) -> Nanos {
        let base = p * self.capacity;
        let n = std::mem::take(&mut self.len[p]) as usize;
        self.times[base..base + n]
            .iter()
            .copied()
            .fold(now, Nanos::max)
    }

    /// [`WriteBuffer::outstanding`] for processor `p`.
    pub fn outstanding(&mut self, p: usize, now: Nanos) -> usize {
        self.retire(p, now);
        self.len[p] as usize
    }

    /// Accumulated full-buffer stall time for processor `p`.
    pub fn full_stall_ns(&self, p: usize) -> Nanos {
        self.full_stall_ns[p]
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_full_buffer_never_stalls() {
        let mut wb = WriteBuffer::new(4);
        for i in 0..4 {
            assert_eq!(wb.push(i, i + 1000), i);
        }
        assert_eq!(wb.full_stall_ns(), 0);
    }

    #[test]
    fn full_buffer_stalls_until_oldest_completes() {
        let mut wb = WriteBuffer::new(2);
        wb.push(0, 100);
        wb.push(0, 200);
        // Buffer full; oldest completes at 100.
        assert_eq!(wb.push(10, 300), 100);
        assert_eq!(wb.full_stall_ns(), 90);
    }

    #[test]
    fn completed_writes_free_slots() {
        let mut wb = WriteBuffer::new(2);
        wb.push(0, 50);
        wb.push(0, 60);
        // At t=70 both completed; no stall.
        assert_eq!(wb.push(70, 500), 70);
        assert_eq!(wb.outstanding(70), 1);
    }

    #[test]
    fn drain_waits_for_slowest() {
        let mut wb = WriteBuffer::new(4);
        wb.push(0, 100);
        wb.push(0, 400);
        wb.push(0, 250);
        assert_eq!(wb.drain(50), 400);
        assert_eq!(wb.outstanding(50), 0);
    }

    #[test]
    fn drain_empty_returns_now() {
        let mut wb = WriteBuffer::new(4);
        assert_eq!(wb.drain(123), 123);
    }

    #[test]
    fn drain_never_travels_back_in_time() {
        let mut wb = WriteBuffer::new(4);
        wb.push(0, 100);
        assert_eq!(wb.drain(500), 500);
    }

    #[test]
    fn zero_capacity_blocks_every_write() {
        let mut wb = WriteBuffer::new(0);
        assert_eq!(wb.push(10, 300), 300);
        assert_eq!(wb.full_stall_ns(), 290);
        assert_eq!(wb.outstanding(300), 0);
    }

    #[test]
    fn outstanding_counts_in_flight_only() {
        let mut wb = WriteBuffer::new(8);
        wb.push(0, 100);
        wb.push(0, 200);
        wb.push(0, 300);
        assert_eq!(wb.outstanding(150), 2);
        assert_eq!(wb.outstanding(250), 1);
        assert_eq!(wb.outstanding(350), 0);
    }

    /// Minimal xorshift so the differential test needs no dev-dependency.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    /// The flat-slab array must agree with a `Vec<WriteBuffer>` on every
    /// operation's return value and every stall total, under a random
    /// interleaving of pushes, drains and outstanding queries across
    /// several processors and capacities (including 0 and 1).
    #[test]
    fn array_matches_per_proc_buffers_differentially() {
        for capacity in [0usize, 1, 2, 10] {
            let n_procs = 4;
            let mut reference: Vec<WriteBuffer> =
                (0..n_procs).map(|_| WriteBuffer::new(capacity)).collect();
            let mut array = WriteBufferArray::new(n_procs, capacity);
            let mut rng = Rng(0x9e37_79b9_7f4a_7c15 ^ capacity as u64);
            // Per-processor monotone clocks, like the simulation's.
            let mut clock = vec![0u64; n_procs];
            for _ in 0..5_000 {
                let p = (rng.next() % n_procs as u64) as usize;
                clock[p] += rng.next() % 50;
                let now = clock[p];
                match rng.next() % 10 {
                    0 => {
                        assert_eq!(reference[p].drain(now), array.drain(p, now));
                    }
                    1 => {
                        assert_eq!(reference[p].outstanding(now), array.outstanding(p, now));
                    }
                    _ => {
                        let completes = now + rng.next() % 400;
                        assert_eq!(
                            reference[p].push(now, completes),
                            array.push(p, now, completes),
                            "push(cap {capacity}, proc {p}, now {now})"
                        );
                    }
                }
            }
            for p in 0..n_procs {
                assert_eq!(reference[p].full_stall_ns(), array.full_stall_ns(p));
                assert_eq!(reference[p].drain(clock[p]), array.drain(p, clock[p]));
            }
        }
    }
}
