//! Randomized property tests for the timing substrates, driven by the
//! in-repo deterministic RNG so the workspace builds with no external
//! test dependencies.

use coma_timing::{EventQueue, Resource, WriteBuffer};
use coma_types::{ProcId, Rng64};

/// Resource: service starts are FIFO-monotone, never precede the
/// request, and total busy time equals the sum of occupancies (work
/// conservation).
#[test]
fn resource_fifo_and_work_conservation() {
    let mut rng = Rng64::new(0xF1F0);
    for _case in 0..128 {
        let n = rng.range(1, 200);
        let mut arrivals: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.below(10_000), rng.below(500)))
            .collect();
        // Arrival times must be non-decreasing for FIFO semantics.
        arrivals.sort_by_key(|r| r.0);
        let mut r = Resource::new();
        let mut last_start = 0u64;
        let mut total_occ = 0u64;
        for (t, occ) in arrivals {
            let start = r.acquire(t, occ);
            assert!(start >= t, "service before request");
            assert!(start >= last_start, "FIFO order violated");
            last_start = start;
            total_occ += occ;
        }
        assert_eq!(r.busy_ns(), total_occ);
        assert!(r.free_at() >= last_start);
    }
}

/// Resource: serve() = acquire() + latency, for any latency.
#[test]
fn resource_serve_adds_latency() {
    let mut rng = Rng64::new(0x5E17E);
    for _case in 0..128 {
        let t = rng.below(1_000_000);
        let occ = rng.below(1_000);
        let lat = rng.below(1_000);
        let mut a = Resource::new();
        let mut b = Resource::new();
        let done = a.serve(t, occ, lat);
        let start = b.acquire(t, occ);
        assert_eq!(done, start + lat);
    }
}

/// WriteBuffer: the processor never resumes before issue time, never
/// later than the completion of all outstanding writes, and
/// outstanding count never exceeds capacity.
#[test]
fn write_buffer_bounds() {
    let mut rng = Rng64::new(0xB0FF);
    for _case in 0..128 {
        let cap = rng.range(1, 16) as usize;
        let n = rng.range(1, 100);
        let mut wb = WriteBuffer::new(cap);
        let mut now = 0u64;
        let mut max_completion = 0u64;
        for _ in 0..n {
            now += rng.below(10_000);
            let completes = now + rng.below(2_000);
            let resume = wb.push(now, completes);
            max_completion = max_completion.max(completes);
            assert!(resume >= now);
            // Worst case: waited for an earlier outstanding write, which
            // completes no later than the latest completion seen so far.
            assert!(resume <= max_completion.max(now));
            now = resume;
            assert!(wb.outstanding(now) <= cap);
        }
        let drained = wb.drain(now);
        assert!(drained >= now);
        assert_eq!(wb.outstanding(drained), 0);
    }
}

/// EventQueue under its driver contract (at most one pending wake-up per
/// processor, arbitrary push/pop interleavings): pops agree exactly with
/// a sorted reference model — earliest time first, ties broken by lowest
/// processor id — and pop order is time-monotone within a parked epoch.
#[test]
fn event_queue_matches_sorted_reference_model() {
    let mut rng = Rng64::new(0xE0E0);
    for _case in 0..128 {
        let n_procs = rng.range(1, 64) as u16;
        let n_steps = rng.range(1, 400);
        let mut q = EventQueue::new();
        // Reference model: the pending (time, proc) pairs, no structure.
        let mut model: Vec<(u64, u16)> = Vec::new();
        for _ in 0..n_steps {
            let parked = model.len();
            if parked < n_procs as usize && (parked == 0 || rng.chance(0.55)) {
                // Park a processor that has no pending wake-up.
                let p = loop {
                    let p = rng.below(n_procs as u64) as u16;
                    if !model.iter().any(|&(_, q)| q == p) {
                        break p;
                    }
                };
                let t = rng.below(100_000);
                q.push(t, ProcId(p));
                model.push((t, p));
            } else {
                let got = q.pop();
                let want = model.iter().copied().min();
                if let Some((t, p)) = want {
                    model.retain(|&e| e != (t, p));
                    assert_eq!(got, Some((t, ProcId(p))));
                } else {
                    assert_eq!(got, None);
                }
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(q.peek_time(), model.iter().map(|&(t, _)| t).min());
        }
        // Drain: the remaining pops arrive in (time, proc) sorted order.
        let mut rest = model;
        rest.sort_unstable();
        for (t, p) in rest {
            assert_eq!(q.pop(), Some((t, ProcId(p))));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
