//! Property-based tests for the timing substrates.

use coma_timing::{EventQueue, Resource, WriteBuffer};
use coma_types::ProcId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Resource: service starts are FIFO-monotone, never precede the
    /// request, and total busy time equals the sum of occupancies (work
    /// conservation).
    #[test]
    fn resource_fifo_and_work_conservation(
        reqs in prop::collection::vec((0u64..10_000, 0u64..500), 1..200)
    ) {
        // Arrival times must be non-decreasing for FIFO semantics.
        let mut arrivals: Vec<(u64, u64)> = reqs;
        arrivals.sort_by_key(|r| r.0);
        let mut r = Resource::new();
        let mut last_start = 0u64;
        let mut total_occ = 0u64;
        for (t, occ) in arrivals {
            let start = r.acquire(t, occ);
            prop_assert!(start >= t, "service before request");
            prop_assert!(start >= last_start, "FIFO order violated");
            last_start = start;
            total_occ += occ;
        }
        prop_assert_eq!(r.busy_ns(), total_occ);
        prop_assert!(r.free_at() >= last_start);
    }

    /// Resource: serve() = acquire() + latency, for any latency.
    #[test]
    fn resource_serve_adds_latency(
        t in 0u64..1_000_000,
        occ in 0u64..1_000,
        lat in 0u64..1_000,
    ) {
        let mut a = Resource::new();
        let mut b = Resource::new();
        let done = a.serve(t, occ, lat);
        let start = b.acquire(t, occ);
        prop_assert_eq!(done, start + lat);
    }

    /// WriteBuffer: the processor never resumes before issue time, never
    /// later than the completion of all outstanding writes, and
    /// outstanding count never exceeds capacity.
    #[test]
    fn write_buffer_bounds(
        cap in 1usize..16,
        writes in prop::collection::vec((0u64..10_000, 0u64..2_000), 1..100),
    ) {
        let mut wb = WriteBuffer::new(cap);
        let mut now = 0u64;
        let mut max_completion = 0u64;
        for (dt, dur) in writes {
            now += dt;
            let completes = now + dur;
            let resume = wb.push(now, completes);
            max_completion = max_completion.max(completes);
            prop_assert!(resume >= now);
            // Worst case: waited for an earlier outstanding write, which
            // completes no later than the latest completion seen so far.
            prop_assert!(resume <= max_completion.max(now));
            now = resume;
            prop_assert!(wb.outstanding(now) <= cap);
        }
        let drained = wb.drain(now);
        prop_assert!(drained >= now);
        prop_assert_eq!(wb.outstanding(drained), 0);
    }

    /// EventQueue pops in non-decreasing time order regardless of insert
    /// order, and returns exactly the inserted multiset.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        events in prop::collection::vec((0u64..100_000, 0u16..16), 1..200)
    ) {
        let mut q = EventQueue::new();
        for &(t, p) in &events {
            q.push(t, ProcId(p));
        }
        prop_assert_eq!(q.len(), events.len());
        let mut popped = Vec::new();
        let mut last = 0u64;
        while let Some((t, p)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped.push((t, p.0));
        }
        let mut want = events;
        want.sort_unstable();
        popped.sort_unstable();
        prop_assert_eq!(popped, want);
    }
}
