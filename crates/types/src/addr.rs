//! Byte and cache-line addressing.
//!
//! The entire study uses a fixed 64-byte cache line (paper §3.1) and 4 KB
//! pages allocated consecutively on demand (paper §3). Addresses are plain
//! byte offsets into the application's (scaled) working set; there is no
//! virtual memory translation because the paper allocates physical pages
//! consecutively as they are touched.

use std::fmt;

/// Cache line size in bytes (paper §3.1: "the cache line size has been held
/// at 64 bytes").
pub const LINE_BYTES: u64 = 64;
/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;
/// Page size used for on-demand consecutive allocation.
pub const PAGE_BYTES: u64 = 4096;
/// log2 of [`PAGE_BYTES`].
pub const PAGE_SHIFT: u32 = 12;

/// A byte address within the simulated application address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A cache-line number: the byte address shifted right by [`LINE_SHIFT`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineNum(pub u64);

impl Addr {
    /// The line containing this address.
    #[inline]
    pub fn line(self) -> LineNum {
        LineNum(self.0 >> LINE_SHIFT)
    }

    /// The page number containing this address.
    #[inline]
    pub fn page(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Offset of this address within its cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl LineNum {
    /// First byte address of this line.
    #[inline]
    pub fn base_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Cache set index for a cache with `n_sets` sets.
    ///
    /// Set count does not have to be a power of two: the attraction-memory
    /// size is derived from the working set and the memory pressure, which
    /// yields "odd cache sizes" (paper §3.1), so a modulo mapping is used.
    #[inline]
    pub fn set_index(self, n_sets: u64) -> u64 {
        debug_assert!(n_sets > 0);
        self.0 % n_sets
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Debug for LineNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_address() {
        assert_eq!(Addr(0).line(), LineNum(0));
        assert_eq!(Addr(63).line(), LineNum(0));
        assert_eq!(Addr(64).line(), LineNum(1));
        assert_eq!(Addr(6400).line(), LineNum(100));
    }

    #[test]
    fn page_of_address() {
        assert_eq!(Addr(0).page(), 0);
        assert_eq!(Addr(4095).page(), 0);
        assert_eq!(Addr(4096).page(), 1);
    }

    #[test]
    fn line_base_roundtrip() {
        for n in [0u64, 1, 7, 1023, 1 << 30] {
            let l = LineNum(n);
            assert_eq!(l.base_addr().line(), l);
        }
    }

    #[test]
    fn line_offset_within_line() {
        assert_eq!(Addr(0).line_offset(), 0);
        assert_eq!(Addr(65).line_offset(), 1);
        assert_eq!(Addr(127).line_offset(), 63);
    }

    #[test]
    fn set_index_non_power_of_two() {
        // 13 sets: lines distribute modulo 13.
        assert_eq!(LineNum(0).set_index(13), 0);
        assert_eq!(LineNum(13).set_index(13), 0);
        assert_eq!(LineNum(14).set_index(13), 1);
    }
}
