//! Machine and timing configuration (paper §3.1–§3.2).
//!
//! [`MachineConfig`] describes the structural parameters that the paper
//! varies (processors per node, AM associativity, memory pressure) plus
//! the ones it holds fixed (16 processors, 64-byte lines, 4 KB FLC,
//! SLC = working-set/128, 10-entry write buffer).
//!
//! [`LatencyConfig`] carries the §3.2 timing model, with *occupancy*
//! (bandwidth) separated from *latency* so the paper's bandwidth
//! sensitivity experiments ("if the DRAM bandwidth is doubled while the
//! latency is held constant…") are a one-field change.

use crate::addr::LINE_BYTES;
use crate::ids::NodeId;
use crate::nodeset::NodeSet;
use crate::pressure::MemoryPressure;
use crate::time::Nanos;
use crate::topology::Topology;
use std::fmt;

/// Structural machine parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Total processors in the machine (16 throughout the paper).
    pub n_procs: usize,
    /// Processors sharing each node / attraction memory (1, 2 or 4).
    pub procs_per_node: usize,
    /// First-level cache size per processor in bytes (4 KB, direct-mapped).
    pub flc_bytes: u64,
    /// The second-level cache is `working_set / slc_ws_ratio` (128).
    pub slc_ws_ratio: u64,
    /// SLC associativity.
    pub slc_assoc: usize,
    /// Attraction-memory associativity (4 default, 8 in the Fig. 4 variant).
    pub am_assoc: usize,
    /// Target memory pressure; the AM size is derived from it.
    pub memory_pressure: MemoryPressure,
    /// Write-buffer entries per processor (10, release consistency).
    pub write_buffer_entries: usize,
    /// Whether dirty lines may be transferred directly between SLCs within
    /// a node (on in the paper's model; ablation knob).
    pub intra_node_transfers: bool,
    /// Whether the SLCs are inclusive in the attraction memory (the
    /// paper's base model). `false` implements the §4.2 suggestion of
    /// breaking inclusion so SLC replicas survive AM replacements.
    pub inclusive_hierarchy: bool,
    /// Interconnect/directory hierarchy shape (flat for the paper's
    /// single-bus machine).
    pub topology: Topology,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_procs: 16,
            procs_per_node: 1,
            flc_bytes: 4096,
            slc_ws_ratio: 128,
            slc_assoc: 4,
            am_assoc: 4,
            memory_pressure: MemoryPressure::MP_50,
            write_buffer_entries: 10,
            intra_node_transfers: true,
            inclusive_hierarchy: true,
            topology: Topology::flat(),
        }
    }
}

/// Errors produced by [`MachineConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `n_procs` must be a positive multiple of `procs_per_node`.
    ProcsNotDivisible {
        n_procs: usize,
        procs_per_node: usize,
    },
    /// A structural parameter was zero.
    ZeroParameter(&'static str),
    /// The derived cache would have no capacity for this working set.
    DegenerateCache { which: &'static str, ws_bytes: u64 },
    /// `procs_per_node` cannot exceed the total processor count.
    ProcsPerNodeExceedsProcs {
        n_procs: usize,
        procs_per_node: usize,
    },
    /// More nodes than the sharer sets can represent.
    TooManyNodes { n_nodes: usize, max: usize },
    /// More cluster groups than a directory presence mask can represent.
    TooManyGroups { n_groups: usize, max: usize },
    /// Every group must contain the same whole number of nodes.
    GroupsDontDivideNodes { n_nodes: usize, n_groups: usize },
    /// Level count inconsistent with the group count (flat needs 0 levels,
    /// multiple groups need 1 ≤ levels ≤ ⌈log₂ n_groups⌉).
    LevelsOutOfRange { n_groups: usize, levels: usize },
    /// A workload generator was configured with an empty object universe
    /// (zero keys, zero vertices, …).
    EmptyWorkload {
        family: &'static str,
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ProcsNotDivisible { n_procs, procs_per_node } => write!(
                f,
                "n_procs ({n_procs}) must be a positive multiple of procs_per_node ({procs_per_node})"
            ),
            ConfigError::ZeroParameter(p) => write!(f, "parameter {p} must be non-zero"),
            ConfigError::DegenerateCache { which, ws_bytes } => write!(
                f,
                "{which} degenerates to zero capacity for working set of {ws_bytes} bytes"
            ),
            ConfigError::ProcsPerNodeExceedsProcs { n_procs, procs_per_node } => write!(
                f,
                "procs_per_node ({procs_per_node}) exceeds n_procs ({n_procs})"
            ),
            ConfigError::TooManyNodes { n_nodes, max } => {
                write!(f, "{n_nodes} nodes exceed the sharer-set capacity of {max}")
            }
            ConfigError::TooManyGroups { n_groups, max } => {
                write!(f, "{n_groups} groups exceed the presence-mask capacity of {max}")
            }
            ConfigError::GroupsDontDivideNodes { n_nodes, n_groups } => write!(
                f,
                "{n_groups} groups do not evenly partition {n_nodes} nodes"
            ),
            ConfigError::LevelsOutOfRange { n_groups, levels } => write!(
                f,
                "{levels} directory levels inconsistent with {n_groups} groups \
                 (flat needs 0; multiple groups need 1..=ceil(log2 n_groups))"
            ),
            ConfigError::EmptyWorkload { family, what } => {
                write!(f, "{family}: {what} must be non-zero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl MachineConfig {
    /// Paper default with the given clustering degree and memory pressure.
    pub fn paper(procs_per_node: usize, memory_pressure: MemoryPressure) -> Self {
        MachineConfig {
            procs_per_node,
            memory_pressure,
            ..Default::default()
        }
    }

    /// Number of nodes (= attraction memories).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_procs / self.procs_per_node
    }

    /// Check structural consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, v) in [
            ("n_procs", self.n_procs),
            ("procs_per_node", self.procs_per_node),
            ("slc_assoc", self.slc_assoc),
            ("am_assoc", self.am_assoc),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroParameter(name));
            }
        }
        if self.flc_bytes == 0 {
            return Err(ConfigError::ZeroParameter("flc_bytes"));
        }
        if self.slc_ws_ratio == 0 {
            return Err(ConfigError::ZeroParameter("slc_ws_ratio"));
        }
        if self.procs_per_node > self.n_procs {
            return Err(ConfigError::ProcsPerNodeExceedsProcs {
                n_procs: self.n_procs,
                procs_per_node: self.procs_per_node,
            });
        }
        if !self.n_procs.is_multiple_of(self.procs_per_node) {
            return Err(ConfigError::ProcsNotDivisible {
                n_procs: self.n_procs,
                procs_per_node: self.procs_per_node,
            });
        }
        let n_nodes = self.n_nodes();
        if n_nodes > NodeSet::CAPACITY {
            return Err(ConfigError::TooManyNodes {
                n_nodes,
                max: NodeSet::CAPACITY,
            });
        }
        let Topology { n_groups, levels } = self.topology;
        if n_groups == 0 {
            return Err(ConfigError::ZeroParameter("topology.n_groups"));
        }
        if n_groups > 64 {
            return Err(ConfigError::TooManyGroups { n_groups, max: 64 });
        }
        // Flat ⇔ zero levels; a multi-group tree needs at least one level
        // and no more than a binary tree would (deeper chains degenerate).
        let max_levels = if n_groups == 1 {
            0
        } else {
            n_groups.next_power_of_two().trailing_zeros() as usize
        };
        let min_levels = usize::from(n_groups > 1);
        if levels < min_levels || levels > max_levels {
            return Err(ConfigError::LevelsOutOfRange { n_groups, levels });
        }
        if n_groups > n_nodes || !n_nodes.is_multiple_of(n_groups) {
            return Err(ConfigError::GroupsDontDivideNodes { n_nodes, n_groups });
        }
        Ok(())
    }

    /// Derive the concrete cache geometry for a given working-set size.
    pub fn geometry(&self, ws_bytes: u64) -> Result<MachineGeometry, ConfigError> {
        self.validate()?;
        let flc_sets = (self.flc_bytes / LINE_BYTES).max(1);

        let slc_bytes = ws_bytes / self.slc_ws_ratio;
        let slc_lines = slc_bytes / LINE_BYTES;
        let slc_sets = (slc_lines / self.slc_assoc as u64).max(1);
        if slc_lines == 0 {
            return Err(ConfigError::DegenerateCache {
                which: "SLC",
                ws_bytes,
            });
        }

        // Total AM derived from pressure; held constant *per processor*
        // across clustering degrees (paper §3.1), so a 4-processor node has
        // a 4× larger AM than a single-processor node.
        let total_am = self.memory_pressure.total_am_bytes(ws_bytes);
        let am_per_proc_lines = total_am / self.n_procs as u64 / LINE_BYTES;
        let am_node_lines = am_per_proc_lines * self.procs_per_node as u64;
        let am_sets = (am_node_lines / self.am_assoc as u64).max(1);
        if am_node_lines < self.am_assoc as u64 {
            return Err(ConfigError::DegenerateCache {
                which: "AM",
                ws_bytes,
            });
        }

        Ok(MachineGeometry {
            n_procs: self.n_procs,
            n_nodes: self.n_nodes(),
            procs_per_node: self.procs_per_node,
            flc_sets,
            slc_sets,
            slc_assoc: self.slc_assoc,
            am_sets,
            am_assoc: self.am_assoc,
            topology: self.topology,
        })
    }
}

/// Concrete cache geometry derived from a [`MachineConfig`] and a working
/// set. All caches use 64-byte lines; set counts may be "odd" (not powers
/// of two) exactly as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineGeometry {
    pub n_procs: usize,
    pub n_nodes: usize,
    pub procs_per_node: usize,
    /// FLC: direct-mapped, `flc_sets` lines.
    pub flc_sets: u64,
    pub slc_sets: u64,
    pub slc_assoc: usize,
    pub am_sets: u64,
    pub am_assoc: usize,
    /// Interconnect/directory hierarchy shape.
    pub topology: Topology,
}

impl MachineGeometry {
    /// Nodes sharing each cluster-group bus.
    #[inline]
    pub fn nodes_per_group(&self) -> usize {
        self.n_nodes / self.topology.n_groups
    }

    /// Cluster group a node's bus belongs to.
    #[inline]
    pub fn group_of(&self, node: NodeId) -> usize {
        node.0 as usize / self.nodes_per_group()
    }

    /// Attraction-memory capacity per node, in lines.
    #[inline]
    pub fn am_node_lines(&self) -> u64 {
        self.am_sets * self.am_assoc as u64
    }

    /// Total attraction-memory capacity of the machine, in lines.
    #[inline]
    pub fn am_total_lines(&self) -> u64 {
        self.am_node_lines() * self.n_nodes as u64
    }

    /// SLC capacity per processor, in lines.
    #[inline]
    pub fn slc_lines(&self) -> u64 {
        self.slc_sets * self.slc_assoc as u64
    }
}

/// The §3.2 timing model. All values in nanoseconds.
///
/// Contention-less access times reproduce the paper's:
/// FLC hit 0 ns; SLC hit 32 ns; AM hit 148 ns (24 controller + 100 DRAM +
/// 24 controller); remote access 332 ns of which the global bus is occupied
/// 2 × 20 ns. `remote_extra_ns` covers arbitration and the (overlapped)
/// local-AM fill and is calibrated so the contention-less remote total is
/// exactly 332 ns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// SLC access latency and port occupancy.
    pub slc_ns: Nanos,
    pub slc_occ_ns: Nanos,
    /// Node controller / AM state+tag latency per pass (two passes per AM
    /// access: lookup and data return).
    pub ctrl_ns: Nanos,
    pub ctrl_occ_ns: Nanos,
    /// AM DRAM data access latency.
    pub dram_ns: Nanos,
    /// AM DRAM occupancy per access; halving this doubles DRAM bandwidth
    /// at constant latency (paper §4.3).
    pub dram_occ_ns: Nanos,
    /// Global bus latency per phase (request / response).
    pub bus_ns: Nanos,
    /// Global bus occupancy per phase.
    pub bus_occ_ns: Nanos,
    /// Inter-level link latency per directory level crossed (hierarchical
    /// topologies only; the flat machine crosses no links).
    pub link_ns: Nanos,
    /// Inter-level link occupancy per crossing.
    pub link_occ_ns: Nanos,
    /// Remainder of the remote path (arbitration + overlapped local fill).
    pub remote_extra_ns: Nanos,
    /// Penalty for an injection that finds no receiving slot anywhere:
    /// the OS must page out to backing store and later page back in.
    pub pageout_ns: Nanos,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl LatencyConfig {
    /// The paper's original configuration (DRAM occupied 100 ns per access).
    pub const fn paper_default() -> Self {
        LatencyConfig {
            slc_ns: 32,
            slc_occ_ns: 32,
            ctrl_ns: 24,
            ctrl_occ_ns: 24,
            dram_ns: 100,
            dram_occ_ns: 100,
            bus_ns: 20,
            bus_occ_ns: 20,
            link_ns: 20,
            link_occ_ns: 20,
            // 24 (local miss) + 20 (req) + 24+100+24 (remote AM) + 20 (resp)
            // + 24 (local return) = 236; +96 → the paper's 332 ns.
            remote_extra_ns: 96,
            pageout_ns: 20_000,
        }
    }

    /// Doubled DRAM bandwidth at constant latency — the configuration used
    /// for the Figure 5 execution-time results.
    pub const fn paper_double_dram() -> Self {
        LatencyConfig {
            dram_occ_ns: 50,
            ..Self::paper_default()
        }
    }

    /// Quadrupled DRAM bandwidth plus doubled node-controller bandwidth
    /// (paper §4.3: with this, all applications except LU-non match or beat
    /// single-processor nodes even at 50 % MP).
    pub const fn paper_quad_dram_double_ctrl() -> Self {
        LatencyConfig {
            dram_occ_ns: 25,
            ctrl_occ_ns: 12,
            ..Self::paper_default()
        }
    }

    /// Halved global-bus bandwidth (paper §4.3: makes clustering even more
    /// attractive since the remote penalty grows).
    pub const fn paper_half_bus() -> Self {
        LatencyConfig {
            bus_occ_ns: 40,
            ..Self::paper_double_dram()
        }
    }

    /// Contention-less AM hit latency (should be the paper's 148 ns).
    #[inline]
    pub const fn am_hit_ns(&self) -> Nanos {
        self.ctrl_ns + self.dram_ns + self.ctrl_ns
    }

    /// Contention-less remote access latency (should be the paper's 332 ns).
    #[inline]
    pub const fn remote_ns(&self) -> Nanos {
        // local miss detect + request phase + remote AM access
        // + response phase + local controller return + calibrated extra
        self.ctrl_ns
            + self.bus_ns
            + self.am_hit_ns()
            + self.bus_ns
            + self.ctrl_ns
            + self.remote_extra_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_machine() {
        let c = MachineConfig::default();
        assert_eq!(c.n_procs, 16);
        assert_eq!(c.n_nodes(), 16);
        assert_eq!(c.flc_bytes, 4096);
        assert_eq!(c.write_buffer_entries, 10);
        c.validate().unwrap();
    }

    #[test]
    fn node_counts_per_clustering() {
        for (ppn, nodes) in [(1, 16), (2, 8), (4, 4)] {
            let c = MachineConfig::paper(ppn, MemoryPressure::MP_50);
            assert_eq!(c.n_nodes(), nodes);
        }
    }

    #[test]
    fn invalid_divisibility_rejected() {
        let c = MachineConfig {
            procs_per_node: 3,
            ..Default::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ProcsNotDivisible { .. })
        ));
    }

    #[test]
    fn zero_assoc_rejected() {
        let c = MachineConfig {
            am_assoc: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroParameter("am_assoc")));
    }

    #[test]
    fn am_per_processor_constant_across_clustering() {
        let ws = 4 << 20; // 4 MiB
        let mut per_proc = Vec::new();
        for ppn in [1usize, 2, 4] {
            let c = MachineConfig::paper(ppn, MemoryPressure::MP_50);
            let g = c.geometry(ws).unwrap();
            per_proc.push(g.am_node_lines() / ppn as u64);
        }
        assert_eq!(per_proc[0], per_proc[1]);
        assert_eq!(per_proc[1], per_proc[2]);
    }

    #[test]
    fn higher_pressure_means_smaller_am() {
        let ws = 4 << 20;
        let small = MachineConfig::paper(1, MemoryPressure::MP_87)
            .geometry(ws)
            .unwrap();
        let large = MachineConfig::paper(1, MemoryPressure::MP_6)
            .geometry(ws)
            .unwrap();
        assert!(large.am_total_lines() > small.am_total_lines());
        // At MP 6.25% total AM = 16× working set.
        assert_eq!(large.am_total_lines(), 16 * (ws / LINE_BYTES));
    }

    #[test]
    fn total_am_capacity_covers_working_set() {
        // The OS guarantees the working set fits: total AM lines ≥ WS lines.
        let ws = 3_333_333u64; // deliberately ragged
        for mp in MemoryPressure::PAPER_SWEEP {
            for ppn in [1usize, 2, 4] {
                let c = MachineConfig::paper(ppn, mp);
                let g = c.geometry(ws).unwrap();
                assert!(
                    g.am_total_lines() * LINE_BYTES >= ws - (ws % LINE_BYTES),
                    "AM too small at {mp} ppn={ppn}"
                );
            }
        }
    }

    #[test]
    fn slc_is_ws_over_128() {
        let ws = 8 << 20;
        let c = MachineConfig::default();
        let g = c.geometry(ws).unwrap();
        assert_eq!(g.slc_lines() * LINE_BYTES, ws / 128);
    }

    #[test]
    fn degenerate_slc_rejected() {
        let c = MachineConfig::default();
        assert!(matches!(
            c.geometry(1024), // SLC would be 8 bytes
            Err(ConfigError::DegenerateCache { which: "SLC", .. })
        ));
    }

    #[test]
    fn paper_latencies() {
        let l = LatencyConfig::paper_default();
        assert_eq!(l.am_hit_ns(), 148);
        assert_eq!(l.remote_ns(), 332);
    }

    #[test]
    fn double_dram_keeps_latency() {
        let l = LatencyConfig::paper_double_dram();
        assert_eq!(l.am_hit_ns(), 148);
        assert_eq!(l.dram_occ_ns, 50);
        assert_eq!(l.dram_ns, 100);
    }

    #[test]
    fn half_bus_only_changes_occupancy() {
        let l = LatencyConfig::paper_half_bus();
        assert_eq!(l.remote_ns(), 332);
        assert_eq!(l.bus_occ_ns, 40);
    }

    #[test]
    fn oversized_node_rejected() {
        let c = MachineConfig {
            n_procs: 8,
            procs_per_node: 16,
            ..Default::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::ProcsPerNodeExceedsProcs {
                n_procs: 8,
                procs_per_node: 16,
            })
        );
    }

    #[test]
    fn too_many_nodes_rejected() {
        let c = MachineConfig {
            n_procs: 512,
            procs_per_node: 1,
            ..Default::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::TooManyNodes {
                n_nodes: 512,
                max: 256,
            })
        );
    }

    #[test]
    fn group_and_level_ranges_enforced() {
        let with_topo = |n_procs, ppn, topology| MachineConfig {
            n_procs,
            procs_per_node: ppn,
            topology,
            ..Default::default()
        };
        // Zero groups.
        assert_eq!(
            with_topo(16, 1, Topology::tree(0, 1)).validate(),
            Err(ConfigError::ZeroParameter("topology.n_groups"))
        );
        // More groups than a u64 presence mask holds.
        assert_eq!(
            with_topo(256, 1, Topology::tree(128, 7)).validate(),
            Err(ConfigError::TooManyGroups {
                n_groups: 128,
                max: 64,
            })
        );
        // Flat machine with a spurious upper level, and a multi-group
        // machine with none.
        assert!(matches!(
            with_topo(16, 1, Topology::tree(1, 1)).validate(),
            Err(ConfigError::LevelsOutOfRange { .. })
        ));
        assert!(matches!(
            with_topo(16, 1, Topology::tree(4, 0)).validate(),
            Err(ConfigError::LevelsOutOfRange { .. })
        ));
        // Deeper than a binary tree needs.
        assert!(matches!(
            with_topo(16, 1, Topology::tree(4, 3)).validate(),
            Err(ConfigError::LevelsOutOfRange { .. })
        ));
        // Groups must evenly partition the nodes.
        assert_eq!(
            with_topo(16, 2, Topology::two_level(3)).validate(),
            Err(ConfigError::GroupsDontDivideNodes {
                n_nodes: 8,
                n_groups: 3,
            })
        );
        // A well-formed 64-processor 2-level machine passes.
        with_topo(64, 4, Topology::two_level(4)).validate().unwrap();
    }

    #[test]
    fn hierarchical_geometry_carries_topology() {
        let c = MachineConfig {
            n_procs: 64,
            procs_per_node: 4,
            topology: Topology::two_level(4),
            ..Default::default()
        };
        let g = c.geometry(4 << 20).unwrap();
        assert_eq!(g.topology, Topology::two_level(4));
        assert_eq!(g.nodes_per_group(), 4);
        assert_eq!(g.group_of(NodeId(0)), 0);
        assert_eq!(g.group_of(NodeId(5)), 1);
        assert_eq!(g.group_of(NodeId(15)), 3);
    }

    #[test]
    fn link_latency_defaults_match_bus_phase() {
        let l = LatencyConfig::paper_default();
        assert_eq!(l.link_ns, 20);
        assert_eq!(l.link_occ_ns, 20);
        // The bandwidth-variant constructors inherit the link timing.
        assert_eq!(LatencyConfig::paper_half_bus().link_ns, 20);
    }
}
