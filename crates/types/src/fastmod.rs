//! Division-free modulo by a runtime constant (Lemire's fastmod).
//!
//! The attraction-memory set count is derived from the working set and the
//! memory pressure, which yields "odd cache sizes" (paper §3.1) — the set
//! mapping is a genuine `x % d` with a non-power-of-two `d`, evaluated once
//! per cache probe on the simulator's hottest path. A hardware 64-bit
//! division costs tens of cycles; precomputing the magic constant
//! `M = ceil(2^128 / d)` turns every subsequent modulo into two widening
//! multiplies (Lemire, Kaser & Kurz, "Faster remainder by direct
//! computation", 2019, extended from the published 32-bit version to u64
//! operands with a 128-bit magic).

/// A divisor with a precomputed magic constant for division-free `%`.
#[derive(Clone, Copy, Debug)]
pub struct FastMod {
    d: u64,
    /// `ceil(2^128 / d)`, or 0 when `d == 1` (every remainder is 0, which
    /// the multiply then produces without a special case).
    m: u128,
}

/// High 64 bits of the 192-bit product `a * d`.
#[inline]
fn mul128_by_64_hi(a: u128, d: u64) -> u64 {
    let lo = (a as u64 as u128) * d as u128;
    let hi = (a >> 64) * d as u128;
    ((hi + (lo >> 64)) >> 64) as u64
}

impl FastMod {
    /// Precompute the magic for divisor `d`. Panics if `d == 0`.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "FastMod divisor must be non-zero");
        let m = if d == 1 { 0 } else { u128::MAX / d as u128 + 1 };
        FastMod { d, m }
    }

    /// The divisor this instance reduces by.
    #[inline]
    pub fn divisor(self) -> u64 {
        self.d
    }

    /// `x % d`, without a division instruction.
    #[inline]
    pub fn reduce(self, x: u64) -> u64 {
        let lowbits = self.m.wrapping_mul(x as u128);
        mul128_by_64_hi(lowbits, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn agrees_with_hardware_modulo_on_edge_values() {
        for d in [1u64, 2, 3, 5, 7, 13, 64, 1000, u64::MAX - 1, u64::MAX] {
            let f = FastMod::new(d);
            for x in [
                0u64,
                1,
                2,
                d.wrapping_sub(1),
                d,
                d.wrapping_add(1),
                u64::MAX,
            ] {
                assert_eq!(f.reduce(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn agrees_with_hardware_modulo_randomized() {
        let mut rng = Rng64::new(0x0F45_740D);
        for _ in 0..20_000 {
            let d = rng.next_u64().max(1);
            let x = rng.next_u64();
            let f = FastMod::new(d);
            assert_eq!(f.reduce(x), x % d, "x={x} d={d}");
        }
        // Small divisors (the realistic set-count range) deserve density.
        for _ in 0..20_000 {
            let d = rng.range(1, 1 << 20);
            let x = rng.next_u64();
            assert_eq!(FastMod::new(d).reduce(x), x % d, "x={x} d={d}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_divisor_panics() {
        FastMod::new(0);
    }
}
