//! Processor and node identifiers.
//!
//! Processes are assigned to processors in sequential order (paper §3.1):
//! processor `p` lives in node `p / procs_per_node`, so processes created
//! after one another land in the same cluster and trivial communication
//! locality is exploitable by clustering.

use std::fmt;

/// Identifier of one of the (16) simulated processors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u16);

/// Identifier of one of the (16 / 8 / 4) nodes; each node holds one
/// attraction memory shared by its processors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl ProcId {
    /// The node this processor belongs to under sequential assignment.
    #[inline]
    pub fn node(self, procs_per_node: usize) -> NodeId {
        debug_assert!(procs_per_node > 0);
        NodeId(self.0 / procs_per_node as u16)
    }

    /// Index of this processor within its node (0 .. procs_per_node).
    #[inline]
    pub fn index_in_node(self, procs_per_node: usize) -> usize {
        (self.0 as usize) % procs_per_node
    }

    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// Processors belonging to this node under sequential assignment.
    pub fn procs(self, procs_per_node: usize) -> impl Iterator<Item = ProcId> {
        let base = self.0 as usize * procs_per_node;
        (base..base + procs_per_node).map(|p| ProcId(p as u16))
    }

    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_assignment_four_per_node() {
        assert_eq!(ProcId(0).node(4), NodeId(0));
        assert_eq!(ProcId(3).node(4), NodeId(0));
        assert_eq!(ProcId(4).node(4), NodeId(1));
        assert_eq!(ProcId(15).node(4), NodeId(3));
    }

    #[test]
    fn sequential_assignment_one_per_node() {
        for p in 0..16 {
            assert_eq!(ProcId(p).node(1), NodeId(p));
        }
    }

    #[test]
    fn index_in_node() {
        assert_eq!(ProcId(5).index_in_node(4), 1);
        assert_eq!(ProcId(5).index_in_node(2), 1);
        assert_eq!(ProcId(5).index_in_node(1), 0);
    }

    #[test]
    fn node_proc_iteration_roundtrip() {
        for ppn in [1usize, 2, 4] {
            for p in 0..16u16 {
                let pid = ProcId(p);
                let node = pid.node(ppn);
                assert!(node.procs(ppn).any(|q| q == pid));
            }
        }
    }
}
