//! Common foundation types for the cluster-based COMA simulator.
//!
//! This crate contains the vocabulary shared by every other crate in the
//! workspace: byte/line addresses, processor and node identifiers, the
//! machine and latency configurations from the paper's Section 3, the
//! memory-pressure arithmetic from Section 2, and a small deterministic
//! pseudo-random number generator used by the workload models so that every
//! simulation is exactly reproducible.
//!
//! The machine under study is the one simulated by Landin & Karlgren
//! (IPPS 1997): 16 processors grouped into nodes of 1, 2 or 4 processors,
//! each node holding one *attraction memory* (AM) shared by its processors,
//! with a global snooping bus connecting the nodes.

pub mod addr;
pub mod config;
pub mod fastmod;
pub mod ids;
pub mod nodeset;
pub mod prefetch;
pub mod pressure;
pub mod rng;
pub mod time;
pub mod topology;

pub use addr::{Addr, LineNum, LINE_BYTES, LINE_SHIFT, PAGE_BYTES, PAGE_SHIFT};
pub use config::{ConfigError, LatencyConfig, MachineConfig, MachineGeometry};
pub use fastmod::FastMod;
pub use ids::{NodeId, ProcId};
pub use nodeset::NodeSet;
pub use prefetch::prefetch_read;
pub use pressure::{full_replication_threshold, MemoryPressure};
pub use rng::{Rng64, ZipfSampler};
pub use time::Nanos;
pub use topology::Topology;
