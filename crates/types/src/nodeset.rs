//! A fixed-capacity bit set over node (or processor) indices.
//!
//! The flat 16-processor machine of the paper fit its sharer masks in a
//! `u16`; the hierarchical configurations reach 256 processors, so the
//! directory and the baseline engines track copy holders in this 256-bit
//! set instead. Iteration is in ascending index order, which keeps every
//! "first sharer" tie-break (ownership migration, victim scans) identical
//! to the old `u16` bit-scan behaviour.

use std::fmt;

/// Bit set holding indices `0..256`.
///
/// Lexicographic `Ord` over the words equals numeric order of the
/// underlying 256-bit integer only per-word, but any total order is enough
/// for the deterministic sorting the verifier's snapshots need.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeSet([u64; 4]);

impl NodeSet {
    /// Largest index count the set can hold.
    pub const CAPACITY: usize = 256;

    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        NodeSet([0; 4])
    }

    /// Set containing exactly `i`.
    #[inline]
    pub fn singleton(i: u16) -> Self {
        let mut s = Self::empty();
        s.insert(i);
        s
    }

    #[inline]
    fn split(i: u16) -> (usize, u64) {
        assert!((i as usize) < Self::CAPACITY, "index {i} out of range");
        ((i / 64) as usize, 1u64 << (i % 64))
    }

    #[inline]
    pub fn insert(&mut self, i: u16) {
        let (w, b) = Self::split(i);
        self.0[w] |= b;
    }

    #[inline]
    pub fn remove(&mut self, i: u16) {
        let (w, b) = Self::split(i);
        self.0[w] &= !b;
    }

    #[inline]
    pub fn contains(&self, i: u16) -> bool {
        let (w, b) = Self::split(i);
        self.0[w] & b != 0
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[inline]
    pub fn clear(&mut self) {
        self.0 = [0; 4];
    }

    /// Members in ascending order.
    #[inline]
    pub fn iter(&self) -> NodeSetIter {
        NodeSetIter {
            words: self.0,
            word: 0,
        }
    }

    /// Union with another set.
    #[inline]
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = *self;
        for (w, o) in out.0.iter_mut().zip(other.0) {
            *w |= o;
        }
        out
    }
}

/// Ascending-order member iterator.
pub struct NodeSetIter {
    words: [u64; 4],
    word: usize,
}

impl Iterator for NodeSetIter {
    type Item = u16;

    #[inline]
    fn next(&mut self) -> Option<u16> {
        while self.word < 4 {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros();
                self.words[self.word] &= w - 1; // clear lowest set bit
                return Some((self.word as u32 * 64 + bit) as u16);
            }
            self.word += 1;
        }
        None
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u16> for NodeSet {
    fn from_iter<T: IntoIterator<Item = u16>>(iter: T) -> Self {
        let mut s = Self::empty();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::empty();
        assert!(s.is_empty());
        for i in [0u16, 15, 63, 64, 100, 255] {
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.len(), 6);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 5);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_ascending_across_words() {
        let members = [250u16, 3, 64, 7, 128, 0];
        let s: NodeSet = members.into_iter().collect();
        let got: Vec<u16> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 7, 64, 128, 250]);
    }

    #[test]
    fn first_member_matches_u16_bit_scan() {
        // Ascending iteration must pick the same "first sharer" the old
        // u16 trailing-zeros scan picked.
        for mask in [0b1010u16, 0b1000_0000_0000_0001, 0b100] {
            let s: NodeSet = (0..16u16).filter(|i| mask & (1 << i) != 0).collect();
            assert_eq!(s.iter().next(), Some(mask.trailing_zeros() as u16));
        }
    }

    #[test]
    fn singleton_and_union() {
        let a = NodeSet::singleton(5);
        let b = NodeSet::singleton(200);
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![5, 200]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut s = NodeSet::empty();
        s.insert(256);
    }

    #[test]
    fn debug_lists_members() {
        let s: NodeSet = [1u16, 65].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 65}");
    }
}
