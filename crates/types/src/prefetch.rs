//! Software prefetch hint, usable from any crate in the workspace.
//!
//! The simulated cache arrays (SLCs, attraction memories, the line
//! directory) are sized to the *simulated* machine's working sets and do
//! not fit the host's caches, so nearly every probe on a miss path is a
//! host DRAM access. The driver knows each processor's next reference one
//! operation ahead of executing it, which is exactly the distance needed
//! to overlap those misses with the current operation's protocol work —
//! see `MemorySystem::prefetch`.
//!
//! A prefetch is purely a performance hint: it reads nothing a program
//! can observe and writes nothing, so issuing (or not issuing) one can
//! never change simulation results.

/// Hint the CPU to pull the cache line containing `p` into L1.
///
/// No-op on architectures without a stable prefetch primitive. Safe for
/// any pointer value — prefetch instructions do not fault.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint; it cannot fault even on invalid
    // addresses and has no architectural side effects.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM PLDL1KEEP is a hint with no architectural effects.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_side_effect_free() {
        let v = [1u64, 2, 3];
        prefetch_read(&v[0]);
        prefetch_read(v.as_ptr().wrapping_add(1_000_000)); // out of bounds: still fine
        assert_eq!(v, [1, 2, 3]);
    }
}
