//! Memory-pressure arithmetic (paper §2 and §4.2).
//!
//! The *memory pressure* (MP) of an execution is the ratio between the
//! application's working set and the total attraction-memory capacity:
//!
//! ```text
//! MP = working_set / total_attraction_memory
//! ```
//!
//! The paper's experiments use MPs of 6.25 %, 50 %, 75 %, 81.25 % and
//! 87.5 % — chosen so that a single copy of the working set entirely fills
//! 1, 8, 12, 13 or 14 of the 16 per-processor attraction-memory shares.
//! The MP is represented exactly as a rational so the AM sizes derived from
//! it stay integral and the working set can be held constant across the
//! whole experiment matrix (paper §3.1).

use std::fmt;

/// A memory pressure expressed exactly as `filled / total` sixteenths
/// (or any other rational).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemoryPressure {
    /// Number of per-processor AM shares a single working-set copy fills.
    pub num: u32,
    /// Total per-processor AM shares in the machine (16 in the paper).
    pub den: u32,
}

impl MemoryPressure {
    /// 6.25 % — one sixteenth; effectively infinite caches, the working set
    /// fits in every attraction memory so only cold and coherence misses
    /// occur (paper §4.1).
    pub const MP_6: MemoryPressure = MemoryPressure { num: 1, den: 16 };
    /// 50 % — the paper's execution-time baseline (§4.3).
    pub const MP_50: MemoryPressure = MemoryPressure { num: 8, den: 16 };
    /// 75 %.
    pub const MP_75: MemoryPressure = MemoryPressure { num: 12, den: 16 };
    /// 81.25 % — the highest pressure at which clustering still reduces
    /// traffic for every application (paper §4.2).
    pub const MP_81: MemoryPressure = MemoryPressure { num: 13, den: 16 };
    /// 87.5 % — the very high pressure at which conflict misses appear for
    /// the widely-replicating applications (paper §4.2).
    pub const MP_87: MemoryPressure = MemoryPressure { num: 14, den: 16 };

    /// All five pressures used in the paper's traffic figures, ascending.
    pub const PAPER_SWEEP: [MemoryPressure; 5] = [
        Self::MP_6,
        Self::MP_50,
        Self::MP_75,
        Self::MP_81,
        Self::MP_87,
    ];

    pub fn new(num: u32, den: u32) -> Self {
        assert!(den > 0 && num > 0 && num <= den, "MP must be in (0, 1]");
        MemoryPressure { num, den }
    }

    /// The pressure as a floating-point fraction.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Percentage, for display.
    #[inline]
    pub fn percent(self) -> f64 {
        self.as_f64() * 100.0
    }

    /// Total attraction-memory bytes across the machine for a working set
    /// of `ws_bytes`: `total = ws / MP`, rounded up to keep MP ≤ nominal.
    #[inline]
    pub fn total_am_bytes(self, ws_bytes: u64) -> u64 {
        (ws_bytes * self.den as u64).div_ceil(self.num as u64)
    }
}

impl fmt::Display for MemoryPressure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = self.percent();
        if (pct - pct.round()).abs() < 1e-9 {
            write!(f, "{}%", pct.round() as u64)
        } else {
            write!(f, "{:.2}%", pct)
        }
    }
}

/// Highest memory pressure at which one cache line can still be replicated
/// in **all** nodes of the machine, as a rational `(num, den)`.
///
/// Reasoning (paper §4.2): consider all lines mapping to one set index.
/// Globally that set index owns `n_nodes × assoc` way-slots. A fraction MP
/// of them holds unique (unreplicated) data; replicating one line into
/// every node requires `n_nodes − 1` extra copies beyond its single owner
/// copy. Full replication is possible while
/// `MP ≤ (n_nodes·assoc − (n_nodes − 1)) / (n_nodes·assoc)`.
///
/// This reproduces the paper's thresholds exactly:
/// 16 nodes × 4-way → 49/64 (76.5 %); 16 × 8-way → 113/128 (88.2 %);
/// 4 nodes × 4-way → 13/16 (81.25 %); 4 × 8-way → 29/32 (90.6 %).
pub fn full_replication_threshold(n_nodes: u32, assoc: u32) -> (u32, u32) {
    assert!(n_nodes > 0 && assoc > 0);
    let slots = n_nodes * assoc;
    let replicas = n_nodes - 1;
    assert!(
        slots > replicas,
        "associativity too small to ever replicate"
    );
    (slots - replicas, slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pressure_values() {
        assert!((MemoryPressure::MP_6.as_f64() - 0.0625).abs() < 1e-12);
        assert!((MemoryPressure::MP_50.as_f64() - 0.5).abs() < 1e-12);
        assert!((MemoryPressure::MP_75.as_f64() - 0.75).abs() < 1e-12);
        assert!((MemoryPressure::MP_81.as_f64() - 0.8125).abs() < 1e-12);
        assert!((MemoryPressure::MP_87.as_f64() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn total_am_inverse_of_pressure() {
        let ws = 1 << 20; // 1 MiB
        assert_eq!(MemoryPressure::MP_50.total_am_bytes(ws), 2 << 20);
        assert_eq!(MemoryPressure::MP_6.total_am_bytes(ws), 16 << 20);
    }

    #[test]
    fn total_am_rounds_up() {
        // ws=100, MP=3/16 → 100*16/3 = 533.33 → 534
        let mp = MemoryPressure::new(3, 16);
        assert_eq!(mp.total_am_bytes(100), 534);
    }

    #[test]
    fn paper_replication_thresholds() {
        // Paper §4.2, verbatim numbers.
        assert_eq!(full_replication_threshold(16, 4), (49, 64));
        assert_eq!(full_replication_threshold(16, 8), (113, 128));
        assert_eq!(full_replication_threshold(4, 4), (13, 16));
        assert_eq!(full_replication_threshold(4, 8), (29, 32));
    }

    #[test]
    fn threshold_monotone_in_assoc() {
        let (n1, d1) = full_replication_threshold(16, 4);
        let (n2, d2) = full_replication_threshold(16, 8);
        assert!((n2 as f64 / d2 as f64) > (n1 as f64 / d1 as f64));
    }

    #[test]
    fn clustering_raises_threshold() {
        // 4-processor clusters (4 nodes) tolerate higher MP than 16 nodes.
        let (n1, d1) = full_replication_threshold(16, 4);
        let (n2, d2) = full_replication_threshold(4, 4);
        assert!((n2 as f64 / d2 as f64) > (n1 as f64 / d1 as f64));
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemoryPressure::MP_50.to_string(), "50%");
        assert_eq!(MemoryPressure::MP_81.to_string(), "81.25%");
    }

    #[test]
    #[should_panic]
    fn zero_pressure_rejected() {
        MemoryPressure::new(0, 16);
    }

    #[test]
    #[should_panic]
    fn over_unity_pressure_rejected() {
        MemoryPressure::new(17, 16);
    }
}
