//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the workload models draws from this small
//! SplitMix64-based generator so that a simulation is a pure function of
//! its configuration and seed: identical runs produce identical traces,
//! identical statistics and identical figures. SplitMix64 passes BigCrush,
//! is a single multiply-xor-shift pipeline per draw, and — unlike
//! process-global RNGs — costs nothing to seed per processor.

/// A SplitMix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Derive an independent child generator; used to give each simulated
    /// processor its own stream from one experiment seed.
    pub fn fork(&mut self, salt: u64) -> Rng64 {
        Rng64::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value (SplitMix64).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    /// Uses Lemire's multiply-shift reduction (no modulo bias worth noting
    /// at the ranges used here, and branch-free in the common case).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Zipf-distributed sampler over `0..n` with exponent `s`, built once and
/// sampled in O(log n) via binary search on the precomputed CDF.
///
/// Workload models use this for hot-spot access patterns (e.g. upper
/// octree levels in Barnes, popular scene objects in Raytrace), where a
/// small set of lines is touched far more often than the tail.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `0..n` (n ≥ 1) with exponent `s ≥ 0`.
    /// `s = 0` degenerates to the uniform distribution.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "ZipfSampler needs at least one element");
        assert!(s >= 0.0 && s.is_finite());
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of elements in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw an index in `0..n`; index 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64_unit();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let v = r.below(13);
            assert!(v < 13);
        }
    }

    #[test]
    fn below_reaches_all_buckets() {
        let mut r = Rng64::new(99);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            let v = r.f64_unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = Rng64::new(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(11);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_prefers_head() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut r = Rng64::new(17);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // With s=1 over 1000 elements the top-10 mass is ~39%.
        assert!(head > N / 4, "head mass too small: {head}/{N}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = ZipfSampler::new(10, 0.0);
        let mut r = Rng64::new(23);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((3500..6500).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_single_element() {
        let z = ZipfSampler::new(1, 1.5);
        let mut r = Rng64::new(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }
}
