//! Simulated time.
//!
//! All simulated time is carried in nanoseconds as a plain `u64`. The
//! paper's processors run at 250 MHz, i.e. a 4 ns cycle, and execute 4
//! instructions per cycle, so one *instruction slot* is exactly 1 ns —
//! a convenient accident that keeps all bookkeeping integral.

/// Simulated nanoseconds.
pub type Nanos = u64;

/// Nanoseconds per processor clock cycle (250 MHz).
pub const CYCLE_NS: Nanos = 4;

/// Instructions issued per cycle (4-way superscalar, paper §3.2).
pub const INSTR_PER_CYCLE: u64 = 4;

/// Time, in nanoseconds, to execute `n` instructions with no memory stalls.
///
/// 4 instructions per 4 ns cycle ⇒ 1 ns per instruction, rounded up to
/// whole nanoseconds (sub-slot remainders are negligible at trace scale).
#[inline]
pub fn instr_time(n: u64) -> Nanos {
    n * CYCLE_NS / INSTR_PER_CYCLE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_instruction_is_one_ns() {
        assert_eq!(instr_time(1), 1);
        assert_eq!(instr_time(4), 4);
        assert_eq!(instr_time(1000), 1000);
    }

    #[test]
    fn zero_instructions_take_no_time() {
        assert_eq!(instr_time(0), 0);
    }
}
