//! Hierarchical machine topology (cluster groups + directory-tree levels).
//!
//! The paper's machine is flat: every node hangs off one global snooping
//! bus. To scale past 16 processors the nodes are partitioned into
//! *cluster groups*, each with a local bus, and the groups are connected
//! by a tree of directory levels with a root directory as the global
//! backstop (the shape of the DDM/mgsim directory-tree COMAs). A
//! transaction between two groups climbs to their lowest common ancestor
//! and back down, crossing `2 × lca_height` inter-level links.
//!
//! The flat machine is the degenerate instance: one group, zero upper
//! levels — no links ever crossed, no subtree state kept.

/// Shape of the interconnect/directory hierarchy.
///
/// `levels` counts the directory levels *above* the per-group buses; the
/// root directory sits at height `levels`. The tree fans out uniformly:
/// the fanout is the smallest `r ≥ 2` with `r^levels ≥ n_groups`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Cluster groups (= leaf buses). 1 for the paper's flat machine.
    pub n_groups: usize,
    /// Directory levels above the group buses. 0 for the flat machine.
    pub levels: usize,
}

impl Default for Topology {
    fn default() -> Self {
        Self::flat()
    }
}

impl Topology {
    /// The paper's flat single-bus machine.
    #[inline]
    pub const fn flat() -> Self {
        Topology {
            n_groups: 1,
            levels: 0,
        }
    }

    /// `n_groups` local buses under a single root directory.
    #[inline]
    pub const fn two_level(n_groups: usize) -> Self {
        Topology {
            n_groups,
            levels: 1,
        }
    }

    /// An explicit group/level shape.
    #[inline]
    pub const fn tree(n_groups: usize, levels: usize) -> Self {
        Topology { n_groups, levels }
    }

    /// Is this the degenerate flat machine?
    #[inline]
    pub fn is_flat(&self) -> bool {
        self.levels == 0
    }

    /// Uniform tree fanout: smallest `r ≥ 2` with `r^levels ≥ n_groups`.
    /// 1 for the flat machine (never used to route).
    pub fn fanout(&self) -> usize {
        if self.levels == 0 {
            return 1;
        }
        let mut r = 2usize;
        while r.pow(self.levels as u32) < self.n_groups {
            r += 1;
        }
        r
    }

    /// Directory unit covering `group` at `level` (0 = the group itself).
    #[inline]
    pub fn unit_of(&self, group: usize, level: usize) -> usize {
        group / self.fanout().pow(level as u32)
    }

    /// Number of directory units at `level`.
    #[inline]
    pub fn units_at(&self, level: usize) -> usize {
        let span = self.fanout().pow(level as u32);
        self.n_groups.div_ceil(span)
    }

    /// Height of the lowest common ancestor of two groups: 0 when they
    /// share a bus, otherwise the lowest level at which they fall into the
    /// same directory unit. A transaction between them crosses
    /// `2 × lca_height` links.
    pub fn lca_height(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        let r = self.fanout();
        let (mut a, mut b, mut h) = (a, b, 0);
        while a != b {
            a /= r;
            b /= r;
            h += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_degenerate() {
        let t = Topology::flat();
        assert!(t.is_flat());
        assert_eq!(t.n_groups, 1);
        assert_eq!(t.lca_height(0, 0), 0);
    }

    #[test]
    fn two_level_fanout_spans_all_groups() {
        let t = Topology::two_level(5);
        // One level: the root must reach all 5 groups directly.
        assert_eq!(t.fanout(), 5);
        assert_eq!(t.units_at(1), 1);
        assert_eq!(t.lca_height(0, 4), 1);
        assert_eq!(t.lca_height(3, 3), 0);
    }

    #[test]
    fn three_level_tree_heights() {
        // 16 groups over 2 levels: fanout 4 (4² = 16).
        let t = Topology::tree(16, 2);
        assert_eq!(t.fanout(), 4);
        assert_eq!(t.units_at(1), 4);
        assert_eq!(t.units_at(2), 1);
        // Same 4-group cluster: meet at level 1.
        assert_eq!(t.lca_height(0, 3), 1);
        // Different clusters: climb to the root.
        assert_eq!(t.lca_height(0, 4), 2);
        assert_eq!(t.lca_height(15, 12), 1);
        assert_eq!(t.unit_of(15, 1), 3);
        assert_eq!(t.unit_of(15, 2), 0);
    }

    #[test]
    fn ragged_group_count() {
        // 6 groups over 2 levels: fanout 3 (3² = 9 ≥ 6 > 2² = 4).
        let t = Topology::tree(6, 2);
        assert_eq!(t.fanout(), 3);
        assert_eq!(t.units_at(1), 2);
        assert_eq!(t.lca_height(0, 2), 1);
        assert_eq!(t.lca_height(2, 3), 2);
    }
}
