//! Canned verification campaigns: what `coma-verify --smoke`, the full
//! binary run and `coma verify` all execute.

use crate::checker::{check, explore, CheckConfig};
use crate::fuzz::{fuzz, FuzzConfig};
use crate::mutant::{MutantEngine, Mutation};

fn run_check(name: &str, cfg: &CheckConfig) -> bool {
    let r = check(cfg);
    match &r.violation {
        Some(v) => {
            eprintln!("model-check {name}: FAILED\n{v}");
            false
        }
        None => {
            println!(
                "model-check {name}: ok ({} states, {} deduped transitions, depth {}{})",
                r.states_explored,
                r.transitions_deduped,
                r.max_depth,
                if r.exhausted && cfg.depth.is_none() {
                    ", space closed"
                } else {
                    ""
                }
            );
            true
        }
    }
}

fn run_fuzz(name: &str, cfg: &FuzzConfig) -> bool {
    let r = fuzz(cfg, &|| cfg.build_engine());
    match &r.failure {
        Some(f) => {
            eprintln!("fuzz {name}: FAILED after {} ops\n{f}", r.ops_run);
            false
        }
        None => {
            println!("fuzz {name}: ok ({} ops, seed {:#x})", r.ops_run, cfg.seed);
            true
        }
    }
}

/// Seed each mutation and demand that both the model checker and the
/// differential fuzzer catch it. A silent mutant means the verification
/// tooling itself is broken.
fn run_mutants() -> bool {
    // Mutations legitimately trip engine assertions, which the tools
    // catch and report; silence the default hook's backtrace spam.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let ok = run_mutants_inner();
    std::panic::set_hook(prev_hook);
    ok
}

fn run_mutants_inner() -> bool {
    let mut ok = true;
    for (mutation, name) in [
        (Mutation::SkipInvalidate, "skip-invalidate"),
        (Mutation::ForgetDirectoryUpdate, "forget-directory-update"),
        (Mutation::ForgetSubtreePresence, "forget-subtree-presence"),
    ] {
        // Each mutation runs on a machine where it can fire at all:
        // presence corruption needs directory levels, so the subtree
        // mutant gets the two-level config; the flat machine has no
        // masks to forget and would let it pass silently.
        let cfg = match mutation {
            Mutation::ForgetSubtreePresence => CheckConfig::two_level(),
            _ => CheckConfig::two_node_one_line(),
        };
        let r = explore(&cfg, MutantEngine::new(cfg.build_engine(), mutation));
        match r.violation {
            Some(v) => println!(
                "mutant {name}: caught by model checker in {} ops",
                v.trace.len()
            ),
            None => {
                eprintln!("mutant {name}: NOT caught by model checker");
                ok = false;
            }
        }

        let fcfg = match mutation {
            Mutation::ForgetSubtreePresence => FuzzConfig::pressured_two_level(20_000, 0xBAD_5EED),
            _ => FuzzConfig::pressured(20_000, 0xBAD_5EED),
        };
        let fr = fuzz(&fcfg, &|| MutantEngine::new(fcfg.build_engine(), mutation));
        match fr.failure {
            Some(f) => println!(
                "mutant {name}: caught by fuzzer at op {} (minimized to {} ops)",
                f.op_index,
                f.minimized.len()
            ),
            None => {
                eprintln!("mutant {name}: NOT caught by fuzzer in {} ops", fr.ops_run);
                ok = false;
            }
        }
    }
    ok
}

/// Run the verification campaign; returns true when everything passed.
/// `smoke` selects the CI-sized subset (bounded model check + 10k fuzz
/// ops); otherwise the full campaign runs (larger closures, pressured
/// configurations, 100k-op fuzz across several seeds).
pub fn run(smoke: bool, seed: u64) -> bool {
    let mut ok = true;
    ok &= run_check("2n×1p×1line (closure)", &CheckConfig::two_node_one_line());
    ok &= run_check("2g×2n×1p×1line (closure)", &CheckConfig::two_level());
    if smoke {
        ok &= run_check(
            "2n×1p×3line depth 5 (pressured)",
            &CheckConfig::pressured(2, 1, 3),
        );
        ok &= run_fuzz("2×2 pressured 10k", &FuzzConfig::pressured(10_000, seed));
        ok &= run_fuzz(
            "2g×2n pressured 10k",
            &FuzzConfig::pressured_two_level(10_000, seed),
        );
    } else {
        let mut two_line = CheckConfig::two_node_one_line();
        two_line.n_lines = 2;
        two_line.am_assoc = 2;
        ok &= run_check("2n×1p×2line (closure)", &two_line);
        ok &= run_check("2n×1p×3line depth 6 (pressured)", &{
            let mut c = CheckConfig::pressured(2, 1, 3);
            c.depth = Some(6);
            c
        });
        ok &= run_check("4n×1p×4line depth 4 (pressured)", &{
            let mut c = CheckConfig::pressured(4, 1, 4);
            c.depth = Some(4);
            c
        });
        ok &= run_check("2n×2p×2line depth 4 (pressured)", &{
            let mut c = CheckConfig::pressured(2, 2, 2);
            c.depth = Some(4);
            c
        });
        for (i, s) in [seed, 0x5EED, 0xFEED].into_iter().enumerate() {
            ok &= run_fuzz(
                &format!("2×2 pressured 100k #{i}"),
                &FuzzConfig::pressured(100_000, s),
            );
        }
        for (i, s) in [seed, 0x5EED].into_iter().enumerate() {
            ok &= run_fuzz(
                &format!("2g×2n pressured 100k #{i}"),
                &FuzzConfig::pressured_two_level(100_000, s),
            );
        }
    }
    ok &= run_mutants();

    if ok {
        println!(
            "verification {}: all clear",
            if smoke { "smoke" } else { "full" }
        );
    }
    ok
}
