//! Exhaustive model checking of the coherence protocol over small
//! configurations.
//!
//! The checker enumerates, breadth-first, every machine state reachable
//! within `depth` operations, where each operation is any processor
//! reading or writing any line of a small universe. States are
//! canonicalized as [`Snapshot`]s and deduplicated, so the search visits
//! each distinct state once; the paper's protocol is finite-state over a
//! fixed line universe, so with enough depth the frontier drains and the
//! *entire* reachable space has been certified.
//!
//! After every transition the child state is checked against the
//! independent invariant suite ([`Snapshot::check`]) plus the transition
//! property that responsible copies are never silently dropped (every
//! line known to the parent — live or paged out — must still be known to
//! the child). A violation terminates the search with the op trace that
//! reproduces it from the initial (empty) machine.

use crate::snapshot::Snapshot;
use crate::ProtocolModel;
use coma_cache::{AcceptPolicy, VictimPolicy};
use coma_protocol::CoherenceEngine;
use coma_types::{LineNum, MachineGeometry, ProcId, Topology};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One transition label: which processor did what to which line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpLabel {
    pub proc: ProcId,
    pub line: LineNum,
    pub is_write: bool,
}

impl fmt::Display for OpLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P{} {} line {}",
            self.proc.0,
            if self.is_write { "writes" } else { "reads" },
            self.line.0
        )
    }
}

/// An invariant violation with the shortest op sequence reaching it
/// (BFS order guarantees minimality in op count).
#[derive(Clone, Debug)]
pub struct Violation {
    pub message: String,
    pub trace: Vec<OpLabel>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.message)?;
        writeln!(
            f,
            "counterexample ({} ops from empty machine):",
            self.trace.len()
        )?;
        for (i, op) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {op}", i + 1)?;
        }
        Ok(())
    }
}

/// The model-checking configuration: a deliberately tiny machine and the
/// op universe to close over.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    pub n_nodes: usize,
    pub procs_per_node: usize,
    /// Cluster groups the nodes split into (1 = the paper's flat bus).
    pub n_groups: usize,
    /// Directory levels above the group buses (0 iff flat).
    pub levels: usize,
    /// Lines `0..n_lines` form the op universe.
    pub n_lines: u64,
    pub am_sets: u64,
    pub am_assoc: usize,
    pub slc_sets: u64,
    pub slc_assoc: usize,
    pub flc_sets: u64,
    /// Maximum op depth; `None` runs until the frontier drains (full
    /// reachable-space closure — finite, but use small universes).
    pub depth: Option<usize>,
    pub inclusive: bool,
    /// Safety valve for misconfigured searches.
    pub max_states: usize,
}

impl CheckConfig {
    /// The smallest interesting machine: 2 nodes × 1 processor, 1 line.
    pub fn two_node_one_line() -> Self {
        CheckConfig {
            n_nodes: 2,
            procs_per_node: 1,
            n_groups: 1,
            levels: 0,
            n_lines: 1,
            am_sets: 1,
            am_assoc: 1,
            slc_sets: 1,
            slc_assoc: 1,
            flc_sets: 1,
            depth: None,
            inclusive: true,
            max_states: 1 << 20,
        }
    }

    /// The smallest hierarchical machine: 2 groups × 2 nodes × 1
    /// processor with one directory level above the group buses, over a
    /// single line — small enough to close the reachable space while
    /// exercising cross-group presence tracking.
    pub fn two_level() -> Self {
        CheckConfig {
            n_nodes: 4,
            procs_per_node: 1,
            n_groups: 2,
            levels: 1,
            n_lines: 1,
            am_sets: 1,
            am_assoc: 1,
            slc_sets: 1,
            slc_assoc: 1,
            flc_sets: 1,
            depth: None,
            inclusive: true,
            max_states: 1 << 20,
        }
    }

    /// A pressured configuration: more lines than AM slots per node, so
    /// replacement, injection and page-out are all reachable.
    pub fn pressured(n_nodes: usize, procs_per_node: usize, n_lines: u64) -> Self {
        CheckConfig {
            n_nodes,
            procs_per_node,
            n_groups: 1,
            levels: 0,
            n_lines,
            am_sets: 1,
            am_assoc: 2,
            slc_sets: 1,
            slc_assoc: 2,
            flc_sets: 2,
            depth: Some(5),
            inclusive: true,
            max_states: 1 << 20,
        }
    }

    pub fn geometry(&self) -> MachineGeometry {
        MachineGeometry {
            n_procs: self.n_nodes * self.procs_per_node,
            n_nodes: self.n_nodes,
            procs_per_node: self.procs_per_node,
            flc_sets: self.flc_sets,
            slc_sets: self.slc_sets,
            slc_assoc: self.slc_assoc,
            am_sets: self.am_sets,
            am_assoc: self.am_assoc,
            topology: Topology {
                n_groups: self.n_groups,
                levels: self.levels,
            },
        }
    }

    /// Build the clean engine for this configuration.
    pub fn build_engine(&self) -> CoherenceEngine {
        CoherenceEngine::with_inclusion(
            self.geometry(),
            VictimPolicy::SharedFirst,
            AcceptPolicy::InvalidThenShared,
            true,
            self.inclusive,
        )
    }

    fn ops(&self) -> Vec<OpLabel> {
        let n_procs = self.n_nodes * self.procs_per_node;
        let mut ops = Vec::with_capacity(n_procs * self.n_lines as usize * 2);
        for p in 0..n_procs {
            for l in 0..self.n_lines {
                for is_write in [false, true] {
                    ops.push(OpLabel {
                        proc: ProcId(p as u16),
                        line: LineNum(l),
                        is_write,
                    });
                }
            }
        }
        ops
    }
}

/// The result of a (completed or aborted) search.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Distinct states visited (including the initial state).
    pub states_explored: usize,
    /// Transitions that landed on an already-visited state.
    pub transitions_deduped: usize,
    /// Deepest BFS level reached.
    pub max_depth: usize,
    /// Whether the search ran to completion (frontier drained) rather
    /// than aborting at the state bound. With `depth: None` this
    /// certifies full closure of the reachable state space.
    pub exhausted: bool,
    pub violation: Option<Violation>,
}

/// Breadth-first exploration of the reachable state space of `model`'s
/// protocol under `cfg`'s op universe. The factory is invoked once for
/// the initial (empty-machine) state.
pub fn explore<M: ProtocolModel>(cfg: &CheckConfig, initial: M) -> CheckReport {
    let ops = cfg.ops();

    // Parent-pointer arena for counterexample reconstruction: entry i is
    // (parent index, op that produced it); the root is usize::MAX.
    let mut arena: Vec<(usize, OpLabel)> = Vec::new();
    let trace_of = |arena: &[(usize, OpLabel)], mut idx: usize| {
        let mut trace = Vec::new();
        while idx != usize::MAX {
            let (parent, op) = arena[idx];
            trace.push(op);
            idx = parent;
        }
        trace.reverse();
        trace
    };

    let mut seen: HashSet<Snapshot> = HashSet::new();
    let root_snap = Snapshot::capture(initial.engine());
    seen.insert(root_snap);
    // Frontier entries: (arena index of this state, depth, model).
    let mut frontier: VecDeque<(usize, usize, M)> = VecDeque::new();
    frontier.push_back((usize::MAX, 0, initial));

    let mut report = CheckReport {
        states_explored: 1,
        transitions_deduped: 0,
        max_depth: 0,
        exhausted: false,
        violation: None,
    };

    while let Some((idx, depth, model)) = frontier.pop_front() {
        if let Some(d) = cfg.depth {
            if depth >= d {
                continue;
            }
        }
        let parent_known = Snapshot::capture(model.engine()).known_lines();
        for &op in &ops {
            let mut child = model.clone();
            // A corrupted model may trip the engine's own debug
            // assertions before our checks see the state; treat that as
            // a caught violation, not a checker crash.
            let result = catch_unwind(AssertUnwindSafe(|| {
                if op.is_write {
                    child.write(op.proc, op.line);
                } else {
                    child.read(op.proc, op.line);
                }
            }));
            arena.push((idx, op));
            let child_idx = arena.len() - 1;
            let fail = |message: String| Violation {
                message,
                trace: trace_of(&arena, child_idx),
            };

            if let Err(panic) = result {
                let msg = crate::panic_message(&*panic);
                report.violation = Some(fail(format!("engine panic: {msg}")));
                return report;
            }

            let snap = Snapshot::capture(child.engine());
            if let Err(e) = snap.check(cfg.inclusive) {
                report.violation = Some(fail(e));
                return report;
            }
            // Transition property: responsible copies never silently
            // dropped — every line the parent knew must still exist.
            let child_known = snap.known_lines();
            for &l in &parent_known {
                if child_known.binary_search(&l).is_err() {
                    report.violation = Some(fail(format!(
                        "{:?} silently vanished (was live or paged out)",
                        LineNum(l)
                    )));
                    return report;
                }
            }

            if seen.insert(snap) {
                report.states_explored += 1;
                report.max_depth = report.max_depth.max(depth + 1);
                if report.states_explored >= cfg.max_states {
                    return report; // bound hit; exhausted stays false
                }
                frontier.push_back((child_idx, depth + 1, child));
            } else {
                report.transitions_deduped += 1;
            }
        }
    }
    report.exhausted = true;
    report
}

/// Explore the clean engine under `cfg`.
pub fn check(cfg: &CheckConfig) -> CheckReport {
    explore(cfg, cfg.build_engine())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_one_line_space_is_closed_and_clean() {
        let cfg = CheckConfig::two_node_one_line();
        let r = check(&cfg);
        assert!(r.exhausted, "frontier did not drain: {r:?}");
        assert!(r.violation.is_none(), "{}", r.violation.unwrap());
        // One line, two nodes: the reachable space is small but not
        // trivial (FLC/SLC/AM recency and permission combinations).
        assert!(r.states_explored > 4, "suspiciously few states: {r:?}");
        assert!(r.transitions_deduped > 0);
    }

    #[test]
    fn two_level_space_is_closed_and_clean() {
        let cfg = CheckConfig::two_level();
        let r = check(&cfg);
        assert!(r.exhausted, "frontier did not drain: {r:?}");
        assert!(r.violation.is_none(), "{}", r.violation.unwrap());
        // Four nodes in two groups reach strictly more states than two
        // flat nodes over the same line universe.
        let flat = check(&CheckConfig::two_node_one_line());
        assert!(r.states_explored > flat.states_explored);
    }

    #[test]
    fn depth_bound_is_respected() {
        let mut cfg = CheckConfig::two_node_one_line();
        cfg.depth = Some(2);
        let r = check(&cfg);
        assert!(r.max_depth <= 2);
        assert!(r.violation.is_none());
    }
}
