//! Differential fuzzing of the coherence engine against a flat
//! sequentially-consistent oracle.
//!
//! The engine does not model data, so the oracle tracks *versions*: every
//! write of a line bumps its version, and the harness maintains, for each
//! physical copy the protocol can serve a read from (a processor's
//! private caches, a node's AM, the paged-out "disk" image), which
//! version that copy currently holds. The serving copy for each read is
//! identified from the [`Outcome`]; since the harness applies ops one at
//! a time, sequential consistency demands that every read observe the
//! line's latest version. A protocol bug that leaves a stale copy behind
//! — and later serves from it — surfaces as a version mismatch.
//!
//! Data movement the `Outcome` does not name (injection of a *different*
//! victim line, ownership migration) is reconstructed after every op by
//! diffing the directory's owner map against the previous op's: when a
//! line's responsible copy moved between nodes, its version stamp moves
//! with it; when a line left the directory (page-out), its version is
//! filed as the paged-out image for a later page-in.
//!
//! Every op is additionally followed by the independent structural
//! invariant sweep ([`Snapshot::check`]), which catches damage the value
//! oracle cannot observe — a phantom directory sharer, a stale copy on a
//! line the stream never reads again.
//!
//! Failing op streams are shrunk to a 1-minimal reproducer (removing any
//! single op makes the failure disappear).

use crate::checker::OpLabel;
use crate::snapshot::Snapshot;
use crate::ProtocolModel;
use coma_cache::{AcceptPolicy, VictimPolicy};
use coma_protocol::CoherenceEngine;
use coma_stats::Level;
use coma_types::{LineNum, MachineGeometry, ProcId, Rng64, Topology};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The fuzzing configuration: machine shape, op universe and stream.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    pub n_nodes: usize,
    pub procs_per_node: usize,
    /// Cluster groups the nodes split into (1 = the paper's flat bus).
    pub n_groups: usize,
    /// Directory levels above the group buses (0 iff flat).
    pub levels: usize,
    /// Lines `0..n_lines` form the op universe. Keep it a small multiple
    /// of the total AM capacity so replacement and page-out stay hot.
    pub n_lines: u64,
    pub am_sets: u64,
    pub am_assoc: usize,
    pub slc_sets: u64,
    pub slc_assoc: usize,
    pub flc_sets: u64,
    pub n_ops: u64,
    pub seed: u64,
    /// Percentage of ops that are writes.
    pub write_pct: u64,
}

impl FuzzConfig {
    /// A pressured 2×2 machine: 32-line universe over 16 AM slots, so
    /// replacement, injection, migration and page-out all fire steadily.
    pub fn pressured(n_ops: u64, seed: u64) -> Self {
        FuzzConfig {
            n_nodes: 2,
            procs_per_node: 2,
            n_groups: 1,
            levels: 0,
            n_lines: 32,
            am_sets: 4,
            am_assoc: 2,
            slc_sets: 2,
            slc_assoc: 2,
            flc_sets: 4,
            n_ops,
            seed,
            write_pct: 35,
        }
    }

    /// A pressured hierarchical machine: 2 groups × 2 nodes with one
    /// directory level, 32 lines over 16 AM slots — cross-group
    /// invalidation, injection and presence tracking all stay hot.
    pub fn pressured_two_level(n_ops: u64, seed: u64) -> Self {
        FuzzConfig {
            n_nodes: 4,
            procs_per_node: 1,
            n_groups: 2,
            levels: 1,
            n_lines: 32,
            am_sets: 2,
            am_assoc: 2,
            slc_sets: 2,
            slc_assoc: 2,
            flc_sets: 4,
            n_ops,
            seed,
            write_pct: 35,
        }
    }

    pub fn geometry(&self) -> MachineGeometry {
        MachineGeometry {
            n_procs: self.n_nodes * self.procs_per_node,
            n_nodes: self.n_nodes,
            procs_per_node: self.procs_per_node,
            flc_sets: self.flc_sets,
            slc_sets: self.slc_sets,
            slc_assoc: self.slc_assoc,
            am_sets: self.am_sets,
            am_assoc: self.am_assoc,
            topology: Topology {
                n_groups: self.n_groups,
                levels: self.levels,
            },
        }
    }

    /// Build the clean engine for this configuration.
    pub fn build_engine(&self) -> CoherenceEngine {
        CoherenceEngine::new(
            self.geometry(),
            VictimPolicy::SharedFirst,
            AcceptPolicy::InvalidThenShared,
            true,
        )
    }

    fn gen_op(&self, rng: &mut Rng64) -> OpLabel {
        OpLabel {
            proc: ProcId(rng.below(self.n_nodes as u64 * self.procs_per_node as u64) as u16),
            line: LineNum(rng.below(self.n_lines)),
            is_write: rng.below(100) < self.write_pct,
        }
    }
}

/// A failure the oracle detected, with the minimized reproducer.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Index (into the generated stream) of the op that observed it.
    pub op_index: u64,
    pub message: String,
    /// 1-minimal reproducing op stream (from an empty machine).
    pub minimized: Vec<OpLabel>,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle mismatch at op {}: {}",
            self.op_index, self.message
        )?;
        writeln!(f, "minimal reproducer ({} ops):", self.minimized.len())?;
        for (i, op) in self.minimized.iter().enumerate() {
            writeln!(f, "  {:>3}. {op}", i + 1)?;
        }
        Ok(())
    }
}

/// The result of a fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    pub ops_run: u64,
    pub failure: Option<FuzzFailure>,
}

/// The version-stamp oracle for one machine.
struct Oracle {
    n_lines: usize,
    procs_per_node: usize,
    /// Latest written version per line (0 = initial memory contents).
    version: Vec<u64>,
    /// Version held by each node's AM copy, `[node][line]`.
    am: Vec<Vec<u64>>,
    /// Version held by each processor's private (FLC/SLC) copy.
    private: Vec<Vec<u64>>,
    /// Version of the paged-out / never-cached memory image.
    disk: Vec<u64>,
    /// Directory owner per line as of the previous op.
    owner_of: Vec<Option<u16>>,
}

impl Oracle {
    fn new(cfg: &FuzzConfig) -> Self {
        let n = cfg.n_lines as usize;
        Oracle {
            n_lines: n,
            procs_per_node: cfg.procs_per_node,
            version: vec![0; n],
            am: vec![vec![0; n]; cfg.n_nodes],
            private: vec![vec![0; n]; cfg.n_nodes * cfg.procs_per_node],
            disk: vec![0; n],
            owner_of: vec![None; n],
        }
    }

    /// Reconstruct unreported data movement (injections, migrations,
    /// page-outs of lines other than `op_line`) by diffing the directory.
    fn repair_owners(&mut self, engine: &CoherenceEngine, op_line: usize) {
        for l in 0..self.n_lines {
            let now = engine.directory().get(LineNum(l as u64)).map(|i| i.owner.0);
            if l == op_line {
                self.owner_of[l] = now;
                continue;
            }
            match (self.owner_of[l], now) {
                (Some(old), Some(new)) if old != new => {
                    // The responsible copy moved (injection or ownership
                    // migration): its data went with it.
                    self.am[new as usize][l] = self.am[old as usize][l];
                    self.owner_of[l] = Some(new);
                }
                (Some(old), None) => {
                    // Page-out: the OS wrote the line back to disk.
                    self.disk[l] = self.am[old as usize][l];
                    self.owner_of[l] = None;
                }
                (None, Some(_)) | (Some(_), Some(_)) | (None, None) => {
                    self.owner_of[l] = now;
                }
            }
        }
    }

    /// Apply one op to `model`, checking reads against the oracle.
    fn apply<M: ProtocolModel>(&mut self, model: &mut M, op: OpLabel) -> Result<(), String> {
        let l = op.line.0 as usize;
        let p = op.proc.as_usize();
        let n = op.proc.node(self.procs_per_node).as_usize();
        if op.is_write {
            self.version[l] += 1;
            let v = self.version[l];
            model.write(op.proc, op.line);
            self.repair_owners(model.engine(), l);
            // The writer's node ends with the only (Exclusive) copy.
            self.am[n][l] = v;
            self.private[p][l] = v;
            return Ok(());
        }

        let was_owner = self.owner_of[l];
        let out = model.read(op.proc, op.line);
        let served = match out.level {
            Level::Flc | Level::Slc => self.private[p][l],
            Level::PeerSlc => {
                let peer = out.peer_slc.expect("PeerSlc outcome names the peer");
                self.private[n * self.procs_per_node + peer][l]
            }
            Level::Am => match was_owner {
                // Live line: served from this node's (pre-existing) copy.
                Some(_) => self.am[n][l],
                // Cold local materialization: data comes off the page
                // frame (initial contents or the paged-out image).
                None => self.disk[l],
            },
            Level::Remote => match was_owner {
                Some(o) => self.am[o as usize][l],
                None => self.disk[l],
            },
        };
        if served != self.version[l] {
            return Err(format!(
                "{op}: read served version {served} (via {:?}), latest write is {}",
                out.level, self.version[l]
            ));
        }
        self.repair_owners(model.engine(), l);
        // Record the fills the read performed.
        self.private[p][l] = served;
        match out.level {
            Level::Remote => {
                self.am[n][l] = served;
                if was_owner.is_none() {
                    // Cold remote materialization also places the
                    // responsible copy at the line's home node.
                    if let Some(home) = out.remote_node {
                        self.am[home.as_usize()][l] = served;
                    }
                }
            }
            Level::Am if out.am_filled => self.am[n][l] = served,
            _ => {}
        }
        Ok(())
    }
}

impl Oracle {
    /// [`Oracle::apply`] with engine panics converted into failures — a
    /// corrupted model may trip the engine's internal assertions before
    /// the oracle sees a stale read, and that is still a caught bug —
    /// followed by a structural invariant sweep. Value visibility alone
    /// cannot see damage nobody reads through (a phantom directory
    /// sharer, a stale copy on a line the stream never revisits); the
    /// independent invariant suite can, and in release builds it also
    /// stands in for the engine's compiled-out debug assertions.
    fn apply_caught<M: ProtocolModel>(&mut self, model: &mut M, op: OpLabel) -> Result<(), String> {
        match catch_unwind(AssertUnwindSafe(|| self.apply(model, op))) {
            Ok(r) => r?,
            Err(p) => return Err(format!("engine panic: {}", crate::panic_message(&*p))),
        }
        Snapshot::capture(model.engine())
            .check(true)
            .map_err(|e| format!("{op}: invariant violated: {e}"))
    }
}

/// Run `ops` through a fresh model from `factory`; returns the failing
/// op's index and the oracle's message, if any.
pub fn run_ops<M: ProtocolModel>(
    cfg: &FuzzConfig,
    factory: &dyn Fn() -> M,
    ops: &[OpLabel],
) -> Option<(usize, String)> {
    let mut model = factory();
    let mut oracle = Oracle::new(cfg);
    for (i, &op) in ops.iter().enumerate() {
        if let Err(msg) = oracle.apply_caught(&mut model, op) {
            return Some((i, msg));
        }
    }
    None
}

/// Shrink a failing stream to 1-minimality: repeatedly drop any single
/// op whose removal preserves the failure, until none can be dropped.
fn shrink<M: ProtocolModel>(
    cfg: &FuzzConfig,
    factory: &dyn Fn() -> M,
    mut ops: Vec<OpLabel>,
) -> Vec<OpLabel> {
    // First pass: binary-chop prefixes of removals in large chunks, then
    // settle with single-op removals to a fixpoint.
    let mut chunk = (ops.len() / 2).max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < ops.len() {
            let end = (i + chunk).min(ops.len());
            let mut candidate = ops.clone();
            candidate.drain(i..end);
            if !candidate.is_empty() && run_ops(cfg, factory, &candidate).is_some() {
                ops = candidate;
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    ops
}

/// Fuzz `n_ops` seeded random ops through the model, checking every read
/// against the sequentially-consistent oracle. On failure the stream is
/// truncated at the failing op and shrunk.
pub fn fuzz<M: ProtocolModel>(cfg: &FuzzConfig, factory: &dyn Fn() -> M) -> FuzzReport {
    let mut rng = Rng64::new(cfg.seed);
    let mut model = factory();
    let mut oracle = Oracle::new(cfg);
    let mut ops: Vec<OpLabel> = Vec::new();
    for i in 0..cfg.n_ops {
        let op = cfg.gen_op(&mut rng);
        ops.push(op);
        if let Err(message) = oracle.apply_caught(&mut model, op) {
            let minimized = shrink(cfg, factory, ops);
            return FuzzReport {
                ops_run: i + 1,
                failure: Some(FuzzFailure {
                    op_index: i,
                    message,
                    minimized,
                }),
            };
        }
    }
    FuzzReport {
        ops_run: cfg.n_ops,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_engine_sustains_ten_thousand_ops() {
        let cfg = FuzzConfig::pressured(10_000, 0xC0A);
        let r = fuzz(&cfg, &|| cfg.build_engine());
        assert!(r.failure.is_none(), "{}", r.failure.unwrap());
        assert_eq!(r.ops_run, 10_000);
    }

    #[test]
    fn clean_two_level_engine_sustains_ten_thousand_ops() {
        let cfg = FuzzConfig::pressured_two_level(10_000, 0xC0A);
        let r = fuzz(&cfg, &|| cfg.build_engine());
        assert!(r.failure.is_none(), "{}", r.failure.unwrap());
        assert_eq!(r.ops_run, 10_000);
    }

    #[test]
    fn oracle_versions_start_at_initial_contents() {
        // A read before any write must observe version 0 everywhere.
        let cfg = FuzzConfig::pressured(0, 1);
        let mut model = cfg.build_engine();
        let mut oracle = Oracle::new(&cfg);
        for p in 0..4u16 {
            for l in 0..cfg.n_lines {
                oracle
                    .apply(
                        &mut model,
                        OpLabel {
                            proc: ProcId(p),
                            line: LineNum(l),
                            is_write: false,
                        },
                    )
                    .unwrap();
            }
        }
    }
}
