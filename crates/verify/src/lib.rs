//! Protocol verification for the COMA coherence engine.
//!
//! Everything the paper measures rides on the E/O/S/I attraction-memory
//! protocol (and the intra-node MSI layer under it) being correct. This
//! crate attacks that from three independent directions:
//!
//! * [`checker`] — an **exhaustive model checker**: BFS over every
//!   reachable machine state of a small configuration (2–4 nodes, a
//!   handful of lines, bounded op depth), with canonicalized state dedup
//!   and a counterexample trace printer. The invariants it asserts are
//!   re-implemented here from the protocol definition (not borrowed from
//!   the engine), so an engine bug cannot hide in a shared checker.
//! * [`fuzz`] — a **differential fuzzer**: seeded random op streams run
//!   through the full engine against a flat sequentially-consistent
//!   oracle that tracks, per physical copy, *which version of the data*
//!   that copy holds. Every read must observe the latest write; failing
//!   streams are shrunk to a minimal reproducer.
//! * The **live invariant auditor** (in `coma-protocol`, armed via
//!   `SimParams::audit` or `CoherenceEngine::set_audit`): re-verifies
//!   every machine-wide invariant after each access that performed a
//!   protocol transaction, during ordinary simulation runs.
//!
//! [`mutant`] seeds deliberate protocol corruptions (e.g. a skipped
//! invalidation) to demonstrate that all three layers actually catch
//! real coherence bugs — a verification tool that has never seen its
//! quarry is untrustworthy.

pub mod campaign;
pub mod checker;
pub mod fuzz;
pub mod mutant;
pub mod snapshot;

use coma_protocol::{CoherenceEngine, Outcome};
use coma_types::{LineNum, ProcId};

/// Extract a printable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "engine panicked".into())
}

pub use checker::{CheckConfig, CheckReport, OpLabel, Violation};
pub use fuzz::{FuzzConfig, FuzzFailure, FuzzReport};
pub use mutant::{MutantEngine, Mutation};
pub use snapshot::Snapshot;

/// A protocol implementation under verification: the clean engine, or a
/// deliberately corrupted wrapper around it. `Clone` must produce an
/// independent deep copy — the model checker forks the machine at every
/// explored transition.
pub trait ProtocolModel: Clone {
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome;
    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome;
    /// The underlying engine, for state inspection.
    fn engine(&self) -> &CoherenceEngine;
}

impl ProtocolModel for CoherenceEngine {
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        CoherenceEngine::read(self, proc, line)
    }

    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        CoherenceEngine::write(self, proc, line)
    }

    fn engine(&self) -> &CoherenceEngine {
        self
    }
}
