//! Protocol verification driver.
//!
//! ```text
//! coma-verify [--smoke] [--seed N]
//! ```
//!
//! `--smoke` runs the CI-sized campaign: full closure of the 2-node ×
//! 1-line state space, a depth-bounded pressured check, 10k differential
//! fuzz ops, and a fault-injection round proving the tools detect a
//! seeded protocol bug. Without it, the full campaign runs (larger
//! configurations, 100k+ fuzz ops across several seeds).
//!
//! Exits non-zero — printing the counterexample trace or the minimized
//! reproducer — if any invariant is violated, or if a seeded mutation
//! goes *undetected*.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut seed = 0xC0A_u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects an integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: coma-verify [--smoke] [--seed N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if coma_verify::campaign::run(smoke, seed) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
