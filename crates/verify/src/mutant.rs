//! Deliberately broken protocol variants (fault injection).
//!
//! A verification tool is only credible once it has been watched
//! catching a real bug. [`MutantEngine`] wraps the clean engine and
//! corrupts its state in a precisely targeted way after certain ops —
//! the kind of bug a protocol implementation could genuinely have (a
//! missed invalidation message, a dropped directory update). The test
//! suite demonstrates that the model checker, the differential fuzzer
//! *and* the live auditor each catch every mutation.

use crate::ProtocolModel;
use coma_cache::{AmState, Victim};
use coma_protocol::{CoherenceEngine, Outcome};
use coma_types::{LineNum, NodeId, NodeSet, ProcId};

/// Which protocol bug to seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// A write "forgets" to invalidate one remote Shared replica: the
    /// stale copy silently reappears in the first former sharer's AM
    /// after the upgrade completes (as if the invalidation message was
    /// lost), without the directory knowing.
    SkipInvalidate,
    /// A write's directory update is lost: after an upgrade the old
    /// sharer set is restored in the directory even though the copies
    /// were invalidated (directory claims holders that do not exist).
    ForgetDirectoryUpdate,
    /// The level-1 directory "forgets" which subtrees hold the written
    /// line (as if the presence update message was lost): its stored
    /// mask is zeroed while the root entry and the copies stay intact.
    /// Only meaningful on hierarchical topologies — flat machines have
    /// no directory levels to corrupt.
    ForgetSubtreePresence,
}

/// The clean engine plus one seeded [`Mutation`].
#[derive(Clone)]
pub struct MutantEngine {
    inner: CoherenceEngine,
    mutation: Mutation,
}

impl MutantEngine {
    pub fn new(inner: CoherenceEngine, mutation: Mutation) -> Self {
        MutantEngine { inner, mutation }
    }

    pub fn into_inner(self) -> CoherenceEngine {
        self.inner
    }

    fn corrupt_after_write(&mut self, writer_node: usize, line: LineNum, pre_sharers: NodeSet) {
        if self.mutation == Mutation::ForgetSubtreePresence {
            if let Some(mask) = self.inner.directory_mut().presence_mut(1, line) {
                *mask = 0;
            }
            return;
        }
        // Only trigger off genuine invalidations: some other node held a
        // Shared replica before this write.
        let victim = pre_sharers.iter().find(|&n| n as usize != writer_node);
        let Some(victim) = victim else { return };
        match self.mutation {
            Mutation::SkipInvalidate => {
                // The stale replica survives in the victim's AM. Only
                // re-insert when the set has room — a lost invalidation
                // cannot displace anything.
                let am = &mut self.inner.node_mut(victim as usize).am;
                if am.state(line) == AmState::Invalid
                    && matches!(am.make_room(line), Victim::FreeSlot)
                {
                    am.insert(line, AmState::Shared);
                }
            }
            Mutation::ForgetDirectoryUpdate => {
                if self.inner.directory().contains(line) {
                    self.inner.directory_mut().add_sharer(line, NodeId(victim));
                }
            }
            Mutation::ForgetSubtreePresence => unreachable!("handled above"),
        }
    }
}

impl ProtocolModel for MutantEngine {
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        self.inner.read(proc, line)
    }

    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let writer_node = proc.node(self.inner.geometry().procs_per_node).as_usize();
        let pre = self
            .inner
            .directory()
            .get(line)
            .map(|i| {
                let mut s = i.sharers;
                if i.owner.as_usize() != writer_node {
                    s.insert(i.owner.0);
                }
                s
            })
            .unwrap_or_default();
        let out = self.inner.write(proc, line);
        self.corrupt_after_write(writer_node, line, pre);
        out
    }

    fn engine(&self) -> &CoherenceEngine {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckConfig;
    use crate::snapshot::Snapshot;

    #[test]
    fn skip_invalidate_leaves_a_stale_copy() {
        let cfg = CheckConfig::two_node_one_line();
        let mut m = MutantEngine::new(cfg.build_engine(), Mutation::SkipInvalidate);
        m.read(ProcId(1), LineNum(0)); // replica at node 1's home...
        m.read(ProcId(0), LineNum(0)); // ...and at node 0
        m.write(ProcId(1), LineNum(0)); // upgrade "loses" node 0's inval
        let snap = Snapshot::capture(m.engine());
        assert!(snap.check(true).is_err(), "mutation produced a legal state");
    }

    #[test]
    fn forget_subtree_presence_leaves_an_illegal_mask() {
        let cfg = CheckConfig::two_level();
        let mut m = MutantEngine::new(cfg.build_engine(), Mutation::ForgetSubtreePresence);
        m.write(ProcId(0), LineNum(0)); // presence update "lost"
        let snap = Snapshot::capture(m.engine());
        assert!(snap.check(true).is_err(), "mutation produced a legal state");
    }

    #[test]
    fn forget_subtree_presence_trips_the_live_auditor() {
        // The corruption lands after the write's own audit; the *next*
        // audited transaction (a cold allocation of a different line, so
        // line 0's masks are not re-synced first) must expose it.
        let mut cfg = CheckConfig::two_level();
        cfg.am_sets = 2; // room for a second line without evicting line 0
        let mut engine = cfg.build_engine();
        engine.set_audit(true);
        let mut m = MutantEngine::new(engine, Mutation::ForgetSubtreePresence);
        m.write(ProcId(0), LineNum(0));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.write(ProcId(3), LineNum(1))
        }));
        assert!(caught.is_err(), "live auditor missed the corrupted mask");
    }
}
