//! Deliberately broken protocol variants (fault injection).
//!
//! A verification tool is only credible once it has been watched
//! catching a real bug. [`MutantEngine`] wraps the clean engine and
//! corrupts its state in a precisely targeted way after certain ops —
//! the kind of bug a protocol implementation could genuinely have (a
//! missed invalidation message, a dropped directory update). The test
//! suite demonstrates that the model checker, the differential fuzzer
//! *and* the live auditor each catch every mutation.

use crate::ProtocolModel;
use coma_cache::{AmState, Victim};
use coma_protocol::{CoherenceEngine, Outcome};
use coma_types::{LineNum, NodeId, ProcId};

/// Which protocol bug to seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// A write "forgets" to invalidate one remote Shared replica: the
    /// stale copy silently reappears in the first former sharer's AM
    /// after the upgrade completes (as if the invalidation message was
    /// lost), without the directory knowing.
    SkipInvalidate,
    /// A write's directory update is lost: after an upgrade the old
    /// sharer set is restored in the directory even though the copies
    /// were invalidated (directory claims holders that do not exist).
    ForgetDirectoryUpdate,
}

/// The clean engine plus one seeded [`Mutation`].
#[derive(Clone)]
pub struct MutantEngine {
    inner: CoherenceEngine,
    mutation: Mutation,
}

impl MutantEngine {
    pub fn new(inner: CoherenceEngine, mutation: Mutation) -> Self {
        MutantEngine { inner, mutation }
    }

    pub fn into_inner(self) -> CoherenceEngine {
        self.inner
    }

    fn corrupt_after_write(&mut self, writer_node: usize, line: LineNum, pre_sharers: u16) {
        // Only trigger off genuine invalidations: some other node held a
        // Shared replica before this write.
        let victim = (0..16u16).find(|&n| n as usize != writer_node && pre_sharers & (1 << n) != 0);
        let Some(victim) = victim else { return };
        match self.mutation {
            Mutation::SkipInvalidate => {
                // The stale replica survives in the victim's AM. Only
                // re-insert when the set has room — a lost invalidation
                // cannot displace anything.
                let am = &mut self.inner.node_mut(victim as usize).am;
                if am.state(line) == AmState::Invalid
                    && matches!(am.make_room(line), Victim::FreeSlot)
                {
                    am.insert(line, AmState::Shared);
                }
            }
            Mutation::ForgetDirectoryUpdate => {
                if self.inner.directory().contains(line) {
                    self.inner.directory_mut().add_sharer(line, NodeId(victim));
                }
            }
        }
    }
}

impl ProtocolModel for MutantEngine {
    fn read(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        self.inner.read(proc, line)
    }

    fn write(&mut self, proc: ProcId, line: LineNum) -> Outcome {
        let writer_node = proc.node(self.inner.geometry().procs_per_node).as_usize();
        let pre = self
            .inner
            .directory()
            .get(line)
            .map(|i| {
                let owner_bit = if i.owner.as_usize() != writer_node {
                    1 << i.owner.0
                } else {
                    0
                };
                i.sharers | owner_bit
            })
            .unwrap_or(0);
        let out = self.inner.write(proc, line);
        self.corrupt_after_write(writer_node, line, pre);
        out
    }

    fn engine(&self) -> &CoherenceEngine {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckConfig;
    use crate::snapshot::Snapshot;

    #[test]
    fn skip_invalidate_leaves_a_stale_copy() {
        let cfg = CheckConfig::two_node_one_line();
        let mut m = MutantEngine::new(cfg.build_engine(), Mutation::SkipInvalidate);
        m.read(ProcId(1), LineNum(0)); // replica at node 1's home...
        m.read(ProcId(0), LineNum(0)); // ...and at node 0
        m.write(ProcId(1), LineNum(0)); // upgrade "loses" node 0's inval
        let snap = Snapshot::capture(m.engine());
        assert!(snap.check(true).is_err(), "mutation produced a legal state");
    }
}
