//! Canonical machine-state snapshots and the independent invariant
//! checks the model checker asserts on them.
//!
//! A [`Snapshot`] captures everything that determines future protocol
//! behavior: every cache's contents *in recency order* (LRU position
//! decides victims, so two states with the same contents but different
//! recency are not equivalent), the directory, and the paged-out set.
//! Equal snapshots are behaviorally identical states, which is exactly
//! what BFS dedup needs.
//!
//! The invariant checks here are deliberately written from the protocol
//! definition (paper §3.1), not by calling the engine's own
//! `check_invariants` — an engine bug that corrupted state *and* the
//! engine-side checker in a consistent way would slip past a borrowed
//! implementation.

use coma_cache::{AmState, SlcState};
use coma_protocol::CoherenceEngine;
use coma_types::{LineNum, NodeSet, Topology};

/// One node's cache contents. AM and SLC vectors are in the caches'
/// iteration order, which encodes recency (most-recent first within a
/// set); FLC slots are positional (direct-mapped).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NodeSnap {
    pub am: Vec<(u64, AmState)>,
    pub slcs: Vec<Vec<(u64, SlcState)>>,
    pub flcs: Vec<Vec<(u64, bool)>>,
}

/// A canonical snapshot of the whole machine's protocol state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Snapshot {
    pub nodes: Vec<NodeSnap>,
    /// Directory entries `(line, owner, sharer set)`, sorted by line
    /// (the directory hashes, so its iteration order is not canonical).
    pub dir: Vec<(u64, u16, NodeSet)>,
    /// The directory levels' stored presence masks `(line, mask)`, one
    /// vec per level bottom-up (height 1 first), each sorted by line.
    /// Flat machines have no levels and this is empty.
    pub presence: Vec<Vec<(u64, u64)>>,
    /// The machine's topology and group width — constant across a
    /// search, carried so [`Snapshot::check`] can re-derive expected
    /// presence masks without asking the directory's own sync logic.
    pub topo: Topology,
    pub nodes_per_group: usize,
    /// Lines currently paged out to the OS, sorted.
    pub paged_out: Vec<u64>,
}

impl Snapshot {
    /// Capture the engine's current state.
    pub fn capture(e: &CoherenceEngine) -> Self {
        let geom = e.geometry();
        let nodes = (0..geom.n_nodes)
            .map(|n| {
                let node = e.node(n);
                NodeSnap {
                    am: node.am.lines().map(|(l, s)| (l.0, s)).collect(),
                    slcs: node
                        .slcs
                        .iter()
                        .map(|slc| slc.lines().map(|(l, s)| (l.0, s)).collect())
                        .collect(),
                    flcs: node
                        .flcs
                        .iter()
                        .map(|flc| flc.lines().map(|(l, w)| (l.0, w)).collect())
                        .collect(),
                }
            })
            .collect();
        let mut dir: Vec<(u64, u16, NodeSet)> = e
            .directory()
            .iter()
            .map(|(l, info)| (l.0, info.owner.0, info.sharers))
            .collect();
        dir.sort_unstable();
        let presence = e
            .directory()
            .levels()
            .iter()
            .map(|lvl| {
                let mut v: Vec<(u64, u64)> = lvl.iter().map(|(l, m)| (l.0, m)).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let mut paged_out: Vec<u64> = e.paged_out_lines().map(|l| l.0).collect();
        paged_out.sort_unstable();
        Snapshot {
            nodes,
            dir,
            presence,
            topo: geom.topology,
            nodes_per_group: geom.nodes_per_group(),
            paged_out,
        }
    }

    /// The set of lines that exist anywhere (live or paged out). The
    /// "responsible copies are never silently dropped" invariant is a
    /// *transition* property: this set may only grow.
    pub fn known_lines(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.dir.iter().map(|&(l, ..)| l).collect();
        v.extend_from_slice(&self.paged_out);
        v.sort_unstable();
        v
    }

    fn am_state(&self, node: usize, line: u64) -> AmState {
        self.nodes[node]
            .am
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, s)| s)
            .unwrap_or(AmState::Invalid)
    }

    fn node_slc_holds(&self, node: usize, line: u64) -> bool {
        self.nodes[node]
            .slcs
            .iter()
            .any(|slc| slc.iter().any(|&(l, _)| l == line))
    }

    /// Assert every single-state protocol invariant. `inclusive` selects
    /// whether the SLC ⊆ AM inclusion property is in force (the paper's
    /// §4.2 non-inclusive variant relaxes it to directory registration).
    pub fn check(&self, inclusive: bool) -> Result<(), String> {
        // Collect every line with any valid AM copy anywhere.
        let mut am_lines: Vec<u64> = self
            .nodes
            .iter()
            .flat_map(|n| n.am.iter().map(|&(l, _)| l))
            .collect();
        am_lines.sort_unstable();
        am_lines.dedup();

        for &line in &am_lines {
            let ln = LineNum(line);
            // Invariant 1: exactly one responsible (E/O) copy machine-wide.
            let responsible: Vec<usize> = (0..self.nodes.len())
                .filter(|&n| self.am_state(n, line).is_responsible())
                .collect();
            if responsible.len() != 1 {
                return Err(format!(
                    "{ln:?}: {} responsible copies (nodes {responsible:?}), protocol \
                     requires exactly one",
                    responsible.len()
                ));
            }
            let resp = responsible[0];

            // Invariant 2: Exclusive means the *only* valid copy.
            if self.am_state(resp, line) == AmState::Exclusive {
                for n in 0..self.nodes.len() {
                    if n != resp && self.am_state(n, line).is_valid() {
                        return Err(format!(
                            "{ln:?}: node {resp} Exclusive but node {n} also holds {}",
                            self.am_state(n, line)
                        ));
                    }
                    if n != resp && self.node_slc_holds(n, line) {
                        return Err(format!(
                            "{ln:?}: node {resp} Exclusive but node {n} has SLC copies"
                        ));
                    }
                }
            }

            // The directory must agree on the owner and cover every holder.
            let dir_entry = self.dir.iter().find(|&&(l, ..)| l == line);
            let Some(&(_, owner, sharers)) = dir_entry else {
                return Err(format!("{ln:?}: valid AM copies but no directory entry"));
            };
            if owner as usize != resp {
                return Err(format!(
                    "{ln:?}: responsible copy in node {resp}, directory says {owner}"
                ));
            }
            for n in 0..self.nodes.len() {
                let st = self.am_state(n, line);
                if st == AmState::Shared && !sharers.contains(n as u16) {
                    return Err(format!(
                        "{ln:?}: node {n} Shared but not a directory sharer"
                    ));
                }
            }
        }

        // Directory entries must be backed by a responsible copy, and
        // every registered sharer must actually hold one (inclusive
        // hierarchies: in the AM; non-inclusive: at least in an SLC).
        for &(line, owner, sharers) in &self.dir {
            let st = self.am_state(owner as usize, line);
            if !st.is_responsible() {
                return Err(format!(
                    "{:?}: directory owner {owner} holds {st}, not O/E",
                    LineNum(line)
                ));
            }
            for n in 0..self.nodes.len() {
                if !sharers.contains(n as u16) {
                    continue;
                }
                let holds_am = self.am_state(n, line) == AmState::Shared;
                if !holds_am && (inclusive || !self.node_slc_holds(n, line)) {
                    return Err(format!(
                        "{:?}: node {n} registered as sharer but holds {} ({})",
                        LineNum(line),
                        self.am_state(n, line),
                        if inclusive {
                            "inclusive"
                        } else {
                            "no SLC copy either"
                        },
                    ));
                }
            }
        }

        // Directory-level presence masks must exactly mirror where
        // copies are. Re-derive each level's expected mask from the root
        // owner/sharer sets using only the topology arithmetic —
        // independent of `Directory::sync_presence` — and demand the
        // stored masks match, cover every live line, and name no dead
        // ones.
        for (li, lvl) in self.presence.iter().enumerate() {
            let height = li + 1;
            for &(line, mask) in lvl {
                let Some(&(_, owner, sharers)) = self.dir.iter().find(|&&(l, ..)| l == line) else {
                    return Err(format!(
                        "{:?}: dead but still present at level {height}",
                        LineNum(line)
                    ));
                };
                let unit = |n: usize| self.topo.unit_of(n / self.nodes_per_group, height - 1);
                let mut expect = 1u64 << unit(owner as usize);
                for s in sharers.iter() {
                    expect |= 1 << unit(s as usize);
                }
                if mask != expect {
                    return Err(format!(
                        "{:?}: level-{height} presence {mask:#b} but copies span {expect:#b}",
                        LineNum(line)
                    ));
                }
            }
            for &(line, ..) in &self.dir {
                if lvl.binary_search_by_key(&line, |&(l, _)| l).is_err() {
                    return Err(format!(
                        "{:?}: live but untracked at level {height}",
                        LineNum(line)
                    ));
                }
            }
        }

        // Paged-out lines are dead everywhere.
        for &line in &self.paged_out {
            if self.dir.iter().any(|&(l, ..)| l == line) {
                return Err(format!("{:?}: both paged out and live", LineNum(line)));
            }
            for n in 0..self.nodes.len() {
                if self.am_state(n, line).is_valid() || self.node_slc_holds(n, line) {
                    return Err(format!(
                        "{:?}: paged out but node {n} holds a copy",
                        LineNum(line)
                    ));
                }
            }
        }

        // Per-node hierarchy invariants.
        for (n, node) in self.nodes.iter().enumerate() {
            for (pidx, slc) in node.slcs.iter().enumerate() {
                for &(line, st) in slc {
                    let am = self.am_state(n, line);
                    // Invariant 4: SLC ⊆ AM (inclusive hierarchies).
                    if inclusive && !am.is_valid() {
                        return Err(format!(
                            "{:?}: SLC {n}/{pidx} holds {st} but node AM is Invalid",
                            LineNum(line)
                        ));
                    }
                    // Invariant 5: a Modified SLC copy implies the node's
                    // AM holds the machine's only copy (Exclusive).
                    if st == SlcState::Modified && am != AmState::Exclusive {
                        return Err(format!(
                            "{:?}: SLC {n}/{pidx} Modified but node AM is {am}",
                            LineNum(line)
                        ));
                    }
                    // Non-inclusive: an SLC-only copy must still be
                    // registered in the directory (it is a live replica).
                    if !inclusive && !am.is_valid() {
                        let registered = self.dir.iter().any(|&(l, owner, sharers)| {
                            l == line && (owner as usize == n || sharers.contains(n as u16))
                        });
                        if !registered {
                            return Err(format!(
                                "{:?}: SLC-only copy in node {n} unregistered in directory",
                                LineNum(line)
                            ));
                        }
                    }
                }
                // FLC ⊆ SLC, and FLC write permission implies SLC Modified.
                for &(line, writable) in &node.flcs[pidx] {
                    let slc_st = slc
                        .iter()
                        .find(|&&(l, _)| l == line)
                        .map(|&(_, s)| s)
                        .unwrap_or(SlcState::Invalid);
                    if !slc_st.is_valid() {
                        return Err(format!(
                            "{:?}: FLC {n}/{pidx} holds the line but SLC does not",
                            LineNum(line)
                        ));
                    }
                    if writable && slc_st != SlcState::Modified {
                        return Err(format!(
                            "{:?}: FLC {n}/{pidx} writable but SLC is {slc_st}",
                            LineNum(line)
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_cache::{AcceptPolicy, VictimPolicy};
    use coma_types::{MachineGeometry, ProcId};

    fn engine_with(n_nodes: usize, topology: Topology) -> CoherenceEngine {
        let geom = MachineGeometry {
            n_procs: n_nodes,
            n_nodes,
            procs_per_node: 1,
            flc_sets: 4,
            slc_sets: 2,
            slc_assoc: 2,
            am_sets: 2,
            am_assoc: 2,
            topology,
        };
        CoherenceEngine::new(
            geom,
            VictimPolicy::SharedFirst,
            AcceptPolicy::InvalidThenShared,
            true,
        )
    }

    fn tiny_engine() -> CoherenceEngine {
        engine_with(2, Topology::flat())
    }

    #[test]
    fn snapshot_equality_detects_identical_states() {
        let mut a = tiny_engine();
        let mut b = tiny_engine();
        a.write(ProcId(0), LineNum(1));
        b.write(ProcId(0), LineNum(1));
        assert_eq!(Snapshot::capture(&a), Snapshot::capture(&b));
        b.read(ProcId(1), LineNum(1));
        assert_ne!(Snapshot::capture(&a), Snapshot::capture(&b));
    }

    #[test]
    fn recency_differences_are_distinct_states() {
        // Same contents, different LRU order: future victims differ, so
        // the snapshots must not be deduplicated.
        let mut a = tiny_engine();
        a.write(ProcId(0), LineNum(0));
        a.write(ProcId(0), LineNum(2)); // same set (2 sets), 0 then 2
        let mut b = tiny_engine();
        b.write(ProcId(0), LineNum(2));
        b.write(ProcId(0), LineNum(0)); // 2 then 0
        assert_ne!(Snapshot::capture(&a), Snapshot::capture(&b));
    }

    #[test]
    fn clean_states_pass_independent_checks() {
        let mut e = tiny_engine();
        e.write(ProcId(0), LineNum(1));
        e.read(ProcId(1), LineNum(1));
        e.write(ProcId(1), LineNum(3));
        Snapshot::capture(&e).check(true).unwrap();
    }

    #[test]
    fn seeded_double_owner_is_caught() {
        let mut e = tiny_engine();
        e.write(ProcId(0), LineNum(1));
        // Corrupt: a second responsible copy appears in node 1.
        e.node_mut(1).am.insert(LineNum(1), AmState::Owner);
        let err = Snapshot::capture(&e).check(true).unwrap_err();
        assert!(err.contains("responsible"), "unexpected message: {err}");
    }

    #[test]
    fn hierarchical_states_pass_and_expose_presence() {
        let mut e = engine_with(4, Topology::two_level(2));
        e.write(ProcId(0), LineNum(1));
        e.read(ProcId(3), LineNum(1)); // cross-group replica
        let snap = Snapshot::capture(&e);
        assert_eq!(snap.presence.len(), 1);
        assert_eq!(snap.presence[0], vec![(1, 0b11)]);
        snap.check(true).unwrap();
    }

    #[test]
    fn seeded_presence_corruption_is_caught() {
        let mut e = engine_with(4, Topology::two_level(2));
        e.write(ProcId(0), LineNum(1));
        e.read(ProcId(3), LineNum(1));
        // Corrupt: the level-1 directory forgets group 1 holds a copy.
        *e.directory_mut().presence_mut(1, LineNum(1)).unwrap() = 0b01;
        let err = Snapshot::capture(&e).check(true).unwrap_err();
        assert!(err.contains("presence"), "unexpected message: {err}");
    }
}
