//! Hot-line micro-workloads demonstrating the §4.2 full-replication
//! thresholds operationally.
//!
//! `coma-types::pressure::full_replication_threshold` derives the
//! thresholds analytically (49/64, 113/128, 13/16, 29/32); these tests
//! show the *engine* obeys the same arithmetic. We build each of the
//! paper's four (nodes × associativity) machines with a single AM set so
//! every line conflicts, size the unique working set exactly to the
//! threshold, and let one hot line be read by every node:
//!
//! * **at** the threshold the working set leaves exactly `n_nodes − 1`
//!   free way-slots, so the hot line replicates machine-wide;
//! * **one line above** it, the pigeonhole principle forces at least one
//!   replica out — responsible copies can't be dropped, so the shared
//!   replicas are what collapses.

use coma_cache::AmState;
use coma_types::{full_replication_threshold, LineNum, ProcId};
use coma_verify::{CheckConfig, Snapshot};

fn config(n_nodes: usize, assoc: usize) -> CheckConfig {
    CheckConfig {
        n_nodes,
        procs_per_node: 1,
        n_groups: 1,
        levels: 0,
        n_lines: (n_nodes * assoc + 2) as u64, // unused: no search here
        am_sets: 1,                            // every line conflicts
        am_assoc: assoc,
        slc_sets: 1,
        slc_assoc: 2,
        flc_sets: 2,
        depth: None,
        inclusive: true,
        max_states: 1,
    }
}

/// Run the hot-line workload with `extra` unique lines beyond the
/// threshold working set and return the final machine snapshot.
fn hot_line_workload(n_nodes: usize, assoc: usize, extra: usize) -> Snapshot {
    let cfg = config(n_nodes, assoc);
    let mut e = cfg.build_engine();
    let hot = LineNum(0);
    let mut next = 1u64;

    // Home node 0: the hot line plus assoc−1 private lines.
    e.write(ProcId(0), hot);
    for _ in 0..assoc - 1 {
        e.write(ProcId(0), LineNum(next));
        next += 1;
    }
    // Every other node materializes assoc−1 private lines; the
    // above-threshold variant gives node 1 the surplus.
    for k in 1..n_nodes {
        let fillers = assoc - 1 + if k == 1 { extra } else { 0 };
        for _ in 0..fillers {
            e.write(ProcId(k as u16), LineNum(next));
            next += 1;
        }
    }
    // Total unique lines so far: n·assoc − (n − 1) + extra — at extra=0
    // exactly the threshold numerator.
    assert_eq!(
        next,
        (n_nodes * assoc - (n_nodes - 1) + extra) as u64,
        "working-set accounting is off"
    );

    // Now every node pulls a replica of the hot line.
    for k in 1..n_nodes {
        e.read(ProcId(k as u16), hot);
    }
    Snapshot::capture(&e)
}

fn nodes_holding(snap: &Snapshot, line: u64) -> usize {
    snap.nodes
        .iter()
        .filter(|nd| {
            nd.am
                .iter()
                .any(|&(l, s)| l == line && s != AmState::Invalid)
        })
        .count()
}

#[test]
fn replication_at_and_above_each_paper_threshold() {
    for &(n, assoc) in &[(16usize, 4usize), (16, 8), (4, 4), (4, 8)] {
        let (num, den) = full_replication_threshold(n as u32, assoc as u32);
        assert_eq!(den, (n * assoc) as u32);
        assert_eq!(num, (n * assoc - (n - 1)) as u32);

        // MP exactly num/den: machine-wide replication fits.
        let at = hot_line_workload(n, assoc, 0);
        assert_eq!(
            nodes_holding(&at, 0),
            n,
            "{n}×{assoc}-way at MP {num}/{den}: hot line should be \
             replicated in every node"
        );
        assert!(at.paged_out.is_empty(), "{n}×{assoc}: nothing may page out");

        // One more unique line (MP = (num+1)/den, just above the
        // threshold): replication must collapse.
        let above = hot_line_workload(n, assoc, 1);
        let holding = nodes_holding(&above, 0);
        assert!(
            holding < n,
            "{n}×{assoc}-way at MP {}/{den}: replication should have \
             collapsed, but {holding}/{n} nodes still hold the hot line",
            num + 1
        );
        // The responsible copy itself survives — collapse sheds shared
        // replicas, never the owner (checked machine-wide too: nothing
        // was paged out, so every unique line is still resident).
        assert!(holding >= 1, "{n}×{assoc}: responsible copy vanished");
        assert!(
            above.paged_out.is_empty(),
            "{n}×{assoc}: collapse must evict replicas, not page out data"
        );
        assert!(
            above.check(true).is_ok(),
            "final state violates protocol invariants"
        );
    }
}

#[test]
fn collapse_is_pigeonhole_tight() {
    // Just above the threshold there is exactly one slot too few: at most
    // one node can lose its replica beyond the unavoidable minimum. For
    // the 4×4 machine: 16 slots, 14 responsible copies, so at most 2
    // shared replicas survive → exactly 3 of 4 nodes hold the hot line.
    let above = hot_line_workload(4, 4, 1);
    assert_eq!(nodes_holding(&above, 0), 3);
}
