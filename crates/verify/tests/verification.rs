//! Acceptance-level demonstrations for the verification subsystem:
//! the clean protocol survives exhaustive checking and heavy fuzzing,
//! and a deliberately seeded protocol bug is caught by the model
//! checker, the differential fuzzer *and* the live invariant auditor.

use coma_types::{LineNum, ProcId};
use coma_verify::checker::{check, explore, CheckConfig};
use coma_verify::fuzz::{fuzz, FuzzConfig};
use coma_verify::mutant::{MutantEngine, Mutation};
use coma_verify::ProtocolModel;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn clean_protocol_exhausts_two_node_space() {
    let cfg = CheckConfig::two_node_one_line();
    let r = check(&cfg);
    assert!(r.violation.is_none(), "{}", r.violation.unwrap());
    assert!(r.exhausted, "reachable space did not close: {r:?}");
}

#[test]
fn clean_protocol_survives_pressured_model_check() {
    // 3 lines over 2×2 AM slots: replacement, injection and page-out are
    // all reachable within depth 5.
    let r = check(&CheckConfig::pressured(2, 1, 3));
    assert!(r.violation.is_none(), "{}", r.violation.unwrap());
    assert!(r.states_explored > 1000, "pressure not reached: {r:?}");
}

#[test]
fn fuzzer_sustains_100k_ops_against_oracle() {
    let cfg = FuzzConfig::pressured(100_000, 42);
    let r = fuzz(&cfg, &|| cfg.build_engine());
    assert!(r.failure.is_none(), "{}", r.failure.unwrap());
    assert_eq!(r.ops_run, 100_000);
}

#[test]
fn checker_catches_seeded_skip_invalidate() {
    let cfg = CheckConfig::two_node_one_line();
    let r = explore(
        &cfg,
        MutantEngine::new(cfg.build_engine(), Mutation::SkipInvalidate),
    );
    let v = r.violation.expect("mutation must be caught");
    // BFS finds a minimal counterexample, and the trace printer renders
    // it as a replayable op sequence.
    assert!(!v.trace.is_empty());
    let rendered = v.to_string();
    assert!(rendered.contains("counterexample"), "{rendered}");
    assert!(rendered.contains("line 0"), "{rendered}");
}

#[test]
fn checker_catches_seeded_directory_corruption() {
    let cfg = CheckConfig::two_node_one_line();
    let r = explore(
        &cfg,
        MutantEngine::new(cfg.build_engine(), Mutation::ForgetDirectoryUpdate),
    );
    assert!(r.violation.is_some(), "mutation went undetected: {r:?}");
}

#[test]
fn fuzzer_catches_and_shrinks_seeded_mutation() {
    let cfg = FuzzConfig::pressured(50_000, 7);
    let r = fuzz(&cfg, &|| {
        MutantEngine::new(cfg.build_engine(), Mutation::SkipInvalidate)
    });
    let f = r.failure.expect("mutation must be caught by the oracle");
    assert!(
        !f.minimized.is_empty() && f.minimized.len() as u64 <= f.op_index + 1,
        "shrinking failed: {} ops from failing index {}",
        f.minimized.len(),
        f.op_index
    );
    // A lost invalidation needs at least: populate a replica, write over
    // it, read the stale copy — the minimized repro should be tiny.
    assert!(f.minimized.len() <= 10, "not minimal: {f}");
    // The minimized stream must still reproduce on a fresh mutant.
    let repro = coma_verify::fuzz::run_ops(
        &cfg,
        &|| MutantEngine::new(cfg.build_engine(), Mutation::SkipInvalidate),
        &f.minimized,
    );
    assert!(repro.is_some(), "minimized stream does not reproduce");
}

#[test]
fn live_auditor_catches_seeded_mutation() {
    // Build an audited engine, corrupt it through the mutant wrapper,
    // and verify the next protocol transaction trips the auditor.
    let mut cfg = CheckConfig::two_node_one_line();
    cfg.n_lines = 2;
    cfg.am_assoc = 2; // room for the stale copy and a second line
    let mut engine = cfg.build_engine();
    engine.set_audit(true);
    let mut m = MutantEngine::new(engine, Mutation::SkipInvalidate);

    m.read(ProcId(1), LineNum(0)); // responsible copy at node 1
    m.read(ProcId(0), LineNum(0)); // replica at node 0
    m.write(ProcId(1), LineNum(0)); // upgrade "loses" node 0's invalidate

    // The corruption happened after the write's own audit pass; the next
    // access that performs a protocol transaction must catch it.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        m.write(ProcId(0), LineNum(1));
    }));
    let err = caught.expect_err("live auditor missed the stale copy");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("live audit"), "unexpected panic: {msg}");
}

#[test]
fn live_auditor_is_silent_on_the_clean_protocol() {
    let mut cfg = CheckConfig::two_node_one_line();
    cfg.n_lines = 2;
    cfg.am_assoc = 2;
    let mut engine = cfg.build_engine();
    engine.set_audit(true);
    engine.read(ProcId(1), LineNum(0));
    engine.read(ProcId(0), LineNum(0));
    engine.write(ProcId(1), LineNum(0));
    engine.write(ProcId(0), LineNum(1));
    engine.read(ProcId(1), LineNum(1));
}

#[test]
fn smoke_campaign_is_green() {
    assert!(coma_verify::campaign::run(true, 0xC0A));
}
