//! Barnes analogue — SPLASH-2 "Barnes-Hut N-body, 16K particles".
//!
//! Structure reproduced: the working set is half particle data
//! (partitioned, read-write) and half octree (globally read-shared).
//! Each time step rebuilds part of the tree under locks and then walks
//! the tree for every owned particle, with a Zipf bias toward the upper
//! tree levels (every traversal passes through the root region).
//!
//! The wide read-sharing of the tree makes Barnes one of the Figure 4
//! conflict-miss applications at 87.5 % memory pressure, while its
//! clustering RNMr gain in Figure 2 is among the smallest: the hot tree
//! lines are replicated in every node long before clustering can help.

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;
use coma_types::ZipfSampler;

const SALT: u64 = 0xBA51;
const BASE_ITERS: u32 = 28;
const N_LOCKS: u32 = 8;
/// Tree lines read per owned particle line (traversal depth).
const WALK_READS: u64 = 6;

struct Barnes {
    me: usize,
    nprocs: usize,
    iters: u32,
    tree: Region,
    own_bodies: Region,
    own_tree_part: Region,
    tree_parts: Vec<Region>,
    zipf: ZipfSampler,
}

impl PhaseGen for Barnes {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, _iter: u32, buf: &mut OpBuf) {
        // Tree build: rewrite the own tree partition, plus a few
        // lock-protected updates near the root (cell insertion races).
        for i in 0..self.own_tree_part.lines() {
            buf.update(self.own_tree_part.line(i));
        }
        let root_span = self.tree.lines().min(128);
        for k in 0..4 {
            let lock = (self.me as u32 + k) % N_LOCKS;
            buf.lock(lock);
            let l = buf.rng().below(root_span);
            buf.update(self.tree.line(l));
            buf.unlock(lock);
        }
        buf.barrier();

        // Force computation: for each owned body, walk the tree (Zipf-hot
        // upper levels — every walk passes the root region, so hot cells
        // are re-read from the FLC many times) and update the body.
        for b in 0..self.own_bodies.lines() {
            for _ in 0..WALK_READS {
                let t = self.zipf.sample(buf.rng()) as u64;
                let a = self.tree.line(t);
                buf.read(a);
                buf.read(a);
            }
            // Leaf cells near this body: owned (and rebuilt each step) by
            // a me-specific set of processors — coherence misses that
            // cluster-mates do not share.
            for k in 0..2usize {
                let owner = (self.me + 3 + 5 * k) % self.nprocs;
                let part = self.tree_parts[owner];
                let l = buf.rng().below(part.lines());
                buf.read(part.line(l));
            }
            let body = self.own_bodies.line(b);
            buf.read(body);
            buf.read(body);
            buf.update(body);
        }
        buf.barrier();
        let _ = self.nprocs;
    }
}

/// Build the Barnes workload.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let bodies = layout.alloc_bytes(ws_bytes / 2);
    let tree = layout.alloc_bytes(ws_bytes - ws_bytes / 2);
    let body_parts = bodies.partition(nprocs);
    let tree_parts = tree.partition(nprocs);
    let zipf = ZipfSampler::new(tree.lines() as usize, 1.25);
    let streams = super::build_streams(nprocs, seed, SALT, (60, 140), |me| Barnes {
        me,
        nprocs,
        iters: scale.iters(BASE_ITERS),
        tree,
        own_bodies: body_parts[me],
        own_tree_part: tree_parts[me],
        tree_parts: tree_parts.clone(),
        zipf: zipf.clone(),
    });
    Workload {
        name: "Barnes",
        ws_bytes: layout.total_bytes(),
        n_locks: N_LOCKS,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn locks_are_balanced_pairs() {
        let mut wl = build(4, 5, Scale::SMOKE, 128 * 1024);
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        while let Some(op) = wl.streams[0].next_op() {
            match op {
                Op::Lock(_) => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                Op::Unlock(_) => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced lock/unlock");
        assert_eq!(max_depth, 1, "locks must not nest");
    }

    #[test]
    fn tree_reads_are_widely_shared() {
        // Every processor reads the hot head of the tree region.
        let mut wl = build(4, 5, Scale::SMOKE, 128 * 1024);
        let tree_base = (wl.ws_bytes / 2) / 64; // tree starts after bodies
        let mut per_proc: Vec<std::collections::HashSet<u64>> = Vec::new();
        for s in &mut wl.streams {
            let mut reads = std::collections::HashSet::new();
            while let Some(op) = s.next_op() {
                if let Op::Read(a) = op {
                    let l = a.line().0;
                    if l >= tree_base {
                        reads.insert(l);
                    }
                }
            }
            per_proc.push(reads);
        }
        let common = per_proc[0]
            .iter()
            .filter(|l| per_proc[1..].iter().all(|s| s.contains(l)))
            .count();
        assert!(common > 3, "only {common} tree lines shared by all");
    }

    #[test]
    fn lock_ids_in_range() {
        let mut wl = build(4, 5, Scale::SMOKE, 128 * 1024);
        while let Some(op) = wl.streams[2].next_op() {
            if let Op::Lock(l) | Op::Unlock(l) = op {
                assert!(l < wl.n_locks);
            }
        }
    }
}
