//! Cholesky analogue — SPLASH-2 "sparse matrix factorization, tk29.O".
//!
//! Structure reproduced: supernodal panels processed through a
//! lock-guarded task queue; at each step one *source panel* (chosen
//! identically on every processor) is read by the processors whose own
//! panels it updates — data migrates producer→consumer rather than being
//! replicated machine-wide, so Cholesky stays in the well-behaved
//! Figure 3 group. Each processor reads a different chunk of the source
//! panel (sparse column overlap), then tile-updates its own panel.

use crate::pattern::BlockWalker;
use crate::region::{Layout, Region};
use crate::stream::{shared_rng, OpBuf, PhaseGen, Scale};
use crate::workload::Workload;

const SALT: u64 = 0xC401;
const BASE_STEPS: u32 = 64;
const N_LOCKS: u32 = 16;
const PANEL_BLOCK_LINES: u64 = 8;

struct Cholesky {
    me: usize,
    nprocs: usize,
    seed: u64,
    steps: u32,
    matrix: Region,
    own_panel: Region,
}

impl PhaseGen for Cholesky {
    fn n_iters(&self) -> u32 {
        self.steps
    }

    fn gen_iter(&mut self, step: u32, buf: &mut OpBuf) {
        // All processors agree on this step's source panel.
        let mut srng = shared_rng(self.seed, SALT, step);
        let n_panels = self.nprocs as u64;
        let src_owner = srng.below(n_panels) as usize;
        let src = self.matrix.partition(self.nprocs)[src_owner];

        // Task dequeue under lock.
        let lock = (self.me as u32 + step) % N_LOCKS.min(16);
        buf.lock(lock);
        buf.compute(12);
        buf.unlock(lock);

        // Read "my" chunk of the source panel: chunks overlap their
        // neighbour's by half (sparse column structure), so a line is
        // typically read by two or three processors, not all sixteen.
        let chunk = (src.lines() / self.nprocs as u64).max(1);
        // The row structure consumed from a sparse panel differs per
        // update step, so the chunk position rotates with the step —
        // this also prevents degenerate set aliasing between panels.
        let start = (self.me as u64 * chunk + step as u64 * 97) % src.lines();
        for i in 0..chunk * 5 / 4 {
            let a = src.line(start + i);
            buf.read(a);
            buf.read(a);
        }

        // Tile-update the own panel (supernodal dgemm: several reads per
        // target line before the store).
        let mut w = BlockWalker::new(self.own_panel, PANEL_BLOCK_LINES);
        w.seek_block(step as u64);
        for _ in 0..(self.own_panel.lines() / 8).max(8) {
            let a = w.next_addr();
            buf.read(a);
            buf.read(a);
            buf.update(a);
        }

        if step % 4 == 3 {
            buf.barrier();
        }
    }
}

/// Build the Cholesky workload.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let matrix = layout.alloc_bytes(ws_bytes);
    let parts = matrix.partition(nprocs);
    let streams = super::build_streams(nprocs, seed, SALT, (40, 90), |me| Cholesky {
        me,
        nprocs,
        seed,
        steps: scale.iters(BASE_STEPS),
        matrix,
        own_panel: parts[me],
    });
    Workload {
        name: "Cholesky",
        ws_bytes: layout.total_bytes(),
        n_locks: N_LOCKS,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn source_panel_agreement_across_procs() {
        // Two processors must read from the same (shared-rng-chosen)
        // source panel in the same step. We check that their read sets
        // overlap somewhere (chunks overlap by half).
        let mut wl = build(4, 21, Scale::SMOKE, 512 * 1024);
        let collect = |s: &mut Box<dyn OpStream>| {
            let mut v = std::collections::HashSet::new();
            while let Some(op) = s.next_op() {
                if let Op::Read(a) = op {
                    v.insert(a.line().0);
                }
            }
            v
        };
        let r0 = collect(&mut wl.streams[0]);
        let r1 = collect(&mut wl.streams[1]);
        assert!(r0.intersection(&r1).count() > 0);
    }

    #[test]
    fn barriers_are_sparse() {
        // Cholesky synchronizes through locks, with only occasional
        // barriers — fewer barriers than steps.
        let mut wl = build(4, 21, Scale::PAPER, 512 * 1024);
        let mut barriers = 0u32;
        let mut locks = 0u32;
        while let Some(op) = wl.streams[0].next_op() {
            match op {
                Op::Barrier(_) => barriers += 1,
                Op::Lock(_) => locks += 1,
                _ => {}
            }
        }
        assert!(locks > barriers * 2, "locks={locks} barriers={barriers}");
    }

    #[test]
    fn not_machine_wide_replicated() {
        // No line should be read by ALL processors in a smoke run —
        // that is what keeps Cholesky out of the Figure 4 group.
        let mut wl = build(8, 21, Scale::SMOKE, 512 * 1024);
        let sets: Vec<std::collections::HashSet<u64>> = wl
            .streams
            .iter_mut()
            .map(|s| {
                let mut v = std::collections::HashSet::new();
                while let Some(op) = s.next_op() {
                    if let Op::Read(a) = op {
                        v.insert(a.line().0);
                    }
                }
                v
            })
            .collect();
        let common = sets[0]
            .iter()
            .filter(|l| sets[1..].iter().all(|s| s.contains(l)))
            .count();
        let total: usize = sets.iter().map(|s| s.len()).sum();
        assert!(
            (common as f64) < 0.05 * total as f64,
            "too much machine-wide sharing: {common}/{total}"
        );
    }
}
