//! FFT analogue — SPLASH-2 "1-dim. Six-step FFT, 1M data points".
//!
//! Structure reproduced: the data is two equal matrices (source and
//! destination); each iteration performs a local compute pass over the
//! processor's own partition followed by a **blocked all-to-all
//! transpose** in which every processor reads one block from every other
//! processor's partition and writes it into its own. Barriers separate
//! the phases. Communication is all-to-all, so clustering captures the
//! 1-in-`procs_per_node` fraction of transpose partners that land in the
//! same node — FFT's moderate-but-solid clustering gain (Figure 2), and
//! its large read/replacement traffic at high memory pressure (Figure 3).

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;

const SALT: u64 = 0xFF7;
const BASE_ITERS: u32 = 6;

struct Fft {
    me: usize,
    nprocs: usize,
    iters: u32,
    /// Per-processor partitions of the two matrices.
    src_parts: Vec<Region>,
    dst_parts: Vec<Region>,
}

impl PhaseGen for Fft {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, iter: u32, buf: &mut OpBuf) {
        // Roles swap every iteration (ping-pong between the matrices).
        let (src, dst) = if iter.is_multiple_of(2) {
            (&self.src_parts, &self.dst_parts)
        } else {
            (&self.dst_parts, &self.src_parts)
        };
        let own_src = src[self.me];
        let own_dst = dst[self.me];

        // Local 1-D FFT passes over the own partition. Each line holds 8
        // complex points and a radix pass performs several butterflies
        // per point, so a line is touched many times while FLC-resident
        // (this is what keeps the absolute node-miss rate low, as in the
        // real code).
        for _pass in 0..2 {
            for i in 0..own_src.lines() {
                let a = own_src.line(i);
                for _ in 0..4 {
                    buf.read(a);
                }
                buf.write(a);
            }
        }
        buf.barrier();

        // Blocked transpose: read block `me` from every processor's source
        // partition, write it into the own destination partition.
        let block = (own_dst.lines() / self.nprocs as u64).max(1);
        for (q, &from) in src.iter().enumerate() {
            let from_block = (self.me as u64 * block) % from.lines();
            for i in 0..block {
                buf.read(from.line(from_block + i));
                buf.write(own_dst.line(q as u64 * block + i));
            }
        }
        buf.barrier();
    }
}

/// Build the FFT workload.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let half = ws_bytes / 2;
    let src = layout.alloc_bytes(half);
    let dst = layout.alloc_bytes(ws_bytes - half);
    let src_parts = src.partition(nprocs);
    let dst_parts = dst.partition(nprocs);
    let streams = super::build_streams(nprocs, seed, SALT, (24, 60), |me| Fft {
        me,
        nprocs,
        iters: scale.iters(BASE_ITERS),
        src_parts: src_parts.clone(),
        dst_parts: dst_parts.clone(),
    });
    Workload {
        name: "FFT",
        ws_bytes: layout.total_bytes(),
        n_locks: 0,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn all_procs_emit_same_barrier_sequence() {
        let mut wl = build(4, 7, Scale::SMOKE, 64 * 1024);
        let barrier_seq = |s: &mut Box<dyn OpStream>| {
            let mut v = Vec::new();
            while let Some(op) = s.next_op() {
                if let Op::Barrier(b) = op {
                    v.push(b);
                }
            }
            v
        };
        let seqs: Vec<_> = wl.streams.iter_mut().map(barrier_seq).collect();
        assert!(!seqs[0].is_empty());
        for s in &seqs[1..] {
            assert_eq!(*s, seqs[0]);
        }
    }

    #[test]
    fn addresses_stay_inside_working_set() {
        let mut wl = build(4, 7, Scale::SMOKE, 64 * 1024);
        for s in &mut wl.streams {
            while let Some(op) = s.next_op() {
                if let Op::Read(a) | Op::Write(a) = op {
                    assert!(a.0 < wl.ws_bytes, "address {a} beyond ws");
                }
            }
        }
    }

    #[test]
    fn transpose_reads_other_partitions() {
        // Proc 0 must read lines outside its own src partition.
        let mut wl = build(4, 7, Scale::SMOKE, 64 * 1024);
        let own_quarter = wl.ws_bytes / 2 / 4; // proc 0's src partition span
        let mut outside = 0;
        while let Some(op) = wl.streams[0].next_op() {
            if let Op::Read(a) = op {
                if a.0 >= own_quarter && a.0 < wl.ws_bytes / 2 {
                    outside += 1;
                }
            }
        }
        assert!(outside > 0, "no all-to-all reads observed");
    }

    #[test]
    fn deterministic_across_builds() {
        let collect = || {
            let mut wl = build(2, 3, Scale::SMOKE, 64 * 1024);
            let mut v = Vec::new();
            while let Some(op) = wl.streams[1].next_op() {
                v.push(op);
            }
            v
        };
        assert_eq!(collect(), collect());
    }
}
