//! FMM analogue — SPLASH-2 "Fast Multipole Method N-body, two clusters".
//!
//! Structure reproduced: partitioned cell/particle data updated in an
//! upward pass, then an interaction phase that mixes **neighbour-cell
//! reads** (interaction lists are spatially local, so partners are the
//! adjacent processors) with reads of a globally shared upper-tree
//! region. The global tree region gives FMM its Figure 4 conflict-miss
//! behaviour at 87.5 % MP; the neighbour interactions give it a middling
//! clustering gain in Figure 2 (better than Barnes, worse than the
//! all-to-all codes).

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;
use coma_types::ZipfSampler;

const SALT: u64 = 0xF33;
const BASE_ITERS: u32 = 12;
const N_LOCKS: u32 = 4;

struct Fmm {
    me: usize,
    nprocs: usize,
    iters: u32,
    cell_parts: Vec<Region>,
    tree_upper: Region,
    zipf: ZipfSampler,
}

impl PhaseGen for Fmm {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, _iter: u32, buf: &mut OpBuf) {
        let own = self.cell_parts[self.me];

        // Upward pass: build multipole expansions in the own cells.
        for i in (0..own.lines()).step_by(2) {
            buf.update(own.line(i));
        }
        buf.barrier();

        // Interaction phase: per own cell, read interaction-list partners
        // from adjacent processors' partitions plus the shared upper tree.
        let left = self.cell_parts[(self.me + self.nprocs - 1) % self.nprocs];
        let right = self.cell_parts[(self.me + 1) % self.nprocs];
        for i in (0..own.lines()).step_by(2) {
            // Multipole-to-local translations re-read the partner
            // expansion several times while it is cache-resident.
            let lp = buf.rng().below(left.lines());
            let la = left.line(lp);
            buf.read(la);
            buf.read(la);
            // Well-separated interaction partner: a distant cell owned by
            // a me-specific far processor (not shared with cluster-mates).
            let far_idx = (self.me + 2 + (i as usize / 2) % (self.nprocs.saturating_sub(4) + 1))
                % self.nprocs;
            let far = self.cell_parts[far_idx];
            let fp = buf.rng().below(far.lines());
            let fa = far.line(fp);
            buf.read(fa);
            buf.read(fa);
            let rp = buf.rng().below(right.lines());
            let ra = right.line(rp);
            buf.read(ra);
            buf.read(ra);
            let t = self.zipf.sample(buf.rng()) as u64;
            let ta = self.tree_upper.line(t);
            buf.read(ta);
            buf.read(ta);
            let o = own.line(i);
            buf.read(o);
            buf.update(o);
        }
        // Occasional lock-protected global reduction.
        let lock = self.me as u32 % N_LOCKS;
        buf.lock(lock);
        buf.update(self.tree_upper.line(lock as u64));
        buf.unlock(lock);
        buf.barrier();
    }
}

/// Build the FMM workload.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    // Upper tree ≈ 1/8 of the working set, globally shared.
    let tree_bytes = ws_bytes / 8;
    let cells = layout.alloc_bytes(ws_bytes - tree_bytes);
    let tree_upper = layout.alloc_bytes(tree_bytes);
    let cell_parts = cells.partition(nprocs);
    let zipf = ZipfSampler::new(tree_upper.lines() as usize, 1.2);
    let streams = super::build_streams(nprocs, seed, SALT, (60, 140), |me| Fmm {
        me,
        nprocs,
        iters: scale.iters(BASE_ITERS),
        cell_parts: cell_parts.clone(),
        tree_upper,
        zipf: zipf.clone(),
    });
    Workload {
        name: "FMM",
        ws_bytes: layout.total_bytes(),
        n_locks: N_LOCKS,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn reads_include_both_neighbours_and_tree() {
        let ws = 256 * 1024u64;
        let mut wl = build(8, 5, Scale::SMOKE, ws);
        let cells_lines = (ws - ws / 8) / 64;
        let part = cells_lines / 8;
        let mut saw_left = false;
        let mut saw_right = false;
        let mut saw_tree = false;
        while let Some(op) = wl.streams[3].next_op() {
            if let Op::Read(a) = op {
                let l = a.line().0;
                if l >= cells_lines {
                    saw_tree = true;
                } else {
                    match l / part {
                        2 => saw_left = true,
                        4 => saw_right = true,
                        _ => {}
                    }
                }
            }
        }
        assert!(saw_left && saw_right && saw_tree);
    }

    #[test]
    fn locks_balanced() {
        let mut wl = build(4, 5, Scale::SMOKE, 256 * 1024);
        let mut depth = 0i64;
        while let Some(op) = wl.streams[1].next_op() {
            match op {
                Op::Lock(_) => depth += 1,
                Op::Unlock(_) => depth -= 1,
                _ => {}
            }
            assert!((0..=1).contains(&depth));
        }
        assert_eq!(depth, 0);
    }
}
