//! Graph BFS — irregular graph analysis (level-synchronized BFS plus
//! pointer chasing), after Chen & Bader's Cell BE graph study.
//!
//! The adversarial case for attraction memories: vertex and edge accesses
//! are spread nearly uniformly over the whole working set with little
//! temporal reuse, so replication buys almost nothing while replacement
//! traffic still has to be paid. Structure:
//!
//! * The graph lives in two regions: a **vertex array** (8 vertices per
//!   line: level / parent / visited word) and a **CSR edge array**
//!   (8 edge targets per line), laid out consecutively.
//! * Each outer iteration is one BFS from a fresh root. The frontier
//!   follows the classic pulse profile (tiny → exponential growth →
//!   peak around the graph diameter's midpoint → tail); every level ends
//!   in a barrier, exactly like a level-synchronized implementation.
//! * For each owned frontier vertex the processor reads its vertex line,
//!   streams its CSR adjacency lines, then probes every neighbour's
//!   vertex line machine-wide; unvisited neighbours (a per-level
//!   claim probability that decays as the visited set grows) are claimed
//!   with a write — scattered invalidations with no locality.
//! * Edge endpoints are drawn either **uniformly** or with an
//!   **R-MAT-style skew** (each target id bit is 1 with probability 1/4,
//!   concentrating edges on low-id hub vertices whose degrees also grow
//!   as 1/√id — the heavy-tailed degree profile of R-MAT graphs).
//! * After the BFS, a **pointer-chasing** phase walks `hash(v)` chains
//!   through the vertex array — dependent random reads, the pattern with
//!   the least locality a memory system can face — then a final barrier.

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;
use coma_types::{ConfigError, Rng64, LINE_BYTES};

const SALT: u64 = 0x6BF5_11C3;
/// BFS roots at `Scale::PAPER` (one root per outer iteration).
const BASE_ROOTS: u32 = 12;
/// Vertex records per cache line.
const VERTS_PER_LINE: u64 = 8;
/// Edge targets per cache line.
const EDGES_PER_LINE: u64 = 8;
/// Fraction of the graph in the frontier at each BFS level (the pulse).
const FRONTIER_WEIGHT: [f64; 8] = [0.002, 0.02, 0.10, 0.22, 0.26, 0.14, 0.05, 0.008];
/// Probability a probed neighbour is still unvisited (claimed with a
/// write) at each level; decays as the visited set grows.
const CLAIM_FRAC: [f64; 8] = [0.9, 0.8, 0.6, 0.4, 0.25, 0.12, 0.05, 0.02];
/// Dependent reads per processor in each pointer-chasing phase.
const CHASE_REFS: u64 = 1500;

/// Tunable shape of the graph traffic.
#[derive(Clone, Debug)]
pub struct GraphSpec {
    /// Vertices in the graph.
    pub n_vertices: u64,
    /// Mean out-degree (CSR row length).
    pub avg_degree: u64,
    /// Skewed (R-MAT-style) edge targets and degrees instead of uniform.
    pub rmat: bool,
}

impl GraphSpec {
    /// Default shape for a graph sized to `ws_bytes`: R-MAT skew with
    /// mean degree 8 (vertex array + edge array = ws).
    pub fn from_ws(ws_bytes: u64) -> Self {
        // lines = n/VERTS_PER_LINE + n·deg/EDGES_PER_LINE; with deg = 8
        // that is 9n/8, so n = lines · 8/9.
        const DEG: u64 = 8;
        let n_vertices = (ws_bytes / LINE_BYTES) * VERTS_PER_LINE * EDGES_PER_LINE
            / (EDGES_PER_LINE + DEG * VERTS_PER_LINE);
        GraphSpec {
            n_vertices,
            avg_degree: DEG,
            rmat: true,
        }
    }

    /// Reject degenerate configurations before any region is allocated.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_vertices == 0 {
            return Err(ConfigError::EmptyWorkload {
                family: "graph_bfs",
                what: "n_vertices",
            });
        }
        if self.avg_degree == 0 {
            return Err(ConfigError::EmptyWorkload {
                family: "graph_bfs",
                what: "avg_degree",
            });
        }
        Ok(())
    }
}

/// SplitMix64 finalizer as a pure hash (pointer-chase successor, degree
/// jitter) — deterministic in its argument, no RNG state consumed.
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct GraphBfs {
    me: usize,
    nprocs: usize,
    roots: u32,
    n_vertices: u64,
    avg_degree: u64,
    rmat: bool,
    verts: Region,
    adj: Region,
}

impl GraphBfs {
    /// Deterministic degree of vertex `v`: uniform graphs jitter around
    /// the mean; R-MAT graphs give low-id hubs degrees growing as 1/√id,
    /// normalized so the mean over the graph stays ≈ `avg_degree`.
    fn degree_of(&self, v: u64) -> u64 {
        if self.rmat {
            let scale = (self.n_vertices as f64).sqrt() / (2.0 * ((v + 1) as f64).sqrt());
            let d = (self.avg_degree as f64 * scale).round() as u64;
            d.clamp(1, 32 * self.avg_degree)
        } else {
            let jitter = mix(v) % (self.avg_degree / 2 + 1);
            (self.avg_degree - self.avg_degree / 4 + jitter).max(1)
        }
    }

    /// One edge endpoint: uniform, or R-MAT-style (each id bit set with
    /// probability 1/4, biasing targets toward low-id hubs). Out-of-range
    /// draws for non-power-of-two graphs are rejected and redrawn.
    fn target(&self, rng: &mut Rng64) -> u64 {
        if !self.rmat {
            return rng.below(self.n_vertices);
        }
        let bits = 64 - (self.n_vertices - 1).max(1).leading_zeros();
        loop {
            let mut v = 0u64;
            for _ in 0..bits {
                v = (v << 1) | u64::from(rng.chance(0.25));
            }
            if v < self.n_vertices {
                return v;
            }
        }
    }
}

impl PhaseGen for GraphBfs {
    fn n_iters(&self) -> u32 {
        self.roots
    }

    fn gen_iter(&mut self, _root: u32, buf: &mut OpBuf) {
        let own = self.n_vertices / self.nprocs as u64;
        let own_base = own * self.me as u64;

        // Level-synchronized BFS: expand owned frontier vertices, barrier.
        for (level, &weight) in FRONTIER_WEIGHT.iter().enumerate() {
            let visits = ((own as f64 * weight) as u64).max(1);
            for _ in 0..visits {
                let v = own_base + buf.rng().below(own.max(1));
                buf.read(self.verts.line(v / VERTS_PER_LINE));
                let deg = self.degree_of(v);
                // Stream the CSR row (consecutive edge lines).
                let row = v * self.avg_degree / EDGES_PER_LINE;
                for j in 0..deg.div_ceil(EDGES_PER_LINE) {
                    buf.read(self.adj.line(row + j));
                }
                // Probe every neighbour; claim the unvisited ones.
                for _ in 0..deg {
                    let u = self.target(buf.rng());
                    let line = self.verts.line(u / VERTS_PER_LINE);
                    buf.read(line);
                    if buf.rng().chance(CLAIM_FRAC[level]) {
                        buf.write(line);
                    }
                }
            }
            buf.barrier();
        }

        // Pointer chasing: dependent hash-chain walk over the vertices.
        let mut cur = buf.rng().below(self.n_vertices);
        for _ in 0..CHASE_REFS {
            buf.read(self.verts.line(cur / VERTS_PER_LINE));
            cur = mix(cur) % self.n_vertices;
        }
        buf.barrier();
    }
}

/// Build with the default spec derived from the catalog working set.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    build_spec(&GraphSpec::from_ws(ws_bytes), nprocs, seed, scale)
        .expect("catalog graph_bfs spec is valid")
}

/// Build from an explicit spec; rejects empty graphs instead of
/// panicking inside the generator.
pub fn build_spec(
    spec: &GraphSpec,
    nprocs: usize,
    seed: u64,
    scale: Scale,
) -> Result<Workload, ConfigError> {
    spec.validate()?;
    let (n_vertices, avg_degree, rmat) = (spec.n_vertices, spec.avg_degree, spec.rmat);
    let mut layout = Layout::new();
    let verts = layout.alloc_lines(n_vertices.div_ceil(VERTS_PER_LINE));
    let adj = layout.alloc_lines((n_vertices * avg_degree).div_ceil(EDGES_PER_LINE).max(1));
    let streams = super::build_streams(nprocs, seed, SALT, (1, 3), |me| GraphBfs {
        me,
        nprocs,
        roots: scale.iters(BASE_ROOTS),
        n_vertices,
        avg_degree,
        rmat,
        verts,
        adj,
    });
    Ok(Workload {
        name: "Graph BFS",
        ws_bytes: layout.total_bytes(),
        n_locks: 0,
        streams,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn zero_vertices_rejected() {
        let bad = GraphSpec {
            n_vertices: 0,
            avg_degree: 8,
            rmat: true,
        };
        assert_eq!(
            bad.validate(),
            Err(ConfigError::EmptyWorkload {
                family: "graph_bfs",
                what: "n_vertices",
            })
        );
        assert!(build_spec(&bad, 4, 1, Scale::SMOKE).is_err());
        let bad_deg = GraphSpec {
            n_vertices: 100,
            avg_degree: 0,
            rmat: false,
        };
        assert!(matches!(
            bad_deg.validate(),
            Err(ConfigError::EmptyWorkload {
                what: "avg_degree",
                ..
            })
        ));
    }

    #[test]
    fn rmat_targets_skew_toward_hubs() {
        let g = GraphBfs {
            me: 0,
            nprocs: 1,
            roots: 1,
            n_vertices: 4096,
            avg_degree: 8,
            rmat: true,
            verts: Region::new(0, 512),
            adj: Region::new(512 * 64, 4096),
        };
        let mut rng = Rng64::new(9);
        let mut low = 0u64;
        const N: u64 = 20_000;
        for _ in 0..N {
            if g.target(&mut rng) < 256 {
                low += 1;
            }
        }
        // 256/4096 = 6.25% of ids; with bit-probability 1/4 the lowest
        // 256 ids carry (3/4)^4 ≈ 32% of the endpoints.
        assert!(low * 4 > N, "hub mass too small: {low}/{N}");
    }

    #[test]
    fn uniform_targets_do_not_skew() {
        let g = GraphBfs {
            me: 0,
            nprocs: 1,
            roots: 1,
            n_vertices: 4096,
            avg_degree: 8,
            rmat: false,
            verts: Region::new(0, 512),
            adj: Region::new(512 * 64, 4096),
        };
        let mut rng = Rng64::new(9);
        let low = (0..20_000).filter(|_| g.target(&mut rng) < 256).count();
        assert!((500..2000).contains(&low), "uniform low mass: {low}");
    }

    #[test]
    fn spread_covers_most_of_the_working_set() {
        let mut wl = build(4, 5, Scale::SMOKE, 512 * 1024);
        let mut lines = std::collections::HashSet::new();
        let mut n = 0u64;
        for s in &mut wl.streams {
            while let Some(op) = s.next_op() {
                if let Op::Read(a) | Op::Write(a) = op {
                    lines.insert(a.line().0);
                    n += 1;
                }
                if n > 400_000 {
                    break;
                }
            }
        }
        let ws_lines = wl.ws_bytes / 64;
        assert!(
            lines.len() as u64 * 2 > ws_lines,
            "graph traffic touched only {}/{} lines",
            lines.len(),
            ws_lines
        );
    }

    #[test]
    fn barrier_count_is_levels_plus_chase_per_root() {
        let mut wl = build(2, 5, Scale::SMOKE, 256 * 1024);
        let mut barriers = 0u32;
        while let Some(op) = wl.streams[0].next_op() {
            if matches!(op, Op::Barrier(_)) {
                barriers += 1;
            }
        }
        let per_root = FRONTIER_WEIGHT.len() as u32 + 1;
        assert_eq!(barriers % per_root, 0);
        assert!(barriers >= per_root);
    }

    #[test]
    fn mean_rmat_degree_close_to_avg() {
        let g = GraphBfs {
            me: 0,
            nprocs: 1,
            roots: 1,
            n_vertices: 32768,
            avg_degree: 8,
            rmat: true,
            verts: Region::new(0, 4096),
            adj: Region::new(4096 * 64, 32768),
        };
        let total: u64 = (0..g.n_vertices).map(|v| g.degree_of(v)).sum();
        let mean = total as f64 / g.n_vertices as f64;
        assert!(
            (4.0..16.0).contains(&mean),
            "rmat mean degree drifted to {mean}"
        );
        // Hubs really are hubs.
        assert!(g.degree_of(0) > 8 * g.degree_of(g.n_vertices - 1));
    }
}
