//! KV Zipf — production-shaped key-value / OLTP traffic.
//!
//! Unlike the fourteen SPLASH-2 analogues, this family models a serving
//! workload: millions of simulated clients hammering a shared key-value
//! store whose key popularity follows a Zipf(s) law. Structure:
//!
//! * Each request looks up an **index line** (8 keys per line — the
//!   B-tree / hash-directory page for that key) and then touches the
//!   key's **value line**. Hot index pages are the best case for
//!   attraction-memory replication: read-mostly, touched by everyone.
//! * A configurable fraction of requests are **updates**: the request
//!   acquires the key's shard lock, re-reads the index, and
//!   read-modify-writes the value line — the write-invalidation storm
//!   that erodes replicas under COMA.
//! * **Client skew** models clients pinned to front-end processors: a
//!   fraction of each processor's requests are redirected to a
//!   processor-private rotation of the popularity ranking, giving every
//!   node its own secondary hot set.
//! * Requests are grouped into epochs closed by a barrier (stats flush /
//!   checkpoint), so the trace has the same global synchronization
//!   skeleton as the rest of the catalog.
//!
//! Popularity ranks are mapped to key ids through a seeded permutation,
//! so the hot set is scattered across the whole value region instead of
//! clustering in its first lines (as a naive rank == key mapping would).

use crate::region::{Layout, Region};
use crate::stream::{shared_rng, OpBuf, PhaseGen, Scale};
use crate::workload::Workload;
use coma_types::{ConfigError, ZipfSampler, LINE_BYTES};
use std::sync::Arc;

const SALT: u64 = 0x5EE6_4B1A;
/// Epochs at `Scale::PAPER` (scaled by the trace-length knob).
const BASE_ROUNDS: u32 = 10;
/// Requests per processor per epoch (not scaled: working-set coverage per
/// epoch is part of the workload's shape, like an FFT pass).
const REQS_PER_ROUND: u64 = 4000;
/// Directory entries per index line.
const KEYS_PER_INDEX_LINE: u64 = 8;
/// Store shards; each update locks its key's shard.
const N_SHARD_LOCKS: u32 = 8;

/// Tunable shape of the key-value traffic.
#[derive(Clone, Debug)]
pub struct KvSpec {
    /// Distinct keys in the store (each key owns one value line).
    pub n_keys: u64,
    /// Zipf popularity exponent (0 = uniform; 1 ≈ classic web traffic).
    pub zipf_s: f64,
    /// Fraction of requests that update their key.
    pub write_frac: f64,
    /// Fraction of requests redirected to the processor-private hot set.
    pub client_skew: f64,
}

impl KvSpec {
    /// Default traffic shape for a store sized to `ws_bytes`: read-hot
    /// (10 % updates), s = 1.0, mild client pinning.
    pub fn from_ws(ws_bytes: u64) -> Self {
        // index (1 line per 8 keys) + values (1 line per key) = ws.
        let n_keys = (ws_bytes / LINE_BYTES) * KEYS_PER_INDEX_LINE / (KEYS_PER_INDEX_LINE + 1);
        KvSpec {
            n_keys,
            zipf_s: 1.0,
            write_frac: 0.10,
            client_skew: 0.10,
        }
    }

    /// Reject degenerate configurations before any region is allocated.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_keys == 0 {
            return Err(ConfigError::EmptyWorkload {
                family: "kv_zipf",
                what: "n_keys",
            });
        }
        Ok(())
    }
}

struct KvZipf {
    me: usize,
    nprocs: usize,
    rounds: u32,
    write_frac: f64,
    client_skew: f64,
    zipf: Arc<ZipfSampler>,
    /// Popularity rank → key id (shared seeded permutation).
    perm: Arc<Vec<u32>>,
    index: Region,
    values: Region,
    n_keys: u64,
}

impl PhaseGen for KvZipf {
    fn n_iters(&self) -> u32 {
        self.rounds
    }

    fn gen_iter(&mut self, _round: u32, buf: &mut OpBuf) {
        for _ in 0..REQS_PER_ROUND {
            let rank = self.zipf.sample(buf.rng());
            let mut key = self.perm[rank] as u64;
            if self.client_skew > 0.0 && buf.rng().chance(self.client_skew) {
                // Redirect to this front-end's private rotation of the
                // ranking: same popularity law, disjoint hot keys.
                key = (key + self.me as u64 * self.n_keys / self.nprocs as u64) % self.n_keys;
            }
            let idx = self.index.line(key / KEYS_PER_INDEX_LINE);
            let val = self.values.line(key);
            if buf.rng().chance(self.write_frac) {
                let shard = (key % N_SHARD_LOCKS as u64) as u32;
                buf.lock(shard);
                buf.read(idx);
                buf.update(val);
                buf.unlock(shard);
            } else {
                buf.read(idx);
                buf.read(val);
            }
        }
        // Epoch close: stats flush / checkpoint.
        buf.barrier();
    }
}

/// Build with the default spec derived from the catalog working set.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    build_spec(&KvSpec::from_ws(ws_bytes), nprocs, seed, scale)
        .expect("catalog kv_zipf spec is valid")
}

/// Build from an explicit spec; rejects empty stores instead of
/// panicking inside the generator.
pub fn build_spec(
    spec: &KvSpec,
    nprocs: usize,
    seed: u64,
    scale: Scale,
) -> Result<Workload, ConfigError> {
    spec.validate()?;
    let n_keys = spec.n_keys;
    assert!(n_keys <= u32::MAX as u64, "key ids are stored as u32");
    let mut layout = Layout::new();
    let index = layout.alloc_lines(n_keys.div_ceil(KEYS_PER_INDEX_LINE));
    let values = layout.alloc_lines(n_keys);

    // Shared across processors: everyone agrees which keys are popular.
    let mut prng = shared_rng(seed, SALT, 0);
    let mut perm: Vec<u32> = (0..n_keys as u32).collect();
    prng.shuffle(&mut perm);
    let perm = Arc::new(perm);
    let zipf = Arc::new(ZipfSampler::new(n_keys as usize, spec.zipf_s));

    let (write_frac, client_skew) = (spec.write_frac, spec.client_skew);
    let streams = super::build_streams(nprocs, seed, SALT, (1, 4), |me| KvZipf {
        me,
        nprocs,
        rounds: scale.iters(BASE_ROUNDS),
        write_frac,
        client_skew,
        zipf: zipf.clone(),
        perm: perm.clone(),
        index,
        values,
        n_keys,
    });
    Ok(Workload {
        name: "KV Zipf",
        ws_bytes: layout.total_bytes(),
        n_locks: N_SHARD_LOCKS,
        streams,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    fn spec(n_keys: u64) -> KvSpec {
        KvSpec {
            n_keys,
            ..KvSpec::from_ws(1 << 20)
        }
    }

    #[test]
    fn zero_keys_rejected() {
        assert_eq!(
            spec(0).validate(),
            Err(ConfigError::EmptyWorkload {
                family: "kv_zipf",
                what: "n_keys",
            })
        );
        assert!(build_spec(&spec(0), 4, 1, Scale::SMOKE).is_err());
    }

    #[test]
    fn read_mostly_mix() {
        let mut wl = build(4, 7, Scale::SMOKE, 1 << 20);
        let (mut r, mut w) = (0u64, 0u64);
        while let Some(op) = wl.streams[0].next_op() {
            match op {
                Op::Read(_) => r += 1,
                Op::Write(_) => w += 1,
                _ => {}
            }
        }
        // 10% updates → roughly one write per 20 reads (the update's
        // read-modify-write re-reads, and lookups touch two lines).
        assert!(w > 0);
        assert!(r > 5 * w, "expected read-mostly traffic: r={r} w={w}");
    }

    #[test]
    fn hot_lines_dominate() {
        let mut wl = build(2, 3, Scale::SMOKE, 1 << 20);
        let mut counts = std::collections::HashMap::new();
        while let Some(op) = wl.streams[0].next_op() {
            if let Op::Read(a) | Op::Write(a) = op {
                *counts.entry(a.line().0).or_insert(0u64) += 1;
            }
        }
        let total: u64 = counts.values().sum();
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = freq.iter().take(freq.len() / 100 + 1).sum();
        // Zipf s=1: the top 1% of touched lines carries far more than 1%
        // of the traffic.
        assert!(
            top * 10 > total,
            "top-1% lines carry only {top}/{total} refs"
        );
    }

    #[test]
    fn updates_hold_the_shard_lock() {
        let mut wl = build(2, 5, Scale::SMOKE, 1 << 20);
        let mut held: Option<u32> = None;
        let mut locked_updates = 0u64;
        while let Some(op) = wl.streams[1].next_op() {
            match op {
                Op::Lock(id) => {
                    assert!(held.is_none(), "nested lock");
                    held = Some(id);
                }
                Op::Unlock(id) => {
                    assert_eq!(held.take(), Some(id));
                    locked_updates += 1;
                }
                _ => {}
            }
        }
        assert!(held.is_none());
        assert!(locked_updates > 10, "too few update transactions");
    }

    #[test]
    fn client_skew_separates_processor_hot_sets() {
        let hot = |proc: usize| {
            let mut wl = build_spec(
                &KvSpec {
                    client_skew: 0.9,
                    ..KvSpec::from_ws(1 << 20)
                },
                4,
                11,
                Scale::SMOKE,
            )
            .unwrap();
            let mut counts = std::collections::HashMap::new();
            while let Some(op) = wl.streams[proc].next_op() {
                if let Op::Read(a) | Op::Write(a) = op {
                    *counts.entry(a.line().0).or_insert(0u64) += 1;
                }
            }
            let mut v: Vec<(u64, u64)> = counts.into_iter().map(|(l, c)| (c, l)).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.into_iter()
                .take(20)
                .map(|(_, l)| l)
                .collect::<std::collections::HashSet<u64>>()
        };
        let overlap = hot(0).intersection(&hot(2)).count();
        assert!(
            overlap < 15,
            "strong client skew should separate hot sets (overlap {overlap}/20)"
        );
    }
}
