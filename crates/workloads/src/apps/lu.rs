//! LU factorization analogues — SPLASH-2 "Blocked LU, 512×512" in both
//! the *contiguous* (enhanced-locality) and *non-contiguous* layouts.
//!
//! **LU-cont** reproduces the blocked algorithm: at step `k` the diagonal
//! (pivot) block is factored and then **read by every processor** to
//! update its own blocks. The pivot block rotates across the matrix, so
//! over a run a large fraction of the working set becomes replicated in
//! every node — this is what makes LU-cont one of the six conflict-miss
//! applications of Figure 4 at 87.5 % memory pressure. Accesses inside
//! blocks are tile-walked (good locality, moderate compute per reference).
//!
//! **LU-non** reproduces the non-blocked, column-oriented version:
//! strided sweeps with poor locality, a broadcast pivot column, little
//! compute between references (the highest bandwidth demand of the suite
//! — it is the one application the paper finds dominated by intra-node
//! contention under clustering, Figure 5), and false sharing on partition
//! boundary lines, which gives it the largest clustering RNMr gain in
//! Figure 2.

use crate::pattern::{BlockWalker, StrideWalker};
use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;

const SALT_CONT: u64 = 0x10C;
const SALT_NON: u64 = 0x10A;
const BASE_STEPS_CONT: u32 = 96;
const BASE_STEPS_NON: u32 = 64;
/// Lines per block in the contiguous (blocked) version.
const BLOCK_LINES: u64 = 16;

struct LuCont {
    me: usize,
    steps: u32,
    matrix: Region,
    own_panel: Region,
    parts_far: Vec<Region>,
}

impl PhaseGen for LuCont {
    fn n_iters(&self) -> u32 {
        self.steps
    }

    fn gen_iter(&mut self, step: u32, buf: &mut OpBuf) {
        let n_blocks = self.matrix.lines() / BLOCK_LINES;
        // The step's diagonal block, identical on every processor.
        let pivot = (step as u64) % n_blocks;
        let pivot_region = self.matrix.slice(pivot * BLOCK_LINES, BLOCK_LINES);

        if self.me == 0 {
            // The pivot owner factors the diagonal block in place.
            for i in 0..BLOCK_LINES {
                buf.update(pivot_region.line(i));
            }
        }
        buf.barrier();

        // Everyone reads the pivot block (machine-wide replication); the
        // block's values are re-read for every row of the own panel, but
        // after the first pass they sit in the FLC/SLC.
        for i in 0..BLOCK_LINES {
            let a = pivot_region.line(i);
            buf.read(a);
            buf.read(a);
        }
        // A trailing update of block (i,j) also needs the L-column block
        // A(i,k), owned by a different (rotating, me-dependent) processor
        // — communication that cluster-mates do *not* share.
        let far = &self.parts_far[(self.me + 1 + step as usize) % self.parts_far.len()];
        let far_off = (self.me as u64 * BLOCK_LINES) % far.lines();
        for i in 0..BLOCK_LINES {
            buf.read(far.line(far_off + i));
        }
        // … and tile-updates its own panel of blocks (dgemm-style: each
        // target line is read, combined with pivot data, written).
        let mut w = BlockWalker::new(self.own_panel, BLOCK_LINES);
        w.seek_block((step as u64) % w.n_blocks());
        for k in 0..self.own_panel.lines() {
            let a = w.next_addr();
            buf.read(a);
            buf.read(a);
            buf.update(a);
            // Re-consult a pivot line (FLC/SLC-resident).
            buf.read(pivot_region.line(k % BLOCK_LINES));
        }
        buf.barrier();
    }
}

struct LuNon {
    me: usize,
    nprocs: usize,
    steps: u32,
    parts: Vec<Region>,
}

impl PhaseGen for LuNon {
    fn n_iters(&self) -> u32 {
        self.steps
    }

    fn gen_iter(&mut self, step: u32, buf: &mut OpBuf) {
        // The pivot column lives in the panel of processor `step % nprocs`
        // and is strided through it (column of a row-major matrix).
        let owner = step as usize % self.nprocs;
        let pivot_panel = self.parts[owner];
        // Each processor needs the pivot column rows that intersect its
        // own columns: the walk is offset per processor, so only part of
        // the broadcast is shared with cluster-mates.
        let mut pivot = StrideWalker::starting_at(pivot_panel, 3, step as u64 + self.me as u64 * 5);
        let pivot_reads = (pivot_panel.lines() / 2).max(1);
        for _ in 0..pivot_reads {
            buf.read(pivot.next_addr());
        }

        // Strided update sweeps over the own panel — poor locality, almost
        // no compute between references: pure bandwidth demand. The daxpy
        // inner loop reads the pivot element and the target element before
        // storing, so each visited line takes several back-to-back
        // references.
        let own = self.parts[self.me];
        let mut sweep = StrideWalker::starting_at(own, 7, step as u64 * 5);
        for _ in 0..own.lines() * 2 {
            let a = sweep.next_addr();
            buf.read(a);
            buf.read(a);
            buf.update(a);
        }

        // False sharing: touch a few lines at the foot of the *next*
        // processor's panel (boundary rows shared by adjacent panels).
        let neigh = self.parts[(self.me + 1) % self.nprocs];
        for i in 0..8u64.min(neigh.lines()) {
            buf.update(neigh.line(i));
        }
        buf.barrier();
    }
}

/// Build the contiguous (blocked, enhanced-locality) LU workload.
pub fn build_cont(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let matrix = layout.alloc_bytes(ws_bytes);
    // Each processor owns a contiguous panel of blocks.
    let parts = matrix.partition(nprocs);
    let streams = super::build_streams(nprocs, seed, SALT_CONT, (32, 80), |me| LuCont {
        me,
        steps: scale.iters(BASE_STEPS_CONT),
        matrix,
        own_panel: parts[me],
        parts_far: parts.clone(),
    });
    Workload {
        name: "LU cont",
        ws_bytes: layout.total_bytes(),
        n_locks: 0,
        streams,
    }
}

/// Build the non-contiguous (column-sweep) LU workload.
pub fn build_non(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let matrix = layout.alloc_bytes(ws_bytes);
    let parts = matrix.partition(nprocs);
    let streams = super::build_streams(nprocs, seed, SALT_NON, (0, 1), |me| LuNon {
        me,
        nprocs,
        steps: scale.iters(BASE_STEPS_NON),
        parts: parts.clone(),
    });
    Workload {
        name: "LU non",
        ws_bytes: layout.total_bytes(),
        n_locks: 0,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};
    use std::collections::HashSet;

    fn drain_lines(s: &mut Box<dyn OpStream>) -> (HashSet<u64>, HashSet<u64>) {
        let mut reads = HashSet::new();
        let mut writes = HashSet::new();
        while let Some(op) = s.next_op() {
            match op {
                Op::Read(a) => {
                    reads.insert(a.line().0);
                }
                Op::Write(a) => {
                    writes.insert(a.line().0);
                }
                _ => {}
            }
        }
        (reads, writes)
    }

    #[test]
    fn cont_pivot_read_by_everyone() {
        let mut wl = build_cont(4, 1, Scale::SMOKE, 256 * 1024);
        let sets: Vec<_> = wl.streams.iter_mut().map(drain_lines).collect();
        // Some line is read by all four processors (the pivot block).
        let common: Vec<u64> = sets[0]
            .0
            .iter()
            .filter(|l| sets[1..].iter().all(|(r, _)| r.contains(l)))
            .copied()
            .collect();
        assert!(!common.is_empty(), "no machine-wide read-shared lines");
    }

    #[test]
    fn non_has_boundary_false_sharing() {
        let mut wl = build_non(4, 1, Scale::SMOKE, 256 * 1024);
        let sets: Vec<_> = wl.streams.iter_mut().map(drain_lines).collect();
        // Proc 0 writes lines that proc 1 also writes (boundary rows).
        let shared_writes = sets[0].1.intersection(&sets[1].1).count();
        assert!(shared_writes > 0, "no write-shared boundary lines");
    }

    #[test]
    fn non_is_bandwidth_heavier_than_cont() {
        // LU-non emits more refs per compute instruction than LU-cont.
        let density = |wl: &mut Workload| {
            let mut refs = 0u64;
            let mut instr = 0u64;
            while let Some(op) = wl.streams[0].next_op() {
                match op {
                    Op::Read(_) | Op::Write(_) => refs += 1,
                    Op::Compute(n) => instr += n as u64,
                    _ => {}
                }
            }
            refs as f64 / instr.max(1) as f64
        };
        let mut c = build_cont(4, 1, Scale::SMOKE, 256 * 1024);
        let mut n = build_non(4, 1, Scale::SMOKE, 256 * 1024);
        assert!(density(&mut n) > density(&mut c));
    }

    #[test]
    fn working_set_is_respected() {
        for wl in [
            &mut build_cont(4, 1, Scale::SMOKE, 128 * 1024),
            &mut build_non(4, 1, Scale::SMOKE, 128 * 1024),
        ] {
            for s in &mut wl.streams {
                while let Some(op) = s.next_op() {
                    if let Op::Read(a) | Op::Write(a) = op {
                        assert!(a.0 < wl.ws_bytes);
                    }
                }
            }
        }
    }
}
