//! The 14 SPLASH-2-analogue application models, plus the two
//! production-shaped traffic families (`kv_zipf`, `graph_bfs`).
//!
//! Each module documents which SPLASH-2 program it stands in for, what
//! structural features of that program it reproduces (partitioning,
//! sharing breadth, communication locality, synchronization, bandwidth
//! demand), and which of the paper's figures the application appears in.
//! The traffic families instead document which production access pattern
//! they model and why it stresses attraction memories.
//!
//! All models are deterministic in `(processor, seed)` and respect the
//! scaled Table-1 working-set sizes supplied by the catalog.

pub mod barnes;
pub mod cholesky;
pub mod fft;
pub mod fmm;
pub mod graph_bfs;
pub mod kv_zipf;
pub mod lu;
pub mod ocean;
pub mod radiosity;
pub mod radix;
pub mod raytrace;
pub mod synth;
pub mod volrend;
pub mod water;

use crate::op::OpStream;
use crate::stream::{proc_rng, PhaseGen, Scale, Stream};

/// Build one boxed stream per processor from a per-processor model
/// constructor, with the application's instruction-gap range applied.
pub(crate) fn build_streams<G, F>(
    nprocs: usize,
    seed: u64,
    salt: u64,
    gap: (u32, u32),
    make: F,
) -> Vec<Box<dyn OpStream>>
where
    G: PhaseGen + 'static,
    F: Fn(usize) -> G,
{
    let _ = Scale::PAPER; // (referenced for doc visibility)
    (0..nprocs)
        .map(|me| {
            let rng = proc_rng(seed, salt, me);
            Box::new(Stream::with_gap(make(me), rng, gap.0, gap.1)) as Box<dyn OpStream>
        })
        .collect()
}
