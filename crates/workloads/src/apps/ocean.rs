//! Ocean analogues — SPLASH-2 "Ocean movement simulation, 258×258" in
//! the contiguous-partition (enhanced-locality) and non-contiguous
//! layouts.
//!
//! **Ocean-cont**: the grid is partitioned into contiguous row bands; a
//! red/black relaxation sweep updates the own band with unit stride and
//! reads the boundary rows of the two neighbouring processors each
//! half-step. Communication is strictly nearest-neighbour — under the
//! paper's sequential process placement, half (2-way) to three quarters
//! (4-way) of it lands inside the cluster.
//!
//! **Ocean-non**: the non-contiguous layout interleaves grid rows across
//! processors (processor `p` owns rows `p, p+P, p+2P, …`), so *every*
//! stencil update touches lines owned by the adjacent processors. That
//! both raises bandwidth demand and makes the communication volume much
//! larger — and almost entirely neighbour-local, which is why Ocean-non
//! shows the second-largest clustering gain in Figure 2.

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;

const SALT_CONT: u64 = 0x0CEC;
const SALT_NON: u64 = 0x0CEA;
const BASE_ITERS: u32 = 14;
/// Lines per logical grid row.
const ROW_LINES: u64 = 64;
/// Chunk granularity of the non-contiguous layout's interleaving.
const CHUNK_LINES: u64 = 4;

struct OceanCont {
    me: usize,
    nprocs: usize,
    iters: u32,
    own_band: Region,
    bands: Vec<Region>,
}

impl PhaseGen for OceanCont {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, iter: u32, buf: &mut OpBuf) {
        for color in 0..2u64 {
            // Relaxation over the own contiguous band (unit stride). A
            // five-point stencil reads the in-line neighbours (FLC hits),
            // the rows above/below inside the band, and writes back.
            let band = self.own_band.lines();
            let start = (iter as u64 + color) % 2;
            let mut i = start;
            while i < band {
                let a = self.own_band.line(i);
                buf.read(a);
                buf.read(self.own_band.line((i + ROW_LINES) % band));
                buf.read(self.own_band.line((i + band - ROW_LINES % band) % band));
                buf.read(a);
                buf.write(a);
                i += 2;
            }
            // Boundary exchange with the 2-D decomposition's four
            // neighbours: ±1 (adjacent bands — usually in the cluster
            // under sequential placement) and ±4 (the other grid
            // dimension — usually in a different cluster). The ±4
            // exchange reads a me-specific column strip of the partner's
            // band, so cluster-mates do not share those lines.
            let deltas: [isize; 4] = [-1, 1, -4, 4];
            for d in deltas {
                let n = self.me as isize + d;
                if n < 0 || n >= self.nprocs as isize {
                    continue;
                }
                let band = self.bands[n as usize];
                let row0 = match d {
                    -1 => band.lines().saturating_sub(ROW_LINES), // its last row
                    1 => 0,                                       // its first row
                    _ => (self.me as u64 * ROW_LINES) % band.lines().max(1),
                };
                for r in 0..ROW_LINES.min(band.lines()) {
                    buf.read(band.line(row0 + r));
                }
            }
            buf.barrier();
        }
    }
}

struct OceanNon {
    me: usize,
    nprocs: usize,
    iters: u32,
    grid: Region,
}

impl PhaseGen for OceanNon {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, iter: u32, buf: &mut OpBuf) {
        // Non-contiguous layout: the grid is split into chunks of
        // CHUNK_LINES; processor p owns chunks p, p+P, p+2P, … A stencil
        // sweep is mostly chunk-internal, but the first and last line of
        // each chunk read into the chunks of processors p−1 and p+1 —
        // entirely neighbour communication, and much more of it than the
        // contiguous layout has.
        let p = self.nprocs as u64;
        let total_chunks = self.grid.lines() / CHUNK_LINES;
        for color in 0..2u64 {
            let mut chunk = self.me as u64 + ((iter as u64 + color) % 2) * p;
            while chunk < total_chunks {
                let base = chunk * CHUNK_LINES;
                for i in 0..CHUNK_LINES {
                    let line = base + i;
                    let a = self.grid.line(line);
                    buf.read(a);
                    if i == 0 && line > 0 {
                        buf.read(self.grid.line(line - 1)); // proc me−1
                    } else if i == CHUNK_LINES - 1 && line + 1 < self.grid.lines() {
                        buf.read(self.grid.line(line + 1)); // proc me+1
                    } else {
                        buf.read(a);
                    }
                    buf.update(a);
                }
                chunk += 2 * p;
            }
            buf.barrier();
        }
    }
}

/// Build the contiguous-partition Ocean workload.
pub fn build_cont(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let grid = layout.alloc_bytes(ws_bytes);
    let bands = grid.partition(nprocs);
    let streams = super::build_streams(nprocs, seed, SALT_CONT, (24, 60), |me| OceanCont {
        me,
        nprocs,
        iters: scale.iters(BASE_ITERS),
        own_band: bands[me],
        bands: bands.clone(),
    });
    Workload {
        name: "Ocean cont",
        ws_bytes: layout.total_bytes(),
        n_locks: 0,
        streams,
    }
}

/// Build the non-contiguous Ocean workload.
pub fn build_non(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let grid = layout.alloc_bytes(ws_bytes);
    let streams = super::build_streams(nprocs, seed, SALT_NON, (8, 24), |me| OceanNon {
        me,
        nprocs,
        iters: scale.iters(BASE_ITERS),
        grid,
    });
    Workload {
        name: "Ocean non",
        ws_bytes: layout.total_bytes(),
        n_locks: 0,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};
    use std::collections::HashSet;

    fn reads_of(s: &mut Box<dyn OpStream>) -> HashSet<u64> {
        let mut r = HashSet::new();
        while let Some(op) = s.next_op() {
            if let Op::Read(a) = op {
                r.insert(a.line().0);
            }
        }
        r
    }

    #[test]
    fn cont_reads_only_neighbour_bands() {
        let ws = 1024 * 1024u64;
        let mut wl = build_cont(8, 1, Scale::SMOKE, ws);
        let band_lines = (ws / 64) / 8;
        // Processor 3's reads fall in its own band (3), the adjacent
        // bands (2, 4) and the other-dimension neighbour band (7).
        let reads = reads_of(&mut wl.streams[3]);
        let mut seen = std::collections::HashSet::new();
        for l in reads {
            let band = l / band_lines;
            assert!([2, 3, 4, 7].contains(&band), "read in band {band}");
            seen.insert(band);
        }
        assert!(seen.contains(&7), "missing other-dimension neighbour");
    }

    #[test]
    fn non_reads_come_from_adjacent_owners() {
        let mut wl = build_non(8, 1, Scale::SMOKE, 512 * 1024);
        let reads = reads_of(&mut wl.streams[3]);
        assert!(!reads.is_empty());
        // Chunk ownership: owner of line l is (l / CHUNK_LINES) mod 8.
        // Processor 3 reads its own chunks plus boundary lines of the
        // chunks owned by processors 2 and 4.
        for l in &reads {
            let owner = (l / CHUNK_LINES) % 8;
            assert!((2..=4).contains(&owner), "read of line owned by {owner}");
        }
        assert!(reads.iter().any(|l| (l / CHUNK_LINES) % 8 == 2));
        assert!(reads.iter().any(|l| (l / CHUNK_LINES) % 8 == 4));
    }

    #[test]
    fn non_has_more_communication_than_cont() {
        fn comm(wl: &mut Workload, me: usize, own: impl Fn(u64) -> bool) -> u64 {
            let mut c = 0u64;
            while let Some(op) = wl.streams[me].next_op() {
                if let Op::Read(a) = op {
                    if !own(a.line().0) {
                        c += 1;
                    }
                }
            }
            c
        }
        let ws = 512 * 1024u64;
        let band = (ws / 64) / 8;
        let mut c = build_cont(8, 1, Scale::SMOKE, ws);
        let cont_comm = comm(&mut c, 3, move |l| l / band == 3);
        let mut n = build_non(8, 1, Scale::SMOKE, ws);
        let non_comm = comm(&mut n, 3, |l| (l / CHUNK_LINES) % 8 == 3);
        assert!(
            non_comm > cont_comm,
            "non {non_comm} should exceed cont {cont_comm}"
        );
    }

    #[test]
    fn edge_processors_have_one_neighbour() {
        let mut wl = build_cont(4, 1, Scale::SMOKE, 256 * 1024);
        // Should not panic at the grid edges.
        let r0 = reads_of(&mut wl.streams[0]);
        let r3 = reads_of(&mut wl.streams[3]);
        assert!(!r0.is_empty() && !r3.is_empty());
    }
}
