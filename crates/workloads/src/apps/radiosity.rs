//! Radiosity analogue — SPLASH-2 "light distribution, room scene".
//!
//! Structure reproduced: an irregular task-parallel computation over a
//! globally read-shared scene (patch geometry / BSP tree) with
//! lock-guarded per-processor task queues and **task stealing**, plus
//! read-write element (interaction) data scattered across a partitioned
//! region. The shared scene region puts Radiosity among the Figure 4
//! conflict-miss applications; the producer-consumer element updates and
//! stolen tasks give it a high clustering gain in Figure 2 (stolen tasks
//! usually come from the queue of a neighbouring processor).

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;
use coma_types::ZipfSampler;

const SALT: u64 = 0x4AD0;
const BASE_ITERS: u32 = 9;
const N_LOCKS: u32 = 16;
const TASKS_PER_ITER: u64 = 400;

struct Radiosity {
    me: usize,
    nprocs: usize,
    iters: u32,
    scene: Region,
    elem_parts: Vec<Region>,
    zipf: ZipfSampler,
}

impl PhaseGen for Radiosity {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, _iter: u32, buf: &mut OpBuf) {
        for _ in 0..TASKS_PER_ITER {
            // Dequeue: usually the own queue, otherwise steal from a
            // neighbour (±1, ±2) — neighbour-biased like the real code's
            // queue scan order.
            let victim = if buf.rng().chance(0.7) {
                self.me
            } else {
                let delta = 1 + buf.rng().below(2) as usize;
                if buf.rng().chance(0.5) {
                    (self.me + delta) % self.nprocs
                } else {
                    (self.me + self.nprocs - delta) % self.nprocs
                }
            };
            let lock = victim as u32 % N_LOCKS;
            buf.lock(lock);
            // Queue head update inside the critical section: the element
            // region of the queue's owner acts as the task descriptor.
            let owner_elems = self.elem_parts[victim];
            let t = buf.rng().below(owner_elems.lines());
            buf.update(owner_elems.line(t));
            buf.unlock(lock);

            // Visibility / form-factor computation over the shared scene
            // (BSP-tree walks re-visit upper nodes constantly).
            for _ in 0..6 {
                let s = self.zipf.sample(buf.rng()) as u64;
                let a = self.scene.line(s);
                buf.read(a);
                buf.read(a);
            }
            // Update interaction elements of the task (usually own).
            let own = self.elem_parts[victim];
            for _ in 0..3 {
                let e = buf.rng().below(own.lines());
                let a = own.line(e);
                buf.read(a);
                buf.update(a);
            }
        }
        buf.barrier();
    }
}

/// Build the Radiosity workload.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let scene = layout.alloc_bytes(ws_bytes * 55 / 100);
    let elems = layout.alloc_bytes(ws_bytes - ws_bytes * 55 / 100);
    let elem_parts = elems.partition(nprocs);
    let zipf = ZipfSampler::new(scene.lines() as usize, 1.1);
    let streams = super::build_streams(nprocs, seed, SALT, (60, 140), |me| Radiosity {
        me,
        nprocs,
        iters: scale.iters(BASE_ITERS),
        scene,
        elem_parts: elem_parts.clone(),
        zipf: zipf.clone(),
    });
    Workload {
        name: "Radiosity",
        ws_bytes: layout.total_bytes(),
        n_locks: N_LOCKS,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn steals_touch_neighbour_elements() {
        let ws = 512 * 1024u64;
        let mut layout = Layout::new();
        let _scene = layout.alloc_bytes(ws * 55 / 100);
        let elems = layout.alloc_bytes(ws - ws * 55 / 100);
        let parts = elems.partition(8);
        let mut wl = build(8, 13, Scale::SMOKE, ws);
        let mut neighbour_writes = 0u64;
        while let Some(op) = wl.streams[3].next_op() {
            if let Op::Write(a) = op {
                if parts[2].contains(a) || parts[4].contains(a) {
                    neighbour_writes += 1;
                }
            }
        }
        assert!(neighbour_writes > 0, "no stolen-task element updates");
    }

    #[test]
    fn uses_many_locks() {
        let mut wl = build(8, 13, Scale::SMOKE, 512 * 1024);
        let mut locks_seen = std::collections::HashSet::new();
        while let Some(op) = wl.streams[0].next_op() {
            if let Op::Lock(l) = op {
                locks_seen.insert(l);
            }
        }
        assert!(
            locks_seen.len() >= 3,
            "only {} locks used",
            locks_seen.len()
        );
    }

    #[test]
    fn critical_sections_are_short() {
        // Between Lock and Unlock there should be only a handful of ops.
        let mut wl = build(4, 13, Scale::SMOKE, 512 * 1024);
        let mut in_cs = false;
        let mut cs_len = 0usize;
        while let Some(op) = wl.streams[1].next_op() {
            match op {
                Op::Lock(_) => {
                    in_cs = true;
                    cs_len = 0;
                }
                Op::Unlock(_) => {
                    assert!(cs_len <= 6, "critical section of {cs_len} ops");
                    in_cs = false;
                }
                _ if in_cs => cs_len += 1,
                _ => {}
            }
        }
    }
}
