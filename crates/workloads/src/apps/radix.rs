//! Radix analogue — SPLASH-2 "integer sorting, 2M keys, radix 1024".
//!
//! Structure reproduced: each pass (one digit) has three phases.
//! A local histogram phase reads the own key partition sequentially; a
//! short prefix-sum phase reads every processor's histogram; and the
//! permutation phase reads the own keys and **scatters writes uniformly
//! across the whole destination array** — the classic all-to-all
//! write burst that makes Radix the write-traffic outlier of Figure 3
//! and, together with its near-zero compute per reference, one of the two
//! applications dominated by intra-node contention under clustering
//! (Figure 5: 12.7 % slower with 4-way clustering at 50 % MP even with
//! doubled DRAM bandwidth).

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;

const SALT: u64 = 0x4AD1;
const BASE_PASSES: u32 = 6;
/// Scatter writes per source key line (keys per line).
const KEYS_PER_LINE: u64 = 8;

struct Radix {
    me: usize,
    nprocs: usize,
    passes: u32,
    keys_a: Region,
    keys_b: Region,
    hist: Region,
}

impl PhaseGen for Radix {
    fn n_iters(&self) -> u32 {
        self.passes
    }

    fn gen_iter(&mut self, pass: u32, buf: &mut OpBuf) {
        let (src, dst) = if pass.is_multiple_of(2) {
            (self.keys_a, self.keys_b)
        } else {
            (self.keys_b, self.keys_a)
        };
        let own_src = src.partition(self.nprocs)[self.me];
        let own_hist = self.hist.partition(self.nprocs)[self.me];

        // Phase 1: local histogram — sequential read of own keys (8 keys
        // per line, each extracted while the line is FLC-resident),
        // repeated updates of the small private histogram (cache-hot).
        for i in 0..own_src.lines() {
            let a = own_src.line(i);
            buf.read(a);
            buf.read(a);
            buf.read(a);
            if i % 4 == 0 {
                let h = buf.rng().below(own_hist.lines());
                buf.update(own_hist.line(h));
            }
        }
        buf.barrier();

        // Phase 2: global prefix sum — read everyone's histogram.
        for i in 0..self.hist.lines() {
            buf.read(self.hist.line(i));
        }
        for i in 0..own_hist.lines() {
            buf.update(own_hist.line(i));
        }
        buf.barrier();

        // Phase 3: permutation — read own keys, scatter-write the whole
        // destination array uniformly (all-to-all, no locality).
        for i in 0..own_src.lines() {
            buf.read(own_src.line(i));
            for _ in 0..KEYS_PER_LINE {
                let t = buf.rng().below(dst.lines());
                buf.write(dst.line(t));
            }
        }
        buf.barrier();
    }
}

/// Build the Radix workload.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    // Two key arrays dominate the working set; histograms are small
    // (radix 1024 counters per processor ≈ a few lines each).
    let hist_lines = (4 * nprocs as u64).max(16);
    let half = (ws_bytes - hist_lines * 64) / 2;
    let keys_a = layout.alloc_bytes(half);
    let keys_b = layout.alloc_bytes(half);
    let hist = layout.alloc_lines(hist_lines);
    let streams = super::build_streams(nprocs, seed, SALT, (0, 1), |me| Radix {
        me,
        nprocs,
        passes: scale.iters(BASE_PASSES),
        keys_a,
        keys_b,
        hist,
    });
    Workload {
        name: "Radix",
        ws_bytes: layout.total_bytes(),
        n_locks: 0,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn writes_scatter_across_whole_destination() {
        let mut wl = build(4, 9, Scale::SMOKE, 512 * 1024);
        let mut write_lines = std::collections::HashSet::new();
        while let Some(op) = wl.streams[0].next_op() {
            if let Op::Write(a) = op {
                write_lines.insert(a.line().0);
            }
        }
        // A single processor's scatter writes should cover far more lines
        // than its own quarter of one key array.
        let quarter = (512 * 1024 / 64) / 2 / 4;
        assert!(
            write_lines.len() as u64 > quarter,
            "scatter covered only {} lines",
            write_lines.len()
        );
    }

    #[test]
    fn write_heavy_mix() {
        let mut wl = build(4, 9, Scale::SMOKE, 512 * 1024);
        let (mut r, mut w) = (0u64, 0u64);
        while let Some(op) = wl.streams[1].next_op() {
            match op {
                Op::Read(_) => r += 1,
                Op::Write(_) => w += 1,
                _ => {}
            }
        }
        assert!(w * 2 > r, "radix should be write-heavy: r={r} w={w}");
    }

    #[test]
    fn low_compute_density() {
        let mut wl = build(4, 9, Scale::SMOKE, 512 * 1024);
        let (mut refs, mut instr) = (0u64, 0u64);
        while let Some(op) = wl.streams[2].next_op() {
            match op {
                Op::Read(_) | Op::Write(_) => refs += 1,
                Op::Compute(n) => instr += n as u64,
                _ => {}
            }
        }
        assert!(instr < refs, "radix must be bandwidth-bound");
    }

    #[test]
    fn barrier_sequences_align() {
        let mut wl = build(3, 9, Scale::SMOKE, 512 * 1024);
        let seq = |s: &mut Box<dyn OpStream>| {
            let mut v = Vec::new();
            while let Some(op) = s.next_op() {
                if let Op::Barrier(b) = op {
                    v.push(b);
                }
            }
            v
        };
        let a = seq(&mut wl.streams[0]);
        let b = seq(&mut wl.streams[1]);
        let c = seq(&mut wl.streams[2]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
