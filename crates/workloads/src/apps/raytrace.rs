//! Raytrace analogue — SPLASH-2 "hierarchical ray tracing, car scene".
//!
//! Structure reproduced: a large **read-only scene** (BVH + geometry,
//! ~8/9 of the working set) consulted by every ray with a Zipf bias
//! toward the upper hierarchy levels, a partitioned image plane written
//! once per ray, and a task-stealing work queue guarded by locks.
//!
//! Raytrace has the widest replication demand of the suite — the whole
//! scene wants to live in every node — which makes it the most dramatic
//! Figure 4 conflict-miss application at 87.5 % MP, while its Figure 2
//! clustering gain is near the bottom (read-only data is already
//! replicated; there is little coherence traffic for clustering to
//! internalize).

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;
use coma_types::ZipfSampler;

const SALT: u64 = 0x4A71;
const BASE_ITERS: u32 = 16;
const N_LOCKS: u32 = 8;
/// Scene lines read per image line (rays × traversal depth).
const RAYS_PER_TILE_LINE: u64 = 12;

struct Raytrace {
    me: usize,
    iters: u32,
    scene: Region,
    own_tile: Region,
    zipf: ZipfSampler,
}

impl PhaseGen for Raytrace {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, _iter: u32, buf: &mut OpBuf) {
        for px in 0..self.own_tile.lines() {
            // Occasionally grab a task from the stealing queue.
            if px % 32 == 0 {
                let lock = if buf.rng().chance(0.75) {
                    self.me as u32 % N_LOCKS
                } else {
                    buf.rng().below(N_LOCKS as u64) as u32
                };
                buf.lock(lock);
                buf.compute(20);
                buf.unlock(lock);
            }
            for _ in 0..RAYS_PER_TILE_LINE {
                let s = self.zipf.sample(buf.rng()) as u64;
                let a = self.scene.line(s);
                // A BVH node / primitive is tested against many rays of
                // the tile while it sits in the FLC/SLC.
                buf.read(a);
                buf.read(a);
                buf.read(a);
            }
            let t = self.own_tile.line(px);
            buf.read(t);
            buf.write(t);
        }
        buf.barrier();
    }
}

/// Build the Raytrace workload.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let image_bytes = ws_bytes / 9;
    let scene = layout.alloc_bytes(ws_bytes - image_bytes);
    let image = layout.alloc_bytes(image_bytes);
    let tiles = image.partition(nprocs);
    // Strong head skew: upper BVH levels are traversed by every ray.
    let zipf = ZipfSampler::new(scene.lines() as usize, 1.2);
    let streams = super::build_streams(nprocs, seed, SALT, (60, 140), |me| Raytrace {
        me,
        iters: scale.iters(BASE_ITERS),
        scene,
        own_tile: tiles[me],
        zipf: zipf.clone(),
    });
    Workload {
        name: "Raytrace",
        ws_bytes: layout.total_bytes(),
        n_locks: N_LOCKS,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn scene_is_never_written() {
        let ws = 512 * 1024u64;
        let mut wl = build(4, 11, Scale::SMOKE, ws);
        let scene_lines = (ws - ws / 9) / 64;
        for s in &mut wl.streams {
            while let Some(op) = s.next_op() {
                if let Op::Write(a) = op {
                    assert!(a.line().0 >= scene_lines, "write into read-only scene");
                }
            }
        }
    }

    #[test]
    fn reads_dominate() {
        let mut wl = build(4, 11, Scale::SMOKE, 512 * 1024);
        let (mut r, mut w) = (0u64, 0u64);
        while let Some(op) = wl.streams[0].next_op() {
            match op {
                Op::Read(_) => r += 1,
                Op::Write(_) => w += 1,
                _ => {}
            }
        }
        assert!(r > w * 5, "raytrace must be read-dominated: r={r} w={w}");
    }

    #[test]
    fn image_writes_stay_in_own_tile() {
        let ws = 512 * 1024u64;
        // Reconstruct the layout exactly as `build` does.
        let mut layout = Layout::new();
        let _scene = layout.alloc_bytes(ws - ws / 9);
        let image = layout.alloc_bytes(ws / 9);
        let tile2 = image.partition(4)[2];
        let mut wl = build(4, 11, Scale::SMOKE, ws);
        while let Some(op) = wl.streams[2].next_op() {
            if let Op::Write(a) = op {
                assert!(tile2.contains(a), "write outside own tile: {a}");
            }
        }
    }
}
