//! Parameterized synthetic workload.
//!
//! The fourteen catalog applications are hand-built instances of a small
//! number of behavioural axes (DESIGN.md §7.5). [`SynthSpec`] exposes
//! those axes directly, so a user can dial in an arbitrary point of the
//! behaviour space — e.g. to locate where *their* application would sit
//! in the paper's figures — without writing a generator.

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;
use coma_types::ZipfSampler;

const SALT: u64 = 0x57A7;

/// The behaviour axes of a synthetic application.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Working-set size in bytes.
    pub ws_bytes: u64,
    /// Fraction of the working set that is globally read-shared
    /// (replication demand); the rest is partitioned per processor.
    pub shared_frac: f64,
    /// Zipf exponent over the shared region (0 = uniform).
    pub zipf_s: f64,
    /// Of each iteration's references, the fraction aimed at the shared
    /// region (the rest work on the own partition).
    pub shared_ref_frac: f64,
    /// Fraction of partition work redirected to the neighbouring
    /// processors' partitions (producer-consumer communication).
    pub neighbour_frac: f64,
    /// Write probability on partition data.
    pub write_frac: f64,
    /// Consecutive touches per visited line (FLC-absorbed reuse).
    pub reuse: u32,
    /// Instruction gap range between references.
    pub gap: (u32, u32),
    /// References per processor per iteration.
    pub refs_per_iter: u64,
    /// Base iteration count (scaled by [`Scale`]).
    pub iters: u32,
    /// Locks; when non-zero, a lock-guarded update occurs every
    /// `lock_every` references.
    pub n_locks: u32,
    pub lock_every: u64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            ws_bytes: 1 << 20,
            shared_frac: 0.3,
            zipf_s: 0.8,
            shared_ref_frac: 0.3,
            neighbour_frac: 0.1,
            write_frac: 0.3,
            reuse: 2,
            gap: (8, 24),
            refs_per_iter: 4000,
            iters: 10,
            n_locks: 4,
            lock_every: 256,
        }
    }
}

struct Synth {
    me: usize,
    nprocs: usize,
    spec: SynthSpec,
    iters: u32,
    shared: Option<Region>,
    parts: Vec<Region>,
    zipf: Option<ZipfSampler>,
}

impl PhaseGen for Synth {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, _iter: u32, buf: &mut OpBuf) {
        let own = self.parts[self.me];
        let mut since_lock = 0u64;
        let mut emitted = 0u64;
        while emitted < self.spec.refs_per_iter {
            let shared_turn = if self.shared.is_some() {
                buf.rng().chance(self.spec.shared_ref_frac)
            } else {
                false
            };
            let (region, write_frac) = if shared_turn {
                (self.shared.unwrap(), 0.0)
            } else if buf.rng().chance(self.spec.neighbour_frac) {
                let n = if buf.rng().chance(0.5) {
                    (self.me + 1) % self.nprocs
                } else {
                    (self.me + self.nprocs - 1) % self.nprocs
                };
                (self.parts[n], self.spec.write_frac)
            } else {
                (own, self.spec.write_frac)
            };
            let line = if shared_turn {
                self.zipf
                    .as_ref()
                    .expect("shared region set")
                    .sample(buf.rng()) as u64
            } else {
                buf.rng().below(region.lines())
            };
            let addr = region.line(line);
            for k in 0..self.spec.reuse.max(1) {
                if k + 1 == self.spec.reuse.max(1) && buf.rng().chance(write_frac) {
                    buf.write(addr);
                } else {
                    buf.read(addr);
                }
                emitted += 1;
            }
            since_lock += 1;
            if self.spec.n_locks > 0 && since_lock >= self.spec.lock_every {
                since_lock = 0;
                let lock = buf.rng().below(self.spec.n_locks as u64) as u32;
                buf.lock(lock);
                let t = buf.rng().below(own.lines());
                buf.update(own.line(t));
                buf.unlock(lock);
            }
        }
        buf.barrier();
    }
}

/// Build a synthetic workload from a spec.
pub fn build(nprocs: usize, seed: u64, scale: Scale, spec: SynthSpec) -> Workload {
    assert!((0.0..=1.0).contains(&spec.shared_frac));
    assert!(nprocs > 0);
    let mut layout = Layout::new();
    let shared_bytes = (spec.ws_bytes as f64 * spec.shared_frac) as u64;
    let shared = (shared_bytes >= 64).then(|| layout.alloc_bytes(shared_bytes));
    let part_region = layout.alloc_bytes((spec.ws_bytes - shared_bytes).max(64 * nprocs as u64));
    let parts = part_region.partition(nprocs);
    let zipf = shared.map(|s| ZipfSampler::new(s.lines() as usize, spec.zipf_s));
    let n_locks = spec.n_locks;
    let gap = spec.gap;
    let iters = scale.iters(spec.iters);
    let streams = super::build_streams(nprocs, seed, SALT, gap, |me| Synth {
        me,
        nprocs,
        spec: spec.clone(),
        iters,
        shared,
        parts: parts.clone(),
        zipf: zipf.clone(),
    });
    Workload {
        name: "Synth",
        ws_bytes: layout.total_bytes(),
        n_locks,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn default_spec_builds_and_runs() {
        let mut wl = build(4, 1, Scale::SMOKE, SynthSpec::default());
        let mut refs = 0;
        while let Some(op) = wl.streams[0].next_op() {
            if matches!(op, Op::Read(_) | Op::Write(_)) {
                refs += 1;
            }
        }
        assert!(refs > 100);
    }

    #[test]
    fn zero_shared_fraction_has_no_shared_region() {
        let spec = SynthSpec {
            shared_frac: 0.0,
            neighbour_frac: 0.0,
            n_locks: 0,
            ..Default::default()
        };
        let mut wl = build(4, 1, Scale::SMOKE, spec);
        // Proc 0 must only touch its own quarter.
        let part = wl.ws_bytes / 4;
        while let Some(op) = wl.streams[0].next_op() {
            if let Op::Read(a) | Op::Write(a) = op {
                assert!(a.0 < part, "{a} outside own partition");
            }
        }
    }

    #[test]
    fn shared_region_is_read_only() {
        let spec = SynthSpec {
            shared_frac: 0.5,
            shared_ref_frac: 0.8,
            ..Default::default()
        };
        let mut wl = build(4, 2, Scale::SMOKE, spec.clone());
        let shared_bytes = (spec.ws_bytes as f64 * spec.shared_frac) as u64;
        let shared_lines = shared_bytes / 64;
        while let Some(op) = wl.streams[1].next_op() {
            if let Op::Write(a) = op {
                assert!(a.line().0 >= shared_lines, "write into shared region");
            }
        }
    }

    #[test]
    fn reuse_multiplies_references() {
        let count = |reuse| {
            let spec = SynthSpec {
                reuse,
                refs_per_iter: 1000,
                iters: 1,
                n_locks: 0,
                ..Default::default()
            };
            let mut wl = build(2, 3, Scale::PAPER, spec);
            let mut n = 0u64;
            while let Some(op) = wl.streams[0].next_op() {
                n += matches!(op, Op::Read(_) | Op::Write(_)) as u64;
            }
            n
        };
        // Total refs per iter are fixed; reuse redistributes them onto
        // fewer distinct lines, so counts stay roughly equal.
        let a = count(1);
        let b = count(4);
        assert!((a as i64 - b as i64).unsigned_abs() <= 4, "{a} vs {b}");
    }

    #[test]
    fn locks_emitted_at_requested_rate() {
        let spec = SynthSpec {
            refs_per_iter: 2048,
            lock_every: 128,
            iters: 1,
            ..Default::default()
        };
        let mut wl = build(2, 4, Scale::PAPER, spec);
        let mut locks = 0;
        while let Some(op) = wl.streams[0].next_op() {
            locks += matches!(op, Op::Lock(_)) as u32;
        }
        assert!(locks >= 6, "only {locks} locks");
    }
}
