//! Volrend analogue — SPLASH-2 "3-D volume rendering, 256×256×126 head".
//!
//! Structure reproduced: a read-only **volume** (most of the working set)
//! sampled along rays, a small hot read-only **octree** used to skip
//! empty space (every ray consults it, strong Zipf), a partitioned image
//! plane, and a lock-guarded task queue. Like Raytrace it demands wide
//! replication of read-only data and is one of the Figure 4 conflict-miss
//! applications; unlike Raytrace its rays have some spatial coherence, so
//! its Figure 2 clustering gain is mid-pack (adjacent processors render
//! adjacent tiles and sample overlapping volume bricks).

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;
use coma_types::ZipfSampler;

const SALT: u64 = 0x701;
const BASE_ITERS: u32 = 24;
const N_LOCKS: u32 = 8;
const SAMPLES_PER_LINE: u64 = 8;
const OCTREE_READS: u64 = 3;

struct Volrend {
    me: usize,
    nprocs: usize,
    iters: u32,
    volume: Region,
    octree: Region,
    own_tile: Region,
    octree_zipf: ZipfSampler,
}

impl PhaseGen for Volrend {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, _iter: u32, buf: &mut OpBuf) {
        // Rays from this tile sample a brick of the volume centred on the
        // processor's image position — adjacent tiles overlap bricks.
        let brick_lines = (self.volume.lines() / self.nprocs as u64 * 5 / 4).max(1);
        let brick_base = self.me as u64 * self.volume.lines() / self.nprocs as u64;
        for px in 0..self.own_tile.lines() {
            if px % 64 == 0 {
                let lock = self.me as u32 % N_LOCKS;
                buf.lock(lock);
                buf.compute(16);
                buf.unlock(lock);
            }
            for _ in 0..OCTREE_READS {
                let o = self.octree_zipf.sample(buf.rng()) as u64;
                let a = self.octree.line(o);
                buf.read(a);
                buf.read(a);
            }
            // Ray marching: consecutive samples along a ray fall into the
            // same volume lines repeatedly (trilinear interpolation reads
            // each voxel neighbourhood several times).
            for _ in 0..SAMPLES_PER_LINE {
                let v = brick_base + buf.rng().below(brick_lines);
                let a = self.volume.line(v % self.volume.lines());
                buf.read(a);
                buf.read(a);
                buf.read(a);
            }
            let t = self.own_tile.line(px);
            buf.read(t);
            buf.write(t);
        }
        buf.barrier();
    }
}

/// Build the Volrend workload.
pub fn build(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let octree_bytes = ws_bytes / 10;
    let image_bytes = ws_bytes / 10;
    let volume = layout.alloc_bytes(ws_bytes - octree_bytes - image_bytes);
    let octree = layout.alloc_bytes(octree_bytes);
    let image = layout.alloc_bytes(image_bytes);
    let tiles = image.partition(nprocs);
    let octree_zipf = ZipfSampler::new(octree.lines() as usize, 1.0);
    let streams = super::build_streams(nprocs, seed, SALT, (40, 100), |me| Volrend {
        me,
        nprocs,
        iters: scale.iters(BASE_ITERS),
        volume,
        octree,
        own_tile: tiles[me],
        octree_zipf: octree_zipf.clone(),
    });
    Workload {
        name: "Volrend",
        ws_bytes: layout.total_bytes(),
        n_locks: N_LOCKS,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn volume_and_octree_read_only() {
        let ws = 512 * 1024u64;
        let mut layout = Layout::new();
        let volume = layout.alloc_bytes(ws - ws / 10 - ws / 10);
        let octree = layout.alloc_bytes(ws / 10);
        let mut wl = build(4, 3, Scale::SMOKE, ws);
        for s in &mut wl.streams {
            while let Some(op) = s.next_op() {
                if let Op::Write(a) = op {
                    assert!(!volume.contains(a) && !octree.contains(a));
                }
            }
        }
    }

    #[test]
    fn adjacent_tiles_overlap_bricks() {
        // Processors 0 and 1 must share some volume reads (brick overlap).
        let mut wl = build(4, 3, Scale::SMOKE, 512 * 1024);
        let collect = |s: &mut Box<dyn OpStream>| {
            let mut v = std::collections::HashSet::new();
            while let Some(op) = s.next_op() {
                if let Op::Read(a) = op {
                    v.insert(a.line().0);
                }
            }
            v
        };
        let r0 = collect(&mut wl.streams[0]);
        let r1 = collect(&mut wl.streams[1]);
        assert!(r0.intersection(&r1).count() > 10);
    }

    #[test]
    fn octree_reads_are_hot() {
        // The most popular octree line is read many times by one stream.
        let mut wl = build(4, 3, Scale::SMOKE, 512 * 1024);
        let mut counts: std::collections::HashMap<u64, u64> = Default::default();
        while let Some(op) = wl.streams[0].next_op() {
            if let Op::Read(a) = op {
                *counts.entry(a.line().0).or_default() += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 20, "no hot line found (max count {max})");
    }
}
