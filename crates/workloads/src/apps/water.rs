//! Water analogues — SPLASH-2 "molecular dynamics, 512 molecules" in the
//! O(n²) (`Water-n2`) and spatial (`Water-sp`) variants.
//!
//! Both have tiny working sets (Table 1: 1.0 / 1.7 MB before scaling) and
//! are compute-bound — large instruction gaps between references mean
//! they spend almost all their time inside the node, exactly as the paper
//! observes in Figure 5 ("for Water not much can be done").
//!
//! **Water-n2** computes pairwise forces: each owned molecule reads a
//! sample of *all* other molecules (all-to-all reads) plus lock-guarded
//! global accumulators (migratory data).
//!
//! **Water-sp** uses spatial cells: each owned cell reads only its
//! neighbour cells, and the 3-D neighbourhood maps mostly to distant
//! processors under linear assignment — which is why Water-sp shows the
//! *smallest* clustering gain of the whole suite in Figure 2.

use crate::region::{Layout, Region};
use crate::stream::{OpBuf, PhaseGen, Scale};
use crate::workload::Workload;

const SALT_N2: u64 = 0x3A72;
const SALT_SP: u64 = 0x3A75;
const BASE_ITERS_N2: u32 = 10;
const BASE_ITERS_SP: u32 = 24;
const N_LOCKS: u32 = 4;

struct WaterN2 {
    me: usize,
    iters: u32,
    mols: Region,
    own_mols: Region,
    accum: Region,
}

impl PhaseGen for WaterN2 {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, iter: u32, buf: &mut OpBuf) {
        // Pairwise force phase: for every owned molecule, interact with a
        // sliding window of partner molecules (the O(n²) loop visits
        // partners in order, so partner data is re-read while
        // cache-resident, and each interaction carries a lot of floating
        // point work — Water is compute-bound).
        let first_mol = (self.own_mols.base() - self.mols.base()) / 64;
        for m in 0..self.own_mols.lines() {
            // Window position depends on the *global* molecule index, so
            // different processors sweep different (me-specific) partner
            // windows, as the triangular O(n²) loop does.
            let start = ((first_mol + m) * 31 + iter as u64 * 7) % self.mols.lines();
            for k in 0..12 {
                let a = self.mols.line(start + k);
                buf.read(a);
                buf.compute(2400);
                buf.read(a);
                buf.read(a);
            }
            let own = self.own_mols.line(m);
            buf.read(own);
            buf.update(own);
        }
        // Global potential-energy accumulators: migratory, lock-guarded.
        for k in 0..4u32 {
            let lock = (self.me as u32 + k) % N_LOCKS;
            buf.lock(lock);
            buf.update(self.accum.line(lock as u64 % self.accum.lines()));
            buf.unlock(lock);
        }
        buf.barrier();

        // Integration phase: update own molecules only (with the
        // velocity/position arithmetic between touches).
        for m in 0..self.own_mols.lines() {
            buf.compute(400);
            buf.update(self.own_mols.line(m));
        }
        buf.barrier();
    }
}

struct WaterSp {
    me: usize,
    nprocs: usize,
    iters: u32,
    cell_parts: Vec<Region>,
}

impl PhaseGen for WaterSp {
    fn n_iters(&self) -> u32 {
        self.iters
    }

    fn gen_iter(&mut self, _iter: u32, buf: &mut OpBuf) {
        let own = self.cell_parts[self.me];
        // 3-D cell neighbourhood under linear placement: offsets ±1 (same
        // row), ±4 (adjacent row), ±8 (adjacent plane, for 16 procs a
        // half-machine hop) — mostly *not* cluster-local.
        let p = self.nprocs;
        let neighbours = [
            (self.me + 1) % p,
            (self.me + p - 1) % p,
            (self.me + 4 % p) % p,
            (self.me + p - 4 % p) % p,
            (self.me + 8 % p) % p,
            (self.me + p - 8 % p) % p,
        ];
        for c in 0..own.lines() {
            // Heavy in-cell pairwise work (FLC-resident), then one read
            // into a neighbour cell every other line.
            let a = own.line(c);
            buf.read(a);
            buf.compute(2400);
            buf.read(a);
            buf.read(a);
            buf.update(a);
            if c % 4 == 0 {
                let n = neighbours[(c as usize / 4) % neighbours.len()];
                let r = self.cell_parts[n];
                buf.read(r.line(c % r.lines()));
            }
        }
        buf.barrier();
        // Integration: own cells only, with per-cell arithmetic.
        for c in 0..own.lines() {
            buf.compute(400);
            buf.update(own.line(c));
        }
        buf.barrier();
    }
}

/// Build the O(n²) Water workload.
pub fn build_n2(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let accum = layout.alloc_lines(4);
    let mols = layout.alloc_bytes(ws_bytes - 4 * 64);
    let parts = mols.partition(nprocs);
    let streams = super::build_streams(nprocs, seed, SALT_N2, (8, 16), |me| WaterN2 {
        me,
        iters: scale.iters(BASE_ITERS_N2),
        mols,
        own_mols: parts[me],
        accum,
    });
    Workload {
        name: "Water n2",
        ws_bytes: layout.total_bytes(),
        n_locks: N_LOCKS,
        streams,
    }
}

/// Build the spatial Water workload.
pub fn build_sp(nprocs: usize, seed: u64, scale: Scale, ws_bytes: u64) -> Workload {
    let mut layout = Layout::new();
    let cells = layout.alloc_bytes(ws_bytes);
    let cell_parts = cells.partition(nprocs);
    let streams = super::build_streams(nprocs, seed, SALT_SP, (8, 16), |me| WaterSp {
        me,
        nprocs,
        iters: scale.iters(BASE_ITERS_SP),
        cell_parts: cell_parts.clone(),
    });
    Workload {
        name: "Water sp",
        ws_bytes: layout.total_bytes(),
        n_locks: 0,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    #[test]
    fn n2_is_compute_bound() {
        let mut wl = build_n2(4, 31, Scale::SMOKE, 64 * 1024);
        let (mut refs, mut instr) = (0u64, 0u64);
        while let Some(op) = wl.streams[0].next_op() {
            match op {
                Op::Read(_) | Op::Write(_) => refs += 1,
                Op::Compute(n) => instr += n as u64,
                _ => {}
            }
        }
        assert!(
            instr > refs * 6,
            "water must be compute-bound: {instr} instr / {refs} refs"
        );
    }

    #[test]
    fn n2_reads_all_partitions() {
        let mut wl = build_n2(4, 31, Scale::SMOKE, 64 * 1024);
        let total_lines = wl.ws_bytes / 64;
        let mut quarters = [false; 4];
        while let Some(op) = wl.streams[0].next_op() {
            if let Op::Read(a) = op {
                quarters[((a.line().0 * 4) / total_lines).min(3) as usize] = true;
            }
        }
        assert!(quarters.iter().all(|&q| q), "not all-to-all: {quarters:?}");
    }

    #[test]
    fn sp_reads_only_fixed_neighbours() {
        let nprocs = 16;
        let ws = 128 * 1024u64;
        let mut layout = Layout::new();
        let cells = layout.alloc_bytes(ws);
        let parts = cells.partition(nprocs);
        let mut wl = build_sp(nprocs, 31, Scale::SMOKE, ws);
        let me = 5usize;
        let allowed: Vec<usize> = vec![5, 6, 4, 9, 1, 13];
        while let Some(op) = wl.streams[me].next_op() {
            if let Op::Read(a) = op {
                let owner = parts.iter().position(|r| r.contains(a)).unwrap();
                assert!(allowed.contains(&owner), "read from proc {owner}");
            }
        }
    }

    #[test]
    fn sp_has_no_locks() {
        let mut wl = build_sp(4, 31, Scale::SMOKE, 64 * 1024);
        while let Some(op) = wl.streams[0].next_op() {
            assert!(!matches!(op, Op::Lock(_) | Op::Unlock(_)));
        }
    }

    #[test]
    fn n2_lock_ids_within_bounds() {
        let mut wl = build_n2(4, 31, Scale::SMOKE, 64 * 1024);
        while let Some(op) = wl.streams[3].next_op() {
            if let Op::Lock(l) = op {
                assert!(l < wl.n_locks);
            }
        }
    }
}
