//! The application catalog — Table 1 of the paper.
//!
//! Working sets are the paper's, scaled down by [`WS_SCALE_DIV`] with all
//! capacity *ratios* preserved (SLC = WS/128; AM sized from the memory
//! pressure), so every relative quantity the paper reports is unchanged.
//! Entries the paper's table truncates (LU "512×512", Ocean "258×258",
//! Radix "2M keys") use the standard SPLASH-2 sizes: 512²×8 B = 2 MB,
//! Ocean ≈ 14.3 MB, Radix 2M×8 B = 16 MB.

use crate::apps;
use crate::stream::Scale;
use crate::workload::Workload;

/// Factor by which Table-1 working sets are scaled down (see DESIGN.md §2).
pub const WS_SCALE_DIV: u64 = 16;

/// The fourteen SPLASH-2 applications of Table 1, plus the two
/// production-shaped traffic families ([`AppId::TRAFFIC`]) that extend
/// the study beyond HPC sharing patterns.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AppId {
    Barnes,
    Cholesky,
    Fft,
    Fmm,
    LuCont,
    LuNon,
    OceanCont,
    OceanNon,
    Radiosity,
    Radix,
    Raytrace,
    Volrend,
    WaterN2,
    WaterSp,
    /// Zipf-skewed key-value / OLTP traffic (read-hot, shard-locked
    /// updates) — the favourable case for AM replication.
    KvZipf,
    /// Irregular graph analysis (level-synchronized BFS + pointer
    /// chasing) — the adversarial, locality-free case.
    GraphBfs,
}

impl AppId {
    /// All applications, in Table 1 order.
    pub const ALL: [AppId; 14] = [
        AppId::Barnes,
        AppId::Cholesky,
        AppId::Fft,
        AppId::Fmm,
        AppId::LuCont,
        AppId::LuNon,
        AppId::OceanCont,
        AppId::OceanNon,
        AppId::Radiosity,
        AppId::Radix,
        AppId::Raytrace,
        AppId::Volrend,
        AppId::WaterN2,
        AppId::WaterSp,
    ];

    /// The eight applications for which clustering is consistently
    /// effective across all memory pressures (paper Figure 3).
    pub const FIG3_GROUP: [AppId; 8] = [
        AppId::Cholesky,
        AppId::Fft,
        AppId::LuNon,
        AppId::OceanCont,
        AppId::OceanNon,
        AppId::Radix,
        AppId::WaterN2,
        AppId::WaterSp,
    ];

    /// The six applications that develop conflict misses at 87.5 % MP
    /// (paper Figure 4).
    pub const FIG4_GROUP: [AppId; 6] = [
        AppId::Barnes,
        AppId::Fmm,
        AppId::LuCont,
        AppId::Radiosity,
        AppId::Raytrace,
        AppId::Volrend,
    ];

    /// The production-shaped traffic families (not part of the paper's
    /// Table 1 suite; swept by the `traffic` experiment).
    pub const TRAFFIC: [AppId; 2] = [AppId::KvZipf, AppId::GraphBfs];

    /// Table-1 name.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Barnes => "Barnes",
            AppId::Cholesky => "Cholesky",
            AppId::Fft => "FFT",
            AppId::Fmm => "FMM",
            AppId::LuCont => "LU cont",
            AppId::LuNon => "LU non",
            AppId::OceanCont => "Ocean cont",
            AppId::OceanNon => "Ocean non",
            AppId::Radiosity => "Radiosity",
            AppId::Radix => "Radix",
            AppId::Raytrace => "Raytrace",
            AppId::Volrend => "Volrend",
            AppId::WaterN2 => "Water n2",
            AppId::WaterSp => "Water sp",
            AppId::KvZipf => "KV Zipf",
            AppId::GraphBfs => "Graph BFS",
        }
    }

    /// Table-1 description.
    pub fn description(self) -> &'static str {
        match self {
            AppId::Barnes => "N-body, 16K part.",
            AppId::Cholesky => "Sparse matrix factorization, tk29.O",
            AppId::Fft => "1-dim. Six-step FFT, 1M data points",
            AppId::Fmm => "N-body, two cluster, 16K part.",
            AppId::LuCont => "Blocked LU-fact., enhanced locality, 512x512",
            AppId::LuNon => "Blocked LU-factorization, 512x512",
            AppId::OceanCont => "Ocean movement simul., enhanced locality, 258x258",
            AppId::OceanNon => "Ocean movement simulation, 258x258",
            AppId::Radiosity => "Light distribution, -room -batch",
            AppId::Radix => "Integer sorting, 2M keys, radix 1024",
            AppId::Raytrace => "Hierarchical ray tracing, car.env -a1",
            AppId::Volrend => "3-D volume rendering, 256x256x126 vx head",
            AppId::WaterN2 => "Molecular dyn. N-body O(n2), 512 mol.",
            AppId::WaterSp => "Molecular dyn. N-body O(n), larger data structure, 512 mol.",
            AppId::KvZipf => "Zipf(1.0) key-value store, 16K keys, 10% locked updates",
            AppId::GraphBfs => "Irregular graph, 32K vx R-MAT, level-sync BFS + ptr chase",
        }
    }

    /// Table-1 working set in whole-size megabytes (before scaling).
    /// Values the table truncates use the standard SPLASH-2 sizes.
    pub fn paper_ws_mb(self) -> f64 {
        match self {
            AppId::Barnes => 3.5,
            AppId::Cholesky => 40.5,
            AppId::Fft => 50.0,
            AppId::Fmm => 29.0,
            AppId::LuCont => 2.0,
            AppId::LuNon => 2.0,
            AppId::OceanCont => 14.3,
            AppId::OceanNon => 14.3,
            AppId::Radiosity => 29.0,
            AppId::Radix => 16.0,
            AppId::Raytrace => 36.0,
            AppId::Volrend => 22.5,
            AppId::WaterN2 => 1.0,
            AppId::WaterSp => 1.7,
            // Not Table-1 entries; sized mid-suite so the standard MP
            // sweep exercises the same pressure range. Chosen so the
            // scaled store holds exactly 16 Ki keys / 32 Ki vertices.
            AppId::KvZipf => 18.0,
            AppId::GraphBfs => 36.0,
        }
    }

    /// Scaled working set in bytes used by the simulations.
    pub fn ws_bytes(self) -> u64 {
        let bytes = self.paper_ws_mb() * (1u64 << 20) as f64;
        (bytes as u64) / WS_SCALE_DIV
    }

    /// Build the workload for `nprocs` processors.
    pub fn build(self, nprocs: usize, seed: u64, scale: Scale) -> Workload {
        let ws = self.ws_bytes();
        match self {
            AppId::Barnes => apps::barnes::build(nprocs, seed, scale, ws),
            AppId::Cholesky => apps::cholesky::build(nprocs, seed, scale, ws),
            AppId::Fft => apps::fft::build(nprocs, seed, scale, ws),
            AppId::Fmm => apps::fmm::build(nprocs, seed, scale, ws),
            AppId::LuCont => apps::lu::build_cont(nprocs, seed, scale, ws),
            AppId::LuNon => apps::lu::build_non(nprocs, seed, scale, ws),
            AppId::OceanCont => apps::ocean::build_cont(nprocs, seed, scale, ws),
            AppId::OceanNon => apps::ocean::build_non(nprocs, seed, scale, ws),
            AppId::Radiosity => apps::radiosity::build(nprocs, seed, scale, ws),
            AppId::Radix => apps::radix::build(nprocs, seed, scale, ws),
            AppId::Raytrace => apps::raytrace::build(nprocs, seed, scale, ws),
            AppId::Volrend => apps::volrend::build(nprocs, seed, scale, ws),
            AppId::WaterN2 => apps::water::build_n2(nprocs, seed, scale, ws),
            AppId::WaterSp => apps::water::build_sp(nprocs, seed, scale, ws),
            AppId::KvZipf => apps::kv_zipf::build(nprocs, seed, scale, ws),
            AppId::GraphBfs => apps::graph_bfs::build(nprocs, seed, scale, ws),
        }
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AppId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase().replace([' ', '-', '_'], "");
        AppId::ALL
            .into_iter()
            .chain(AppId::TRAFFIC)
            .find(|a| a.name().to_ascii_lowercase().replace(' ', "") == norm)
            .ok_or_else(|| format!("unknown application '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpStream};

    /// Every registered application: the Table-1 suite plus the traffic
    /// families.
    fn every_app() -> impl Iterator<Item = AppId> {
        AppId::ALL.into_iter().chain(AppId::TRAFFIC)
    }

    #[test]
    fn groups_partition_the_suite() {
        let mut all: Vec<AppId> = AppId::FIG3_GROUP
            .into_iter()
            .chain(AppId::FIG4_GROUP)
            .collect();
        all.sort_by_key(|a| a.name());
        all.dedup();
        assert_eq!(all.len(), 14);
    }

    #[test]
    fn every_app_builds_and_produces_ops() {
        for app in every_app() {
            let mut wl = app.build(16, 1, Scale::SMOKE);
            assert_eq!(wl.streams.len(), 16, "{app}");
            assert!(wl.ws_bytes > 0);
            let mut refs = 0u64;
            while let Some(op) = wl.streams[0].next_op() {
                if matches!(op, Op::Read(_) | Op::Write(_)) {
                    refs += 1;
                }
                if refs > 50 {
                    break;
                }
            }
            assert!(refs > 10, "{app} produced only {refs} refs");
        }
    }

    #[test]
    fn every_app_stays_inside_working_set() {
        for app in every_app() {
            let mut wl = app.build(4, 2, Scale::SMOKE);
            let ws = wl.ws_bytes;
            for s in &mut wl.streams {
                let mut n = 0;
                while let Some(op) = s.next_op() {
                    if let Op::Read(a) | Op::Write(a) = op {
                        assert!(a.0 < ws, "{app}: {a} outside ws {ws}");
                    }
                    n += 1;
                    if n > 200_000 {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn every_app_lock_ids_in_range() {
        for app in every_app() {
            let mut wl = app.build(4, 3, Scale::SMOKE);
            let n_locks = wl.n_locks;
            for s in &mut wl.streams {
                while let Some(op) = s.next_op() {
                    if let Op::Lock(l) | Op::Unlock(l) = op {
                        assert!(l < n_locks, "{app}: lock {l} out of {n_locks}");
                    }
                }
            }
        }
    }

    #[test]
    fn barrier_sequences_identical_on_all_procs() {
        for app in every_app() {
            let mut wl = app.build(4, 4, Scale::SMOKE);
            let seqs: Vec<Vec<u32>> = wl
                .streams
                .iter_mut()
                .map(|s| {
                    let mut v = Vec::new();
                    while let Some(op) = s.next_op() {
                        if let Op::Barrier(b) = op {
                            v.push(b);
                        }
                    }
                    v
                })
                .collect();
            for s in &seqs[1..] {
                assert_eq!(*s, seqs[0], "{app}: barrier sequences diverge");
            }
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!("fft".parse::<AppId>().unwrap(), AppId::Fft);
        assert_eq!("LU cont".parse::<AppId>().unwrap(), AppId::LuCont);
        assert_eq!("water-n2".parse::<AppId>().unwrap(), AppId::WaterN2);
        assert_eq!("kv-zipf".parse::<AppId>().unwrap(), AppId::KvZipf);
        assert_eq!("kv_zipf".parse::<AppId>().unwrap(), AppId::KvZipf);
        assert_eq!("graph bfs".parse::<AppId>().unwrap(), AppId::GraphBfs);
        assert!("nosuch".parse::<AppId>().is_err());
    }

    #[test]
    fn traffic_families_are_not_in_the_paper_suite() {
        for t in AppId::TRAFFIC {
            assert!(!AppId::ALL.contains(&t), "{t} leaked into Table 1");
        }
    }

    #[test]
    fn kv_zipf_rejects_zero_keys() {
        use crate::apps::kv_zipf::{build_spec, KvSpec};
        let mut spec = KvSpec::from_ws(AppId::KvZipf.ws_bytes());
        spec.n_keys = 0;
        let err = build_spec(&spec, 4, 1, Scale::SMOKE).err().unwrap();
        assert_eq!(
            err,
            coma_types::ConfigError::EmptyWorkload {
                family: "kv_zipf",
                what: "n_keys",
            }
        );
    }

    #[test]
    fn graph_bfs_rejects_zero_vertices() {
        use crate::apps::graph_bfs::{build_spec, GraphSpec};
        let mut spec = GraphSpec::from_ws(AppId::GraphBfs.ws_bytes());
        spec.n_vertices = 0;
        let err = build_spec(&spec, 4, 1, Scale::SMOKE).err().unwrap();
        assert_eq!(
            err,
            coma_types::ConfigError::EmptyWorkload {
                family: "graph_bfs",
                what: "n_vertices",
            }
        );
    }

    #[test]
    fn traffic_default_specs_hold_round_universes() {
        use crate::apps::{graph_bfs::GraphSpec, kv_zipf::KvSpec};
        assert_eq!(KvSpec::from_ws(AppId::KvZipf.ws_bytes()).n_keys, 16 * 1024);
        assert_eq!(
            GraphSpec::from_ws(AppId::GraphBfs.ws_bytes()).n_vertices,
            32 * 1024
        );
    }

    #[test]
    fn scaled_working_sets_match_table_ratio() {
        for app in every_app() {
            let expected = (app.paper_ws_mb() * (1u64 << 20) as f64) as u64 / WS_SCALE_DIV;
            assert_eq!(app.ws_bytes(), expected);
        }
        // Largest and smallest keep their Table-1 ordering.
        assert!(AppId::Fft.ws_bytes() > AppId::WaterN2.ws_bytes());
    }

    #[test]
    fn deterministic_builds() {
        for app in [
            AppId::Radiosity,
            AppId::Barnes,
            AppId::Radix,
            AppId::KvZipf,
            AppId::GraphBfs,
        ] {
            let run = || {
                let mut wl = app.build(2, 9, Scale::SMOKE);
                let mut v = Vec::new();
                for _ in 0..500 {
                    match wl.streams[0].next_op() {
                        Some(op) => v.push(op),
                        None => break,
                    }
                }
                v
            };
            assert_eq!(run(), run(), "{app} not deterministic");
        }
    }
}
