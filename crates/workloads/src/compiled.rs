//! Precompiled operation streams: flat, arena-allocated op buffers.
//!
//! The lazy [`OpStream`](crate::OpStream) path re-interprets generator
//! state per `next_op()` call: a virtual dispatch, a `VecDeque` pop and
//! an `Op` enum match for every operation — including the compute gap
//! preceding every memory reference, which doubles the op count without
//! carrying any information beyond a time delta. [`OpArena::compile`]
//! pays all of that exactly once, ahead of the run, producing one
//! contiguous buffer of fixed-width [`FlatOp`] records per processor:
//!
//! * every *compute run* (one or more consecutive `Op::Compute`) is
//!   folded into the **gap field of the record that follows it**,
//!   already converted to nanoseconds ([`instr_time`] is applied per
//!   original op, so saturating coalescing behaves identically to the
//!   interpreted path);
//! * memory references and synchronization ops become one packed record
//!   each: `kind | gap_ns | payload` in a single `u64`;
//! * a compute run too long for the 20-bit gap field — or one at the
//!   very end of a stream, with no following op — is emitted as
//!   standalone [`FlatKind::Gap`] records whose payload is the
//!   nanosecond count (chained when even 2⁴⁰ ns is exceeded).
//!
//! The driver's hot loop then walks a flat `&[FlatOp]` with a plain
//! index: no interpreter, no trait object, no per-op allocation. The
//! compiled form is *semantically identical* to the interpreted stream:
//! replaying an arena span reproduces the exact sequence of memory
//! references, sync operations and cumulative busy nanoseconds (pinned
//! by the `compile` round-trip tests over the whole catalog).

use crate::op::{Op, OpStream};
use coma_types::time::instr_time;
use coma_types::{Addr, Nanos};

/// Operation kind of a [`FlatOp`] record (top nibble of the packed word).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum FlatKind {
    /// Load; payload = address, gap = preceding compute time.
    Read = 0,
    /// Store; payload = address, gap = preceding compute time.
    Write = 1,
    /// Lock acquire; payload = lock id.
    Lock = 2,
    /// Lock release; payload = lock id.
    Unlock = 3,
    /// Global barrier; payload = barrier id.
    Barrier = 4,
    /// Standalone compute run; payload = busy nanoseconds (no gap field).
    Gap = 5,
}

/// Number of bits of the packed word carrying the payload.
const PAYLOAD_BITS: u32 = 40;
/// Number of bits carrying the inline gap.
const GAP_BITS: u32 = 20;

/// Largest payload a record can carry: addresses, sync ids, or a
/// standalone-gap nanosecond count.
pub const MAX_PAYLOAD: u64 = (1 << PAYLOAD_BITS) - 1;
/// Largest compute gap (ns) foldable into a reference record; longer
/// runs spill into standalone [`FlatKind::Gap`] records.
pub const MAX_INLINE_GAP_NS: Nanos = (1 << GAP_BITS) - 1;

/// One compiled operation: `kind(4) | gap_ns(20) | payload(40)` packed
/// into a single `u64`. 8 bytes per op keeps a whole paper-scale stream
/// set in a few megabytes and the hot loop's fetches dense.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(transparent)]
pub struct FlatOp(u64);

impl FlatOp {
    #[inline]
    fn new(kind: FlatKind, gap_ns: Nanos, payload: u64) -> Self {
        debug_assert!(gap_ns <= MAX_INLINE_GAP_NS);
        assert!(
            payload <= MAX_PAYLOAD,
            "compiled op payload {payload:#x} exceeds {PAYLOAD_BITS} bits"
        );
        FlatOp(((kind as u64) << (GAP_BITS + PAYLOAD_BITS)) | (gap_ns << PAYLOAD_BITS) | payload)
    }

    /// The record's operation kind.
    #[inline]
    pub fn kind(self) -> FlatKind {
        match self.0 >> (GAP_BITS + PAYLOAD_BITS) {
            0 => FlatKind::Read,
            1 => FlatKind::Write,
            2 => FlatKind::Lock,
            3 => FlatKind::Unlock,
            4 => FlatKind::Barrier,
            _ => FlatKind::Gap,
        }
    }

    /// Compute time (ns) to elapse before executing the op itself.
    /// Always 0 for [`FlatKind::Gap`] records (their payload *is* the
    /// gap).
    #[inline]
    pub fn gap_ns(self) -> Nanos {
        (self.0 >> PAYLOAD_BITS) & MAX_INLINE_GAP_NS
    }

    /// Raw payload: address, sync id, or standalone-gap nanoseconds.
    #[inline]
    pub fn payload(self) -> u64 {
        self.0 & MAX_PAYLOAD
    }

    /// Payload as an address (Read/Write records).
    #[inline]
    pub fn addr(self) -> Addr {
        Addr(self.payload())
    }

    /// Payload as a sync id (Lock/Unlock/Barrier records).
    #[inline]
    pub fn id(self) -> u32 {
        self.payload() as u32
    }
}

/// All processors' compiled op streams in one arena.
///
/// Records are stored back to back; `spans` holds one `start` offset per
/// stream plus the final end, so stream `i` owns `records[spans[i]..
/// spans[i+1]]`. Offsets are `u32`: four billion compiled records is two
/// orders of magnitude beyond the longest paper-scale run.
#[derive(Clone, Debug, Default)]
pub struct OpArena {
    records: Vec<FlatOp>,
    spans: Vec<u32>,
}

impl OpArena {
    pub fn new() -> Self {
        OpArena {
            records: Vec::new(),
            spans: vec![0],
        }
    }

    /// Compile every stream of a workload, in processor order.
    pub fn compile(streams: impl IntoIterator<Item = Box<dyn OpStream>>) -> Self {
        let mut arena = OpArena::new();
        for mut s in streams {
            arena.push_stream(&mut *s);
        }
        arena
    }

    /// Drain one stream to exhaustion, appending its compiled records as
    /// the next span. The per-op interpretation cost (dispatch, pattern
    /// match, gap RNG) is paid here, once, instead of inside the
    /// simulation loop.
    pub fn push_stream(&mut self, stream: &mut dyn OpStream) {
        let mut pending_gap: Nanos = 0;
        while let Some(op) = stream.next_op() {
            match op {
                Op::Compute(n) => pending_gap += instr_time(n as u64),
                Op::Read(a) => self.emit(FlatKind::Read, &mut pending_gap, a.0),
                Op::Write(a) => self.emit(FlatKind::Write, &mut pending_gap, a.0),
                Op::Lock(id) => self.emit(FlatKind::Lock, &mut pending_gap, id as u64),
                Op::Unlock(id) => self.emit(FlatKind::Unlock, &mut pending_gap, id as u64),
                Op::Barrier(id) => self.emit(FlatKind::Barrier, &mut pending_gap, id as u64),
            }
        }
        // A trailing compute run has no op to attach to; it still delays
        // the processor's finish time, so it must survive compilation.
        self.spill_gap(&mut pending_gap, 0);
        let end = u32::try_from(self.records.len()).expect("op arena exceeds u32 records");
        self.spans.push(end);
    }

    /// Emit standalone Gap records until `pending` fits a gap field of
    /// width `fit` (0 to spill everything).
    fn spill_gap(&mut self, pending: &mut Nanos, fit: Nanos) {
        while *pending > fit {
            let chunk = (*pending).min(MAX_PAYLOAD);
            self.records.push(FlatOp::new(FlatKind::Gap, 0, chunk));
            *pending -= chunk;
        }
    }

    fn emit(&mut self, kind: FlatKind, pending_gap: &mut Nanos, payload: u64) {
        self.spill_gap(pending_gap, MAX_INLINE_GAP_NS);
        let gap = std::mem::take(pending_gap);
        self.records.push(FlatOp::new(kind, gap, payload));
    }

    /// Number of compiled streams (processors).
    pub fn n_streams(&self) -> usize {
        self.spans.len() - 1
    }

    /// `[start, end)` record range of stream `i`.
    #[inline]
    pub fn span(&self, i: usize) -> (u32, u32) {
        (self.spans[i], self.spans[i + 1])
    }

    /// All records, across all streams.
    pub fn records(&self) -> &[FlatOp] {
        &self.records
    }

    /// Record at arena index `i`.
    #[inline]
    pub fn get(&self, i: u32) -> FlatOp {
        self.records[i as usize]
    }

    /// Total compiled records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a fixed op vector.
    struct Fixed(std::vec::IntoIter<Op>);
    impl OpStream for Fixed {
        fn next_op(&mut self) -> Option<Op> {
            self.0.next()
        }
    }

    fn compile_ops(ops: Vec<Op>) -> OpArena {
        let mut a = OpArena::new();
        a.push_stream(&mut Fixed(ops.into_iter()));
        a
    }

    #[test]
    fn packs_and_unpacks_every_field() {
        let r = FlatOp::new(FlatKind::Write, 123_456, 0xAB_CDEF_0123);
        assert_eq!(r.kind(), FlatKind::Write);
        assert_eq!(r.gap_ns(), 123_456);
        assert_eq!(r.payload(), 0xAB_CDEF_0123);
        assert_eq!(r.addr(), Addr(0xAB_CDEF_0123));
        let r = FlatOp::new(FlatKind::Barrier, 0, 7);
        assert_eq!(r.kind(), FlatKind::Barrier);
        assert_eq!(r.gap_ns(), 0);
        assert_eq!(r.id(), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        FlatOp::new(FlatKind::Read, 0, MAX_PAYLOAD + 1);
    }

    #[test]
    fn gap_folds_into_following_ref() {
        let a = compile_ops(vec![
            Op::Compute(5),
            Op::Read(Addr(64)),
            Op::Write(Addr(128)),
        ]);
        assert_eq!(a.len(), 2);
        let r0 = a.get(0);
        assert_eq!(r0.kind(), FlatKind::Read);
        assert_eq!(r0.gap_ns(), instr_time(5));
        assert_eq!(r0.addr(), Addr(64));
        // Back-to-back ref: zero-length gap.
        let r1 = a.get(1);
        assert_eq!(r1.kind(), FlatKind::Write);
        assert_eq!(r1.gap_ns(), 0);
    }

    #[test]
    fn consecutive_computes_merge_additively() {
        // Un-coalesced Compute ops (as arrive across refill boundaries)
        // fold into one gap, converted per-op exactly like the
        // interpreted path sums instr_time calls.
        let a = compile_ops(vec![Op::Compute(3), Op::Compute(4), Op::Lock(2)]);
        assert_eq!(a.len(), 1);
        let r = a.get(0);
        assert_eq!(r.kind(), FlatKind::Lock);
        assert_eq!(r.gap_ns(), instr_time(3) + instr_time(4));
        assert_eq!(r.id(), 2);
    }

    #[test]
    fn trailing_gap_survives_as_standalone_record() {
        let a = compile_ops(vec![Op::Read(Addr(0)), Op::Compute(9)]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1).kind(), FlatKind::Gap);
        assert_eq!(a.get(1).payload(), instr_time(9));
        assert_eq!(a.get(1).gap_ns(), 0);
    }

    #[test]
    fn oversized_gap_spills_then_inlines_remainder() {
        // A compute run longer than the 20-bit inline field: standalone
        // Gap record(s) first, remainder inlined on the ref.
        let big = (MAX_INLINE_GAP_NS + 10) as u32;
        let a = compile_ops(vec![Op::Compute(big), Op::Read(Addr(64))]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(0).kind(), FlatKind::Gap);
        let total = a.get(0).payload() + a.get(1).gap_ns();
        assert_eq!(total, instr_time(big as u64));
        assert_eq!(a.get(1).kind(), FlatKind::Read);
    }

    #[test]
    fn spans_partition_the_arena() {
        let mut a = OpArena::new();
        a.push_stream(&mut Fixed(vec![Op::Read(Addr(0))].into_iter()));
        a.push_stream(&mut Fixed(vec![].into_iter()));
        a.push_stream(&mut Fixed(vec![Op::Lock(0), Op::Unlock(0)].into_iter()));
        assert_eq!(a.n_streams(), 3);
        assert_eq!(a.span(0), (0, 1));
        assert_eq!(a.span(1), (1, 1)); // empty stream: empty span
        assert_eq!(a.span(2), (1, 3));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn compile_consumes_boxed_streams() {
        let streams: Vec<Box<dyn OpStream>> = vec![
            Box::new(Fixed(vec![Op::Read(Addr(64))].into_iter())),
            Box::new(Fixed(vec![Op::Write(Addr(128))].into_iter())),
        ];
        let a = OpArena::compile(streams);
        assert_eq!(a.n_streams(), 2);
        assert_eq!(a.get(0).kind(), FlatKind::Read);
        assert_eq!(a.get(1).kind(), FlatKind::Write);
    }
}
