//! Synthetic SPLASH-2-analogue workloads for the COMA simulator.
//!
//! The paper drives its memory-system simulator with the 14 programs of
//! the SPLASH-2 suite executed under SimICS. Neither is reproducible
//! here, so this crate provides the closest synthetic equivalent: one
//! generator per application that emits the same *kind* of reference
//! stream — the partitioning, the sharing breadth, the communication
//! locality between neighbouring processes, the read/write mix, the
//! synchronization structure and the bandwidth demand that characterize
//! each SPLASH-2 program — over a working set scaled from Table 1 with
//! all capacity ratios preserved (see DESIGN.md §2).
//!
//! A [`Workload`] bundles one [`OpStream`] per processor plus the
//! working-set size the machine geometry is derived from. Streams are
//! deterministic functions of `(application, processor, seed)`.
//!
//! ```
//! use coma_workloads::{AppId, Scale};
//!
//! let wl = AppId::Fft.build(16, 42, Scale::SMOKE);
//! assert_eq!(wl.streams.len(), 16);
//! assert!(wl.ws_bytes > 0);
//! ```

pub mod apps;
pub mod catalog;
pub mod compiled;
pub mod op;
pub mod pattern;
pub mod region;
pub mod stream;
pub mod trace;
pub mod workload;

pub use apps::graph_bfs::GraphSpec;
pub use apps::kv_zipf::KvSpec;
pub use apps::synth::{build as build_synth, SynthSpec};
pub use catalog::AppId;
pub use compiled::{FlatKind, FlatOp, OpArena};
pub use op::{Op, OpStream};
pub use pattern::{BlockWalker, StrideWalker};
pub use region::Region;
pub use stream::{OpBuf, PhaseGen, Scale, Stream};
pub use trace::{record, record_to_file, replay, replay_from_file, TraceStats};
pub use workload::Workload;
