//! Operations emitted by workload generators and consumed by the
//! simulator's processor model.

use coma_types::Addr;

/// One simulated-processor operation.
///
/// Synchronization operations reference small integer ids; the simulator
/// maps them to cache lines in the workload's sync region so that locks
/// and barriers generate real coherence traffic (paper §3: "all ordinary
/// data accesses as well as synchronization accesses have been modeled").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Execute `n` instructions that touch no memory beyond the FLC.
    Compute(u32),
    /// Load from an address (stalls the processor on miss).
    Read(Addr),
    /// Store to an address (retires into the write buffer).
    Write(Addr),
    /// Acquire a lock (read-modify-write on the lock's line; spins).
    Lock(u32),
    /// Release a lock (drains the write buffer first — release consistency).
    Unlock(u32),
    /// Global barrier: all processors must reach barrier `id` before any
    /// proceeds. Generators must emit identical barrier id sequences on
    /// every processor.
    Barrier(u32),
}

/// A lazy, per-processor operation stream.
pub trait OpStream {
    /// Next operation, or `None` when the processor's work is finished.
    fn next_op(&mut self) -> Option<Op>;
}

/// Blanket impl so `Box<dyn OpStream>` is itself a stream.
impl OpStream for Box<dyn OpStream> {
    fn next_op(&mut self) -> Option<Op> {
        (**self).next_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(u8);
    impl OpStream for Two {
        fn next_op(&mut self) -> Option<Op> {
            if self.0 == 0 {
                None
            } else {
                self.0 -= 1;
                Some(Op::Compute(1))
            }
        }
    }

    #[test]
    fn boxed_stream_delegates() {
        let mut b: Box<dyn OpStream> = Box::new(Two(2));
        assert_eq!(b.next_op(), Some(Op::Compute(1)));
        assert_eq!(b.next_op(), Some(Op::Compute(1)));
        assert_eq!(b.next_op(), None);
    }
}
