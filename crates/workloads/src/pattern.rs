//! Reusable address-pattern walkers.
//!
//! The application models compose these to express their access
//! behaviour: unit-stride and large-stride sweeps (contiguous vs
//! non-contiguous array layouts — the difference between the `cont` and
//! `non` versions of LU and Ocean), and blocked/tiled walks.

use crate::region::Region;
use coma_types::Addr;

/// Walks a region with a fixed line stride, wrapping around; visiting all
/// lines when the stride is coprime with the region length.
#[derive(Clone, Debug)]
pub struct StrideWalker {
    region: Region,
    stride: u64,
    cursor: u64,
}

impl StrideWalker {
    pub fn new(region: Region, stride: u64) -> Self {
        assert!(stride > 0);
        StrideWalker {
            region,
            stride,
            cursor: 0,
        }
    }

    /// Start from a specific line offset.
    pub fn starting_at(region: Region, stride: u64, start: u64) -> Self {
        let mut w = Self::new(region, stride);
        w.cursor = start % region.lines();
        w
    }

    /// Next address in the sweep.
    pub fn next_addr(&mut self) -> Addr {
        let a = self.region.line(self.cursor);
        self.cursor = (self.cursor + self.stride) % self.region.lines();
        a
    }

    /// Reset to the beginning of the sweep.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// Walks a region as a sequence of fixed-size blocks (tiles): all lines of
/// a block are visited consecutively before moving to the next block.
/// Models blocked algorithms (LU-cont, tiled matrix kernels).
#[derive(Clone, Debug)]
pub struct BlockWalker {
    region: Region,
    block_lines: u64,
    block: u64,
    within: u64,
}

impl BlockWalker {
    pub fn new(region: Region, block_lines: u64) -> Self {
        assert!(block_lines > 0);
        BlockWalker {
            region,
            block_lines: block_lines.min(region.lines()),
            block: 0,
            within: 0,
        }
    }

    pub fn n_blocks(&self) -> u64 {
        self.region.lines().div_ceil(self.block_lines)
    }

    /// Jump to block `b` (wrapping).
    pub fn seek_block(&mut self, b: u64) {
        self.block = b % self.n_blocks();
        self.within = 0;
    }

    /// Next address; advances within the block, then to the next block.
    pub fn next_addr(&mut self) -> Addr {
        let line = self.block * self.block_lines + self.within;
        let a = self.region.line(line);
        self.within += 1;
        if self.within >= self.block_lines {
            self.within = 0;
            self.block = (self.block + 1) % self.n_blocks();
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_visits_sequentially() {
        let r = Region::new(0, 4);
        let mut w = StrideWalker::new(r, 1);
        let addrs: Vec<u64> = (0..5).map(|_| w.next_addr().0).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192, 0]);
    }

    #[test]
    fn coprime_stride_visits_all_lines() {
        let r = Region::new(0, 8);
        let mut w = StrideWalker::new(r, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            seen.insert(w.next_addr().0);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn starting_offset_applies() {
        let r = Region::new(0, 8);
        let mut w = StrideWalker::starting_at(r, 1, 5);
        assert_eq!(w.next_addr().0, 5 * 64);
    }

    #[test]
    fn reset_restarts() {
        let r = Region::new(0, 8);
        let mut w = StrideWalker::new(r, 1);
        w.next_addr();
        w.reset();
        assert_eq!(w.next_addr().0, 0);
    }

    #[test]
    fn block_walker_tiles() {
        let r = Region::new(0, 6);
        let mut w = BlockWalker::new(r, 2);
        let addrs: Vec<u64> = (0..6).map(|_| w.next_addr().0 / 64).collect();
        assert_eq!(addrs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(w.n_blocks(), 3);
    }

    #[test]
    fn seek_block_jumps() {
        let r = Region::new(0, 8);
        let mut w = BlockWalker::new(r, 2);
        w.seek_block(2);
        assert_eq!(w.next_addr().0 / 64, 4);
        assert_eq!(w.next_addr().0 / 64, 5);
        // wraps into block 3
        assert_eq!(w.next_addr().0 / 64, 6);
    }

    #[test]
    fn oversized_block_clamps_to_region() {
        let r = Region::new(0, 3);
        let w = BlockWalker::new(r, 100);
        assert_eq!(w.n_blocks(), 1);
    }
}
