//! Address-space regions.
//!
//! Each application's working set is laid out as a sequence of
//! line-aligned regions (particle arrays, grids, matrices, scene data,
//! task queues, …). Regions can be partitioned among processors, which is
//! how the models express ownership and neighbour communication.

use coma_types::{Addr, LINE_BYTES};

/// A contiguous, line-aligned span of the simulated address space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Region {
    base: u64,
    lines: u64,
}

impl Region {
    /// Create a region of `lines` cache lines starting at line-aligned
    /// byte offset `base`.
    pub fn new(base: u64, lines: u64) -> Self {
        assert!(
            base.is_multiple_of(LINE_BYTES),
            "region base must be line-aligned"
        );
        assert!(lines > 0, "empty region");
        Region { base, lines }
    }

    #[inline]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    #[inline]
    pub fn bytes(&self) -> u64 {
        self.lines * LINE_BYTES
    }

    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// End byte offset (exclusive).
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.bytes()
    }

    /// Address of the first byte of the `i`-th line (wrapping modulo the
    /// region length, so walkers can stride freely).
    #[inline]
    pub fn line(&self, i: u64) -> Addr {
        Addr(self.base + (i % self.lines) * LINE_BYTES)
    }

    /// Split into `n` near-equal contiguous chunks; chunk `i` belongs to
    /// processor `i`. Every chunk is non-empty provided `lines ≥ n`.
    pub fn partition(&self, n: usize) -> Vec<Region> {
        assert!(n > 0);
        let n64 = n as u64;
        let per = self.lines / n64;
        let extra = self.lines % n64;
        let mut out = Vec::with_capacity(n);
        let mut base = self.base;
        for i in 0..n64 {
            let len = per + u64::from(i < extra);
            assert!(
                len > 0,
                "partition of {} lines into {} chunks",
                self.lines,
                n
            );
            out.push(Region::new(base, len));
            base += len * LINE_BYTES;
        }
        out
    }

    /// Sub-region of `len` lines starting at line `off` (must fit).
    pub fn slice(&self, off: u64, len: u64) -> Region {
        assert!(off + len <= self.lines);
        Region::new(self.base + off * LINE_BYTES, len)
    }

    /// Does the region contain this address?
    pub fn contains(&self, a: Addr) -> bool {
        a.0 >= self.base && a.0 < self.end()
    }
}

/// Builds a working-set layout by allocating regions consecutively,
/// mirroring the paper's consecutive on-demand page allocation.
#[derive(Debug, Default)]
pub struct Layout {
    cursor: u64,
}

impl Layout {
    pub fn new() -> Self {
        Layout { cursor: 0 }
    }

    /// Allocate a region with (at least) the given byte size, rounded up
    /// to whole lines.
    pub fn alloc_bytes(&mut self, bytes: u64) -> Region {
        let lines = bytes.div_ceil(LINE_BYTES).max(1);
        self.alloc_lines(lines)
    }

    /// Allocate a region of exactly `lines` cache lines.
    pub fn alloc_lines(&mut self, lines: u64) -> Region {
        let r = Region::new(self.cursor, lines);
        self.cursor = r.end();
        r
    }

    /// Total bytes allocated so far — the working-set size.
    pub fn total_bytes(&self) -> u64 {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addresses_wrap() {
        let r = Region::new(0, 4);
        assert_eq!(r.line(0), Addr(0));
        assert_eq!(r.line(3), Addr(192));
        assert_eq!(r.line(4), Addr(0));
    }

    #[test]
    fn partition_covers_exactly() {
        let r = Region::new(0, 103);
        let parts = r.partition(16);
        assert_eq!(parts.len(), 16);
        let total: u64 = parts.iter().map(|p| p.lines()).sum();
        assert_eq!(total, 103);
        // Contiguous and non-overlapping.
        for w in parts.windows(2) {
            assert_eq!(w[0].end(), w[1].base());
        }
    }

    #[test]
    fn partition_sizes_differ_by_at_most_one() {
        let parts = Region::new(0, 103).partition(16);
        let min = parts.iter().map(|p| p.lines()).min().unwrap();
        let max = parts.iter().map(|p| p.lines()).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn layout_is_consecutive() {
        let mut l = Layout::new();
        let a = l.alloc_bytes(100); // rounds to 2 lines
        let b = l.alloc_bytes(64);
        assert_eq!(a.lines(), 2);
        assert_eq!(b.base(), 128);
        assert_eq!(l.total_bytes(), 192);
    }

    #[test]
    fn slice_within_region() {
        let r = Region::new(128, 10);
        let s = r.slice(2, 3);
        assert_eq!(s.base(), 128 + 2 * 64);
        assert_eq!(s.lines(), 3);
        assert!(r.contains(s.line(0)));
    }

    #[test]
    fn contains_boundaries() {
        let r = Region::new(64, 2);
        assert!(!r.contains(Addr(63)));
        assert!(r.contains(Addr(64)));
        assert!(r.contains(Addr(191)));
        assert!(!r.contains(Addr(192)));
    }

    #[test]
    #[should_panic]
    fn unaligned_base_rejected() {
        Region::new(10, 1);
    }
}
