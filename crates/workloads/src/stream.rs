//! Stream machinery shared by all application models.
//!
//! An application model implements [`PhaseGen`]: it knows how many outer
//! iterations (time steps, passes, …) it performs and how to emit the
//! operations of one iteration into an [`OpBuf`]. [`Stream`] adapts that
//! into the lazy [`OpStream`] the simulator consumes, refilling one
//! iteration at a time so memory stays bounded.
//!
//! Barriers are emitted through [`OpBuf::barrier`], which numbers them
//! sequentially per stream; since every processor runs the same phase
//! program, the sequences line up machine-wide.

use crate::op::{Op, OpStream};
use coma_types::{Addr, Rng64};

/// Scales the amount of work (outer iterations) an application performs.
///
/// The working-set size is *never* scaled by this (that would change the
/// memory pressure); only the trace length is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Full-length runs used for the paper-reproduction experiments.
    pub const PAPER: Scale = Scale(1.0);
    /// Reduced runs for Criterion benches.
    pub const BENCH: Scale = Scale(0.25);
    /// Minimal runs for integration tests.
    pub const SMOKE: Scale = Scale(0.08);

    /// Scale an iteration count, keeping at least one iteration.
    pub fn iters(self, base: u32) -> u32 {
        ((base as f64 * self.0).round() as u32).max(1)
    }

    /// Scale a reference count, keeping at least one reference.
    pub fn refs(self, base: u64) -> u64 {
        ((base as f64 * self.0).round() as u64).max(1)
    }
}

/// Operation buffer with helpers for the idioms the models share:
/// compute gaps between references, read/write mixes, locks and barriers.
///
/// Internally a `Vec` with a consuming head cursor rather than a ring
/// buffer: the producer (one `gen_iter`) and consumer (`Stream::next_op`)
/// strictly alternate in bulk, so pushes are plain appends and pops are an
/// index bump — no wrap-around masking on the trace-compilation hot path.
/// The storage is recycled (cleared, cursor rewound) each time the buffer
/// drains, so memory stays bounded at one iteration's operations.
#[derive(Debug)]
pub struct OpBuf {
    ops: Vec<Op>,
    head: usize,
    rng: Rng64,
    gap_lo: u32,
    gap_hi: u32,
    barrier_ctr: u32,
}

impl OpBuf {
    fn new(rng: Rng64) -> Self {
        OpBuf {
            ops: Vec::new(),
            head: 0,
            rng,
            gap_lo: 2,
            gap_hi: 6,
            barrier_ctr: 0,
        }
    }

    /// Set the instruction gap drawn before each memory reference.
    /// Smaller gaps mean higher bandwidth demand (LU-non, Radix); larger
    /// gaps model compute-bound codes (Water).
    pub fn set_gap(&mut self, lo: u32, hi: u32) {
        assert!(lo <= hi);
        self.gap_lo = lo;
        self.gap_hi = hi;
    }

    /// The per-stream RNG (deterministic per processor).
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    fn gap(&mut self) {
        let n = if self.gap_lo == self.gap_hi {
            self.gap_lo
        } else {
            self.rng.range(self.gap_lo as u64, self.gap_hi as u64 + 1) as u32
        };
        if n > 0 {
            self.compute(n);
        }
    }

    /// Push an explicit compute burst (coalesces with a preceding one).
    pub fn compute(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        // Only coalesce with an op the consumer has not yet taken.
        if self.head < self.ops.len() {
            if let Some(Op::Compute(m)) = self.ops.last_mut() {
                *m = m.saturating_add(n);
                return;
            }
        }
        self.ops.push(Op::Compute(n));
    }

    /// Gap + read.
    pub fn read(&mut self, a: Addr) {
        self.gap();
        self.ops.push(Op::Read(a));
    }

    /// Gap + write.
    pub fn write(&mut self, a: Addr) {
        self.gap();
        self.ops.push(Op::Write(a));
    }

    /// Gap + read-or-write with the given write probability.
    pub fn rw(&mut self, a: Addr, write_frac: f64) {
        if self.rng.chance(write_frac) {
            self.write(a);
        } else {
            self.read(a);
        }
    }

    /// Read-modify-write of one location (load then store).
    pub fn update(&mut self, a: Addr) {
        self.read(a);
        self.ops.push(Op::Write(a));
    }

    pub fn lock(&mut self, id: u32) {
        self.ops.push(Op::Lock(id));
    }

    pub fn unlock(&mut self, id: u32) {
        self.ops.push(Op::Unlock(id));
    }

    /// Emit the next global barrier (sequentially numbered).
    pub fn barrier(&mut self) {
        self.ops.push(Op::Barrier(self.barrier_ctr));
        self.barrier_ctr += 1;
    }

    /// Number of buffered (unconsumed) operations (tests / diagnostics).
    pub fn len(&self) -> usize {
        self.ops.len() - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.head == self.ops.len()
    }

    fn pop(&mut self) -> Option<Op> {
        match self.ops.get(self.head) {
            Some(&op) => {
                self.head += 1;
                Some(op)
            }
            None => {
                // Drained: recycle the storage for the next iteration.
                self.ops.clear();
                self.head = 0;
                None
            }
        }
    }
}

/// An application model: emits one outer iteration at a time.
pub trait PhaseGen {
    /// Total outer iterations this processor will run.
    fn n_iters(&self) -> u32;
    /// Emit iteration `iter`'s operations into `buf`.
    fn gen_iter(&mut self, iter: u32, buf: &mut OpBuf);
}

/// Adapts a [`PhaseGen`] into a lazy [`OpStream`].
pub struct Stream<G: PhaseGen> {
    gen: G,
    buf: OpBuf,
    iter: u32,
}

impl<G: PhaseGen> Stream<G> {
    /// Wrap a model with a per-processor RNG.
    pub fn new(gen: G, rng: Rng64) -> Self {
        Stream {
            gen,
            buf: OpBuf::new(rng),
            iter: 0,
        }
    }

    /// Wrap and set the default instruction gap first.
    pub fn with_gap(gen: G, rng: Rng64, lo: u32, hi: u32) -> Self {
        let mut s = Self::new(gen, rng);
        s.buf.set_gap(lo, hi);
        s
    }
}

impl<G: PhaseGen> OpStream for Stream<G> {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if let Some(op) = self.buf.pop() {
                return Some(op);
            }
            if self.iter >= self.gen.n_iters() {
                return None;
            }
            let it = self.iter;
            self.iter += 1;
            self.gen.gen_iter(it, &mut self.buf);
        }
    }
}

/// Deterministic per-processor RNG for application `app_salt`, processor
/// `proc`, experiment seed `seed`.
pub fn proc_rng(seed: u64, app_salt: u64, proc: usize) -> Rng64 {
    let mut root = Rng64::new(seed ^ app_salt.wrapping_mul(0xA24B_AED4_963E_E407));
    root.fork(proc as u64)
}

/// Deterministic RNG for decisions that must be *identical on every
/// processor* (e.g. which block is this iteration's pivot).
pub fn shared_rng(seed: u64, app_salt: u64, iter: u32) -> Rng64 {
    Rng64::new(seed ^ app_salt.wrapping_mul(0x9FB2_1C65_1E98_DF25) ^ ((iter as u64) << 32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_types::Addr;

    struct TwoIter;
    impl PhaseGen for TwoIter {
        fn n_iters(&self) -> u32 {
            2
        }
        fn gen_iter(&mut self, iter: u32, buf: &mut OpBuf) {
            buf.read(Addr(iter as u64 * 64));
            buf.barrier();
        }
    }

    #[test]
    fn stream_runs_all_iterations_then_ends() {
        let mut s = Stream::new(TwoIter, Rng64::new(1));
        let mut reads = 0;
        let mut barriers = Vec::new();
        while let Some(op) = s.next_op() {
            match op {
                Op::Read(_) => reads += 1,
                Op::Barrier(b) => barriers.push(b),
                _ => {}
            }
        }
        assert_eq!(reads, 2);
        assert_eq!(barriers, vec![0, 1]);
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn compute_coalesces() {
        let mut buf = OpBuf::new(Rng64::new(1));
        buf.compute(3);
        buf.compute(4);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.pop(), Some(Op::Compute(7)));
    }

    #[test]
    fn gap_emitted_before_each_ref() {
        let mut buf = OpBuf::new(Rng64::new(1));
        buf.set_gap(5, 5);
        buf.read(Addr(0));
        assert_eq!(buf.pop(), Some(Op::Compute(5)));
        assert_eq!(buf.pop(), Some(Op::Read(Addr(0))));
    }

    #[test]
    fn zero_gap_means_back_to_back_refs() {
        let mut buf = OpBuf::new(Rng64::new(1));
        buf.set_gap(0, 0);
        buf.read(Addr(0));
        assert_eq!(buf.pop(), Some(Op::Read(Addr(0))));
    }

    #[test]
    fn update_is_read_then_write_same_line() {
        let mut buf = OpBuf::new(Rng64::new(1));
        buf.set_gap(0, 0);
        buf.update(Addr(64));
        assert_eq!(buf.pop(), Some(Op::Read(Addr(64))));
        assert_eq!(buf.pop(), Some(Op::Write(Addr(64))));
    }

    #[test]
    fn rw_respects_extremes() {
        let mut buf = OpBuf::new(Rng64::new(1));
        buf.set_gap(0, 0);
        buf.rw(Addr(0), 0.0);
        assert_eq!(buf.pop(), Some(Op::Read(Addr(0))));
        buf.rw(Addr(0), 1.0);
        assert_eq!(buf.pop(), Some(Op::Write(Addr(0))));
    }

    #[test]
    fn scale_keeps_minimum_one() {
        assert_eq!(Scale::SMOKE.iters(2), 1);
        assert_eq!(Scale::PAPER.iters(7), 7);
        assert_eq!(Scale(2.0).iters(3), 6);
        assert_eq!(Scale::SMOKE.refs(5), 1);
    }

    #[test]
    fn proc_rngs_differ_shared_rngs_agree() {
        let a = proc_rng(1, 2, 0).next_u64();
        let b = proc_rng(1, 2, 1).next_u64();
        assert_ne!(a, b);
        let s1 = shared_rng(1, 2, 3).next_u64();
        let s2 = shared_rng(1, 2, 3).next_u64();
        assert_eq!(s1, s2);
        assert_ne!(
            shared_rng(1, 2, 3).next_u64(),
            shared_rng(1, 2, 4).next_u64()
        );
    }
}
