//! Trace recording and replay.
//!
//! Generating a reference stream is cheap here, but real trace tooling is
//! the historically awkward part of COMA studies (the paper's traces came
//! from SimICS runs that took hours). This module lets any workload be
//! **recorded once** into a compact binary file and **replayed** later —
//! so experiments can share bit-identical inputs, external traces can be
//! imported, and regression baselines can be pinned.
//!
//! Format (little-endian, varint-compressed):
//!
//! ```text
//! magic "COMATRC1" | u32 n_procs | u64 ws_bytes | u32 n_locks
//! per processor: u64 op_count, then op_count ops:
//!   opcode u8: 0=Compute 1=Read 2=Write 3=Lock 4=Unlock 5=Barrier
//!   payload: varint (instruction count, byte address, or sync id)
//! ```
//!
//! Read/Write addresses are delta-encoded per processor (zig-zag varint)
//! — sequential sweeps compress to ~2 bytes per reference.

use crate::op::{Op, OpStream};
use crate::workload::Workload;
use coma_types::Addr;
use std::io::{self, BufReader, BufWriter, Read, Write};

const MAGIC: &[u8; 8] = b"COMATRC1";

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8];
        r.read_exact(&mut b)?;
        v |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Record a workload's full trace to a writer. Consumes the workload
/// (streams can only be drained once).
pub fn record<W: Write>(mut wl: Workload, w: W) -> io::Result<TraceStats> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&(wl.streams.len() as u32).to_le_bytes())?;
    w.write_all(&wl.ws_bytes.to_le_bytes())?;
    w.write_all(&wl.n_locks.to_le_bytes())?;
    let mut stats = TraceStats::default();
    for s in &mut wl.streams {
        // Buffer this processor's ops to know the count up front.
        let mut ops = Vec::new();
        while let Some(op) = s.next_op() {
            ops.push(op);
        }
        w.write_all(&(ops.len() as u64).to_le_bytes())?;
        let mut last_addr = 0i64;
        for op in ops {
            stats.ops += 1;
            match op {
                Op::Compute(n) => {
                    w.write_all(&[0])?;
                    write_varint(&mut w, n as u64)?;
                }
                Op::Read(a) | Op::Write(a) => {
                    let code = if matches!(op, Op::Read(_)) { 1 } else { 2 };
                    w.write_all(&[code])?;
                    let delta = a.0 as i64 - last_addr;
                    last_addr = a.0 as i64;
                    write_varint(&mut w, zigzag(delta))?;
                    stats.refs += 1;
                }
                Op::Lock(id) => {
                    w.write_all(&[3])?;
                    write_varint(&mut w, id as u64)?;
                }
                Op::Unlock(id) => {
                    w.write_all(&[4])?;
                    write_varint(&mut w, id as u64)?;
                }
                Op::Barrier(id) => {
                    w.write_all(&[5])?;
                    write_varint(&mut w, id as u64)?;
                }
            }
        }
    }
    w.flush()?;
    Ok(stats)
}

/// Summary of a recorded trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total operations recorded.
    pub ops: u64,
    /// Memory references among them.
    pub refs: u64,
}

/// A replayable per-processor trace (fully decoded into memory).
struct ReplayStream {
    ops: std::vec::IntoIter<Op>,
}

impl OpStream for ReplayStream {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.next()
    }
}

/// Load a recorded trace back into a [`Workload`].
pub fn replay<R: Read>(r: R) -> io::Result<Workload> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a COMA trace",
        ));
    }
    let mut u32b = [0u8; 4];
    let mut u64b = [0u8; 8];
    r.read_exact(&mut u32b)?;
    let n_procs = u32::from_le_bytes(u32b) as usize;
    r.read_exact(&mut u64b)?;
    let ws_bytes = u64::from_le_bytes(u64b);
    r.read_exact(&mut u32b)?;
    let n_locks = u32::from_le_bytes(u32b);

    let mut streams: Vec<Box<dyn OpStream>> = Vec::with_capacity(n_procs);
    for _ in 0..n_procs {
        r.read_exact(&mut u64b)?;
        let count = u64::from_le_bytes(u64b) as usize;
        let mut ops = Vec::with_capacity(count);
        let mut last_addr = 0i64;
        for _ in 0..count {
            let mut code = [0u8];
            r.read_exact(&mut code)?;
            let payload = read_varint(&mut r)?;
            let op = match code[0] {
                0 => Op::Compute(payload as u32),
                1 | 2 => {
                    let addr = last_addr + unzigzag(payload);
                    last_addr = addr;
                    if addr < 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "negative address in trace",
                        ));
                    }
                    if code[0] == 1 {
                        Op::Read(Addr(addr as u64))
                    } else {
                        Op::Write(Addr(addr as u64))
                    }
                }
                3 => Op::Lock(payload as u32),
                4 => Op::Unlock(payload as u32),
                5 => Op::Barrier(payload as u32),
                c => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad opcode {c}"),
                    ))
                }
            };
            ops.push(op);
        }
        streams.push(Box::new(ReplayStream {
            ops: ops.into_iter(),
        }));
    }
    Ok(Workload {
        name: "replayed trace",
        ws_bytes,
        n_locks,
        streams,
    })
}

/// Record to a file.
pub fn record_to_file(wl: Workload, path: &std::path::Path) -> io::Result<TraceStats> {
    record(wl, std::fs::File::create(path)?)
}

/// Replay from a file.
pub fn replay_from_file(path: &std::path::Path) -> io::Result<Workload> {
    replay(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::AppId;
    use crate::stream::Scale;

    fn drain(wl: &mut Workload) -> Vec<Vec<Op>> {
        wl.streams
            .iter_mut()
            .map(|s| {
                let mut v = Vec::new();
                while let Some(op) = s.next_op() {
                    v.push(op);
                }
                v
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = AppId::Radiosity.build(4, 7, Scale::SMOKE);
        let mut reference = AppId::Radiosity.build(4, 7, Scale::SMOKE);
        let want = drain(&mut reference);

        let mut buf = Vec::new();
        let stats = record(original, &mut buf).unwrap();
        assert!(stats.ops > 0 && stats.refs > 0);

        let mut replayed = replay(buf.as_slice()).unwrap();
        assert_eq!(replayed.ws_bytes, reference.ws_bytes);
        assert_eq!(replayed.n_locks, reference.n_locks);
        let got = drain(&mut replayed);
        assert_eq!(got, want);
    }

    #[test]
    fn compression_beats_naive_encoding() {
        let wl = AppId::Fft.build(4, 1, Scale::SMOKE);
        let mut buf = Vec::new();
        let stats = record(wl, &mut buf).unwrap();
        // Naive encoding would be ≥ 9 bytes/op; delta-varint must do much
        // better on these mostly-sequential streams.
        let bytes_per_op = buf.len() as f64 / stats.ops as f64;
        assert!(
            bytes_per_op < 5.0,
            "only {:.1} bytes/op compression",
            bytes_per_op
        );
    }

    #[test]
    fn replayed_trace_simulates_identically() {
        // A replayed trace must produce the exact same simulation result.
        use coma_types::Rng64;
        let _ = Rng64::new(0); // (crate linkage)
        let buf = {
            let wl = AppId::WaterSp.build(4, 3, Scale::SMOKE);
            let mut b = Vec::new();
            record(wl, &mut b).unwrap();
            b
        };
        let mut a = replay(buf.as_slice()).unwrap();
        let mut b = replay(buf.as_slice()).unwrap();
        assert_eq!(drain(&mut a), drain(&mut b));
    }

    #[test]
    fn rejects_garbage() {
        assert!(replay(&b"NOTATRACE"[..]).is_err());
        let mut buf = Vec::new();
        record(AppId::WaterN2.build(2, 1, Scale::SMOKE), &mut buf).unwrap();
        buf[3] ^= 0xff; // corrupt the magic
        assert!(replay(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_trace_fails_cleanly() {
        let mut buf = Vec::new();
        record(AppId::WaterN2.build(2, 1, Scale::SMOKE), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(replay(buf.as_slice()).is_err());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
