//! A complete workload: one operation stream per processor plus the
//! metadata the simulator needs to size the machine and map
//! synchronization ids to cache lines.

use crate::op::OpStream;
use coma_types::{Addr, LineNum, LINE_BYTES};

/// A ready-to-run workload.
pub struct Workload {
    /// Application name (Table 1 spelling).
    pub name: &'static str,
    /// Data working-set size in bytes; the machine geometry (SLC and AM
    /// sizes) is derived from this, exactly as in the paper.
    pub ws_bytes: u64,
    /// Number of distinct locks the streams may reference.
    pub n_locks: u32,
    /// One stream per processor, index = processor id.
    pub streams: Vec<Box<dyn OpStream>>,
}

impl Workload {
    /// Address of the line backing lock `id`. Sync lines live immediately
    /// above the data working set (their AM footprint is negligible but
    /// their coherence traffic is real).
    pub fn lock_addr(&self, id: u32) -> Addr {
        assert!(id < self.n_locks, "lock id {id} out of range");
        Addr(self.sync_base() + id as u64 * LINE_BYTES)
    }

    /// Address of the barrier counter line (lock-protected arrival count).
    pub fn barrier_counter_addr(&self) -> Addr {
        Addr(self.sync_base() + self.n_locks as u64 * LINE_BYTES)
    }

    /// Address of the barrier release-flag line (read-shared spin target,
    /// invalidated on release so every waiter re-fetches it).
    pub fn barrier_flag_addr(&self) -> Addr {
        Addr(self.sync_base() + (self.n_locks as u64 + 1) * LINE_BYTES)
    }

    /// First byte above the data working set, line-aligned.
    fn sync_base(&self) -> u64 {
        self.ws_bytes.div_ceil(LINE_BYTES) * LINE_BYTES
    }

    /// Total address-space lines including sync lines (for diagnostics).
    pub fn total_lines(&self) -> u64 {
        self.ws_bytes.div_ceil(LINE_BYTES) + self.n_locks as u64 + 2
    }

    /// Line number of the highest sync line.
    pub fn last_sync_line(&self) -> LineNum {
        self.barrier_flag_addr().line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    struct Empty;
    impl OpStream for Empty {
        fn next_op(&mut self) -> Option<Op> {
            None
        }
    }

    fn wl(ws: u64, n_locks: u32) -> Workload {
        Workload {
            name: "test",
            ws_bytes: ws,
            n_locks,
            streams: vec![Box::new(Empty)],
        }
    }

    #[test]
    fn sync_lines_above_working_set() {
        let w = wl(1000, 3); // ws rounds to 1024
        assert_eq!(w.lock_addr(0), Addr(1024));
        assert_eq!(w.lock_addr(2), Addr(1024 + 128));
        assert_eq!(w.barrier_counter_addr(), Addr(1024 + 192));
        assert_eq!(w.barrier_flag_addr(), Addr(1024 + 256));
    }

    #[test]
    fn sync_addrs_are_distinct_lines() {
        let w = wl(4096, 4);
        let mut lines: Vec<u64> = (0..4).map(|i| w.lock_addr(i).line().0).collect();
        lines.push(w.barrier_counter_addr().line().0);
        lines.push(w.barrier_flag_addr().line().0);
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), 6);
    }

    #[test]
    #[should_panic]
    fn out_of_range_lock_panics() {
        wl(4096, 2).lock_addr(2);
    }

    #[test]
    fn total_lines_counts_everything() {
        let w = wl(128, 1);
        // 2 data lines + 1 lock + 2 barrier lines
        assert_eq!(w.total_lines(), 5);
        assert_eq!(w.last_sync_line().0, 4);
    }
}
