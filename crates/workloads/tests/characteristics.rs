//! Calibration-class regression tests: each application model must keep
//! the behavioural signature that places it where the paper's figures
//! place it (DESIGN.md §7.5). These tests guard the workload calibration
//! against accidental drift.

use coma_workloads::{AppId, Op, OpStream, Scale};
use std::collections::{HashMap, HashSet};

/// Per-stream summary statistics.
struct Profile {
    refs: u64,
    instr: u64,
    /// Lines read by every one of the sampled processors.
    machine_shared_reads: usize,
    /// Total distinct lines read across processors.
    distinct_reads: usize,
}

fn profile(app: AppId, nprocs: usize) -> Profile {
    let mut wl = app.build(nprocs, 42, Scale::SMOKE);
    let mut refs = 0u64;
    let mut instr = 0u64;
    let mut read_sets: Vec<HashSet<u64>> = Vec::new();
    for s in &mut wl.streams {
        let mut reads = HashSet::new();
        while let Some(op) = s.next_op() {
            match op {
                Op::Read(a) => {
                    refs += 1;
                    reads.insert(a.line().0);
                }
                Op::Write(_) => refs += 1,
                Op::Compute(n) => instr += n as u64,
                _ => {}
            }
        }
        read_sets.push(reads);
    }
    let mut count: HashMap<u64, usize> = HashMap::new();
    for set in &read_sets {
        for &l in set {
            *count.entry(l).or_default() += 1;
        }
    }
    Profile {
        refs,
        instr,
        machine_shared_reads: count.values().filter(|&&c| c == nprocs).count(),
        distinct_reads: count.len(),
    }
}

fn density(app: AppId) -> f64 {
    let p = profile(app, 4);
    p.refs as f64 / p.instr.max(1) as f64
}

/// The paper's two contention-dominated applications must have by far
/// the highest memory-reference density of the suite.
#[test]
fn contention_apps_have_highest_bandwidth_demand() {
    let lu_non = density(AppId::LuNon);
    let radix = density(AppId::Radix);
    for app in AppId::ALL {
        if matches!(app, AppId::LuNon | AppId::Radix | AppId::OceanNon) {
            continue;
        }
        let d = density(app);
        assert!(
            lu_non > 2.0 * d && radix > 2.0 * d,
            "{app} density {d:.3} rivals the contention apps ({lu_non:.3}/{radix:.3})"
        );
    }
}

/// Water must be the most compute-bound pair of the suite.
#[test]
fn water_is_most_compute_bound() {
    let wn2 = density(AppId::WaterN2);
    let wsp = density(AppId::WaterSp);
    for app in AppId::ALL {
        if matches!(app, AppId::WaterN2 | AppId::WaterSp) {
            continue;
        }
        let d = density(app);
        assert!(
            wn2 < d && wsp < d,
            "{app} density {d:.4} below water ({wn2:.4}/{wsp:.4})"
        );
    }
}

/// The Figure-4 (conflict-miss) applications need machine-wide
/// read-shared data — substantially more of it than the Figure-3
/// applications with partitioned/neighbour communication.
#[test]
fn fig4_group_has_wider_read_sharing() {
    let frac = |app: AppId| {
        let p = profile(app, 8);
        p.machine_shared_reads as f64 / p.distinct_reads.max(1) as f64
    };
    // Wide-replication representatives vs partitioned representatives.
    for wide in [AppId::Raytrace, AppId::Volrend, AppId::Barnes] {
        for narrow in [AppId::OceanCont, AppId::LuNon, AppId::WaterSp] {
            let w = frac(wide);
            let n = frac(narrow);
            assert!(
                w > n,
                "{wide} shared-read fraction {w:.3} not above {narrow} {n:.3}"
            );
        }
    }
}

/// Every application must produce a non-trivial trace at every scale
/// (guards against iteration-count regressions that would make a figure
/// meaningless).
#[test]
fn traces_are_long_enough_for_steady_state() {
    for app in AppId::ALL {
        let p = profile(app, 16);
        assert!(
            p.refs > 16 * 1_000,
            "{app}: only {} refs across 16 procs at SMOKE scale",
            p.refs
        );
        assert!(p.distinct_reads > 100, "{app}: touches too few lines");
    }
}

/// Working-set ordering must follow Table 1 (FFT largest, Water-n2
/// smallest).
#[test]
fn working_set_ordering_matches_table1() {
    let ws: Vec<(AppId, u64)> = AppId::ALL.into_iter().map(|a| (a, a.ws_bytes())).collect();
    let max = ws.iter().max_by_key(|(_, b)| *b).unwrap().0;
    let min = ws.iter().min_by_key(|(_, b)| *b).unwrap().0;
    assert_eq!(max, AppId::Fft);
    assert_eq!(min, AppId::WaterN2);
}
