//! Compiled-stream fidelity: an [`OpArena`] must replay *exactly* the
//! sequence the interpreted stream produces — same memory references and
//! sync ops in the same order, with the same cumulative compute time
//! between them — for every application in the catalog.

use coma_types::time::instr_time;
use coma_types::Nanos;
use coma_workloads::{AppId, FlatKind, Op, OpArena, OpStream, Scale};

/// One semantic event: an operation with the total compute gap (ns)
/// elapsed since the previous operation. This normalization makes the
/// comparison independent of how compilation splits long gaps across
/// records.
#[derive(PartialEq, Eq, Debug, Clone, Copy)]
struct Event {
    kind: FlatKind,
    payload: u64,
    gap_ns: Nanos,
}

/// Fold an interpreted stream into semantic events plus the trailing gap.
fn fold_stream(s: &mut dyn OpStream) -> (Vec<Event>, Nanos) {
    let mut events = Vec::new();
    let mut gap: Nanos = 0;
    while let Some(op) = s.next_op() {
        let (kind, payload) = match op {
            Op::Compute(n) => {
                gap += instr_time(n as u64);
                continue;
            }
            Op::Read(a) => (FlatKind::Read, a.0),
            Op::Write(a) => (FlatKind::Write, a.0),
            Op::Lock(id) => (FlatKind::Lock, id as u64),
            Op::Unlock(id) => (FlatKind::Unlock, id as u64),
            Op::Barrier(id) => (FlatKind::Barrier, id as u64),
        };
        events.push(Event {
            kind,
            payload,
            gap_ns: std::mem::take(&mut gap),
        });
    }
    (events, gap)
}

/// Fold one compiled span into the same semantic form.
fn fold_span(arena: &OpArena, proc: usize) -> (Vec<Event>, Nanos) {
    let (start, end) = arena.span(proc);
    let mut events = Vec::new();
    let mut gap: Nanos = 0;
    for i in start..end {
        let r = arena.get(i);
        if r.kind() == FlatKind::Gap {
            assert_eq!(r.gap_ns(), 0, "Gap record carries an inline gap");
            assert!(r.payload() > 0, "zero-length standalone Gap record");
            gap += r.payload();
        } else {
            events.push(Event {
                kind: r.kind(),
                payload: r.payload(),
                gap_ns: gap + r.gap_ns(),
            });
            gap = 0;
        }
    }
    (events, gap)
}

#[test]
fn compiled_arena_replays_every_catalog_app() {
    for app in AppId::ALL.into_iter().chain(AppId::TRAFFIC) {
        // Two identical builds: one interpreted reference, one compiled.
        let reference = app.build(4, 11, Scale::SMOKE);
        let compiled = app.build(4, 11, Scale::SMOKE);
        let arena = OpArena::compile(compiled.streams);
        assert_eq!(arena.n_streams(), 4, "{app}");
        for (p, mut stream) in reference.streams.into_iter().enumerate() {
            let (want, want_tail) = fold_stream(&mut *stream);
            let (got, got_tail) = fold_span(&arena, p);
            assert_eq!(
                got.len(),
                want.len(),
                "{app} proc {p}: compiled op count diverges"
            );
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g, w, "{app} proc {p}: op {i} diverges");
            }
            assert_eq!(got_tail, want_tail, "{app} proc {p}: trailing gap");
        }
    }
}

#[test]
fn compiled_arena_is_deterministic() {
    let a1 = OpArena::compile(AppId::Radix.build(2, 5, Scale::SMOKE).streams);
    let a2 = OpArena::compile(AppId::Radix.build(2, 5, Scale::SMOKE).streams);
    assert_eq!(a1.records(), a2.records());
    assert!(a1.len() > 1000, "radix smoke compiled to only {}", a1.len());
}

#[test]
fn zero_gap_streams_compile_without_gap_records() {
    // Radix uses set_gap(0,0) phases; more directly: a synthetic stream
    // of back-to-back refs must produce gap-free records only.
    struct BackToBack(u32);
    impl OpStream for BackToBack {
        fn next_op(&mut self) -> Option<Op> {
            if self.0 == 0 {
                return None;
            }
            self.0 -= 1;
            Some(Op::Read(coma_types::Addr(64 * self.0 as u64)))
        }
    }
    let mut arena = OpArena::new();
    arena.push_stream(&mut BackToBack(100));
    assert_eq!(arena.len(), 100);
    let (s, e) = arena.span(0);
    for i in s..e {
        assert_eq!(arena.get(i).gap_ns(), 0);
        assert_eq!(arena.get(i).kind(), FlatKind::Read);
    }
}

/// A synthetic stream of `len` operations cycling through every op kind
/// with a gap pattern that includes gaps long enough to spill into
/// standalone Gap records.
struct Mixed {
    remaining: u64,
    i: u64,
}

impl Mixed {
    fn new(len: u64) -> Self {
        Mixed {
            remaining: len,
            i: 0,
        }
    }
}

impl OpStream for Mixed {
    fn next_op(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let i = self.i;
        self.i += 1;
        Some(match i % 7 {
            0 => Op::Read(coma_types::Addr(64 * (i % 97))),
            1 => Op::Compute(3),
            // Large enough that the accumulated gap exceeds the inline
            // gap field and must spill into Gap records.
            2 => Op::Compute(40_000_000),
            3 => Op::Write(coma_types::Addr(64 * (i % 89))),
            4 => Op::Lock((i % 5) as u32),
            5 => Op::Unlock((i % 5) as u32),
            _ => Op::Barrier((i / 7) as u32),
        })
    }
}

/// Compiled replay must stay exact at stream lengths straddling every
/// 64-record chunk boundary: len ≡ 0, 1 and 63 (mod 64).
#[test]
fn chunk_boundary_lengths_replay_exactly() {
    for len in [0u64, 1, 63, 64, 65, 127, 128, 191, 192, 193, 255] {
        let (want, want_tail) = fold_stream(&mut Mixed::new(len));
        let mut arena = OpArena::new();
        arena.push_stream(&mut Mixed::new(len));
        let (got, got_tail) = fold_span(&arena, 0);
        assert_eq!(got, want, "len {len}: ops diverge");
        assert_eq!(got_tail, want_tail, "len {len}: trailing gap diverges");
    }
}

/// Multi-stream arenas keep exact spans at the same boundary lengths.
#[test]
fn chunk_boundary_spans_stay_separated() {
    let lens = [63u64, 64, 65];
    let mut arena = OpArena::new();
    for &len in &lens {
        arena.push_stream(&mut Mixed::new(len));
    }
    assert_eq!(arena.n_streams(), lens.len());
    for (p, &len) in lens.iter().enumerate() {
        let (want, want_tail) = fold_stream(&mut Mixed::new(len));
        let (got, got_tail) = fold_span(&arena, p);
        assert_eq!(got, want, "stream {p} (len {len}) diverges");
        assert_eq!(got_tail, want_tail, "stream {p} trailing gap");
    }
}
