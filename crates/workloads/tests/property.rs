//! Property-based tests over the whole workload catalog: the structural
//! guarantees the simulator depends on must hold for *every* application
//! at *any* seed, scale and processor count.

use coma_workloads::{AppId, Op, OpStream, Scale};
use proptest::prelude::*;

fn any_app() -> impl Strategy<Value = AppId> {
    prop::sample::select(AppId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Addresses stay inside the declared working set, lock ids inside
    /// the declared lock count, and lock/unlock pairs balance without
    /// nesting — for every app, any seed.
    #[test]
    fn streams_are_well_formed(
        app in any_app(),
        seed in any::<u64>(),
        nprocs in prop::sample::select(vec![2usize, 4, 8, 16]),
    ) {
        let mut wl = app.build(nprocs, seed, Scale::SMOKE);
        for (p, s) in wl.streams.iter_mut().enumerate() {
            let mut depth = 0i32;
            let mut held: Option<u32> = None;
            while let Some(op) = s.next_op() {
                match op {
                    Op::Read(a) | Op::Write(a) => {
                        prop_assert!(a.0 < wl.ws_bytes, "{app} P{p}: {a} outside ws");
                    }
                    Op::Lock(l) => {
                        prop_assert!(l < wl.n_locks);
                        prop_assert_eq!(depth, 0, "{} P{}: nested lock", app, p);
                        depth += 1;
                        held = Some(l);
                    }
                    Op::Unlock(l) => {
                        prop_assert_eq!(depth, 1, "{} P{}: unlock without lock", app, p);
                        prop_assert_eq!(Some(l), held, "{} P{}: unlock of other lock", app, p);
                        depth -= 1;
                        held = None;
                    }
                    Op::Compute(_) | Op::Barrier(_) => {}
                }
            }
            prop_assert_eq!(depth, 0, "{} P{}: lock held at end", app, p);
        }
    }

    /// Barrier sequences are identical on every processor (the property
    /// the global barrier implementation relies on).
    #[test]
    fn barrier_sequences_align(
        app in any_app(),
        seed in any::<u64>(),
    ) {
        let mut wl = app.build(4, seed, Scale::SMOKE);
        let seqs: Vec<Vec<u32>> = wl
            .streams
            .iter_mut()
            .map(|s| {
                let mut v = Vec::new();
                while let Some(op) = s.next_op() {
                    if let Op::Barrier(b) = op {
                        v.push(b);
                    }
                }
                v
            })
            .collect();
        for s in &seqs[1..] {
            prop_assert_eq!(s, &seqs[0], "{}: diverging barriers", app);
        }
        // Sequential numbering from zero.
        for (i, b) in seqs[0].iter().enumerate() {
            prop_assert_eq!(*b as usize, i);
        }
    }

    /// Determinism: the same (app, seed, scale) yields bit-identical
    /// streams.
    #[test]
    fn streams_are_deterministic(app in any_app(), seed in any::<u64>()) {
        let collect = || {
            let mut wl = app.build(2, seed, Scale::SMOKE);
            let mut v = Vec::new();
            for _ in 0..2000 {
                match wl.streams[1].next_op() {
                    Some(op) => v.push(op),
                    None => break,
                }
            }
            v
        };
        prop_assert_eq!(collect(), collect());
    }

    /// Scale only stretches the trace: the working set (and therefore the
    /// machine geometry) is scale-invariant.
    #[test]
    fn scale_never_changes_working_set(app in any_app(), seed in any::<u64>()) {
        let a = app.build(4, seed, Scale::SMOKE).ws_bytes;
        let b = app.build(4, seed, Scale::BENCH).ws_bytes;
        prop_assert_eq!(a, b);
    }
}
