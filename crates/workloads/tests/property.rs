//! Randomized property tests over the whole workload catalog: the
//! structural guarantees the simulator depends on must hold for *every*
//! application at *any* seed, scale and processor count. Driven by the
//! in-repo deterministic RNG so the workspace needs no external test
//! dependencies.

use coma_types::Rng64;
use coma_workloads::{AppId, Op, OpStream, Scale};

fn random_app(rng: &mut Rng64) -> AppId {
    AppId::ALL[rng.below(AppId::ALL.len() as u64) as usize]
}

/// Addresses stay inside the declared working set, lock ids inside
/// the declared lock count, and lock/unlock pairs balance without
/// nesting — for every app, any seed.
#[test]
fn streams_are_well_formed() {
    let mut rng = Rng64::new(0x10AD);
    for _case in 0..32 {
        let app = random_app(&mut rng);
        let seed = rng.next_u64();
        let nprocs = [2usize, 4, 8, 16][rng.below(4) as usize];
        let mut wl = app.build(nprocs, seed, Scale::SMOKE);
        for (p, s) in wl.streams.iter_mut().enumerate() {
            let mut depth = 0i32;
            let mut held: Option<u32> = None;
            while let Some(op) = s.next_op() {
                match op {
                    Op::Read(a) | Op::Write(a) => {
                        assert!(a.0 < wl.ws_bytes, "{app} P{p}: {a} outside ws");
                    }
                    Op::Lock(l) => {
                        assert!(l < wl.n_locks);
                        assert_eq!(depth, 0, "{app} P{p}: nested lock");
                        depth += 1;
                        held = Some(l);
                    }
                    Op::Unlock(l) => {
                        assert_eq!(depth, 1, "{app} P{p}: unlock without lock");
                        assert_eq!(Some(l), held, "{app} P{p}: unlock of other lock");
                        depth -= 1;
                        held = None;
                    }
                    Op::Compute(_) | Op::Barrier(_) => {}
                }
            }
            assert_eq!(depth, 0, "{app} P{p}: lock held at end");
        }
    }
}

/// Barrier sequences are identical on every processor (the property
/// the global barrier implementation relies on).
#[test]
fn barrier_sequences_align() {
    let mut rng = Rng64::new(0xBA22);
    for _case in 0..32 {
        let app = random_app(&mut rng);
        let seed = rng.next_u64();
        let mut wl = app.build(4, seed, Scale::SMOKE);
        let seqs: Vec<Vec<u32>> = wl
            .streams
            .iter_mut()
            .map(|s| {
                let mut v = Vec::new();
                while let Some(op) = s.next_op() {
                    if let Op::Barrier(b) = op {
                        v.push(b);
                    }
                }
                v
            })
            .collect();
        for s in &seqs[1..] {
            assert_eq!(s, &seqs[0], "{app}: diverging barriers");
        }
        // Sequential numbering from zero.
        for (i, b) in seqs[0].iter().enumerate() {
            assert_eq!(*b as usize, i);
        }
    }
}

/// Determinism: the same (app, seed, scale) yields bit-identical
/// streams.
#[test]
fn streams_are_deterministic() {
    let mut rng = Rng64::new(0xDE7);
    for _case in 0..32 {
        let app = random_app(&mut rng);
        let seed = rng.next_u64();
        let collect = || {
            let mut wl = app.build(2, seed, Scale::SMOKE);
            let mut v = Vec::new();
            for _ in 0..2000 {
                match wl.streams[1].next_op() {
                    Some(op) => v.push(op),
                    None => break,
                }
            }
            v
        };
        assert_eq!(collect(), collect());
    }
}

/// Scale only stretches the trace: the working set (and therefore the
/// machine geometry) is scale-invariant.
#[test]
fn scale_never_changes_working_set() {
    let mut rng = Rng64::new(0x5CA1E);
    for _case in 0..32 {
        let app = random_app(&mut rng);
        let seed = rng.next_u64();
        let a = app.build(4, seed, Scale::SMOKE).ws_bytes;
        let b = app.build(4, seed, Scale::BENCH).ws_bytes;
        assert_eq!(a, b);
    }
}
